// Ablation 1: the AIF attack classifier. The paper uses XGBoost; this
// repository substitutes a from-scratch GBDT. This harness compares three
// NK-model attackers on the same RS+FD reports:
//   - gbdt:     ml::Gbdt trained on synthetic profiles (the default)
//   - logistic: ml::LogisticRegression on the same features
//   - nbayes:   ml::NaiveBayes on the same features (learned independence
//               model; cheap diagnostic between logistic and bayes)
//   - bayes:    the closed-form Bayes attacker (no training; analytic
//               upper reference under per-attribute independence)
// If gbdt tracks bayes, the XGBoost substitution is immaterial.

#include <cstdio>

#include "attack/aif.h"
#include "attack/bayes_adversary.h"
#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "core/histogram.h"
#include "core/sampling.h"
#include "data/synthetic.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/ml_metrics.h"

namespace {

using namespace ldpr;

struct CellResult {
  double gbdt = 0.0;
  double logistic = 0.0;
  double nbayes = 0.0;
  double bayes = 0.0;
};

CellResult RunCell(const data::Dataset& ds, multidim::RsFdVariant variant,
                   double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  const auto& k = ds.domain_sizes();

  // Real reports (test set for every attacker).
  std::vector<multidim::MultidimReport> reports;
  std::vector<int> truth;
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
    truth.push_back(reports.back().sampled_attribute);
  }
  const auto estimated = protocol.Estimate(reports);

  // Synthetic learning set (s = 1n), shared by both trained classifiers.
  std::vector<CategoricalSampler> samplers;
  for (int j = 0; j < ds.d(); ++j) {
    samplers.emplace_back(ProjectToSimplex(estimated[j]));
  }
  ml::LabeledData learn;
  std::vector<int> profile(ds.d());
  for (int s = 0; s < ds.n(); ++s) {
    for (int j = 0; j < ds.d(); ++j) profile[j] = samplers[j].Sample(rng);
    multidim::MultidimReport rep = protocol.RandomizeUser(profile, rng);
    learn.Append(attack::EncodeFeatures(rep, k), rep.sampled_attribute);
  }
  std::vector<std::vector<int>> test_rows;
  for (const auto& rep : reports) {
    test_rows.push_back(attack::EncodeFeatures(rep, k));
  }

  CellResult out;
  {
    ml::Gbdt model;
    model.Train(learn.rows, learn.labels, ds.d(), bench::BenchGbdtConfig(),
                rng);
    out.gbdt = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    ml::LogisticRegression model;
    ml::LogisticConfig config;
    config.epochs = 15;
    model.Train(learn.rows, learn.labels, ds.d(), config, rng);
    out.logistic = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    ml::NaiveBayes model;
    model.Train(learn.rows, learn.labels, ds.d());
    out.nbayes = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    attack::BayesAifAttacker model(protocol, estimated);
    out.bayes = 100.0 * ml::Accuracy(truth, model.PredictBatch(reports));
  }
  return out;
}

}  // namespace

int main() {
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());
  bench::PrintRunConfig("abl01_aif_classifiers", ds.n(), ds.d());
  std::printf("# baseline = %.3f%%\n", 100.0 / ds.d());
  const int runs = NumRuns();

  const std::pair<multidim::RsFdVariant, const char*> variants[] = {
      {multidim::RsFdVariant::kGrr, "RS+FD[GRR]"},
      {multidim::RsFdVariant::kSueZ, "RS+FD[SUE-z]"},
  };
  for (const auto& [variant, name] : variants) {
    std::printf("\n## protocol = %s (NK model, s = 1n)\n", name);
    std::printf("%-8s %10s %10s %10s %10s\n", "epsilon", "gbdt",
                "logistic", "nbayes", "bayes");
    std::uint64_t seed = 77;
    for (double eps : bench::EpsilonGrid()) {
      CellResult mean;
      for (int run = 0; run < runs; ++run) {
        Rng rng(++seed * 104729);
        CellResult cell = RunCell(ds, variant, eps, rng);
        mean.gbdt += cell.gbdt;
        mean.logistic += cell.logistic;
        mean.nbayes += cell.nbayes;
        mean.bayes += cell.bayes;
      }
      std::printf("%-8.1f %10.3f %10.3f %10.3f %10.3f\n", eps,
                  mean.gbdt / runs, mean.logistic / runs, mean.nbayes / runs,
                  mean.bayes / runs);
      std::fflush(stdout);
    }
  }
  return 0;
}
