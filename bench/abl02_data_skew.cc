// Ablation 2: how much of the AIF attack is explained by marginal skew.
// Sweeps the synthetic generator's base_mix (the weight of the shared
// skewed background inside every latent class) and reports the Bayes-NK
// AIF accuracy against RS+FD[GRR]. At base_mix -> 0 the aggregate marginals
// flatten and the attack collapses to the 1/d baseline — the Nursery effect
// of Fig. 15; at high base_mix the attack approaches its ceiling.

#include <cstdio>

#include "attack/bayes_adversary.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "ml/ml_metrics.h"

int main() {
  using namespace ldpr;
  const double eps = 8.0;
  std::printf("# bench = abl02_data_skew\n");
  std::printf("# ACS shape, eps = %.1f, Bayes-NK attacker, RS+FD[GRR]\n",
              eps);
  std::printf("%-10s %8s %14s %14s\n", "base_mix", "n", "max_marginal",
              "AIF-ACC(%)");

  const int runs = NumRuns();
  for (double base_mix : {0.0, 0.2, 0.4, 0.6, 0.8, 0.9}) {
    double acc_sum = 0.0;
    double skew_sum = 0.0;
    int n = 0;
    for (int run = 0; run < runs; ++run) {
      data::SyntheticCensusConfig config;
      config.n = static_cast<int>(10336 * bench::BenchScale());
      config.domain_sizes = {92, 25, 5, 2, 2, 9, 4, 5, 5,
                             4,  2,  18, 2, 2, 3, 9, 3, 6};
      config.base_mix = base_mix;
      config.seed = 1000 + run;
      data::Dataset ds = data::GenerateSyntheticCensus(config);
      n = ds.n();

      // Mean over attributes of the top marginal mass (skew proxy).
      const auto marginals = ds.Marginals();
      double skew = 0.0;
      for (const auto& m : marginals) {
        double mx = 0.0;
        for (double v : m) mx = std::max(mx, v);
        skew += mx;
      }
      skew_sum += skew / ds.d();

      multidim::RsFd protocol(multidim::RsFdVariant::kGrr, ds.domain_sizes(),
                              eps);
      Rng rng(2000 + run);
      std::vector<multidim::MultidimReport> reports;
      std::vector<int> truth;
      for (int i = 0; i < ds.n(); ++i) {
        reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
        truth.push_back(reports.back().sampled_attribute);
      }
      attack::BayesAifAttacker attacker(protocol, protocol.Estimate(reports));
      acc_sum += 100.0 * ml::Accuracy(truth, attacker.PredictBatch(reports));
    }
    std::printf("%-10.1f %8d %14.4f %14.3f\n", base_mix, n, skew_sum / runs,
                acc_sum / runs);
    std::fflush(stdout);
  }
  std::printf("# baseline = %.3f%%\n", 100.0 / 18.0);
  return 0;
}
