// Ablation 3: the target-subsample shortcut of the re-identification
// matcher. RID-ACC is a per-user mean, so evaluating a uniform subsample of
// targets estimates the same quantity at a fraction of the O(n * |D_BK|)
// cost (the repository's default is 3000 targets). This harness shows the
// estimate converging to the full-population value as the subsample grows.

#include <cstdio>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  std::printf("# bench = abl03_reident_subsample\n");
  std::printf("# Adult shape, n = %d, GRR, eps = 6, 5 surveys, FK-RI\n",
              ds.n());

  Rng rng(1);
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 5, rng);
  auto channel =
      attack::MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 6.0);
  auto snapshots = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);
  std::vector<bool> bk(ds.d(), true);

  attack::ReidentConfig full;
  full.top_k = {10};
  full.max_targets = 0;
  Rng full_rng(2);
  const double reference =
      attack::ReidentAccuracy(snapshots.back(), ds, bk, full, full_rng)
          .rid_acc_percent[0];
  std::printf("# full-population top-10 RID-ACC = %.4f%%\n\n", reference);

  std::printf("%-10s %14s %12s\n", "targets", "top10(%)", "abs.err");
  for (int targets : {100, 300, 1000, 3000, 10000}) {
    if (targets >= ds.n()) break;
    double mean = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      attack::ReidentConfig config;
      config.top_k = {10};
      config.max_targets = targets;
      Rng sub_rng(100 + r);
      mean += attack::ReidentAccuracy(snapshots.back(), ds, bk, config,
                                      sub_rng)
                  .rid_acc_percent[0];
    }
    mean /= reps;
    std::printf("%-10d %14.4f %12.4f\n", targets, mean,
                std::abs(mean - reference));
  }
  return 0;
}
