// Ablation 4: how RS+RFD's two benefits (utility gain and AIF suppression)
// depend on prior quality. Sweeps from uniform priors (= RS+FD) through
// increasingly clean Laplace-perturbed priors to the exact marginals, and
// reports (a) MSE_avg of the estimates and (b) Bayes-NK AIF accuracy.

#include <cmath>
#include <cstdio>
#include <memory>

#include "attack/bayes_adversary.h"
#include "bench/bench_util.h"
#include "core/metrics.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "ml/ml_metrics.h"
#include "multidim/rsrfd.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());
  const double eps = std::log(4.0);
  std::printf("# bench = abl04_prior_quality\n");
  std::printf("# ACS shape, n = %d, RS+RFD[GRR], eps = ln4; AIF at eps = 8\n",
              ds.n());
  std::printf("%-22s %14s %14s\n", "prior", "MSE_avg", "Bayes AIF(%)");

  const auto truth = ds.Marginals();
  const int runs = NumRuns();

  struct PriorSpec {
    const char* label;
    data::PriorKind kind;
    double central_eps;  // for kCorrectLaplace
  };
  const PriorSpec specs[] = {
      {"uniform (= RS+FD)", data::PriorKind::kUniform, 0.0},
      {"laplace eps=0.01", data::PriorKind::kCorrectLaplace, 0.01},
      {"laplace eps=0.1", data::PriorKind::kCorrectLaplace, 0.1},
      {"laplace eps=1.0", data::PriorKind::kCorrectLaplace, 1.0},
      {"exact marginals", data::PriorKind::kTrueMarginals, 0.0},
  };

  for (const PriorSpec& spec : specs) {
    double mse = 0.0;
    double aif = 0.0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(500 + run);
      auto priors =
          data::BuildPriors(ds, spec.kind, rng, spec.central_eps,
                            data::kAcsEmploymentN);

      // (a) Utility at the paper's utility epsilon.
      multidim::RsRfd utility_protocol(multidim::RsRfdVariant::kGrr,
                                       ds.domain_sizes(), eps, priors);
      std::vector<multidim::MultidimReport> reports;
      reports.reserve(ds.n());
      for (int i = 0; i < ds.n(); ++i) {
        reports.push_back(utility_protocol.RandomizeUser(ds.Record(i), rng));
      }
      mse += MseAvg(truth, utility_protocol.Estimate(reports));

      // (b) Attribute inference at a high (industry-style) epsilon.
      multidim::RsRfd attack_protocol(multidim::RsRfdVariant::kGrr,
                                      ds.domain_sizes(), 8.0, priors);
      std::vector<multidim::MultidimReport> attack_reports;
      std::vector<int> sampled;
      for (int i = 0; i < ds.n(); ++i) {
        attack_reports.push_back(
            attack_protocol.RandomizeUser(ds.Record(i), rng));
        sampled.push_back(attack_reports.back().sampled_attribute);
      }
      attack::BayesAifAttacker attacker(
          attack_protocol, attack_protocol.Estimate(attack_reports));
      aif += 100.0 *
             ml::Accuracy(sampled, attacker.PredictBatch(attack_reports));
    }
    std::printf("%-22s %14.4e %14.3f\n", spec.label, mse / runs, aif / runs);
    std::fflush(stdout);
  }
  std::printf("# AIF baseline = %.3f%%\n", 100.0 / ds.d());
  return 0;
}
