// Ablation 5: communication cost versus utility across the five frequency
// oracles — the trade-off behind the paper's Section 6 recommendation
// ("the OUE and/or OLH protocols, depending on k_j due to communication
// costs"). For each (k, eps) cell the table reports every protocol's bits
// per report and approximate estimator variance (n = 1, f = 0), then the
// cheapest-within-5%-variance recommendation. A second panel prints the
// per-user upload of the three multidimensional solutions on the Adult
// attribute profile.

#include <cstdio>

#include "bench/bench_util.h"
#include "fo/comm_cost.h"
#include "fo/factory.h"

int main() {
  using namespace ldpr;
  using fo::Protocol;

  std::printf("# bench = abl05_comm_cost\n");
  std::printf("# panel 1: per-report bits and variance by (k, eps)\n");
  std::printf("%-8s %-6s", "k", "eps");
  for (Protocol p : fo::AllProtocols())
    std::printf(" %9s_b %9s_v", fo::ProtocolName(p), fo::ProtocolName(p));
  std::printf(" %11s\n", "recommended");

  for (int k : {2, 16, 74, 512, 4096}) {
    for (double eps : {1.0, 4.0}) {
      std::printf("%-8d %-6.1f", k, eps);
      for (const auto& point : fo::CostUtilityFrontier(k, eps)) {
        std::printf(" %11.0f %11.3g", point.bits_per_report, point.variance);
      }
      std::printf(" %11s\n",
                  fo::ProtocolName(fo::RecommendProtocol(k, eps)));
    }
  }

  std::printf("\n# panel 2: per-user upload (bits) on the Adult profile\n");
  const std::vector<int> adult_k = {74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  std::printf("%-6s %-10s %10s %10s %10s\n", "eps", "protocol", "SPL", "SMP",
              "RS+FD");
  for (double eps : {1.0, 4.0}) {
    for (Protocol p : fo::AllProtocols()) {
      std::printf("%-6.1f %-10s %10.0f %10.0f %10.0f\n", eps,
                  fo::ProtocolName(p), fo::SplTupleBits(p, adult_k, eps),
                  fo::SmpTupleBits(p, adult_k, eps),
                  fo::RsFdTupleBits(p, adult_k, eps));
    }
  }
  return 0;
}
