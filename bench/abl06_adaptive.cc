// Ablation 6: per-attribute adaptive protocol selection (ADP). Compares the
// averaged estimation MSE of RS+FD[ADP] against the fixed RS+FD[GRR] and
// RS+FD[OUE-z] variants, and SMP[ADP] against fixed SMP[GRR] / SMP[OUE], on
// the ACSEmployment attribute profile (k_j from 2 to 92, so the adaptive
// rule genuinely mixes choices). The adaptive curve should track the lower
// envelope of the two fixed curves at every epsilon.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"
#include "multidim/smp.h"

namespace {

using namespace ldpr;

double RsFdMse(const data::Dataset& ds, multidim::RsFdVariant variant,
               double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

double RsFdAdpMse(const data::Dataset& ds, double eps, Rng& rng) {
  multidim::RsFdAdaptive protocol(ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

double SmpMse(const data::Dataset& ds, fo::Protocol protocol_kind, double eps,
              Rng& rng) {
  multidim::Smp protocol(protocol_kind, ds.domain_sizes(), eps);
  std::vector<multidim::SmpReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

double SmpAdpMse(const data::Dataset& ds, double eps, Rng& rng) {
  multidim::SmpAdaptive protocol(ds.domain_sizes(), eps);
  std::vector<multidim::SmpReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

}  // namespace

int main() {
  using namespace ldpr;
  data::Dataset ds =
      data::AcsEmploymentLike(911, GetEnvDouble("LDPR_SCALE", 1.0));
  bench::PrintRunConfig("abl06_adaptive", ds.n(), ds.d());

  // Per-attribute choices at two budgets, to show the rule actually mixes.
  for (double eps : {1.0, 4.0}) {
    multidim::RsFdAdaptive adp(ds.domain_sizes(), eps);
    std::printf("# eps=%.1f RS+FD[ADP] choices:", eps);
    for (int j = 0; j < adp.d(); ++j) {
      std::printf(" %s",
                  adp.choice(j) == multidim::RsFdVariant::kGrr ? "GRR" : "OUE");
    }
    std::printf("\n");
  }

  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "epsilon", "FD[ADP]",
              "FD[GRR]", "FD[OUE-z]", "SMP[ADP]", "SMP[GRR]", "SMP[OUE]");
  const int runs = NumRuns();
  std::uint64_t seed = 77;
  for (double eps : bench::EpsilonGrid()) {
    double adp = 0, grr = 0, ouez = 0, smp_adp = 0, smp_grr = 0, smp_oue = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 9176);
      adp += RsFdAdpMse(ds, eps, rng);
      grr += RsFdMse(ds, multidim::RsFdVariant::kGrr, eps, rng);
      ouez += RsFdMse(ds, multidim::RsFdVariant::kOueZ, eps, rng);
      smp_adp += SmpAdpMse(ds, eps, rng);
      smp_grr += SmpMse(ds, fo::Protocol::kGrr, eps, rng);
      smp_oue += SmpMse(ds, fo::Protocol::kOue, eps, rng);
    }
    std::printf("%-10.1f %12.4e %12.4e %12.4e %12.4e %12.4e %12.4e\n", eps,
                adp / runs, grr / runs, ouez / runs, smp_adp / runs,
                smp_grr / runs, smp_oue / runs);
    std::fflush(stdout);
  }
  return 0;
}
