// Ablation 7: consistency post-processing (fo/consistency; Wang et al.,
// NDSS'20) applied to the multidimensional estimates. Raw RS+FD / SMP
// estimates can be negative and need not sum to one; DP's immunity to
// post-processing (Section 2.1) lets the server project them onto the
// simplex for free. The table reports MSE_avg of the raw estimates against
// ClampRenorm, Norm-Sub and Base-Cut across eps on the ACS profile — the
// gain is largest in high-privacy regimes where the additive noise is wide.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "fo/consistency.h"
#include "multidim/rsfd.h"
#include "multidim/variance.h"

namespace {

using namespace ldpr;

std::vector<std::vector<double>> PostProcess(
    const std::vector<std::vector<double>>& est, fo::ConsistencyMethod method,
    double threshold) {
  std::vector<std::vector<double>> out;
  out.reserve(est.size());
  for (const auto& attribute : est) {
    out.push_back(fo::MakeConsistent(attribute, method, threshold));
  }
  return out;
}

}  // namespace

int main() {
  data::Dataset ds =
      data::AcsEmploymentLike(606, GetEnvDouble("LDPR_SCALE", 1.0));
  bench::PrintRunConfig("abl07_consistency", ds.n(), ds.d());
  std::printf("# RS+FD[GRR]; Base-Cut threshold = 2 sigma of the estimator\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "epsilon", "raw", "clamp",
              "norm-sub", "base-cut");

  const int runs = NumRuns();
  std::uint64_t seed = 17;
  for (double eps : bench::EpsilonGrid()) {
    double raw = 0, clamp = 0, norm_sub = 0, base_cut = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 2903);
      multidim::RsFd protocol(multidim::RsFdVariant::kGrr, ds.domain_sizes(),
                              eps);
      std::vector<multidim::MultidimReport> reports;
      reports.reserve(ds.n());
      for (int i = 0; i < ds.n(); ++i) {
        reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
      }
      const auto truth = ds.Marginals();
      const auto est = protocol.Estimate(reports);
      raw += MseAvg(truth, est);
      clamp += MseAvg(
          truth, PostProcess(est, fo::ConsistencyMethod::kClampRenorm, 0));
      norm_sub +=
          MseAvg(truth, PostProcess(est, fo::ConsistencyMethod::kNormSub, 0));
      // 2-sigma Base-Cut using the worst attribute's variance as the level.
      double sigma = 0.0;
      for (int j = 0; j < ds.d(); ++j) {
        sigma = std::max(
            sigma, std::sqrt(multidim::RsFdVariance(
                       multidim::RsFdVariant::kGrr, ds.domain_size(j), ds.d(),
                       eps, ds.n(), 0.0)));
      }
      base_cut += MseAvg(truth, PostProcess(
                                    est, fo::ConsistencyMethod::kBaseCut,
                                    2.0 * sigma));
    }
    std::printf("%-8.1f %12.4e %12.4e %12.4e %12.4e\n", eps, raw / runs,
                clamp / runs, norm_sub / runs, base_cut / runs);
    std::fflush(stdout);
  }
  return 0;
}
