// Ablation 8: does per-attribute adaptive selection (RS+FD[ADP]) change the
// attack surface? The NK sampled-attribute inference attack (Section 3.3.1,
// GBDT on synthetic profiles) runs against RS+FD[ADP] and its two fixed
// ingredients on the ACS profile. Expectation: ADP inherits the *worse* of
// its ingredients' leakages wherever it selects OUE-z (zero-vector fake
// data is the paper's most distinguishable choice), so picking protocols
// for utility alone can silently worsen privacy — the utility/privacy
// tension of Section 6 at the protocol-selection level.

#include <cstdio>

#include "attack/aif.h"
#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"

namespace {

using namespace ldpr;

double AttackVariant(const data::Dataset& ds, multidim::RsFdVariant variant,
                     double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt = bench::BenchGbdtConfig();
  return attack::RunAifAttack(
             ds,
             [&](const std::vector<int>& r, Rng& g) {
               return protocol.RandomizeUser(r, g);
             },
             [&](const std::vector<multidim::MultidimReport>& reps) {
               return protocol.Estimate(reps);
             },
             config, rng)
      .aif_acc_percent;
}

double AttackAdaptive(const data::Dataset& ds, double eps, Rng& rng) {
  multidim::RsFdAdaptive protocol(ds.domain_sizes(), eps);
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt = bench::BenchGbdtConfig();
  return attack::RunAifAttack(
             ds,
             [&](const std::vector<int>& r, Rng& g) {
               return protocol.RandomizeUser(r, g);
             },
             [&](const std::vector<multidim::MultidimReport>& reps) {
               return protocol.Estimate(reps);
             },
             config, rng)
      .aif_acc_percent;
}

}  // namespace

int main() {
  data::Dataset ds = data::AcsEmploymentLike(808, bench::BenchScale());
  bench::PrintRunConfig("abl08_adaptive_aif", ds.n(), ds.d());
  std::printf("# NK model, s = 1n, baseline = %.3f%%\n", 100.0 / ds.d());
  std::printf("%-8s %12s %12s %12s\n", "epsilon", "ADP", "GRR", "OUE-z");
  const int runs = NumRuns();
  std::uint64_t seed = 5;
  for (double eps : bench::EpsilonGrid()) {
    double adp = 0, grr = 0, oue = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 3571);
      adp += AttackAdaptive(ds, eps, rng);
      grr += AttackVariant(ds, multidim::RsFdVariant::kGrr, eps, rng);
      oue += AttackVariant(ds, multidim::RsFdVariant::kOueZ, eps, rng);
    }
    std::printf("%-8.1f %12.3f %12.3f %12.3f\n", eps, adp / runs, grr / runs,
                oue / runs);
    std::fflush(stdout);
  }
  return 0;
}
