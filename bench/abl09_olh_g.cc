// Ablation 9: the local-hashing domain size g. OLH fixes g = e^eps + 1 to
// minimize the estimator variance; this sweep shows both what that choice
// buys and what it costs. For k = 74 at two budgets, each g reports the
// empirical estimation MSE on a Zipf population and the single-report
// attacker's accuracy (Section 3.2.1 adversary: uniform choice within the
// reported cell's hash preimage). Expected shape: MSE is U-shaped with its
// minimum near g ~ e^eps + 1. Attacker accuracy is hump-shaped: growing g
// first helps the attacker (fewer values share a cell, so hashing hides
// less) until the in-cell GRR itself turns noisy (p' = e^eps/(e^eps+g-1)
// decays), after which accuracy falls again — the variance-optimal g sits
// on the rising flank, so g is an attack-surface knob as well.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "attack/plausible_deniability.h"
#include "bench/bench_util.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "fo/olh.h"

int main() {
  using namespace ldpr;
  const int k = 74;
  const int n = 40000;
  std::printf("# bench = abl09_olh_g\n");
  std::printf("# k = %d, n = %d, Zipf(1.3) population\n", k, n);

  const int runs = NumRuns();
  for (double eps : {1.0, 3.0}) {
    const int g_opt =
        std::max(2, static_cast<int>(std::lround(std::exp(eps))) + 1);
    std::printf("\n## eps = %.1f (optimal g = %d)\n", eps, g_opt);
    std::printf("%-6s %12s %14s\n", "g", "MSE", "attack ACC(%)");
    std::vector<int> gs = {2, 3, 5, 8, 16, 32, 64, 128};
    if (std::find(gs.begin(), gs.end(), g_opt) == gs.end()) {
      gs.push_back(g_opt);
      std::sort(gs.begin(), gs.end());
    }
    std::uint64_t seed = 7;
    for (int g : gs) {
      double mse = 0.0, acc = 0.0;
      for (int run = 0; run < runs; ++run) {
        Rng rng(++seed * 467);
        CategoricalSampler population(ZipfDistribution(k, 1.3));
        std::vector<int> values(n);
        for (int& v : values) v = population.Sample(rng);
        const std::vector<double> truth = EmpiricalFrequency(values, k);

        fo::Olh oracle(k, eps, g);
        mse += Mse(truth, oracle.EstimateFrequencies(values, rng));
        acc += attack::EmpiricalAttackAccPercent(oracle, values, rng);
      }
      std::printf("%-6d %12.4e %14.2f\n", g, mse / runs, acc / runs);
      std::fflush(stdout);
    }
  }
  return 0;
}
