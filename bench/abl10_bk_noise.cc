// Ablation 10: background-knowledge quality. The paper's FK-RI experiments
// match profiles against an exact copy of the collected dataset; real
// adversaries hold stale or noisy auxiliary data (census releases, old
// breaches). This sweep corrupts a fraction of the background's cells
// before matching and reports the top-1/top-10 RID-ACC of GRR-inferred
// profiles (5 attributes, eps = 8, near-perfect profiling) on the
// Adult-shaped population. Expected shape: RID-ACC decays smoothly with
// noise and approaches the random baseline near full corruption — attack
// results under the paper's exact-copy assumption are an upper bound on
// realistic adversaries.

#include <cstdio>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(606, bench::BenchScale());
  bench::PrintRunConfig("abl10_bk_noise", ds.n(), ds.d());
  const double eps = 8.0;
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  std::printf("# GRR profiles over %zu attributes at eps = %.1f\n",
              attrs.size(), eps);
  std::printf("# baseline: top-1 %.4f%%, top-10 %.4f%%\n",
              attack::BaselineRidAcc(1, ds.n()),
              attack::BaselineRidAcc(10, ds.n()));
  std::printf("%-10s %12s %12s\n", "bk_noise", "top-1(%)", "top-10(%)");

  const int runs = NumRuns();
  std::uint64_t seed = 19;
  for (double noise : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0}) {
    double top1 = 0, top10 = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 653);
      auto channel =
          attack::MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), eps);
      std::vector<attack::Profile> profiles(ds.n());
      for (int i = 0; i < ds.n(); ++i) {
        for (int j : attrs) {
          profiles[i].emplace_back(
              j, channel->ReportAndPredict(ds.value(i, j), j, rng));
        }
      }
      std::vector<bool> bk(ds.d(), true);
      attack::ReidentConfig config;
      config.bk_noise = noise;
      config.max_targets = GetEnvInt("LDPR_REIDENT_TARGETS", 3000);
      auto result = attack::ReidentAccuracy(profiles, ds, bk, config, rng);
      top1 += result.rid_acc_percent[0];
      top10 += result.rid_acc_percent[1];
    }
    std::printf("%-10.2f %12.4f %12.4f\n", noise, top1 / runs, top10 / runs);
    std::fflush(stdout);
  }
  return 0;
}
