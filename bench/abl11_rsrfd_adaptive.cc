// Ablation 11: RS+RFD[ADP] — the countermeasure (realistic fake data)
// combined with per-attribute adaptive randomizer selection, closing the
// design matrix that abl06 (utility of RS+FD[ADP]) and abl08 (its attack
// surface) opened. Columns: estimation MSE_avg and NK attribute-inference
// accuracy for RS+RFD[ADP] against the fixed RS+RFD[GRR] / RS+RFD[OUE-r]
// and against RS+FD[ADP], on the ACS profile with "Correct" Laplace priors.
// Expected shape: RS+RFD[ADP] tracks the better fixed RS+RFD variant's MSE
// while keeping AIF-ACC near the RS+RFD (not the RS+FD[ADP]) level.

#include <cstdio>

#include "attack/aif.h"
#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/adaptive.h"
#include "multidim/rsrfd.h"
#include "multidim/rsrfd_adaptive.h"

namespace {

using namespace ldpr;

template <typename Protocol>
double ProtocolMse(const data::Dataset& ds, const Protocol& protocol,
                   Rng& rng) {
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

template <typename Protocol>
double ProtocolAif(const data::Dataset& ds, const Protocol& protocol,
                   Rng& rng) {
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt = bench::BenchGbdtConfig();
  return attack::RunAifAttack(
             ds,
             [&](const std::vector<int>& r, Rng& g) {
               return protocol.RandomizeUser(r, g);
             },
             [&](const std::vector<multidim::MultidimReport>& reps) {
               return protocol.Estimate(reps);
             },
             config, rng)
      .aif_acc_percent;
}

}  // namespace

int main() {
  // Full paper scale by default: the Correct Laplace priors are only
  // meaningful relative to n (abl04); at small n they are noise-dominated
  // and RS+RFD degenerates to the bad-prior regime.
  data::Dataset ds =
      data::AcsEmploymentLike(515, GetEnvDouble("LDPR_SCALE", 1.0));
  bench::PrintRunConfig("abl11_rsrfd_adaptive", ds.n(), ds.d());
  std::printf("# Correct Laplace priors; NK attack baseline = %.3f%%\n",
              100.0 / ds.d());
  std::printf("%-6s %11s %11s %11s %11s | %9s %9s %9s %9s\n", "eps",
              "RFD[ADP]m", "RFD[GRR]m", "RFD[OUEr]m", "FD[ADP]m",
              "RFD[ADP]a", "RFD[GRR]a", "RFD[OUEr]a", "FD[ADP]a");

  const int runs = NumRuns();
  std::uint64_t seed = 23;
  for (double eps : {1.0, 2.0, 4.0, 8.0}) {
    double mse[4] = {0, 0, 0, 0}, aif[4] = {0, 0, 0, 0};
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 1237);
      auto priors =
          data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng);
      multidim::RsRfdAdaptive rfd_adp(ds.domain_sizes(), eps, priors);
      multidim::RsRfd rfd_grr(multidim::RsRfdVariant::kGrr, ds.domain_sizes(),
                              eps, priors);
      multidim::RsRfd rfd_ouer(multidim::RsRfdVariant::kOueR,
                               ds.domain_sizes(), eps, priors);
      multidim::RsFdAdaptive fd_adp(ds.domain_sizes(), eps);
      mse[0] += ProtocolMse(ds, rfd_adp, rng);
      mse[1] += ProtocolMse(ds, rfd_grr, rng);
      mse[2] += ProtocolMse(ds, rfd_ouer, rng);
      mse[3] += ProtocolMse(ds, fd_adp, rng);
      aif[0] += ProtocolAif(ds, rfd_adp, rng);
      aif[1] += ProtocolAif(ds, rfd_grr, rng);
      aif[2] += ProtocolAif(ds, rfd_ouer, rng);
      aif[3] += ProtocolAif(ds, fd_adp, rng);
    }
    std::printf(
        "%-6.1f %11.3e %11.3e %11.3e %11.3e | %9.2f %9.2f %9.2f %9.2f\n",
        eps, mse[0] / runs, mse[1] / runs, mse[2] / runs, mse[3] / runs,
        aif[0] / runs, aif[1] / runs, aif[2] / runs, aif[3] / runs);
    std::fflush(stdout);
  }
  return 0;
}
