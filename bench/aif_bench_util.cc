#include "bench/aif_bench_util.h"

#include <cstdio>

#include "bench/bench_util.h"
#include "core/flags.h"

namespace ldpr::bench {

namespace {

class RsFdSolution : public AifSolution {
 public:
  RsFdSolution(multidim::RsFdVariant variant, std::vector<int> k, double eps)
      : protocol_(variant, std::move(k), eps) {}

  attack::MultidimClient Client() const override {
    return [this](const std::vector<int>& rec, Rng& r) {
      return protocol_.RandomizeUser(rec, r);
    };
  }
  attack::MultidimEstimator Estimator() const override {
    return [this](const std::vector<multidim::MultidimReport>& reps) {
      return protocol_.Estimate(reps);
    };
  }

 private:
  multidim::RsFd protocol_;
};

class RsRfdSolution : public AifSolution {
 public:
  RsRfdSolution(multidim::RsRfdVariant variant, std::vector<int> k, double eps,
                std::vector<std::vector<double>> priors)
      : protocol_(variant, std::move(k), eps, std::move(priors)) {}

  attack::MultidimClient Client() const override {
    return [this](const std::vector<int>& rec, Rng& r) {
      return protocol_.RandomizeUser(rec, r);
    };
  }
  attack::MultidimEstimator Estimator() const override {
    return [this](const std::vector<multidim::MultidimReport>& reps) {
      return protocol_.Estimate(reps);
    };
  }

 private:
  multidim::RsRfd protocol_;
};

}  // namespace

AifSolutionFactory MakeRsFdFactory(multidim::RsFdVariant variant,
                                   const data::Dataset& dataset) {
  const std::vector<int> k = dataset.domain_sizes();
  return [variant, k](double eps, Rng&) {
    return std::make_unique<RsFdSolution>(variant, k, eps);
  };
}

AifSolutionFactory MakeRsRfdFactory(multidim::RsRfdVariant variant,
                                    data::PriorKind prior_kind,
                                    const data::Dataset& dataset,
                                    int prior_n) {
  const data::Dataset* ds = &dataset;
  return [variant, prior_kind, ds, prior_n](double eps, Rng& rng) {
    auto priors = data::BuildPriors(*ds, prior_kind, rng,
                                    /*total_central_eps=*/0.1, prior_n);
    return std::make_unique<RsRfdSolution>(variant, ds->domain_sizes(), eps,
                                           std::move(priors));
  };
}

std::vector<AifPanel> PaperAifPanels() {
  return {
      {attack::AifModel::kNk, {{1.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}}},
      {attack::AifModel::kPk, {{0.0, 0.1}, {0.0, 0.3}, {0.0, 0.5}}},
      {attack::AifModel::kHm, {{1.0, 0.1}, {3.0, 0.3}, {5.0, 0.5}}},
  };
}

ml::GbdtConfig BenchGbdtConfig() {
  ml::GbdtConfig config;
  config.num_rounds = GetEnvInt("LDPR_GBDT_ROUNDS", 8);
  config.max_depth = GetEnvInt("LDPR_GBDT_DEPTH", 4);
  return config;
}

void RunAifFigure(const std::string& bench_name, const data::Dataset& dataset,
                  const std::vector<AifCurve>& curves,
                  const std::vector<AifPanel>& panels) {
  PrintRunConfig(bench_name, dataset.n(), dataset.d());
  std::printf("# baseline AIF-ACC = %.3f%%\n", 100.0 / dataset.d());
  const int runs = NumRuns();

  for (const AifPanel& panel : panels) {
    for (const AifCurve& curve : curves) {
      std::printf("\n## model = %s, protocol = %s\n",
                  attack::AifModelName(panel.model), curve.label.c_str());
      std::printf("%-8s", "epsilon");
      for (const auto& [s, npk] : panel.settings) {
        if (panel.model == attack::AifModel::kNk) {
          std::printf("    s=%.0fn", s);
        } else if (panel.model == attack::AifModel::kPk) {
          std::printf(" npk=%.1fn", npk);
        } else {
          std::printf(" s%.0f_n%.1f", s, npk);
        }
      }
      std::printf("\n");

      std::uint64_t seed = 20230;
      for (double eps : EpsilonGrid()) {
        std::printf("%-8.1f", eps);
        for (const auto& [s, npk] : panel.settings) {
          double acc = 0.0;
          for (int run = 0; run < runs; ++run) {
            Rng rng(++seed * 7919 + run);
            auto solution = curve.factory(eps, rng);
            attack::AifConfig config;
            config.model = panel.model;
            config.synthetic_multiplier =
                panel.model == attack::AifModel::kPk ? 1.0 : s;
            config.compromised_fraction =
                panel.model == attack::AifModel::kNk ? 0.1 : npk;
            config.gbdt = BenchGbdtConfig();
            acc += attack::RunAifAttack(dataset, solution->Client(),
                                        solution->Estimator(), config, rng)
                       .aif_acc_percent;
          }
          std::printf(" %8.3f", acc / runs);
          std::fflush(stdout);
        }
        std::printf("\n");
      }
    }
  }
}

}  // namespace ldpr::bench
