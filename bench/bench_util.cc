#include "bench/bench_util.h"

#include <cmath>

#include "core/check.h"

namespace ldpr::bench {

std::vector<double> LogUtilityEpsilonGrid() {
  std::vector<double> out;
  for (int b = 2; b <= 7; ++b) out.push_back(std::log(static_cast<double>(b)));
  return out;
}

void PrintRunConfig(const std::string& bench_name, int n, int d) {
  std::printf("# bench = %s\n", bench_name.c_str());
  std::printf("# n = %d, d = %d\n", n, d);
  std::printf("# runs = %d, scale = %.3f, reident_targets = %d\n", NumRuns(),
              BenchScale(), ReidentTargets());
}

SmpReidentCell RunSmpReidentCell(const data::Dataset& dataset,
                                 const SmpReidentOptions& options) {
  LDPR_REQUIRE(options.num_surveys >= 2, "need at least 2 surveys");
  LDPR_REQUIRE(options.runs >= 1, "need at least 1 run");

  const int prefixes = options.num_surveys - 1;  // prefixes 2..num_surveys
  SmpReidentCell cell;
  cell.rid_acc.assign(prefixes,
                      std::vector<double>(options.top_k.size(), 0.0));

  Rng root(options.seed);
  for (int run = 0; run < options.runs; ++run) {
    Rng rng = root.Split();
    attack::SurveyPlan plan =
        attack::MakeSurveyPlan(dataset.d(), options.num_surveys, rng);

    std::unique_ptr<attack::AttackChannel> channel;
    if (options.channel == ChannelKind::kLdp) {
      channel = attack::MakeLdpChannel(options.protocol,
                                       dataset.domain_sizes(), options.x);
    } else {
      channel = attack::MakePieChannel(options.protocol,
                                       dataset.domain_sizes(), options.x,
                                       dataset.n());
    }

    auto snapshots =
        attack::SimulateSmpProfiling(dataset, *channel, plan, options.mode,
                                     rng);

    std::vector<bool> bk =
        attack::MakeBackgroundAttributes(dataset.d(), options.model, rng);
    attack::ReidentConfig config;
    config.top_k = options.top_k;
    config.max_targets = ReidentTargets();
    for (int s = 2; s <= options.num_surveys; ++s) {
      auto result =
          attack::ReidentAccuracy(snapshots[s - 1], dataset, bk, config, rng);
      for (std::size_t ki = 0; ki < options.top_k.size(); ++ki) {
        cell.rid_acc[s - 2][ki] += result.rid_acc_percent[ki];
      }
    }
  }
  for (auto& row : cell.rid_acc) {
    for (double& v : row) v /= options.runs;
  }
  return cell;
}

void RunSmpReidentFigure(const std::string& bench_name,
                         const data::Dataset& dataset,
                         const std::vector<fo::Protocol>& protocols,
                         ChannelKind channel, const std::vector<double>& xs,
                         attack::PrivacyMetricMode mode,
                         attack::ReidentModel model) {
  PrintRunConfig(bench_name, dataset.n(), dataset.d());
  const char* x_name = channel == ChannelKind::kLdp ? "epsilon" : "beta";
  std::printf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%\n",
              attack::BaselineRidAcc(1, dataset.n()),
              attack::BaselineRidAcc(10, dataset.n()));

  SmpReidentOptions options;
  options.channel = channel;
  options.mode = mode;
  options.model = model;
  options.runs = NumRuns();

  for (fo::Protocol protocol : protocols) {
    options.protocol = protocol;
    std::printf("\n## protocol = %s\n", fo::ProtocolName(protocol));
    std::printf("%-8s", x_name);
    for (int k : options.top_k) {
      for (int s = 2; s <= options.num_surveys; ++s) {
        std::printf(" top%d_sv%d", k, s);
      }
    }
    std::printf("\n");
    std::uint64_t seed = 1000;
    for (double x : xs) {
      options.x = x;
      options.seed = ++seed;
      SmpReidentCell cell = RunSmpReidentCell(dataset, options);
      std::printf("%-8.3f", x);
      for (std::size_t ki = 0; ki < options.top_k.size(); ++ki) {
        for (int s = 2; s <= options.num_surveys; ++s) {
          std::printf(" %8.4f", cell.rid_acc[s - 2][ki]);
        }
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
}

}  // namespace ldpr::bench
