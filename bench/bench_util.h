#ifndef LDPR_BENCH_BENCH_UTIL_H_
#define LDPR_BENCH_BENCH_UTIL_H_

// Shared driver code for the per-figure experiment harnesses. Each bench
// binary regenerates one figure of the paper as CSV-ish rows on stdout:
// the x-axis value first, then one column per curve.
//
// Environment knobs (see core/flags.h):
//   LDPR_RUNS            repetitions averaged per point     (default 3)
//   LDPR_SCALE           dataset scale factor in (0, 1]     (default 0.2)
//   LDPR_REIDENT_TARGETS matcher target subsample           (default 3000)
//   LDPR_THREADS         worker threads                     (default: cores)
//
// The paper uses 20 runs at full n on a compute cluster; the defaults here
// reproduce every curve's *shape* on a laptop in minutes. Set LDPR_RUNS=20
// LDPR_SCALE=1 LDPR_REIDENT_TARGETS=0 for a full-fidelity run.

#include <cstdio>
#include <string>
#include <vector>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "core/flags.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "data/dataset.h"

namespace ldpr::bench {

/// Dataset scale used by the bench harness (default 0.2; LDPR_SCALE).
inline double BenchScale() { return GetEnvDouble("LDPR_SCALE", 0.2); }

/// The paper's epsilon grid for the attack experiments.
inline std::vector<double> EpsilonGrid() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}

/// The paper's Bayes-error grid for the alpha-PIE experiments (Appendix C).
inline std::vector<double> BetaGrid() {
  return {0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55, 0.5};
}

/// The paper's epsilon grid for the utility experiments (Section 5.2.2).
std::vector<double> LogUtilityEpsilonGrid();

/// Prints "# name = value" configuration lines.
void PrintRunConfig(const std::string& bench_name, int n, int d);

/// Builds a channel for one x-axis point: plain eps-LDP or alpha-PIE.
enum class ChannelKind { kLdp, kPie };

/// One cell of the SMP re-identification experiments (Figs. 2, 9-13):
/// runs `runs` repetitions of (#surveys surveys -> profiling -> matching)
/// and returns mean RID-ACC(%) per survey-prefix (2..num_surveys) per top-k.
struct SmpReidentCell {
  /// [survey_prefix - 2][top_k index] -> RID-ACC(%).
  std::vector<std::vector<double>> rid_acc;
};

struct SmpReidentOptions {
  fo::Protocol protocol = fo::Protocol::kGrr;
  ChannelKind channel = ChannelKind::kLdp;
  double x = 1.0;  ///< epsilon (kLdp) or beta (kPie)
  int num_surveys = 5;
  attack::PrivacyMetricMode mode = attack::PrivacyMetricMode::kUniform;
  attack::ReidentModel model = attack::ReidentModel::kFullKnowledge;
  std::vector<int> top_k = {1, 10};
  int runs = 3;
  std::uint64_t seed = 1;
};

SmpReidentCell RunSmpReidentCell(const data::Dataset& dataset,
                                 const SmpReidentOptions& options);

/// Prints one figure panel of the SMP re-identification family: rows are
/// x-axis values, columns are (survey prefix x top-k) RID-ACC means.
void RunSmpReidentFigure(const std::string& bench_name,
                         const data::Dataset& dataset,
                         const std::vector<fo::Protocol>& protocols,
                         ChannelKind channel, const std::vector<double>& xs,
                         attack::PrivacyMetricMode mode,
                         attack::ReidentModel model);

}  // namespace ldpr::bench

#endif  // LDPR_BENCH_BENCH_UTIL_H_
