// Shared main() of every figure/ablation/framework bench binary. Each
// binary is compiled from this file with LDPR_EXPERIMENT_NAME set to the
// registered experiment it fronts (see bench/CMakeLists.txt); the actual
// experiment logic lives in src/exp/scenarios/. Output and env knobs are
// unchanged from the historical standalone drivers: CSV on stdout, scaled
// by LDPR_RUNS / LDPR_SCALE / ..., plus LDPR_SMOKE=1 for the CI preset and
// LDPR_JSON_OUT=file.json for structured output.

#include "exp/experiment.h"

#ifndef LDPR_EXPERIMENT_NAME
#error "compile with -DLDPR_EXPERIMENT_NAME=\"<name>\""
#endif

int main() { return ldpr::exp::RunExperimentMain(LDPR_EXPERIMENT_NAME); }
