// Figure 1: analytical attacker accuracy when collecting multidimensional
// data (d = 3, k = [74, 7, 16]) with the SMP solution over #surveys = 3.
// Panel (a): uniform privacy metric (Eq. 4); panel (b): non-uniform (Eq. 5).
// Panel (c) cross-checks Eq. 4 empirically with the sharded simulation
// engine (attack::MonteCarloProfileAcc runs on sim::ShardedRun, so it scales
// with LDPR_THREADS); LDPR_FIG01_TRIALS sets the Monte-Carlo sample size
// (0 skips the panel).

#include <cstdio>

#include "attack/plausible_deniability.h"
#include "core/flags.h"
#include "core/rng.h"
#include "fo/analytic_acc.h"

int main() {
  using namespace ldpr;
  const std::vector<int> k{74, 7, 16};

  std::printf("# bench = fig01_expected_acc\n");
  std::printf("# d = 3, k = [74, 7, 16], #surveys = 3\n");

  std::printf("\n## panel (a): expected ACC_U (%%), Eq. (4)\n");
  std::printf("%-8s", "epsilon");
  for (fo::Protocol p : fo::AllProtocols()) {
    std::printf(" %8s", fo::ProtocolName(p));
  }
  std::printf("\n");
  for (int eps = 1; eps <= 10; ++eps) {
    std::printf("%-8d", eps);
    for (fo::Protocol p : fo::AllProtocols()) {
      std::printf(" %8.3f", 100.0 * fo::ExpectedAccUniform(p, eps, k));
    }
    std::printf("\n");
  }

  std::printf("\n## panel (b): expected ACC_NU (%%), Eq. (5)\n");
  std::printf("%-8s", "epsilon");
  for (fo::Protocol p : fo::AllProtocols()) {
    std::printf(" %8s", fo::ProtocolName(p));
  }
  std::printf("\n");
  for (int eps = 1; eps <= 10; ++eps) {
    std::printf("%-8d", eps);
    for (fo::Protocol p : fo::AllProtocols()) {
      std::printf(" %8.3f", 100.0 * fo::ExpectedAccNonUniform(p, eps, k));
    }
    std::printf("\n");
  }

  const int trials = GetEnvInt("LDPR_FIG01_TRIALS", 20000);
  if (trials > 0) {
    std::printf("\n## panel (c): simulated ACC_U (%%), %d trials/point\n",
                trials);
    std::printf("%-8s", "epsilon");
    for (fo::Protocol p : fo::AllProtocols()) {
      std::printf(" %8s", fo::ProtocolName(p));
    }
    std::printf("\n");
    Rng rng(2023);
    for (int eps = 1; eps <= 10; ++eps) {
      std::printf("%-8d", eps);
      for (fo::Protocol p : fo::AllProtocols()) {
        const double acc = attack::MonteCarloProfileAcc(
            p, eps, k, /*uniform_metric=*/true, trials, rng);
        std::printf(" %8.3f", 100.0 * acc);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
