// Figure 1: analytical attacker accuracy when collecting multidimensional
// data (d = 3, k = [74, 7, 16]) with the SMP solution over #surveys = 3.
// Panel (a): uniform privacy metric (Eq. 4); panel (b): non-uniform (Eq. 5).

#include <cstdio>

#include "fo/analytic_acc.h"

int main() {
  using namespace ldpr;
  const std::vector<int> k{74, 7, 16};

  std::printf("# bench = fig01_expected_acc\n");
  std::printf("# d = 3, k = [74, 7, 16], #surveys = 3\n");

  std::printf("\n## panel (a): expected ACC_U (%%), Eq. (4)\n");
  std::printf("%-8s", "epsilon");
  for (fo::Protocol p : fo::AllProtocols()) {
    std::printf(" %8s", fo::ProtocolName(p));
  }
  std::printf("\n");
  for (int eps = 1; eps <= 10; ++eps) {
    std::printf("%-8d", eps);
    for (fo::Protocol p : fo::AllProtocols()) {
      std::printf(" %8.3f", 100.0 * fo::ExpectedAccUniform(p, eps, k));
    }
    std::printf("\n");
  }

  std::printf("\n## panel (b): expected ACC_NU (%%), Eq. (5)\n");
  std::printf("%-8s", "epsilon");
  for (fo::Protocol p : fo::AllProtocols()) {
    std::printf(" %8s", fo::ProtocolName(p));
  }
  std::printf("\n");
  for (int eps = 1; eps <= 10; ++eps) {
    std::printf("%-8d", eps);
    for (fo::Protocol p : fo::AllProtocols()) {
      std::printf(" %8.3f", 100.0 * fo::ExpectedAccNonUniform(p, eps, k));
    }
    std::printf("\n");
  }
  return 0;
}
