// Figure 2: attacker's re-identification accuracy (RID-ACC) on the Adult
// dataset for top-k re-identification with the SMP solution, full-knowledge
// FK-RI model, uniform eps-LDP privacy metric, varying the LDP protocol and
// the number of surveys (2..5).
//
// The multi-survey collection runs on the sharded simulation engine
// (attack::SimulateSmpProfiling -> sim::ShardedRun): deterministic per-shard
// RNG streams, LDPR_THREADS-independent results, and no per-user generator
// state.

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  bench::RunSmpReidentFigure(
      "fig02_smp_reident_adult", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      bench::ChannelKind::kLdp, bench::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kFullKnowledge);
  return 0;
}
