// Figure 3: attacker's AIF-ACC on the ACSEmployment dataset with the three
// attack models (NK, PK, HM) and the five RS+FD protocols, varying epsilon,
// the number of synthetic profiles s and compromised profiles npk.

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());
  std::vector<bench::AifCurve> curves{
      {"RS+FD[GRR]", bench::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
  bench::RunAifFigure("fig03_rsfd_aif_acs", ds, curves,
                      bench::PaperAifPanels());
  return 0;
}
