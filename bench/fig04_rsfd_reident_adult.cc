// Figure 4: attacker's RID-ACC on the Adult dataset using the RS+FD[GRR]
// protocol across multiple surveys. Per survey, the attacker first predicts
// each user's sampled attribute with the NK model (s = 1n synthetic
// profiles) and then predicts the value of the predicted attribute —
// chained errors collapse the re-identification rates versus SMP (Fig. 2).

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, 0.5 * bench::BenchScale());
  bench::PrintRunConfig("fig04_rsfd_reident_adult", ds.n(), ds.d());
  std::printf("# protocol = RS+FD[GRR], NK model (s = 1n), FK-RI, uniform\n");
  std::printf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%\n",
              attack::BaselineRidAcc(1, ds.n()),
              attack::BaselineRidAcc(10, ds.n()));

  const int num_surveys = 5;
  const int runs = NumRuns();
  std::printf("%-8s", "epsilon");
  for (int k : {1, 10}) {
    for (int s = 2; s <= num_surveys; ++s) std::printf(" top%d_sv%d", k, s);
  }
  std::printf("\n");

  std::uint64_t seed = 40;
  for (double eps : bench::EpsilonGrid()) {
    // [prefix][topk] accumulators.
    std::vector<std::vector<double>> acc(num_surveys - 1,
                                         std::vector<double>(2, 0.0));
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 7919);
      attack::SurveyPlan plan =
          attack::MakeSurveyPlan(ds.d(), num_surveys, rng);
      auto snapshots = attack::SimulateRsFdProfiling(
          ds, multidim::RsFdVariant::kGrr, eps, plan,
          /*synthetic_multiplier=*/1.0, bench::BenchGbdtConfig(), rng);
      std::vector<bool> bk(ds.d(), true);
      attack::ReidentConfig config;
      config.top_k = {1, 10};
      config.max_targets = ReidentTargets();
      for (int s = 2; s <= num_surveys; ++s) {
        auto result =
            attack::ReidentAccuracy(snapshots[s - 1], ds, bk, config, rng);
        acc[s - 2][0] += result.rid_acc_percent[0];
        acc[s - 2][1] += result.rid_acc_percent[1];
      }
    }
    std::printf("%-8.1f", eps);
    for (int ki = 0; ki < 2; ++ki) {
      for (int s = 2; s <= num_surveys; ++s) {
        std::printf(" %8.4f", acc[s - 2][ki] / runs);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
