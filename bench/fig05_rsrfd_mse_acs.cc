// Figure 5: averaged MSE of multidimensional frequency estimation on the
// ACSEmployment dataset, RS+RFD versus RS+FD (GRR / SUE-r / OUE-r), for
// (a) "Correct" Laplace-perturbed priors and (b) "Incorrect" Dirichlet(1)
// priors, over epsilon in [ln 2, ln 7].

#include <cmath>

#include "bench/bench_util.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace {

using namespace ldpr;

double RsFdMse(const data::Dataset& ds, multidim::RsFdVariant variant,
               double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

double RsRfdMse(const data::Dataset& ds, multidim::RsRfdVariant variant,
                data::PriorKind prior_kind, double eps, Rng& rng) {
  auto priors = data::BuildPriors(ds, prior_kind, rng);
  multidim::RsRfd protocol(variant, ds.domain_sizes(), eps, priors);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

void Panel(const data::Dataset& ds, data::PriorKind prior_kind) {
  std::printf("\n## priors = %s\n", data::PriorKindName(prior_kind));
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "epsilon",
              "RFD[GRR]", "RFD[SUE-r]", "RFD[OUE-r]", "FD[GRR]", "FD[SUE-r]",
              "FD[OUE-r]");
  const int runs = NumRuns();
  std::uint64_t seed = 50;
  for (double eps : bench::LogUtilityEpsilonGrid()) {
    double rfd[3] = {0, 0, 0}, fd[3] = {0, 0, 0};
    const multidim::RsRfdVariant rfd_variants[] = {
        multidim::RsRfdVariant::kGrr, multidim::RsRfdVariant::kSueR,
        multidim::RsRfdVariant::kOueR};
    const multidim::RsFdVariant fd_variants[] = {
        multidim::RsFdVariant::kGrr, multidim::RsFdVariant::kSueR,
        multidim::RsFdVariant::kOueR};
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 6151);
      for (int v = 0; v < 3; ++v) {
        rfd[v] += RsRfdMse(ds, rfd_variants[v], prior_kind, eps, rng);
        fd[v] += RsFdMse(ds, fd_variants[v], eps, rng);
      }
    }
    std::printf("%-10.4f %12.4e %12.4e %12.4e %12.4e %12.4e %12.4e\n", eps,
                rfd[0] / runs, rfd[1] / runs, rfd[2] / runs, fd[0] / runs,
                fd[1] / runs, fd[2] / runs);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  // Estimation-only workload: full paper scale is cheap, so default to it.
  data::Dataset ds =
      data::AcsEmploymentLike(2023, GetEnvDouble("LDPR_SCALE", 1.0));
  bench::PrintRunConfig("fig05_rsrfd_mse_acs", ds.n(), ds.d());
  Panel(ds, data::PriorKind::kCorrectLaplace);   // panel (a)
  Panel(ds, data::PriorKind::kIncorrectDirichlet);  // panel (b)
  return 0;
}
