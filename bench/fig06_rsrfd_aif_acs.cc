// Figure 6: attacker's AIF-ACC on the ACSEmployment dataset against the
// RS+RFD countermeasure with "Correct" (Laplace-perturbed) priors — the
// attack should barely beat the 1/d baseline across NK / PK / HM.

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());
  std::vector<bench::AifCurve> curves{
      {"RS+RFD[GRR]",
       bench::MakeRsRfdFactory(multidim::RsRfdVariant::kGrr,
                               data::PriorKind::kCorrectLaplace, ds,
                               data::kAcsEmploymentN)},
      {"RS+RFD[SUE-r]",
       bench::MakeRsRfdFactory(multidim::RsRfdVariant::kSueR,
                               data::PriorKind::kCorrectLaplace, ds,
                               data::kAcsEmploymentN)},
      {"RS+RFD[OUE-r]",
       bench::MakeRsRfdFactory(multidim::RsRfdVariant::kOueR,
                               data::PriorKind::kCorrectLaplace, ds,
                               data::kAcsEmploymentN)},
  };
  bench::RunAifFigure("fig06_rsrfd_aif_acs", ds, curves,
                      bench::PaperAifPanels());
  return 0;
}
