// Figures 7 and 8 (Appendices A-B): the probability trees of the
// RS+RFD[GRR] and RS+RFD[UE-r] protocols. This harness prints every leaf
// probability of reporting/supporting a target value v analytically and
// verifies each against a Monte-Carlo simulation of the client.

#include <cmath>
#include <cstdio>

#include "core/rng.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"
#include "multidim/rsrfd.h"

int main() {
  using namespace ldpr;
  const int d = 3;
  const int k = 5;
  const double eps = 1.0;
  const double eps_prime = multidim::AmplifiedEpsilon(eps, d);
  const int target = 1;          // value v_i whose support we track
  const int true_value = 1;      // the user's true value (B = v_i branch)
  const std::vector<double> prior{0.4, 0.3, 0.1, 0.1, 0.1};
  const double f_tilde = prior[target];

  std::printf("# bench = fig07_08_probability_trees\n");
  std::printf("# d = %d, k = %d, eps = %.2f, eps' = %.4f, f~(v) = %.2f\n", d,
              k, eps, eps_prime, f_tilde);

  const int trials = 2000000;
  std::vector<int> record(d, true_value);
  std::vector<std::vector<double>> priors(d, prior);

  {
    // ---- Fig. 7: RS+RFD[GRR] -------------------------------------------
    const double e = std::exp(eps_prime);
    const double p = e / (e + k - 1);
    const double q = (1.0 - p) / (k - 1);
    std::printf("\n## Fig. 7 probability tree, RS+RFD[GRR]\n");
    std::printf("branch                                   analytic\n");
    std::printf("true data (1/d) -> B' = v  (p)           %.6f\n", p / d);
    std::printf("true data (1/d) -> B' != v (q*(k-1))     %.6f\n",
                (1.0 - p) / d);
    std::printf("fake data (1-1/d) -> B' = v  (f~)        %.6f\n",
                (1.0 - 1.0 / d) * f_tilde);
    std::printf("fake data (1-1/d) -> B' != v (1-f~)      %.6f\n",
                (1.0 - 1.0 / d) * (1.0 - f_tilde));
    const double gamma = (q + 1.0 * (p - q) + (d - 1.0) * f_tilde) / d;
    std::printf("P[report v | truth v] (gamma, f = 1)     %.6f\n", gamma);

    multidim::RsRfd protocol(multidim::RsRfdVariant::kGrr, {k, k, k}, eps,
                             priors);
    Rng rng(1);
    long long hits = 0;
    for (int t = 0; t < trials; ++t) {
      multidim::MultidimReport rep = protocol.RandomizeUser(record, rng);
      hits += (rep.values[0] == target);
    }
    std::printf("Monte-Carlo P[report v | truth v]        %.6f  (%d trials)\n",
                static_cast<double>(hits) / trials, trials);
  }

  {
    // ---- Fig. 8: RS+RFD[UE-r] (with SUE parameters) ---------------------
    const double p = fo::Sue::PForEpsilon(eps_prime);
    const double q = fo::Sue::QForEpsilon(eps_prime);
    std::printf("\n## Fig. 8 probability tree, RS+RFD[SUE-r]\n");
    std::printf("branch                                   analytic\n");
    std::printf("true data (1/d), B_i = 1 -> B'_i = 1 (p) %.6f\n", p / d);
    std::printf("true data (1/d), B_i = 0 -> B'_i = 1 (q) %.6f\n", q / d);
    std::printf("fake data, B_i = 1 (f~) -> B'_i = 1 (p)  %.6f\n",
                (1.0 - 1.0 / d) * f_tilde * p);
    std::printf("fake data, B_i = 0      -> B'_i = 1 (q)  %.6f\n",
                (1.0 - 1.0 / d) * (1.0 - f_tilde) * q);
    const double gamma =
        (1.0 * (p - q) + q + (d - 1.0) * (f_tilde * (p - q) + q)) / d;
    std::printf("P[bit v set | truth v] (gamma, f = 1)    %.6f\n", gamma);

    multidim::RsRfd protocol(multidim::RsRfdVariant::kSueR, {k, k, k}, eps,
                             priors);
    Rng rng(2);
    long long hits = 0;
    for (int t = 0; t < trials / 4; ++t) {
      multidim::MultidimReport rep = protocol.RandomizeUser(record, rng);
      hits += (rep.bits[0][target] != 0);
    }
    std::printf("Monte-Carlo P[bit v set | truth v]       %.6f  (%d trials)\n",
                static_cast<double>(hits) / (trials / 4), trials / 4);
  }
  return 0;
}
