// Figure 9 (Appendix C): RID-ACC on the ACSEmployment dataset for top-k
// re-identification with the SMP solution, FK-RI model, uniform eps-LDP
// metric — the Fig. 2 experiment on the second dataset, all five protocols.

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());
  bench::RunSmpReidentFigure(
      "fig09_smp_reident_acs", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      bench::ChannelKind::kLdp, bench::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kFullKnowledge);
  return 0;
}
