// Figure 10 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution and the *partial-knowledge* PK-RI model (background restricted to
// a random subset of >= d/2 attributes), uniform eps-LDP metric.

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  bench::RunSmpReidentFigure(
      "fig10_smp_reident_pk", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      bench::ChannelKind::kLdp, bench::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kPartialKnowledge);
  return 0;
}
