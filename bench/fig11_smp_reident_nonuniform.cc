// Figure 11 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution under the *non-uniform* eps-LDP privacy metric (attribute
// sampling with replacement + memoization), FK-RI and PK-RI models.

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  std::printf("=== left panels: FK-RI ===\n");
  bench::RunSmpReidentFigure("fig11_smp_reident_nonuniform[FK]", ds,
                             protocols, bench::ChannelKind::kLdp,
                             bench::EpsilonGrid(),
                             attack::PrivacyMetricMode::kNonUniform,
                             attack::ReidentModel::kFullKnowledge);
  std::printf("\n=== right panels: PK-RI ===\n");
  bench::RunSmpReidentFigure("fig11_smp_reident_nonuniform[PK]", ds,
                             protocols, bench::ChannelKind::kLdp,
                             bench::EpsilonGrid(),
                             attack::PrivacyMetricMode::kNonUniform,
                             attack::ReidentModel::kPartialKnowledge);
  return 0;
}
