// Figure 12 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution under the relaxed (U, alpha)-PIE privacy model, uniform metric,
// FK-RI and PK-RI models, varying the Bayes error beta from 0.95 to 0.5.
// Small-domain attributes travel in the clear ([35, Prop. 9]), so all
// protocols converge to similar (high) re-identification rates.

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  std::printf("=== left panels: FK-RI ===\n");
  bench::RunSmpReidentFigure("fig12_smp_reident_pie_uniform[FK]", ds,
                             protocols, bench::ChannelKind::kPie,
                             bench::BetaGrid(),
                             attack::PrivacyMetricMode::kUniform,
                             attack::ReidentModel::kFullKnowledge);
  std::printf("\n=== right panels: PK-RI ===\n");
  bench::RunSmpReidentFigure("fig12_smp_reident_pie_uniform[PK]", ds,
                             protocols, bench::ChannelKind::kPie,
                             bench::BetaGrid(),
                             attack::PrivacyMetricMode::kUniform,
                             attack::ReidentModel::kPartialKnowledge);
  return 0;
}
