// Figure 13 (Appendix C): the Fig. 12 experiment under the *non-uniform*
// privacy metric (sampling with replacement + memoization).

#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  std::printf("=== left panels: FK-RI ===\n");
  bench::RunSmpReidentFigure("fig13_smp_reident_pie_nonuniform[FK]", ds,
                             protocols, bench::ChannelKind::kPie,
                             bench::BetaGrid(),
                             attack::PrivacyMetricMode::kNonUniform,
                             attack::ReidentModel::kFullKnowledge);
  std::printf("\n=== right panels: PK-RI ===\n");
  bench::RunSmpReidentFigure("fig13_smp_reident_pie_nonuniform[PK]", ds,
                             protocols, bench::ChannelKind::kPie,
                             bench::BetaGrid(),
                             attack::PrivacyMetricMode::kNonUniform,
                             attack::ReidentModel::kPartialKnowledge);
  return 0;
}
