// Figure 14 (Appendix D): attacker's AIF-ACC on the Adult dataset with the
// three attack models and all five RS+FD protocols.

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  // Adult is 4.4x larger than ACSEmployment; halve the bench scale so the
  // GBDT sweep stays laptop-sized at the default settings.
  data::Dataset ds = data::AdultLike(2023, 0.5 * bench::BenchScale());
  std::vector<bench::AifCurve> curves{
      {"RS+FD[GRR]", bench::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
  bench::RunAifFigure("fig14_rsfd_aif_adult", ds, curves,
                      bench::PaperAifPanels());
  return 0;
}
