// Figure 15 (Appendix D): attacker's AIF-ACC on the Nursery dataset, whose
// uniform-like attribute distributions defeat the attack for the GRR / UE-r
// variants (fake data is indistinguishable from real values); only the
// UE-z variants remain vulnerable.

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::NurseryLike(2023, bench::BenchScale());
  std::vector<bench::AifCurve> curves{
      {"RS+FD[GRR]", bench::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       bench::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
  bench::RunAifFigure("fig15_rsfd_aif_nursery", ds, curves,
                      bench::PaperAifPanels());
  return 0;
}
