// Figure 16 (Appendix E): analytical (approximate variance at f = 0) and
// empirical (averaged MSE) utility on the Adult dataset for RS+RFD versus
// RS+FD with "Correct" and the three "Incorrect" prior families.

#include <cmath>

#include "bench/bench_util.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/variance.h"

namespace {

using namespace ldpr;

struct Pair {
  multidim::RsRfdVariant rfd;
  multidim::RsFdVariant fd;
};

constexpr Pair kPairs[] = {
    {multidim::RsRfdVariant::kGrr, multidim::RsFdVariant::kGrr},
    {multidim::RsRfdVariant::kSueR, multidim::RsFdVariant::kSueR},
    {multidim::RsRfdVariant::kOueR, multidim::RsFdVariant::kOueR},
};

void AnalyticalPanel(const data::Dataset& ds, data::PriorKind prior_kind,
                     Rng& rng) {
  std::printf("\n## analytical (approx. variance, f = 0), priors = %s\n",
              data::PriorKindName(prior_kind));
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "epsilon", "RFD[GRR]",
              "RFD[SUE-r]", "RFD[OUE-r]", "FD[GRR]", "FD[SUE-r]",
              "FD[OUE-r]");
  auto priors = data::BuildPriors(ds, prior_kind, rng);
  for (double eps : bench::LogUtilityEpsilonGrid()) {
    std::printf("%-10.4f", eps);
    for (const Pair& pair : kPairs) {
      multidim::RsRfd protocol(pair.rfd, ds.domain_sizes(), eps, priors);
      std::printf(" %12.4e", multidim::RsRfdApproxMseAvg(protocol, ds.n()));
    }
    for (const Pair& pair : kPairs) {
      std::printf(" %12.4e",
                  multidim::RsFdApproxMseAvg(pair.fd, ds.domain_sizes(), eps,
                                             ds.n()));
    }
    std::printf("\n");
  }
}

void EmpiricalPanel(const data::Dataset& ds, data::PriorKind prior_kind) {
  std::printf("\n## empirical (MSE_avg), priors = %s\n",
              data::PriorKindName(prior_kind));
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "epsilon", "RFD[GRR]",
              "RFD[SUE-r]", "RFD[OUE-r]", "FD[GRR]", "FD[SUE-r]",
              "FD[OUE-r]");
  const int runs = NumRuns();
  const auto truth = ds.Marginals();
  std::uint64_t seed = 60;
  for (double eps : bench::LogUtilityEpsilonGrid()) {
    double rfd[3] = {0, 0, 0}, fd[3] = {0, 0, 0};
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 4099);
      auto priors = data::BuildPriors(ds, prior_kind, rng);
      for (int v = 0; v < 3; ++v) {
        {
          multidim::RsRfd protocol(kPairs[v].rfd, ds.domain_sizes(), eps,
                                   priors);
          std::vector<multidim::MultidimReport> reports;
          reports.reserve(ds.n());
          for (int i = 0; i < ds.n(); ++i) {
            reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
          }
          rfd[v] += MseAvg(truth, protocol.Estimate(reports));
        }
        {
          multidim::RsFd protocol(kPairs[v].fd, ds.domain_sizes(), eps);
          std::vector<multidim::MultidimReport> reports;
          reports.reserve(ds.n());
          for (int i = 0; i < ds.n(); ++i) {
            reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
          }
          fd[v] += MseAvg(truth, protocol.Estimate(reports));
        }
      }
    }
    std::printf("%-10.4f %12.4e %12.4e %12.4e %12.4e %12.4e %12.4e\n", eps,
                rfd[0] / runs, rfd[1] / runs, rfd[2] / runs, fd[0] / runs,
                fd[1] / runs, fd[2] / runs);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  // Estimation-only workload: full paper scale is cheap, so default to it.
  data::Dataset ds = data::AdultLike(2023, GetEnvDouble("LDPR_SCALE", 1.0));
  bench::PrintRunConfig("fig16_rsrfd_mse_adult", ds.n(), ds.d());
  Rng prior_rng(61);
  for (data::PriorKind kind :
       {data::PriorKind::kCorrectLaplace, data::PriorKind::kIncorrectDirichlet,
        data::PriorKind::kIncorrectZipf,
        data::PriorKind::kIncorrectExponential}) {
    AnalyticalPanel(ds, kind, prior_rng);
    EmpiricalPanel(ds, kind);
  }
  return 0;
}
