// Figure 17 (Appendix E): attacker's AIF-ACC (NK model) on the
// ACSEmployment dataset against RS+RFD with the three "Incorrect" prior
// families — Dirichlet(1), Zipf(1.01) and Exp(1). Even wrong non-uniform
// priors suppress the attack versus RS+FD's uniform fakes.

#include "bench/aif_bench_util.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AcsEmploymentLike(2023, bench::BenchScale());

  std::vector<bench::AifCurve> curves;
  const std::pair<multidim::RsRfdVariant, const char*> variants[] = {
      {multidim::RsRfdVariant::kGrr, "RS+RFD[GRR]"},
      {multidim::RsRfdVariant::kSueR, "RS+RFD[SUE-r]"},
      {multidim::RsRfdVariant::kOueR, "RS+RFD[OUE-r]"},
  };
  const std::pair<data::PriorKind, const char*> priors[] = {
      {data::PriorKind::kIncorrectDirichlet, "DIR"},
      {data::PriorKind::kIncorrectZipf, "ZIPF"},
      {data::PriorKind::kIncorrectExponential, "EXP"},
  };
  for (const auto& [variant, vname] : variants) {
    for (const auto& [kind, pname] : priors) {
      curves.push_back({std::string(vname) + " " + pname,
                        bench::MakeRsRfdFactory(variant, kind, ds,
                                                data::kAcsEmploymentN)});
    }
  }

  // NK model only (the paper's Fig. 17), s in {1, 3, 5}n.
  std::vector<bench::AifPanel> panels{
      {attack::AifModel::kNk, {{1.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}}}};
  bench::RunAifFigure("fig17_rsrfd_aif_incorrect", ds, curves, panels);
  return 0;
}
