// Future-work experiment (paper Section 8): re-identification risk of the
// SMP solution when attributes are sanitized with metric-LDP (d-privacy,
// truncated geometric mechanism) instead of eps-LDP protocols. Exact-match
// profiling succeeds far more often under metric-LDP at the same nominal
// eps — identity is exactly the kind of non-metric secret d-privacy does
// not protect — quantifying the risk the paper flags for this model.

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "fo/metric_ldp.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2023, bench::BenchScale());
  bench::PrintRunConfig("fw01_metric_ldp_reident", ds.n(), ds.d());
  std::printf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%\n",
              attack::BaselineRidAcc(1, ds.n()),
              attack::BaselineRidAcc(10, ds.n()));
  const int num_surveys = 5;
  const int runs = NumRuns();

  std::printf("\n## per-report attacker accuracy (uniform input), k = 74\n");
  std::printf("%-8s %12s %14s %12s\n", "epsilon", "metric-LDP", "mean |err|",
              "GRR");
  for (double eps : bench::EpsilonGrid()) {
    fo::MetricLdp m(74, eps);
    const double e = std::exp(eps);
    std::printf("%-8.1f %12.4f %14.3f %12.4f\n", eps, m.ExpectedAttackAcc(),
                m.ExpectedAttackDistance(), e / (e + 73.0));
  }

  std::printf("\n## SMP re-identification, metric-LDP channel, FK-RI\n");
  std::printf("%-8s", "epsilon");
  for (int k : {1, 10}) {
    for (int s = 2; s <= num_surveys; ++s) std::printf(" top%d_sv%d", k, s);
  }
  std::printf("\n");
  std::uint64_t seed = 90;
  for (double eps : bench::EpsilonGrid()) {
    std::vector<std::vector<double>> acc(num_surveys - 1,
                                         std::vector<double>(2, 0.0));
    for (int run = 0; run < runs; ++run) {
      Rng rng(++seed * 31337);
      attack::SurveyPlan plan =
          attack::MakeSurveyPlan(ds.d(), num_surveys, rng);
      auto channel = attack::MakeMetricLdpChannel(ds.domain_sizes(), eps);
      auto snapshots = attack::SimulateSmpProfiling(
          ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);
      std::vector<bool> bk(ds.d(), true);
      attack::ReidentConfig config;
      config.top_k = {1, 10};
      config.max_targets = ReidentTargets();
      for (int s = 2; s <= num_surveys; ++s) {
        auto result =
            attack::ReidentAccuracy(snapshots[s - 1], ds, bk, config, rng);
        acc[s - 2][0] += result.rid_acc_percent[0];
        acc[s - 2][1] += result.rid_acc_percent[1];
      }
    }
    std::printf("%-8.1f", eps);
    for (int ki = 0; ki < 2; ++ki) {
      for (int s = 2; s <= num_surveys; ++s) {
        std::printf(" %8.4f", acc[s - 2][ki] / runs);
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
