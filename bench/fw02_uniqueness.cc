// Future-work 2 (Section 8): formalizing re-identification risk as
//   predicted RID-ACC = (Eq. 4 profiling accuracy) x (expected top-k hit
//   given a correct profile, from the dataset's anonymity-set structure).
//
// Panel 1 prints the uniqueness curve of the Adult- and ACS-like populations
// (fraction of unique users and expected top-1/top-10 hit rate versus the
// number of profiled attributes) — the paper's "uniqueness of users with
// respect to the collected attributes". Panel 2 compares the closed-form
// prediction against the empirical SMP + FK-RI pipeline for GRR and OUE,
// showing the formula captures both the epsilon dependence and the
// protocol gap of Fig. 2.

#include <cstdio>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "attack/uniqueness.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset adult = data::AdultLike(41, bench::BenchScale());
  data::Dataset acs = data::AcsEmploymentLike(42, bench::BenchScale());
  bench::PrintRunConfig("fw02_uniqueness", adult.n(), adult.d());

  std::printf("# panel 1: uniqueness curves (8 random subsets per size)\n");
  std::printf("%-12s %-4s %10s %10s %10s\n", "dataset", "m", "unique",
              "E[top1]", "E[top10]");
  Rng rng(4242);
  const std::pair<const char*, const data::Dataset*> datasets[] = {
      {"Adult", &adult}, {"ACS", &acs}};
  for (const auto& [name, ds] : datasets) {
    for (const auto& point : attack::UniquenessCurve(*ds, 8, rng)) {
      std::printf("%-12s %-4d %10.4f %10.4f %10.4f\n", name,
                  point.num_attributes, point.unique_fraction,
                  point.expected_top1, point.expected_top10);
    }
  }

  std::printf(
      "\n# panel 2: predicted vs empirical RID-ACC(%%), Adult, 5 attrs, "
      "top-1\n");
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  std::printf("%-6s %14s %14s %14s %14s\n", "eps", "GRR_pred", "GRR_emp",
              "OUE_pred", "OUE_emp");
  for (double eps : bench::EpsilonGrid()) {
    double row[4] = {0, 0, 0, 0};
    int col = 0;
    for (fo::Protocol protocol : {fo::Protocol::kGrr, fo::Protocol::kOue}) {
      row[col++] = attack::PredictedRidAccPercent(adult, attrs, protocol, eps,
                                                  /*top_k=*/1);
      auto channel =
          attack::MakeLdpChannel(protocol, adult.domain_sizes(), eps);
      std::vector<attack::Profile> profiles(adult.n());
      for (int i = 0; i < adult.n(); ++i) {
        for (int j : attrs) {
          profiles[i].emplace_back(
              j, channel->ReportAndPredict(adult.value(i, j), j, rng));
        }
      }
      attack::ReidentConfig config;
      config.top_k = {1};
      std::vector<bool> bk(adult.d(), true);
      row[col++] = attack::ReidentAccuracy(profiles, adult, bk, config, rng)
                       .rid_acc_percent[0];
    }
    std::printf("%-6.1f %14.4f %14.4f %14.4f %14.4f\n", eps, row[0], row[1],
                row[2], row[3]);
    std::fflush(stdout);
  }
  return 0;
}
