// Future-work 3: realized privacy loss under sequential composition across
// surveys (Section 6's "the overall privacy loss is excessive when using
// high values for eps"). For d = 10 attributes at eps = 1 per survey, the
// table reports, versus the number of surveys: the closed-form and simulated
// mean per-user total for the uniform metric (fresh attribute every survey)
// and the non-uniform metric (with replacement + memoization), plus the mean
// worst-attribute exposure when the same surveys run under RS+FD (whose
// sampled-attribute randomizer uses the amplified budget).

#include <cstdio>

#include "bench/bench_util.h"
#include "multidim/amplification.h"
#include "privacy/accountant.h"

int main() {
  using namespace ldpr;
  const int d = 10;
  const double eps = 1.0;
  const int users = 20000;
  std::printf("# bench = fw03_privacy_loss\n");
  std::printf("# d = %d, eps = %.1f per survey, %d simulated users\n", d, eps,
              users);
  std::printf("# RS+FD per-survey amplified eps' = %.4f\n",
              multidim::AmplifiedEpsilon(eps, d));
  std::printf("%-9s %12s %12s %12s %12s %12s\n", "surveys", "uni_closed",
              "uni_sim", "nonuni_closed", "nonuni_sim", "nonuni_worst");

  Rng rng(31337);
  for (int surveys : {1, 2, 3, 5, 8, 10, 20, 50, 100}) {
    double uni_closed = 0.0, uni_sim = 0.0;
    if (surveys <= d) {
      uni_closed = privacy::ExpectedSmpTotalEpsilonUniform(d, surveys, eps);
      uni_sim = privacy::SimulateSmpLedgers(d, surveys, eps, false, users, rng)
                    .mean_total;
    }
    const double nonuni_closed =
        privacy::ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
    privacy::LedgerSummary nonuni =
        privacy::SimulateSmpLedgers(d, surveys, eps, true, users, rng);
    if (surveys <= d) {
      std::printf("%-9d %12.4f %12.4f %12.4f %12.4f %12.4f\n", surveys,
                  uni_closed, uni_sim, nonuni_closed, nonuni.mean_total,
                  nonuni.mean_worst_attribute);
    } else {
      std::printf("%-9d %12s %12s %12.4f %12.4f %12.4f\n", surveys, "-", "-",
                  nonuni_closed, nonuni.mean_total,
                  nonuni.mean_worst_attribute);
    }
  }
  return 0;
}
