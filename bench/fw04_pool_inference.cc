// Future-work 4: pool inference attack (Gadotti et al., USENIX Security '22;
// Section 7 related work). A user answers the same attribute across r
// collections without memoization, drawing each value from a personal pool;
// the exact Bayes attacker of attack/pool predicts the pool from the r
// sanitized reports. The table reports attacker accuracy versus r for all
// five oracles — echoing Gadotti's r in {7, 30, 90, 180} plus small r —
// at k = 16 with 4 pools (baseline 25%). Expected shape: every protocol
// leaks the pool as r grows, faster at larger eps; memoization (Section 6's
// recommendation) would cap the attack at the r = 1 column.

#include <cstdio>

#include "attack/pool.h"
#include "bench/bench_util.h"
#include "fo/factory.h"

int main() {
  using namespace ldpr;
  const int k = 16;
  const int num_pools = 4;
  const int users = 3000;
  std::printf("# bench = fw04_pool_inference\n");
  std::printf("# k = %d, %d contiguous pools, %d users, baseline = %.1f%%\n",
              k, num_pools, users, 100.0 / num_pools);
  const auto pools = attack::ContiguousPools(k, num_pools);
  const int report_counts[] = {1, 2, 7, 30, 90, 180};

  for (double eps : {1.0, 2.0, 4.0}) {
    std::printf("\n## eps = %.1f (attacker ACC %%)\n", eps);
    std::printf("%-9s", "reports");
    for (fo::Protocol p : fo::AllProtocols())
      std::printf(" %9s", fo::ProtocolName(p));
    std::printf("\n");
    Rng rng(9000 + static_cast<int>(eps * 10));
    for (int r : report_counts) {
      std::printf("%-9d", r);
      for (fo::Protocol protocol : fo::AllProtocols()) {
        auto oracle = fo::MakeOracle(protocol, k, eps);
        auto result =
            attack::SimulatePoolInference(*oracle, pools, users, r, rng);
        std::printf(" %9.2f", result.acc_percent);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}
