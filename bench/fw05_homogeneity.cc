// Future-work 5: the homogeneity attack on top-k anonymity sets that the
// paper's Fig. 2 analysis warns about ("although the user is not uniquely
// re-identified, this still represents a threat due to the possibility of
// performing, e.g., homogeneity attacks"). Quasi-identifier profiles are
// inferred from GRR/OUE SMP reports on the Adult-shaped population (one
// report per attribute, as after d surveys with the uniform metric); the
// attacker then majority-votes a held-out sensitive attribute inside each
// target's top-k shortlist. Columns: overall inference accuracy, accuracy
// on homogeneous shortlists only, and the fraction of homogeneous
// shortlists, versus eps and top-k. Baseline = predicting the sensitive
// attribute's global mode for everyone.

#include <cstdio>

#include "attack/homogeneity.h"
#include "attack/profiling.h"
#include "bench/bench_util.h"
#include "data/synthetic.h"

int main() {
  using namespace ldpr;
  data::Dataset ds = data::AdultLike(2024, bench::BenchScale());
  // Sensitive attribute: the last one (the Adult "salary" slot, k = 2).
  const int sensitive = ds.d() - 1;
  std::vector<int> quasi;
  for (int j = 0; j < ds.d(); ++j) {
    if (j != sensitive) quasi.push_back(j);
  }
  bench::PrintRunConfig("fw05_homogeneity", ds.n(), ds.d());

  const int runs = NumRuns();
  for (fo::Protocol protocol : {fo::Protocol::kGrr, fo::Protocol::kOue}) {
    std::printf("\n## protocol = %s, sensitive = %s (k=%d)\n",
                fo::ProtocolName(protocol),
                ds.attribute_name(sensitive).c_str(),
                ds.domain_size(sensitive));
    std::printf("%-6s %10s %10s %10s %10s %10s %10s %10s\n", "eps",
                "k5_acc", "k5_hom_acc", "k5_hom", "k10_acc", "k10_hom_acc",
                "k10_hom", "baseline");
    std::uint64_t seed = 3;
    for (double eps : bench::EpsilonGrid()) {
      double acc[2] = {0, 0}, hom_acc[2] = {0, 0}, hom[2] = {0, 0};
      double baseline = 0;
      for (int run = 0; run < runs; ++run) {
        Rng rng(++seed * 7001);
        auto channel =
            attack::MakeLdpChannel(protocol, ds.domain_sizes(), eps);
        std::vector<attack::Profile> profiles(ds.n());
        for (int i = 0; i < ds.n(); ++i) {
          for (int j : quasi) {
            profiles[i].emplace_back(
                j, channel->ReportAndPredict(ds.value(i, j), j, rng));
          }
        }
        std::vector<bool> bk(ds.d(), true);
        const int top_ks[2] = {5, 10};
        for (int ki = 0; ki < 2; ++ki) {
          attack::HomogeneityConfig config;
          config.top_k = top_ks[ki];
          config.max_targets = GetEnvInt("LDPR_REIDENT_TARGETS", 3000);
          attack::HomogeneityResult result = attack::HomogeneityAttack(
              profiles, ds, bk, sensitive, config, rng);
          acc[ki] += result.inference_acc_percent;
          hom_acc[ki] += result.homogeneous_inference_acc_percent;
          hom[ki] += 100.0 * result.homogeneous_fraction;
          baseline = result.baseline_percent;
        }
      }
      std::printf("%-6.1f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                  eps, acc[0] / runs, hom_acc[0] / runs, hom[0] / runs,
                  acc[1] / runs, hom_acc[1] / runs, hom[1] / runs, baseline);
      std::fflush(stdout);
    }
  }
  return 0;
}
