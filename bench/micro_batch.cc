// Microbenchmark (google-benchmark) for the batched randomize/aggregate
// pipeline: one full collection round (client randomization + server
// aggregation + Eq. 2 estimate) for n users at k = 100, measured four ways:
//
//   scalar      — the historical idiom: materialize a std::vector<Report>,
//                 then a second pass of AccumulateSupport + estimate.
//   streaming   — BatchRandomize into an Aggregator sink: same RNG stream,
//                 one reused scratch Report, no report vector.
//   fused       — Aggregator::AccumulateValue: same RNG stream, no Report
//                 at all.
//   closed_form — Aggregator::AccumulateHistogram: O(k) RNG draws for the
//                 whole batch (per-cell distribution-exact).
//
// The issue's acceptance bar — >= 3x batched-over-scalar throughput for
// OUE/SUE aggregation at n = 1M — is met by the closed_form path with orders
// of magnitude to spare; items_per_second makes the comparison direct.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "fo/factory.h"
#include "sim/engine.h"

namespace {

using namespace ldpr;

constexpr int kDomain = 100;

std::vector<int> MakeValues(long long n) {
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) {
    values[i] = static_cast<int>((i * 37 + i / 11) % kDomain);
  }
  return values;
}

void BM_CollectScalar(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  for (auto _ : state) {
    std::vector<fo::Report> reports;
    reports.reserve(n);
    for (int v : values) reports.push_back(oracle->Randomize(v, rng));
    std::vector<long long> counts(kDomain, 0);
    for (const fo::Report& r : reports) {
      oracle->AccumulateSupport(r, &counts);
    }
    auto est = oracle->EstimateFromCounts(counts, n);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CollectStreaming(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  for (auto _ : state) {
    auto agg = oracle->MakeAggregator();
    oracle->BatchRandomize(values, rng,
                           [&](const fo::Report& r) { agg->Accumulate(r); });
    auto est = agg->Estimate();
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CollectFused(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  for (auto _ : state) {
    auto agg = oracle->MakeAggregator();
    agg->AccumulateValues(values, rng);
    auto est = agg->Estimate();
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CollectClosedForm(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  for (auto _ : state) {
    // Histogramming the raw values is part of the measured work.
    std::vector<long long> hist(kDomain, 0);
    for (int v : values) ++hist[v];
    auto agg = oracle->MakeAggregator();
    agg->AccumulateHistogram(hist, rng);
    auto est = agg->Estimate();
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Aggregation only, reports pre-materialized: the historical scalar idiom
// (AccumulateSupport per report) against the staged batch path (Accumulate,
// which packs each report into a wire-image block and decodes kBlockRows at
// a time through the same AccumulateWireBlock kernels the serve path uses).
// Client randomization is outside the timed region, so this isolates what
// staging buys on the non-wire path: for the UE family the SWAR column sums
// dwarf the pack cost (order-of-magnitude over per-bit AccumulateSupport);
// for SS and OLH the block kernels do positional field work the scalar walk
// already does cheaply, so the wire-image round trip is the measured price
// of routing every path through one set of pinned kernels.
void BM_AggregateScalar(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  std::vector<fo::Report> reports;
  reports.reserve(n);
  for (int v : values) reports.push_back(oracle->Randomize(v, rng));
  for (auto _ : state) {
    std::vector<long long> counts(kDomain, 0);
    for (const fo::Report& r : reports) {
      oracle->AccumulateSupport(r, &counts);
    }
    auto est = oracle->EstimateFromCounts(counts, n);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_AggregateBlock(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng rng(1);
  std::vector<fo::Report> reports;
  reports.reserve(n);
  for (int v : values) reports.push_back(oracle->Randomize(v, rng));
  for (auto _ : state) {
    auto agg = oracle->MakeAggregator();
    for (const fo::Report& r : reports) agg->Accumulate(r);
    auto est = agg->Estimate();
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SimRunCollection(benchmark::State& state, sim::Mode mode) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng root(1);
  for (auto _ : state) {
    sim::Options options;
    options.mode = mode;
    auto result = sim::RunCollection(*oracle, values, root, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

// The issue's acceptance pair: OUE and SUE at n = 1M, k = 100.
BENCHMARK_CAPTURE(BM_CollectScalar, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectStreaming, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectFused, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectClosedForm, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectScalar, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectStreaming, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectFused, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectClosedForm, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

// The other three protocols at a smaller n, for the full picture.
BENCHMARK_CAPTURE(BM_CollectScalar, grr, fo::Protocol::kGrr)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_CollectFused, grr, fo::Protocol::kGrr)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_CollectClosedForm, grr, fo::Protocol::kGrr)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_CollectScalar, olh, fo::Protocol::kOlh)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CollectFused, olh, fo::Protocol::kOlh)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CollectClosedForm, olh, fo::Protocol::kOlh)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_CollectScalar, ss, fo::Protocol::kSs)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_CollectFused, ss, fo::Protocol::kSs)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_CollectClosedForm, ss, fo::Protocol::kSs)->Arg(1 << 18);

// Block vs scalar on the batch (non-wire) path: same pre-materialized
// reports, staged-block Accumulate against per-report AccumulateSupport.
BENCHMARK_CAPTURE(BM_AggregateScalar, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AggregateBlock, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AggregateScalar, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AggregateBlock, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_AggregateScalar, ss, fo::Protocol::kSs)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_AggregateBlock, ss, fo::Protocol::kSs)->Arg(1 << 18);
BENCHMARK_CAPTURE(BM_AggregateScalar, olh, fo::Protocol::kOlh)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_AggregateBlock, olh, fo::Protocol::kOlh)->Arg(1 << 16);

// The whole engine, sharded across LDPR_THREADS workers.
BENCHMARK_CAPTURE(BM_SimRunCollection, streaming, sim::Mode::kStreaming)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimRunCollection, closed_form, sim::Mode::kClosedForm)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
