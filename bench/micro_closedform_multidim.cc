// Microbenchmark (google-benchmark) for the closed-form multidimensional
// estimation path behind the fast profile: one full collection round
// (client randomization + server aggregation + estimate) for n users over a
// mixed-k attribute profile, measured two ways per solution:
//
//   streaming    — the legacy-exact path: per-user fused
//                  StreamAggregator accumulation (no Report vectors), the
//                  same work RunMultidim shards across threads.
//   closed_form  — multidim::EstimateClosedForm over hoisted per-attribute
//                  histograms: O(sum_j k_j) RNG draws per round regardless
//                  of n (the per-round cost the fast profile pays inside a
//                  grid cell; the one-off histogram build is amortized like
//                  the scenarios amortize it).
//
// The CI benchmark-regression gate tracks both this binary and micro_batch
// (tools/check_bench_regression.py against tools/bench_baseline.json).

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/closed_form.h"
#include "multidim/numeric.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"

namespace {

using namespace ldpr;

// ACS-like mixed attribute profile: small binary attributes up to the
// k = 92 tail that dominates UE payload cost.
const std::vector<int>& DomainSizes() {
  static const std::vector<int> k = {2, 4, 8, 16, 32, 92};
  return k;
}

std::vector<std::vector<int>> MakeRecords(long long n) {
  const auto& k = DomainSizes();
  std::vector<std::vector<int>> records(n, std::vector<int>(k.size()));
  for (long long i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k.size(); ++j) {
      records[i][j] = static_cast<int>((i * 31 + j * 17 + i / 7) % k[j]);
    }
  }
  return records;
}

multidim::AttributeHistograms MakeHistograms(
    const std::vector<std::vector<int>>& records) {
  const auto& k = DomainSizes();
  multidim::AttributeHistograms hists(k.size());
  for (std::size_t j = 0; j < k.size(); ++j) hists[j].assign(k[j], 0);
  for (const auto& record : records) {
    for (std::size_t j = 0; j < k.size(); ++j) ++hists[j][record[j]];
  }
  return hists;
}

std::vector<std::vector<double>> MakePriors() {
  // Mildly skewed priors for the RS+RFD benchmarks.
  std::vector<std::vector<double>> priors;
  for (int k : DomainSizes()) {
    std::vector<double> p(k);
    for (int v = 0; v < k; ++v) p[v] = 1.0 + (v % 3);
    priors.push_back(p);
  }
  return priors;
}

template <typename Solution>
void StreamingRound(const Solution& solution,
                    const std::vector<std::vector<int>>& records, Rng& rng) {
  typename Solution::StreamAggregator agg(solution);
  for (const auto& record : records) agg.AccumulateRecord(record, rng);
  auto est = agg.Estimate();
  benchmark::DoNotOptimize(est);
}

template <typename Solution>
void ClosedFormRound(const Solution& solution,
                     const multidim::AttributeHistograms& hists, long long n,
                     Rng& rng) {
  auto est = multidim::EstimateClosedForm(solution, hists, n, rng);
  benchmark::DoNotOptimize(est);
}

template <typename MakeSolution>
void BM_Streaming(benchmark::State& state, MakeSolution make) {
  const long long n = state.range(0);
  const auto records = MakeRecords(n);
  const auto solution = make();
  Rng rng(1);
  for (auto _ : state) StreamingRound(solution, records, rng);
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename MakeSolution>
void BM_ClosedForm(benchmark::State& state, MakeSolution make) {
  const long long n = state.range(0);
  const auto hists = MakeHistograms(MakeRecords(n));
  const auto solution = make();
  Rng rng(1);
  for (auto _ : state) ClosedFormRound(solution, hists, n, rng);
  state.SetItemsProcessed(state.iterations() * n);
}

auto MakeRsFdGrr() {
  return multidim::RsFd(multidim::RsFdVariant::kGrr, DomainSizes(), 1.0);
}
auto MakeRsFdOueR() {
  return multidim::RsFd(multidim::RsFdVariant::kOueR, DomainSizes(), 1.0);
}
auto MakeRsRfdGrr() {
  return multidim::RsRfd(multidim::RsRfdVariant::kGrr, DomainSizes(), 1.0,
                         MakePriors());
}
auto MakeSmpOue() {
  return multidim::Smp(fo::Protocol::kOue, DomainSizes(), 1.0);
}
auto MakeSplGrr() {
  return multidim::Spl(fo::Protocol::kGrr, DomainSizes(), 1.0);
}

void BM_NumericMean(benchmark::State& state, bool closed_form,
                    multidim::NumericMechanism mechanism) {
  const long long n = state.range(0);
  const int d = 8;
  const multidim::NumericLdp mech(mechanism, 1.0, 64);
  std::vector<std::vector<double>> columns(d);
  std::vector<std::vector<long long>> hists(d);
  for (int j = 0; j < d; ++j) {
    columns[j].resize(n);
    hists[j].assign(64, 0);
    for (long long i = 0; i < n; ++i) {
      const int g = static_cast<int>((i * 13 + j * 29) % 64);
      columns[j][i] = mech.GridValue(g);
      ++hists[j][g];
    }
  }
  Rng rng(1);
  for (auto _ : state) {
    auto est = closed_form
                   ? multidim::EstimateNumericMeansClosedForm(mech, hists, rng)
                   : multidim::EstimateNumericMeans(mech, columns, rng);
    benchmark::DoNotOptimize(est);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

// One full round at n = 1M per solution, both paths; items_per_second makes
// the speedup direct.
#define LDPR_BENCH_PAIR(name, maker)                                       \
  BENCHMARK_CAPTURE(BM_Streaming, name, maker)                             \
      ->Arg(1 << 20)                                                       \
      ->Unit(benchmark::kMillisecond);                                     \
  BENCHMARK_CAPTURE(BM_ClosedForm, name, maker)                            \
      ->Arg(1 << 20)                                                       \
      ->Unit(benchmark::kMillisecond)

LDPR_BENCH_PAIR(rsfd_grr, MakeRsFdGrr);
LDPR_BENCH_PAIR(rsfd_ouer, MakeRsFdOueR);
LDPR_BENCH_PAIR(rsrfd_grr, MakeRsRfdGrr);
LDPR_BENCH_PAIR(smp_oue, MakeSmpOue);
LDPR_BENCH_PAIR(spl_grr, MakeSplGrr);

BENCHMARK_CAPTURE(BM_NumericMean, duchi_per_user, false,
                  multidim::NumericMechanism::kDuchi)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NumericMean, duchi_closed_form, true,
                  multidim::NumericMechanism::kDuchi)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NumericMean, pm_per_user, false,
                  multidim::NumericMechanism::kPiecewise)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NumericMean, pm_closed_form, true,
                  multidim::NumericMechanism::kPiecewise)
    ->Arg(1 << 20)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
