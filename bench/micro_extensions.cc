// Microbenchmarks (google-benchmark) for the extension subsystems: the wire
// codec round-trip per protocol, the pool-inference posterior update, the
// naive-Bayes trainer/predictor, the uniqueness profiler and the ledger
// simulation. Throughput baselines, not paper figures.

#include <benchmark/benchmark.h>

#include "attack/pool.h"
#include "attack/uniqueness.h"
#include "core/rng.h"
#include "data/synthetic.h"
#include "fo/factory.h"
#include "fo/wire.h"
#include "ml/naive_bayes.h"
#include "privacy/accountant.h"

namespace {

using namespace ldpr;

void BM_WireRoundTrip(benchmark::State& state, fo::Protocol protocol) {
  const int k = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(protocol, k, 1.0);
  Rng rng(1);
  fo::Report report = oracle->Randomize(0, rng);
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes = fo::SerializeReport(*oracle, report);
    fo::Report decoded = fo::DeserializeReport(*oracle, bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK_CAPTURE(BM_WireRoundTrip, grr, fo::Protocol::kGrr)->Arg(74);
BENCHMARK_CAPTURE(BM_WireRoundTrip, olh, fo::Protocol::kOlh)->Arg(74);
BENCHMARK_CAPTURE(BM_WireRoundTrip, ss, fo::Protocol::kSs)->Arg(74);
BENCHMARK_CAPTURE(BM_WireRoundTrip, oue, fo::Protocol::kOue)->Arg(74);

void BM_PoolPosterior(benchmark::State& state) {
  const int k = 16;
  const int reports = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, k, 2.0);
  attack::PoolInferenceAttacker attacker(*oracle,
                                         attack::ContiguousPools(k, 4));
  Rng rng(2);
  std::vector<fo::Report> history;
  for (int t = 0; t < reports; ++t) {
    history.push_back(oracle->Randomize(t % 4, rng));
  }
  for (auto _ : state) {
    auto posterior = attacker.Posterior(history);
    benchmark::DoNotOptimize(posterior);
  }
}
BENCHMARK(BM_PoolPosterior)->Arg(1)->Arg(30)->Arg(180);

void BM_NaiveBayesTrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    std::vector<int> row(18);
    for (int& f : row) f = static_cast<int>(rng.UniformInt(16));
    rows.push_back(std::move(row));
    labels.push_back(static_cast<int>(rng.UniformInt(18)));
  }
  for (auto _ : state) {
    ml::NaiveBayes model;
    model.Train(rows, labels, 18);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_NaiveBayesTrain)->Arg(2000)->Arg(10000);

void BM_UniquenessProfile(benchmark::State& state) {
  data::Dataset ds = data::AdultLike(4, 0.2);
  for (auto _ : state) {
    attack::UniquenessProfile profile = attack::ComputeUniqueness(ds);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_UniquenessProfile);

void BM_LedgerSimulation(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    auto summary =
        privacy::SimulateSmpLedgers(10, 12, 1.0, true, 1000, rng);
    benchmark::DoNotOptimize(summary);
  }
}
BENCHMARK(BM_LedgerSimulation);

}  // namespace

BENCHMARK_MAIN();
