// Microbenchmarks (google-benchmark) for the library's hot paths: client
// randomization, server support accumulation and the single-report attack
// for each frequency oracle, plus the RS+FD / RS+RFD clients and the GBDT
// trainer. These are throughput baselines, not paper figures.

#include <benchmark/benchmark.h>

#include "core/rng.h"
#include "core/sampling.h"
#include "fo/factory.h"
#include "ml/gbdt.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace {

using namespace ldpr;

void BM_Randomize(benchmark::State& state, fo::Protocol protocol) {
  const int k = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(protocol, k, 1.0);
  Rng rng(1);
  int v = 0;
  for (auto _ : state) {
    fo::Report r = oracle->Randomize(v, rng);
    benchmark::DoNotOptimize(r);
    v = (v + 1) % k;
  }
}

void BM_RandomizeAndSupport(benchmark::State& state, fo::Protocol protocol) {
  const int k = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(protocol, k, 1.0);
  Rng rng(2);
  std::vector<long long> counts(k, 0);
  int v = 0;
  for (auto _ : state) {
    fo::Report r = oracle->Randomize(v, rng);
    oracle->AccumulateSupport(r, &counts);
    v = (v + 1) % k;
  }
  benchmark::DoNotOptimize(counts);
}

// The batched engine's fused client+server path (no Report materialized);
// compare against BM_RandomizeAndSupport at the same k.
void BM_FusedAggregate(benchmark::State& state, fo::Protocol protocol) {
  const int k = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(protocol, k, 1.0);
  auto agg = oracle->MakeAggregator();
  Rng rng(2);
  int v = 0;
  for (auto _ : state) {
    agg->AccumulateValue(v, rng);
    v = (v + 1) % k;
  }
  benchmark::DoNotOptimize(agg->counts().data());
}

void BM_Attack(benchmark::State& state, fo::Protocol protocol) {
  const int k = static_cast<int>(state.range(0));
  auto oracle = fo::MakeOracle(protocol, k, 1.0);
  Rng rng(3);
  std::vector<fo::Report> reports;
  for (int i = 0; i < 256; ++i) {
    reports.push_back(oracle->Randomize(i % k, rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle->AttackPredict(reports[i++ % reports.size()], rng));
  }
}

void BM_RsFdClient(benchmark::State& state) {
  const std::vector<int> k{74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  multidim::RsFd protocol(multidim::RsFdVariant::kGrr, k, 1.0);
  Rng rng(4);
  std::vector<int> record(k.size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.RandomizeUser(record, rng));
  }
}

void BM_RsRfdClient(benchmark::State& state) {
  const std::vector<int> k{74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  std::vector<std::vector<double>> priors;
  for (int kj : k) priors.push_back(ZipfDistribution(kj, 1.2));
  multidim::RsRfd protocol(multidim::RsRfdVariant::kGrr, k, 1.0, priors);
  Rng rng(5);
  std::vector<int> record(k.size(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.RandomizeUser(record, rng));
  }
}

void BM_GbdtTrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<int>> rows(n, std::vector<int>(10));
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    for (int f = 0; f < 10; ++f) {
      rows[i][f] = static_cast<int>(rng.UniformInt(8));
    }
    labels[i] = rows[i][0] % 4;
  }
  ml::GbdtConfig config;
  config.num_rounds = 5;
  config.max_depth = 4;
  for (auto _ : state) {
    ml::Gbdt model;
    model.Train(rows, labels, 4, config, rng);
    benchmark::DoNotOptimize(model);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Randomize, grr, fo::Protocol::kGrr)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_Randomize, olh, fo::Protocol::kOlh)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_Randomize, ss, fo::Protocol::kSs)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_Randomize, sue, fo::Protocol::kSue)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_Randomize, oue, fo::Protocol::kOue)->Arg(16)->Arg(256);
BENCHMARK_CAPTURE(BM_RandomizeAndSupport, grr, fo::Protocol::kGrr)->Arg(64);
BENCHMARK_CAPTURE(BM_RandomizeAndSupport, olh, fo::Protocol::kOlh)->Arg(64);
BENCHMARK_CAPTURE(BM_RandomizeAndSupport, oue, fo::Protocol::kOue)->Arg(64);
BENCHMARK_CAPTURE(BM_FusedAggregate, grr, fo::Protocol::kGrr)->Arg(64);
BENCHMARK_CAPTURE(BM_FusedAggregate, olh, fo::Protocol::kOlh)->Arg(64);
BENCHMARK_CAPTURE(BM_FusedAggregate, ss, fo::Protocol::kSs)->Arg(64);
BENCHMARK_CAPTURE(BM_FusedAggregate, sue, fo::Protocol::kSue)->Arg(64);
BENCHMARK_CAPTURE(BM_FusedAggregate, oue, fo::Protocol::kOue)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack, grr, fo::Protocol::kGrr)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack, olh, fo::Protocol::kOlh)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack, sue, fo::Protocol::kSue)->Arg(64);
BENCHMARK(BM_RsFdClient);
BENCHMARK(BM_RsRfdClient);
BENCHMARK(BM_GbdtTrain)->Arg(2000);

BENCHMARK_MAIN();
