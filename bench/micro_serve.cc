// Microbenchmark (google-benchmark) for the streaming collection service:
// end-to-end ingest throughput of wire-encoded reports through a Collector
// lane (decode + validate + accumulate), the epoch seal cost, and the load
// generator's encode rate.
//
// The issue's acceptance bar: >= 1M wire-decoded reports ingested per second
// per core for GRR and OUE at k = 100 (items_per_second of
// BM_ServeIngest/grr and /oue; all five protocols are reported). OLH pays
// its k universal-hash evaluations per report server-side, SS its omega
// tallies — the same asymmetry the comm-cost model prices client-side.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "core/rng.h"
#include "fo/factory.h"
#include "obs/metrics.h"
#include "serve/collector.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"
#include "serve/server.h"

namespace {

using namespace ldpr;

constexpr int kDomain = 100;

std::vector<int> MakeValues(long long n) {
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) {
    values[i] = static_cast<int>((i * 37 + i / 11) % kDomain);
  }
  return values;
}

serve::EncodedStream MakeStream(const fo::FrequencyOracle& oracle,
                                long long n) {
  Rng root(1);
  sim::Options options;
  options.threads = 1;  // encode single-threaded: the bench measures ingest
  return serve::EncodeScalarLoad(oracle, MakeValues(n), root, options);
}

// One core, one lane: pure decode-and-accumulate throughput.
void BM_ServeIngest(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, n);
  serve::Collector collector(*oracle, serve::CollectorOptions{.lanes = 1});
  for (auto _ : state) {
    for (long long i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(collector.Ingest(
          serve::IngestRequest{{stream.frame(i), stream.frame_bytes}}));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(stream.bytes.size()));
  benchmark::DoNotOptimize(collector.Drain());
}

// Multi-producer aggregate ingest: `producers` real threads, each pinned to
// its own lane (lanes == producers, IngestStream's shard -> lane mapping),
// so every thread runs the one-lane decode loop with zero lock contention
// and cache-line-isolated lane state. items_per_second is the AGGREGATE
// decoded rate across all producers; `producers` and `scaling_eff` (aggregate
// rate / producers, i.e. per-producer rate — divide by the /1 run's rate for
// parallel efficiency) are exported as counters. On a multi-core host the
// /8 run must clear 6x the /1 run for GRR and OUE (the issue's bar); on
// fewer cores than producers the threads time-share and efficiency degrades
// gracefully without affecting correctness (snapshots stay bit-identical).
// The `telemetry` variants (grr_obs / oue_obs) run the identical workload
// with a live MetricsRegistry attached — the on/off pair that proves the
// instrumentation stays off the per-report fast path (gate: on >= off /
// 1.05 in items_per_second, tools/check_bench_regression.py --pair).
void BM_ServeIngestMT(benchmark::State& state, fo::Protocol protocol,
                      bool telemetry) {
  const int producers = static_cast<int>(state.range(0));
  const long long n = 1 << 18;
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, n);
  obs::MetricsRegistry registry;
  serve::CollectorOptions options;
  options.lanes = producers;
  if (telemetry) options.metrics = &registry;
  serve::Collector collector(*oracle, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::IngestStream(collector, stream, producers));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["producers"] = producers;
  state.counters["scaling_eff"] = benchmark::Counter(
      static_cast<double>(state.iterations() * n) / producers,
      benchmark::Counter::kIsRate);
  if (telemetry) benchmark::DoNotOptimize(registry.RenderPrometheus());
  benchmark::DoNotOptimize(collector.Drain());
}

// Full epoch round trip: open, ingest the stream, seal (merge + estimate +
// consistency post-processing).
void BM_ServeEpochRoundTrip(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, n);
  serve::EpochManager manager(*oracle, serve::CollectorOptions{.lanes = 8});
  // collector() is only reachable while an epoch is open: seal an empty
  // epoch up front to read the resolved lane count.
  manager.OpenEpoch();
  const int lanes = manager.collector().lanes();
  benchmark::DoNotOptimize(manager.Seal());
  for (auto _ : state) {
    manager.OpenEpoch();
    for (long long i = 0; i < n; ++i) {
      manager.collector().Ingest(serve::IngestRequest{
          {stream.frame(i), stream.frame_bytes},
          std::nullopt,
          static_cast<int>(i % lanes)});
    }
    benchmark::DoNotOptimize(manager.Seal());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Seal alone: O(lanes * k) regardless of the reports ingested — the cost of
// snapshotting a live epoch.
void BM_ServeSeal(benchmark::State& state) {
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, 1 << 12);
  serve::EpochManager manager(*oracle, serve::CollectorOptions{.lanes = 8});
  manager.OpenEpoch();
  const int lanes = manager.collector().lanes();
  benchmark::DoNotOptimize(manager.Seal());
  for (auto _ : state) {
    state.PauseTiming();
    manager.OpenEpoch();
    for (long long i = 0; i < stream.count; ++i) {
      manager.collector().Ingest(serve::IngestRequest{
          {stream.frame(i), stream.frame_bytes},
          std::nullopt,
          static_cast<int>(i % lanes)});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(manager.Seal());
  }
}

// Longitudinal ingest: the per-report overhead the replay classification
// adds on top of decode-and-accumulate (frame hash + sharded per-user
// lookup), plus the seal's ledger merge and window-delta update. Both
// classification paths are exercised: the first iteration classifies every
// frame fresh, later iterations replay them all.
void BM_LongitudinalIngest(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, n);
  serve::LongitudinalOptions options;
  options.collector.lanes = 1;
  options.schedule = serve::EpochSchedule::Sliding(3);
  options.history_cap = 4;  // benchmark iterations must not accumulate state
  serve::LongitudinalCollector collector(*oracle, options);
  for (auto _ : state) {
    collector.OpenEpoch();
    for (long long i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(collector.Ingest(
          serve::IngestRequest{{stream.frame(i), stream.frame_bytes}, i}));
    }
    benchmark::DoNotOptimize(collector.Seal());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<long long>(stream.bytes.size()));
}

// The network front door end to end: an IngestServer listening on a
// Unix-domain socket, LoadGen socket clients streaming framed wire records
// at it, one connection per client. Measures decoded reports/s through the
// full accept -> read -> frame -> validate -> stage pipeline (the issue's
// bar: >= 1M decoded reports/s per core over UDS). The client threads
// time-share the core with the loop thread on small hosts, so this is a
// strict lower bound on the server-side rate.
// As with BM_ServeIngestMT, the `telemetry` variants attach a registry to
// both the collector and the server (connection lifecycle + rejects scrape
// callback, pause histogram) — the ISSUE's non-negotiable: within 3% of the
// off run.
void BM_ServeSocketIngest(benchmark::State& state, fo::Protocol protocol,
                          bool telemetry) {
  const int connections = static_cast<int>(state.range(0));
  const long long n = 1 << 18;
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const serve::EncodedStream stream = MakeStream(*oracle, n);
  obs::MetricsRegistry registry;
  serve::CollectorOptions collector_options;
  collector_options.lanes = std::max(connections, 1);
  if (telemetry) collector_options.metrics = &registry;
  serve::Collector collector(*oracle, collector_options);
  // Pre-frame each connection's slice once; the timed region is pure
  // socket + server work.
  std::vector<std::vector<std::uint8_t>> slices;
  const long long per = n / connections;
  for (int c = 0; c < connections; ++c) {
    slices.push_back(serve::FrameStreamRecords(
        stream, c * per, (c + 1) * per, /*first_user=*/std::nullopt));
  }
  char path[64];
  std::snprintf(path, sizeof(path), "/tmp/ldpr_bench_%d.sock",
                static_cast<int>(::getpid()));
  serve::ServerOptions options;
  options.uds_path = path;
  if (telemetry) options.metrics = &registry;
  serve::IngestServer server(collector, options);
  server.Start();
  long long sent = 0;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    for (int c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        serve::SendOverUds(server.uds_path(), slices[c]);
      });
    }
    for (auto& t : clients) t.join();
    sent += per * connections;
    // The timed region must include the server draining its sockets: spin
    // until every sent report is decoded (EOF closes lag the last read).
    while (server.counters().sessions.ingest.reports < sent) {
      std::this_thread::yield();
    }
  }
  state.SetItemsProcessed(state.iterations() * per * connections);
  state.counters["connections"] = connections;
  server.Stop();
  if (telemetry) benchmark::DoNotOptimize(registry.RenderPrometheus());
  benchmark::DoNotOptimize(collector.Drain());
}

// Client side of the pipeline: randomize + serialize (the load generator's
// per-producer work).
void BM_ServeEncode(benchmark::State& state, fo::Protocol protocol) {
  const long long n = state.range(0);
  auto oracle = fo::MakeOracle(protocol, kDomain, 1.0);
  const std::vector<int> values = MakeValues(n);
  Rng root(1);
  sim::Options options;
  options.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serve::EncodeScalarLoad(*oracle, values, root, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

// The acceptance pair at full width: GRR and OUE, k = 100, n = 1M.
BENCHMARK_CAPTURE(BM_ServeIngest, grr, fo::Protocol::kGrr)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServeIngest, oue, fo::Protocol::kOue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServeIngest, sue, fo::Protocol::kSue)->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
// OLH ingests k hash evaluations per report, SS omega tallies: smaller n
// keeps the suite quick while items_per_second stays comparable.
BENCHMARK_CAPTURE(BM_ServeIngest, ss, fo::Protocol::kSs)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServeIngest, olh, fo::Protocol::kOlh)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

// Scaling sweep: 1/2/4/8 producers over disjoint lanes. The /1 runs measure
// the same work as BM_ServeIngest through the fan-out harness (its overhead
// is one thread handoff per iteration).
BENCHMARK_CAPTURE(BM_ServeIngestMT, grr, fo::Protocol::kGrr, false)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeIngestMT, oue, fo::Protocol::kOue, false)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeIngestMT, ss, fo::Protocol::kSs, false)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeIngestMT, olh, fo::Protocol::kOlh, false)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Telemetry-on halves of the on/off pairs (same workload, registry
// attached). Gated against their off twins by items_per_second, not
// cpu_time: the socket benches run UseRealTime with client threads.
BENCHMARK_CAPTURE(BM_ServeIngestMT, grr_obs, fo::Protocol::kGrr, true)
    ->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeIngestMT, oue_obs, fo::Protocol::kOue, true)
    ->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_CAPTURE(BM_ServeEpochRoundTrip, grr, fo::Protocol::kGrr)
    ->Arg(1 << 18)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServeEpochRoundTrip, oue, fo::Protocol::kOue)
    ->Arg(1 << 18)->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ServeSeal)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_LongitudinalIngest, grr, fo::Protocol::kGrr)
    ->Arg(1 << 17)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LongitudinalIngest, oue, fo::Protocol::kOue)
    ->Arg(1 << 17)->Unit(benchmark::kMillisecond);

// Socket ingest over UDS: 1 connection (the per-core bar) and 4 (fan-in),
// plus the telemetry-on twins of the /1 runs.
BENCHMARK_CAPTURE(BM_ServeSocketIngest, grr, fo::Protocol::kGrr, false)
    ->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeSocketIngest, oue, fo::Protocol::kOue, false)
    ->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeSocketIngest, grr_obs, fo::Protocol::kGrr, true)
    ->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeSocketIngest, oue_obs, fo::Protocol::kOue, true)
    ->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

BENCHMARK_CAPTURE(BM_ServeEncode, grr, fo::Protocol::kGrr)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ServeEncode, oue, fo::Protocol::kOue)->Arg(1 << 16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
