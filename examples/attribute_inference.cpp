// Attribute-inference attack demo (Sections 3.3, 4.3 and 5.2.3): RS+FD hides
// which attribute a user actually reported behind uniform fake data, but a
// classifier trained on synthetic profiles (NK model) can still uncover it.
// RS+RFD's realistic fakes push the attacker back to the baseline.
//
// Run:  ./attribute_inference [epsilon]

#include <cstdio>
#include <cstdlib>

#include "attack/aif.h"
#include "core/rng.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace {

ldpr::attack::AifConfig NkConfig() {
  ldpr::attack::AifConfig config;
  config.model = ldpr::attack::AifModel::kNk;
  config.synthetic_multiplier = 1.0;
  config.gbdt.num_rounds = 10;
  config.gbdt.max_depth = 4;
  return config;
}

template <typename Solution>
ldpr::attack::AifResult Attack(const ldpr::data::Dataset& ds,
                               const Solution& solution, ldpr::Rng& rng) {
  ldpr::attack::MultidimClient client =
      [&solution](const std::vector<int>& rec, ldpr::Rng& r) {
        return solution.RandomizeUser(rec, r);
      };
  ldpr::attack::MultidimEstimator estimator =
      [&solution](const std::vector<ldpr::multidim::MultidimReport>& reps) {
        return solution.Estimate(reps);
      };
  return ldpr::attack::RunAifAttack(ds, client, estimator, NkConfig(), rng);
}

}  // namespace

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 8.0;
  ldpr::Rng rng(23);

  ldpr::data::Dataset ds = ldpr::data::AcsEmploymentLike(7, 0.5);
  std::printf("ACSEmployment-like census: n=%d users, d=%d attributes\n",
              ds.n(), ds.d());
  std::printf("epsilon=%.2f, NK attack model (s = 1n synthetic profiles)\n\n",
              epsilon);
  std::printf("%-22s %16s\n", "solution", "AIF-ACC(%)");
  std::printf("%-22s %16.2f\n", "random-guess baseline", 100.0 / ds.d());

  {
    ldpr::multidim::RsFd rsfd(ldpr::multidim::RsFdVariant::kSueZ,
                              ds.domain_sizes(), epsilon);
    std::printf("%-22s %16.2f   <- zero-vector fakes: do not use\n",
                "RS+FD[SUE-z]", Attack(ds, rsfd, rng).aif_acc_percent);
  }
  {
    ldpr::multidim::RsFd rsfd(ldpr::multidim::RsFdVariant::kGrr,
                              ds.domain_sizes(), epsilon);
    std::printf("%-22s %16.2f\n", "RS+FD[GRR]",
                Attack(ds, rsfd, rng).aif_acc_percent);
  }
  {
    auto priors = ldpr::data::BuildPriors(
        ds, ldpr::data::PriorKind::kCorrectLaplace, rng,
        /*total_central_eps=*/0.1, ldpr::data::kAcsEmploymentN);
    ldpr::multidim::RsRfd rsrfd(ldpr::multidim::RsRfdVariant::kGrr,
                                ds.domain_sizes(), epsilon, priors);
    std::printf("%-22s %16.2f   <- the countermeasure\n", "RS+RFD[GRR]",
                Attack(ds, rsrfd, rng).aif_acc_percent);
  }

  std::printf(
      "\nExpected: RS+FD[SUE-z] >> RS+FD[GRR] >> RS+RFD[GRR] ~ baseline.\n");
  return 0;
}
