// Countermeasure walkthrough (Section 5): the same population is collected
// with RS+FD (uniform fake data, Arcolezi et al. CIKM '21) and with this
// paper's RS+RFD (realistic fake data from priors). Both sides of the
// trade-off are measured:
//   1. utility  — averaged MSE of the multidimensional frequency estimates;
//   2. privacy  — accuracy of the NK sampled-attribute inference attack
//                 (Section 3.3.1, GBDT classifier on synthetic profiles).
// RS+RFD should win on both: fake data drawn from realistic priors also
// carries signal for estimation, and it is indistinguishable from sanitized
// real values to the classifier.
//
// Run:  ./countermeasure [epsilon]

#include <cstdio>
#include <cstdlib>

#include "attack/aif.h"
#include "core/metrics.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

int main(int argc, char** argv) {
  using namespace ldpr;
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 4.0;
  Rng rng(7);

  // An ACSEmployment-shaped population at the paper's full scale (n=10336).
  data::Dataset ds = data::AcsEmploymentLike(/*seed=*/2023, /*scale=*/1.0);
  std::printf("Countermeasure demo: n=%d users, d=%d attributes, eps=%.2f\n\n",
              ds.n(), ds.d(), epsilon);

  // The server publishes last year's Census marginals as priors; we model
  // them as Laplace(eps=0.1 central DP)-perturbed truth ("Correct" priors).
  auto priors = data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng);

  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), epsilon);
  multidim::RsRfd rsrfd(multidim::RsRfdVariant::kGrr, ds.domain_sizes(),
                        epsilon, priors);

  // --- Utility: everyone reports once; the server estimates all marginals.
  std::vector<multidim::MultidimReport> fd_reports, rfd_reports;
  for (int i = 0; i < ds.n(); ++i) {
    fd_reports.push_back(rsfd.RandomizeUser(ds.Record(i), rng));
    rfd_reports.push_back(rsrfd.RandomizeUser(ds.Record(i), rng));
  }
  const auto truth = ds.Marginals();
  std::printf("Utility (averaged MSE, lower is better):\n");
  std::printf("  RS+FD [GRR] : %.3e\n",
              MseAvg(truth, rsfd.Estimate(fd_reports)));
  std::printf("  RS+RFD[GRR] : %.3e\n\n",
              MseAvg(truth, rsrfd.Estimate(rfd_reports)));

  // --- Privacy: the NK attacker tries to uncover the sampled attribute.
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.synthetic_multiplier = 1.0;
  config.gbdt.num_rounds = 8;
  config.gbdt.max_depth = 4;

  auto fd_client = [&](const std::vector<int>& record, Rng& r) {
    return rsfd.RandomizeUser(record, r);
  };
  auto fd_estimator = [&](const std::vector<multidim::MultidimReport>& reps) {
    return rsfd.Estimate(reps);
  };
  auto rfd_client = [&](const std::vector<int>& record, Rng& r) {
    return rsrfd.RandomizeUser(record, r);
  };
  auto rfd_estimator = [&](const std::vector<multidim::MultidimReport>& reps) {
    return rsrfd.Estimate(reps);
  };

  attack::AifResult fd_attack =
      attack::RunAifAttack(ds, fd_client, fd_estimator, config, rng);
  attack::AifResult rfd_attack =
      attack::RunAifAttack(ds, rfd_client, rfd_estimator, config, rng);

  std::printf("Privacy (sampled-attribute inference, NK model):\n");
  std::printf("  random baseline : %6.2f%%\n", fd_attack.baseline_percent);
  std::printf("  RS+FD [GRR]     : %6.2f%%\n", fd_attack.aif_acc_percent);
  std::printf("  RS+RFD[GRR]     : %6.2f%%\n\n", rfd_attack.aif_acc_percent);

  std::printf(
      "Takeaway: realistic fake data lowers the estimation error AND pushes\n"
      "the attribute-inference attack back toward the random baseline —\n"
      "the paper's recommendation whenever any reasonable prior exists.\n");
  return 0;
}
