// Longitudinal risk walkthrough: why Section 6 recommends memoization.
// A user reports the *same* attribute repeatedly (e.g., a preference
// surveyed monthly). Without memoization, every collection draws a fresh
// randomization and the pool-inference adversary (attack/pool; Gadotti et
// al., USENIX Security '22) accumulates evidence about which group of
// values the user draws from. With memoization the adversary sees one
// effective report, and the posterior freezes.
//
// Run:  ./longitudinal_pools [epsilon] [reports]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "attack/pool.h"
#include "core/rng.h"
#include "fo/factory.h"

int main(int argc, char** argv) {
  using namespace ldpr;
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 2.0;
  const int max_reports = argc > 2 ? std::atoi(argv[2]) : 90;
  const int k = 16;
  Rng rng(99);

  auto oracle = fo::MakeOracle(fo::Protocol::kOue, k, epsilon);
  const auto pools = attack::ContiguousPools(k, 4);
  attack::PoolInferenceAttacker attacker(*oracle, pools);

  // One tracked user in pool 2, drawing uniformly within it each month.
  const int true_pool = 2;
  const auto& members = pools[true_pool];

  std::printf(
      "Longitudinal pool inference: OUE, k=%d, 4 pools, eps=%.2f\n"
      "tracked user's true pool: %d\n\n",
      k, epsilon, true_pool);
  std::printf("%-9s %28s %28s\n", "reports", "fresh randomization",
              "memoized (replayed report)");
  std::printf("%-9s %13s %14s %13s %14s\n", "", "P[true pool]", "MAP pool",
              "P[true pool]", "MAP pool");

  std::vector<fo::Report> fresh;
  const fo::Report memoized_report =
      oracle->Randomize(members[rng.UniformInt(members.size())], rng);
  for (int t = 1; t <= max_reports; ++t) {
    fresh.push_back(
        oracle->Randomize(members[rng.UniformInt(members.size())], rng));
    if (t == 1 || t == 5 || t == 15 || t == 30 || t == max_reports) {
      const auto fresh_post = attacker.Posterior(fresh);
      // Memoization replays the same sanitized value; the adversary learns
      // nothing new, so the posterior equals the single-report posterior.
      const auto memo_post = attacker.Posterior({memoized_report});
      std::printf("%-9d %13.3f %14d %13.3f %14d\n", t, fresh_post[true_pool],
                  attacker.PredictPool(fresh), memo_post[true_pool],
                  attacker.PredictPool({memoized_report}));
    }
  }

  std::printf(
      "\nTakeaway: fresh per-survey randomization concentrates the pool\n"
      "posterior toward certainty; memoization pins the adversary at the\n"
      "single-report level forever. Longitudinal collections of the same\n"
      "attribute should always memoize (Sections 3.2.3 and 6).\n");
  return 0;
}
