// Multidimensional survey: compare the utility (averaged MSE) of every
// solution for collecting d attributes under one privacy budget —
// SPL (split the budget), SMP (sample one attribute), RS+FD (sample + hide
// behind uniform fakes) and RS+RFD (this paper's countermeasure with
// realistic fakes), on an ACSEmployment-like synthetic census.
//
// Every solution runs on the sharded simulation engine (sim::RunMultidim):
// users stream through fused per-shard StreamAggregators on independent RNG
// streams — no per-user report vectors, and LDPR_THREADS workers without
// changing the result for a fixed seed.
//
// Run:  ./multidim_survey [epsilon] [scale]

#include <cstdio>
#include <cstdlib>

#include "core/metrics.h"
#include "core/rng.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  ldpr::Rng rng(7);

  ldpr::data::Dataset ds = ldpr::data::AcsEmploymentLike(99, scale);
  const auto truth = ds.Marginals();
  std::printf("ACSEmployment-like census: n=%d users, d=%d attributes\n",
              ds.n(), ds.d());
  std::printf("privacy budget epsilon=%.2f\n\n", epsilon);

  // --- SPL: every attribute at eps/d.
  {
    ldpr::multidim::Spl spl(ldpr::fo::Protocol::kGrr, ds.domain_sizes(),
                            epsilon);
    std::printf("%-24s MSE_avg = %.3e\n", "SPL[GRR]",
                ldpr::MseAvg(truth, ldpr::sim::RunMultidim(spl, ds, rng)));
  }

  // --- SMP: one attribute per user at full eps.
  {
    ldpr::multidim::Smp smp(ldpr::fo::Protocol::kGrr, ds.domain_sizes(),
                            epsilon);
    std::printf("%-24s MSE_avg = %.3e   (discloses sampled attribute!)\n",
                "SMP[GRR]",
                ldpr::MseAvg(truth, ldpr::sim::RunMultidim(smp, ds, rng)));
  }

  // --- RS+FD: sampled attribute at amplified eps', uniform fakes elsewhere.
  {
    ldpr::multidim::RsFd rsfd(ldpr::multidim::RsFdVariant::kGrr,
                              ds.domain_sizes(), epsilon);
    std::printf("%-24s MSE_avg = %.3e   (eps' = %.2f)\n", "RS+FD[GRR]",
                ldpr::MseAvg(truth, ldpr::sim::RunMultidim(rsfd, ds, rng)),
                rsfd.amplified_epsilon());
  }

  // --- RS+RFD: realistic fakes from Laplace-perturbed ("Correct") priors.
  {
    auto priors = ldpr::data::BuildPriors(
        ds, ldpr::data::PriorKind::kCorrectLaplace, rng,
        /*total_central_eps=*/0.1, ldpr::data::kAcsEmploymentN);
    ldpr::multidim::RsRfd rsrfd(ldpr::multidim::RsRfdVariant::kGrr,
                                ds.domain_sizes(), epsilon, priors);
    std::printf("%-24s MSE_avg = %.3e   (the countermeasure, Sec. 5)\n",
                "RS+RFD[GRR] correct",
                ldpr::MseAvg(truth, ldpr::sim::RunMultidim(rsrfd, ds, rng)));
  }

  std::printf(
      "\nExpected ordering: SPL worst; RS+RFD best of the attribute-hiding\n"
      "solutions thanks to fake data drawn from realistic priors.\n");
  return 0;
}
