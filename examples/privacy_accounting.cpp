// Deployment planning walkthrough: combining the privacy-loss accountant,
// the communication-cost model and the adaptive protocol rule to configure a
// multi-survey collection the way Section 6 of the paper recommends.
//
// Scenario: a mobile app will survey the same users monthly for a year
// (12 collections) over d = 10 demographic/usage attributes at eps = 1 per
// survey. The operator must pick (a) the sampling discipline (uniform metric
// versus non-uniform + memoization), (b) the frequency oracle per attribute
// and (c) see what the realized sequential privacy loss will be.
//
// Run:  ./privacy_accounting

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "fo/comm_cost.h"
#include "multidim/adaptive.h"
#include "privacy/accountant.h"

int main() {
  using namespace ldpr;
  const int d = 10;
  const double eps = 1.0;
  const int surveys = 12;
  const std::vector<int> k = {74, 7, 16, 7, 14, 6, 5, 2, 41, 2};  // Adult
  Rng rng(11);

  std::printf("Planning %d monthly surveys, d=%d attributes, eps=%.1f each\n\n",
              surveys, d, eps);

  // (a) Sampling discipline. The uniform metric would exhaust the attribute
  // set (12 > d) and charge every survey; the non-uniform metric with
  // memoization caps the loss.
  std::printf("Sequential privacy loss after %d surveys:\n", surveys);
  std::printf("  uniform metric (no replacement)  : not applicable, d=%d < %d\n",
              d, surveys);
  const double expected =
      privacy::ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
  privacy::LedgerSummary simulated =
      privacy::SimulateSmpLedgers(d, surveys, eps, /*with_replacement=*/true,
                                  /*num_users=*/20000, rng);
  std::printf("  non-uniform + memoization (mean) : %.3f (closed form %.3f)\n",
              simulated.mean_total, expected);
  std::printf("  worst simulated user             : %.3f (cap = d*eps = %.1f)\n",
              simulated.max_total, d * eps);
  std::printf("  fresh randomizations per user    : %.2f of %d surveys\n\n",
              simulated.mean_randomizations, surveys);

  // (b) Protocol per attribute: variance-optimal within a 5% slack, cheapest
  // upload otherwise (the Section 6 "OUE and/or OLH depending on k_j" rule),
  // alongside the pure variance-optimal GRR/OUE rule.
  std::printf("Per-attribute protocol choice at eps=%.1f:\n", eps);
  std::printf("  %-4s %-4s %-22s %-10s\n", "j", "k_j", "cheapest-within-5%",
              "adp(GRR/OUE)");
  for (int j = 0; j < d; ++j) {
    const fo::Protocol comm = fo::RecommendProtocol(k[j], eps);
    const fo::Protocol adp = multidim::AdaptiveSmpChoice(k[j], eps);
    std::printf("  %-4d %-4d %-22s %-10s\n", j, k[j], fo::ProtocolName(comm),
                fo::ProtocolName(adp));
  }

  // (c) Upload budget per user and survey for the candidate solutions.
  std::printf("\nPer-survey upload (bits/user), OUE everywhere:\n");
  std::printf("  SMP   : %.0f\n", fo::SmpTupleBits(fo::Protocol::kOue, k, eps));
  std::printf("  RS+FD : %.0f\n",
              fo::RsFdTupleBits(fo::Protocol::kOue, k, eps));

  std::printf(
      "\nTakeaway: with replacement + memoization the 12-survey loss stays\n"
      "under d*eps instead of growing linearly, at the cost of some repeat\n"
      "reports; small-k attributes should use GRR, large-k ones OUE (or OLH\n"
      "when upload size matters more than a few percent of variance).\n");
  return 0;
}
