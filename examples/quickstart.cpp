// Quickstart: sanitize one categorical attribute with each of the five LDP
// frequency oracles, estimate its distribution server-side, and measure how
// well the single-report "plausible deniability" adversary can undo the
// randomization (Sections 2.2 and 3.2.1 of the paper).
//
// The collection runs on the batched simulation engine (sim::RunCollection):
// users are sharded across LDPR_THREADS workers, each shard streams fused
// randomize+aggregate draws into its own fo::Aggregator, and no per-user
// Report is ever materialized.
//
// Run:  ./quickstart [epsilon]     (LDPR_THREADS=4 ./quickstart to shard)

#include <cstdio>
#include <cstdlib>

#include "attack/plausible_deniability.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/sampling.h"
#include "fo/analytic_acc.h"
#include "fo/factory.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int k = 16;     // attribute domain size
  const int n = 50000;  // population size
  ldpr::Rng rng(2023);

  // A skewed "true" population: Zipf-distributed values.
  ldpr::CategoricalSampler population(ldpr::ZipfDistribution(k, 1.3));
  std::vector<int> values(n);
  for (int i = 0; i < n; ++i) values[i] = population.Sample(rng);
  const std::vector<double> truth = ldpr::EmpiricalFrequency(values, k);

  std::printf("Quickstart: n=%d users, k=%d values, epsilon=%.2f\n\n", n, k,
              epsilon);
  std::printf("%-6s %12s %14s %16s\n", "proto", "MSE", "attack ACC(%)",
              "analytic ACC(%)");
  for (ldpr::fo::Protocol protocol : ldpr::fo::AllProtocols()) {
    auto oracle = ldpr::fo::MakeOracle(protocol, k, epsilon);

    // Client side + server side in one sharded pass: every user's value is
    // randomized and aggregated in place; Eq. (2) runs on the merged counts.
    ldpr::sim::CollectionResult collected =
        ldpr::sim::RunCollection(*oracle, values, rng);
    const double mse = ldpr::Mse(truth, collected.estimate);

    // The adversary's view: one sanitized report per user.
    const double attack_acc =
        ldpr::attack::EmpiricalAttackAccPercent(*oracle, values, rng);
    const double analytic_acc =
        100.0 * ldpr::fo::ExpectedAttackAcc(protocol, epsilon, k);

    std::printf("%-6s %12.3e %14.2f %16.2f\n",
                ldpr::fo::ProtocolName(protocol), mse, attack_acc,
                analytic_acc);
  }

  std::printf(
      "\nTakeaway: utility-optimal protocols (OUE/OLH) also grant the\n"
      "single-report adversary the least accuracy; GRR leaks the most for\n"
      "small domains. Increase epsilon to watch both effects grow.\n");
  return 0;
}
