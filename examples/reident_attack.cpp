// Re-identification attack demo (Sections 3.2 and 4.2): a server runs five
// SMP surveys over an Adult-like population; an adversary observing the
// <sampled attribute, eps-LDP report> pairs reconstructs per-user profiles
// and matches them against public background knowledge.
//
// Run:  ./reident_attack [epsilon] [protocol: GRR|OLH|SS|SUE|OUE]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "core/rng.h"
#include "data/synthetic.h"

namespace {

ldpr::fo::Protocol ParseProtocol(const std::string& name) {
  for (ldpr::fo::Protocol p : ldpr::fo::AllProtocols()) {
    if (name == ldpr::fo::ProtocolName(p)) return p;
  }
  std::fprintf(stderr, "unknown protocol '%s', using GRR\n", name.c_str());
  return ldpr::fo::Protocol::kGrr;
}

}  // namespace

int main(int argc, char** argv) {
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 4.0;
  const ldpr::fo::Protocol protocol =
      ParseProtocol(argc > 2 ? argv[2] : "GRR");
  ldpr::Rng rng(17);

  ldpr::data::Dataset ds = ldpr::data::AdultLike(123, 0.2);
  std::printf("Adult-like population: n=%d users, d=%d attributes\n", ds.n(),
              ds.d());
  std::printf("SMP protocol=%s, epsilon=%.2f, 5 surveys, uniform metric\n\n",
              ldpr::fo::ProtocolName(protocol), epsilon);

  // The server's five surveys, each over >= d/2 random attributes.
  ldpr::attack::SurveyPlan plan = ldpr::attack::MakeSurveyPlan(ds.d(), 5, rng);
  auto channel =
      ldpr::attack::MakeLdpChannel(protocol, ds.domain_sizes(), epsilon);

  // Adversary: profile every user after each survey...
  auto snapshots = ldpr::attack::SimulateSmpProfiling(
      ds, *channel, plan, ldpr::attack::PrivacyMetricMode::kUniform, rng);

  // ...then match profiles against the full background knowledge (FK-RI).
  std::vector<bool> bk(ds.d(), true);
  ldpr::attack::ReidentConfig config;
  config.top_k = {1, 10};
  config.max_targets = 2000;

  std::printf("%8s %16s %16s\n", "surveys", "top-1 RID-ACC(%)",
              "top-10 RID-ACC(%)");
  std::printf("%8s %16.3f %16.3f   (random-guess baseline)\n", "-",
              ldpr::attack::BaselineRidAcc(1, ds.n()),
              ldpr::attack::BaselineRidAcc(10, ds.n()));
  for (int s = 2; s <= 5; ++s) {
    auto result = ldpr::attack::ReidentAccuracy(snapshots[s - 1], ds, bk,
                                                config, rng);
    std::printf("%8d %16.3f %16.3f\n", s, result.rid_acc_percent[0],
                result.rid_acc_percent[1]);
  }

  std::printf(
      "\nTry: GRR vs OUE at epsilon 8 — the paper's Fig. 2 contrast.\n");
  return 0;
}
