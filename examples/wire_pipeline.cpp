// Deployment pipeline walkthrough: the full client → wire → server path.
// Each user's sanitized report is serialized with the bit-exact codec
// (fo/wire), shipped as bytes, deserialized server-side and aggregated —
// demonstrating that the codec is transparent to estimation and that the
// measured upload matches the communication-cost model (fo/comm_cost) that
// underlies the Section 6 protocol recommendation.
//
// Run:  ./wire_pipeline [epsilon] [k]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/histogram.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/sampling.h"
#include "fo/comm_cost.h"
#include "fo/factory.h"
#include "fo/wire.h"

int main(int argc, char** argv) {
  using namespace ldpr;
  const double epsilon = argc > 1 ? std::atof(argv[1]) : 2.0;
  const int k = argc > 2 ? std::atoi(argv[2]) : 32;
  const int n = 30000;
  Rng rng(3);

  // A skewed population.
  CategoricalSampler population(ZipfDistribution(k, 1.3));
  std::vector<int> values(n);
  for (int& v : values) v = population.Sample(rng);
  const std::vector<double> truth = EmpiricalFrequency(values, k);

  std::printf("Wire pipeline: n=%d users, k=%d, eps=%.2f\n\n", n, k, epsilon);
  std::printf("%-6s %12s %12s %12s %12s\n", "proto", "bits/report",
              "priced", "KB total", "MSE");

  for (fo::Protocol protocol : fo::AllProtocols()) {
    auto oracle = fo::MakeOracle(protocol, k, epsilon);

    // Client side: randomize, serialize, "upload".
    std::vector<std::vector<std::uint8_t>> uploads;
    uploads.reserve(n);
    long long total_bytes = 0;
    for (int v : values) {
      uploads.push_back(
          fo::SerializeReport(*oracle, oracle->Randomize(v, rng)));
      total_bytes += static_cast<long long>(uploads.back().size());
    }

    // Server side: deserialize and aggregate supports.
    std::vector<long long> counts(k, 0);
    for (const auto& bytes : uploads) {
      oracle->AccumulateSupport(fo::DeserializeReport(*oracle, bytes),
                                &counts);
    }
    const std::vector<double> estimate =
        oracle->EstimateFromCounts(counts, n);

    std::printf("%-6s %12d %12.0f %12.1f %12.3e\n",
                fo::ProtocolName(protocol),
                fo::SerializedReportBits(*oracle),
                fo::ReportBits(protocol, k, epsilon),
                total_bytes / 1024.0, Mse(truth, estimate));
  }

  std::printf(
      "\nTakeaway: the codec packs each report into exactly the bits the\n"
      "cost model prices (modulo byte rounding), and estimation from the\n"
      "decoded reports is lossless. For this k, compare OUE's k-bit upload\n"
      "against OLH's flat ~70 bits to see the Section 6 trade-off.\n");
  return 0;
}
