#include "attack/aif.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/histogram.h"
#include "core/sampling.h"
#include "ml/ml_metrics.h"
#include "sim/engine.h"

namespace ldpr::attack {

const char* AifModelName(AifModel model) {
  switch (model) {
    case AifModel::kNk:
      return "NK";
    case AifModel::kPk:
      return "PK";
    case AifModel::kHm:
      return "HM";
  }
  return "unknown";
}

std::vector<int> EncodeFeatures(const multidim::MultidimReport& report,
                                const std::vector<int>& domain_sizes) {
  // Pure GRR-based tuples carry no bit vectors at all.
  if (report.bits.empty()) {
    LDPR_REQUIRE(report.values.size() == domain_sizes.size(),
                 "GRR-based report width mismatch");
    for (std::size_t j = 0; j < report.values.size(); ++j) {
      LDPR_REQUIRE(report.values[j] >= 0 && report.values[j] < domain_sizes[j],
                   "report value out of range at attribute " << j);
    }
    return report.values;
  }
  // UE-based or mixed (adaptive) tuples: attribute j contributes its k_j
  // bits when bits[j] is populated, otherwise its categorical value.
  LDPR_REQUIRE(report.bits.size() == domain_sizes.size(),
               "UE-based report width mismatch");
  std::size_t total = 0;
  for (int k : domain_sizes) total += static_cast<std::size_t>(k);
  std::vector<int> features;
  features.reserve(total);
  for (std::size_t j = 0; j < report.bits.size(); ++j) {
    if (report.bits[j].empty()) {
      LDPR_REQUIRE(j < report.values.size() && report.values[j] >= 0 &&
                       report.values[j] < domain_sizes[j],
                   "mixed report missing value at attribute " << j);
      features.push_back(report.values[j]);
      continue;
    }
    LDPR_REQUIRE(static_cast<int>(report.bits[j].size()) == domain_sizes[j],
                 "UE bit-vector length mismatch at attribute " << j);
    for (std::uint8_t b : report.bits[j]) features.push_back(b);
  }
  return features;
}

namespace {

/// Draws `count` synthetic profiles, each attribute independently from the
/// (simplex-projected) estimated frequencies, runs them through the client,
/// and returns the labeled learning set (Section 3.3.1).
ml::LabeledData SynthesizeLearningSet(
    const std::vector<std::vector<double>>& estimated_freqs,
    const MultidimClient& client, const std::vector<int>& domain_sizes,
    long long count, Rng& rng) {
  const int d = static_cast<int>(domain_sizes.size());
  std::vector<CategoricalSampler> samplers;
  samplers.reserve(d);
  for (int j = 0; j < d; ++j) {
    samplers.emplace_back(ProjectToSimplex(estimated_freqs[j]));
  }
  ml::LabeledData learn;
  learn.rows.reserve(count);
  std::vector<int> profile(d);
  for (long long s = 0; s < count; ++s) {
    for (int j = 0; j < d; ++j) profile[j] = samplers[j].Sample(rng);
    multidim::MultidimReport rep = client(profile, rng);
    learn.Append(EncodeFeatures(rep, domain_sizes), rep.sampled_attribute);
  }
  return learn;
}

}  // namespace

std::vector<int> NkPredictSampledAttributes(
    const std::vector<multidim::MultidimReport>& reports,
    const MultidimClient& client, const MultidimEstimator& estimator,
    const std::vector<int>& domain_sizes, double synthetic_multiplier,
    const ml::GbdtConfig& gbdt_config, Rng& rng) {
  LDPR_REQUIRE(!reports.empty(), "requires at least one report");
  LDPR_REQUIRE(synthetic_multiplier > 0.0, "synthetic_multiplier must be > 0");
  const int d = static_cast<int>(domain_sizes.size());

  const auto estimated = estimator(reports);
  const long long s = std::max<long long>(
      d, static_cast<long long>(synthetic_multiplier * reports.size()));
  ml::LabeledData learn =
      SynthesizeLearningSet(estimated, client, domain_sizes, s, rng);

  ml::Gbdt classifier;
  classifier.Train(learn.rows, learn.labels, d, gbdt_config, rng);

  std::vector<std::vector<int>> test_rows;
  test_rows.reserve(reports.size());
  for (const auto& rep : reports) {
    test_rows.push_back(EncodeFeatures(rep, domain_sizes));
  }
  return classifier.PredictBatch(test_rows);
}

AifResult RunAifAttack(const data::Dataset& dataset,
                       const MultidimClient& client,
                       const MultidimEstimator& estimator,
                       const AifConfig& config, Rng& rng) {
  const int n = dataset.n();
  const int d = dataset.d();
  LDPR_REQUIRE(n >= 10, "AIF attack needs a non-trivial population");
  const std::vector<int>& domain_sizes = dataset.domain_sizes();

  // 1. Every user sanitizes their record. The reports are the classifier's
  // input, so they must be materialized; the client sweep runs sharded on
  // deterministic per-shard streams (thread-count-independent results).
  std::vector<multidim::MultidimReport> reports(n);
  sim::ShardedRun(n, rng, sim::Options{},
                  [&](int /*shard*/, long long lo, long long hi, Rng& r) {
                    for (long long i = lo; i < hi; ++i) {
                      reports[i] = client(dataset.Record(static_cast<int>(i)),
                                          r);
                    }
                  });

  // 2. Build the learning and test sets per the attack model.
  ml::LabeledData learn;
  std::vector<int> test_users;
  if (config.model == AifModel::kPk || config.model == AifModel::kHm) {
    LDPR_REQUIRE(config.compromised_fraction > 0.0 &&
                     config.compromised_fraction < 1.0,
                 "compromised_fraction must be in (0, 1)");
    const int npk = std::max(
        1, static_cast<int>(std::lround(config.compromised_fraction * n)));
    std::vector<int> order = rng.SampleWithoutReplacement(n, n);
    for (int idx = 0; idx < n; ++idx) {
      const int user = order[idx];
      if (idx < npk) {
        learn.Append(EncodeFeatures(reports[user], domain_sizes),
                     reports[user].sampled_attribute);
      } else {
        test_users.push_back(user);
      }
    }
  } else {
    test_users.resize(n);
    for (int i = 0; i < n; ++i) test_users[i] = i;
  }
  if (config.model == AifModel::kNk || config.model == AifModel::kHm) {
    LDPR_REQUIRE(config.synthetic_multiplier > 0.0,
                 "synthetic_multiplier must be > 0");
    const auto estimated = estimator(reports);
    const long long s = std::max<long long>(
        d, static_cast<long long>(config.synthetic_multiplier * n));
    learn.AppendAll(
        SynthesizeLearningSet(estimated, client, domain_sizes, s, rng));
  }
  LDPR_CHECK(!learn.rows.empty() && !test_users.empty(),
             "attack model produced an empty learning or test set");

  // 3. Train the classifier and measure AIF-ACC on held-out users.
  ml::Gbdt classifier;
  classifier.Train(learn.rows, learn.labels, d, config.gbdt, rng);

  std::vector<std::vector<int>> test_rows;
  std::vector<int> test_labels;
  test_rows.reserve(test_users.size());
  test_labels.reserve(test_users.size());
  for (int user : test_users) {
    test_rows.push_back(EncodeFeatures(reports[user], domain_sizes));
    test_labels.push_back(reports[user].sampled_attribute);
  }
  std::vector<int> predictions = classifier.PredictBatch(test_rows);

  AifResult out;
  out.aif_acc_percent = 100.0 * ml::Accuracy(test_labels, predictions);
  out.baseline_percent = 100.0 / d;
  out.test_n = static_cast<int>(test_users.size());
  out.train_n = learn.n();
  return out;
}

}  // namespace ldpr::attack
