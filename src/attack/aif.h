#ifndef LDPR_ATTACK_AIF_H_
#define LDPR_ATTACK_AIF_H_

#include <functional>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "ml/dataset_split.h"
#include "ml/gbdt.h"
#include "multidim/rsfd.h"

namespace ldpr::attack {

/// The three attack models for uncovering the sampled attribute of RS+FD /
/// RS+RFD users (Section 3.3).
enum class AifModel {
  kNk,  ///< No Knowledge: train on synthetic profiles from LDP estimates.
  kPk,  ///< Partial Knowledge: train on compromised users' real tuples.
  kHm,  ///< Hybrid: synthetic profiles + compromised users.
};

const char* AifModelName(AifModel model);

/// A multidimensional client: maps a true record to a sanitized tuple.
/// Instantiated from RsFd::RandomizeUser or RsRfd::RandomizeUser.
///
/// Thread-safety contract: the attack drivers (RunAifAttack,
/// SimulateRsFdProfiling) invoke the client concurrently from the sharded
/// simulation engine, one independent Rng per shard. The callable must
/// therefore be safe to call from multiple threads at once — stateless
/// wrappers over const protocol objects (the instantiations above) are;
/// clients that mutate shared state need their own synchronization.
using MultidimClient =
    std::function<multidim::MultidimReport(const std::vector<int>&, Rng&)>;

/// A multidimensional aggregator: maps all sanitized tuples to per-attribute
/// frequency estimates (used by the NK model to synthesize training data).
using MultidimEstimator = std::function<std::vector<std::vector<double>>(
    const std::vector<multidim::MultidimReport>&)>;

/// Flattens a sanitized tuple into classifier features:
///   GRR-based payloads -> d label-encoded categorical features;
///   UE-based payloads  -> sum_j k_j binary features.
std::vector<int> EncodeFeatures(const multidim::MultidimReport& report,
                                const std::vector<int>& domain_sizes);

struct AifConfig {
  AifModel model = AifModel::kNk;
  /// NK / HM: number of synthetic profiles as a multiple of n (paper: 1/3/5).
  double synthetic_multiplier = 1.0;
  /// PK / HM: fraction of users compromised (paper: 0.1 / 0.3 / 0.5).
  double compromised_fraction = 0.1;
  ml::GbdtConfig gbdt;
};

struct AifResult {
  double aif_acc_percent = 0.0;  ///< attacker's AIF-ACC on the test users
  double baseline_percent = 0.0; ///< random-guess baseline 100/d
  int test_n = 0;
  int train_n = 0;
};

/// Runs one attribute-inference attack end to end:
///  1. every user sanitizes their record through `client`;
///  2. the attacker builds a learning set per `config.model` (Section 3.3.1-3);
///  3. an XGBoost-substitute GBDT is trained and evaluated on the held-out
///     real users.
AifResult RunAifAttack(const data::Dataset& dataset,
                       const MultidimClient& client,
                       const MultidimEstimator& estimator,
                       const AifConfig& config, Rng& rng);

/// Internal building block, exposed for reuse by the RS+FD re-identification
/// pipeline (Section 4.4): trains a sampled-attribute classifier under the
/// NK model from already-generated reports and returns the per-report
/// predicted sampled attribute.
std::vector<int> NkPredictSampledAttributes(
    const std::vector<multidim::MultidimReport>& reports,
    const MultidimClient& client, const MultidimEstimator& estimator,
    const std::vector<int>& domain_sizes, double synthetic_multiplier,
    const ml::GbdtConfig& gbdt_config, Rng& rng);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_AIF_H_
