#include "attack/bayes_adversary.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/hash.h"
#include "core/histogram.h"
#include "core/parallel.h"
#include "core/sampling.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::attack {

namespace {

constexpr double kLogFloor = -40.0;  // log of a vanishing probability

double SafeLog(double p) {
  return p > 0.0 ? std::max(std::log(p), kLogFloor) : kLogFloor;
}

}  // namespace

// ---------------------------------------------------------------------------
// BayesAttacker
// ---------------------------------------------------------------------------

BayesAttacker::BayesAttacker(const fo::FrequencyOracle& oracle,
                             std::vector<double> prior)
    : oracle_(oracle) {
  if (prior.empty()) {
    prior.assign(oracle.k(), 1.0);
  }
  LDPR_REQUIRE(static_cast<int>(prior.size()) == oracle.k(),
               "prior length must equal the oracle's domain size");
  std::vector<double> normalized = Normalize(prior);
  log_prior_.resize(normalized.size());
  for (std::size_t v = 0; v < normalized.size(); ++v) {
    log_prior_[v] = SafeLog(normalized[v]);
  }
}

double BayesAttacker::LogLikelihood(const fo::Report& report, int v) const {
  LDPR_REQUIRE(v >= 0 && v < oracle_.k(), "value out of range");
  switch (oracle_.protocol()) {
    case fo::Protocol::kGrr:
      return SafeLog(report.value == v ? oracle_.p() : oracle_.q());
    case fo::Protocol::kOlh: {
      const auto& olh = static_cast<const fo::Olh&>(oracle_);
      UniversalHash h(report.hash_seed, olh.g());
      const double q_prime = (1.0 - olh.p_prime()) / (olh.g() - 1);
      return SafeLog(h(v) == report.value ? olh.p_prime() : q_prime);
    }
    case fo::Protocol::kSs: {
      // Pr[Omega | v] = p / C(k-1, w-1) if v in Omega, else (1-p)/C(k-1, w).
      // The binomials are constant across v, so only membership matters.
      const bool member = std::binary_search(report.subset.begin(),
                                             report.subset.end(), v);
      const auto& ss = static_cast<const fo::Ss&>(oracle_);
      const double w = ss.omega();
      const double k = ss.k();
      // Restore the C(k-1, w-1) / C(k-1, w) = w / (k - w) ratio.
      return member ? SafeLog(ss.p() / w) : SafeLog((1.0 - ss.p()) / (k - w));
    }
    case fo::Protocol::kSue:
    case fo::Protocol::kOue: {
      // Bits are independent given the input; terms for bits != v are shared
      // by all candidates, so only bit v distinguishes them.
      LDPR_REQUIRE(static_cast<int>(report.bits.size()) == oracle_.k(),
                   "UE report width mismatch");
      const double p = oracle_.p();
      const double q = oracle_.q();
      return report.bits[v] ? SafeLog(p) - SafeLog(q)
                            : SafeLog(1.0 - p) - SafeLog(1.0 - q);
    }
  }
  LDPR_CHECK(false, "unhandled protocol enum value");
}

int BayesAttacker::Predict(const fo::Report& report, Rng& rng) const {
  double best = -1e300;
  std::vector<int> argmax;
  for (int v = 0; v < oracle_.k(); ++v) {
    const double score = log_prior_[v] + LogLikelihood(report, v);
    if (score > best + 1e-12) {
      best = score;
      argmax.assign(1, v);
    } else if (score > best - 1e-12) {
      argmax.push_back(v);
    }
  }
  LDPR_CHECK(!argmax.empty(), "no candidate scored");
  if (argmax.size() == 1) return argmax[0];
  return argmax[rng.UniformInt(argmax.size())];
}

// ---------------------------------------------------------------------------
// BayesAifAttacker
// ---------------------------------------------------------------------------

BayesAifAttacker::BayesAifAttacker(
    const multidim::RsFd& protocol,
    const std::vector<std::vector<double>>& estimated_marginals)
    : d_(protocol.d()), domain_sizes_(protocol.domain_sizes()) {
  LDPR_REQUIRE(static_cast<int>(estimated_marginals.size()) == d_,
               "need one estimated marginal per attribute");
  const bool ue = multidim::IsUeVariant(protocol.variant());
  payload_ = ue ? Payload::kBits : Payload::kValues;

  if (!ue) {
    sampled_log_.resize(d_);
    fake_log_.resize(d_);
    for (int j = 0; j < d_; ++j) {
      const int kj = domain_sizes_[j];
      const auto f = ProjectToSimplex(estimated_marginals[j]);
      const double p = protocol.p(j);
      const double q = protocol.q(j);
      sampled_log_[j].resize(kj);
      fake_log_[j].assign(kj, SafeLog(1.0 / kj));  // uniform fakes
      for (int v = 0; v < kj; ++v) {
        sampled_log_[j][v] = SafeLog(f[v] * (p - q) + q);
      }
    }
    return;
  }

  sampled_bit_p_.resize(d_);
  fake_bit_p_.resize(d_);
  const bool zero_fakes = multidim::IsZeroFakeVariant(protocol.variant());
  for (int j = 0; j < d_; ++j) {
    const int kj = domain_sizes_[j];
    const auto f = ProjectToSimplex(estimated_marginals[j]);
    const double p = protocol.p(j);
    const double q = protocol.q(j);
    sampled_bit_p_[j].resize(kj);
    fake_bit_p_[j].resize(kj);
    for (int v = 0; v < kj; ++v) {
      sampled_bit_p_[j][v] = f[v] * p + (1.0 - f[v]) * q;
      fake_bit_p_[j][v] =
          zero_fakes ? q : (1.0 / kj) * p + (1.0 - 1.0 / kj) * q;
    }
  }
}

BayesAifAttacker::BayesAifAttacker(
    const multidim::RsRfd& protocol,
    const std::vector<std::vector<double>>& estimated_marginals)
    : d_(protocol.d()), domain_sizes_(protocol.domain_sizes()) {
  LDPR_REQUIRE(static_cast<int>(estimated_marginals.size()) == d_,
               "need one estimated marginal per attribute");
  const bool ue = protocol.variant() != multidim::RsRfdVariant::kGrr;
  payload_ = ue ? Payload::kBits : Payload::kValues;
  const auto& priors = protocol.priors();

  if (!ue) {
    sampled_log_.resize(d_);
    fake_log_.resize(d_);
    for (int j = 0; j < d_; ++j) {
      const int kj = domain_sizes_[j];
      const auto f = ProjectToSimplex(estimated_marginals[j]);
      const double p = protocol.p(j);
      const double q = protocol.q(j);
      sampled_log_[j].resize(kj);
      fake_log_[j].resize(kj);
      for (int v = 0; v < kj; ++v) {
        sampled_log_[j][v] = SafeLog(f[v] * (p - q) + q);
        fake_log_[j][v] = SafeLog(priors[j][v]);
      }
    }
    return;
  }

  sampled_bit_p_.resize(d_);
  fake_bit_p_.resize(d_);
  for (int j = 0; j < d_; ++j) {
    const int kj = domain_sizes_[j];
    const auto f = ProjectToSimplex(estimated_marginals[j]);
    const double p = protocol.p(j);
    const double q = protocol.q(j);
    sampled_bit_p_[j].resize(kj);
    fake_bit_p_[j].resize(kj);
    for (int v = 0; v < kj; ++v) {
      sampled_bit_p_[j][v] = f[v] * p + (1.0 - f[v]) * q;
      fake_bit_p_[j][v] = priors[j][v] * p + (1.0 - priors[j][v]) * q;
    }
  }
}

double BayesAifAttacker::ScoreDelta(const multidim::MultidimReport& report,
                                    int j) const {
  if (payload_ == Payload::kValues) {
    const int y = report.values[j];
    return sampled_log_[j][y] - fake_log_[j][y];
  }
  double delta = 0.0;
  const auto& bits = report.bits[j];
  for (int v = 0; v < domain_sizes_[j]; ++v) {
    const double s = sampled_bit_p_[j][v];
    const double g = fake_bit_p_[j][v];
    delta += bits[v] ? SafeLog(s) - SafeLog(g)
                     : SafeLog(1.0 - s) - SafeLog(1.0 - g);
  }
  return delta;
}

int BayesAifAttacker::PredictSampledAttribute(
    const multidim::MultidimReport& report) const {
  if (payload_ == Payload::kValues) {
    LDPR_REQUIRE(static_cast<int>(report.values.size()) == d_,
                 "report width mismatch");
  } else {
    LDPR_REQUIRE(static_cast<int>(report.bits.size()) == d_,
                 "report width mismatch");
  }
  // Pr[y | t] factorizes; the fake contribution of every attribute cancels
  // except at t, so t_hat = argmax_t (sampled_t(y_t) - fake_t(y_t)).
  int best = 0;
  double best_score = -1e300;
  for (int j = 0; j < d_; ++j) {
    const double score = ScoreDelta(report, j);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

std::vector<int> BayesAifAttacker::PredictBatch(
    const std::vector<multidim::MultidimReport>& reports) const {
  std::vector<int> out(reports.size());
  ParallelFor(0, static_cast<long long>(reports.size()),
              [&](long long i) { out[i] = PredictSampledAttribute(reports[i]); });
  return out;
}

}  // namespace ldpr::attack
