#ifndef LDPR_ATTACK_BAYES_ADVERSARY_H_
#define LDPR_ATTACK_BAYES_ADVERSARY_H_

#include <vector>

#include "core/rng.h"
#include "fo/frequency_oracle.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace ldpr::attack {

/// Bayes-optimal single-report adversary (Gursoy et al., referenced in
/// Section 3.2.1 as the analytic formalization of the paper's plausible-
/// deniability attacks).
///
/// Given a prior over the user's true value, predicts
///   argmax_v prior[v] * Pr[report | v]
/// with uniform tie-breaking. With a uniform prior this coincides with the
/// paper's per-protocol heuristics (report value for GRR, hash preimage for
/// OLH, subset member for SS, set bit for UE); with a non-uniform prior it
/// strictly dominates them.
class BayesAttacker {
 public:
  /// `oracle` must outlive the attacker. `prior` is normalized internally;
  /// pass the empirical marginal (or an LDP estimate of it) for the
  /// strongest attack, or leave empty for a uniform prior.
  explicit BayesAttacker(const fo::FrequencyOracle& oracle,
                         std::vector<double> prior = {});

  /// Predicts the user's true value from one sanitized report.
  int Predict(const fo::Report& report, Rng& rng) const;

  /// Log-likelihood log Pr[report | v] up to an additive constant shared by
  /// all v (sufficient for prediction; exposed for tests).
  double LogLikelihood(const fo::Report& report, int v) const;

 private:
  const fo::FrequencyOracle& oracle_;
  std::vector<double> log_prior_;
};

/// Bayes-optimal sampled-attribute inference against RS+FD / RS+RFD — the
/// analytic counterpart of the paper's GBDT classifier (NK model). Scores
///   Pr[y | t] = M_t(y_t) * prod_{i != t} fake_i(y_i)
/// where M_t is the randomizer's output distribution under the estimated
/// marginals and fake_i the variant's fake-data distribution, and predicts
/// the argmax over t.
///
/// Used as a classifier ablation: it upper-bounds what any learner can
/// extract from one tuple under the independence approximation, at zero
/// training cost.
class BayesAifAttacker {
 public:
  /// RS+FD: uniform fakes for GRR, q-bits for UE-z, smoothed one-hots for
  /// UE-r. `estimated_marginals[j]` is the attacker's frequency estimate for
  /// attribute j (e.g. from RsFd::Estimate), normalized internally.
  BayesAifAttacker(const multidim::RsFd& protocol,
                   const std::vector<std::vector<double>>& estimated_marginals);

  /// RS+RFD: fake data follows the protocol's priors (assumed known to the
  /// attacker, as in Section 3.3 — the server publishes them).
  BayesAifAttacker(const multidim::RsRfd& protocol,
                   const std::vector<std::vector<double>>& estimated_marginals);

  /// Predicts the sampled attribute of one output tuple.
  int PredictSampledAttribute(const multidim::MultidimReport& report) const;

  /// Predictions for a batch of tuples (parallelized).
  std::vector<int> PredictBatch(
      const std::vector<multidim::MultidimReport>& reports) const;

 private:
  enum class Payload { kValues, kBits };

  /// Score contribution of attribute j if it were the sampled one, minus its
  /// contribution as fake data (the rest of the tuple cancels).
  double ScoreDelta(const multidim::MultidimReport& report, int j) const;

  Payload payload_;
  int d_;
  std::vector<int> domain_sizes_;
  /// Per attribute, per value: log M_j(value) under "sampled".
  std::vector<std::vector<double>> sampled_log_;
  /// Per attribute, per value: log fake_j(value) (kValues payload).
  std::vector<std::vector<double>> fake_log_;
  /// kBits payload: per attribute, per bit: P[bit = 1 | sampled] and
  /// P[bit = 1 | fake].
  std::vector<std::vector<double>> sampled_bit_p_;
  std::vector<std::vector<double>> fake_bit_p_;
};

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_BAYES_ADVERSARY_H_
