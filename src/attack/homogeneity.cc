#include "attack/homogeneity.h"

#include <algorithm>
#include <utility>

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::attack {

HomogeneityResult HomogeneityAttack(const std::vector<Profile>& profiles,
                                    const data::Dataset& background,
                                    const std::vector<bool>& bk_attributes,
                                    int sensitive_attribute,
                                    const HomogeneityConfig& config,
                                    Rng& rng) {
  const int n = background.n();
  LDPR_REQUIRE(static_cast<int>(profiles.size()) == n,
               "profiles must align 1:1 with background records");
  LDPR_REQUIRE(static_cast<int>(bk_attributes.size()) == background.d(),
               "bk_attributes must have one flag per attribute");
  LDPR_REQUIRE(sensitive_attribute >= 0 &&
                   sensitive_attribute < background.d(),
               "sensitive attribute out of range");
  LDPR_REQUIRE(config.top_k >= 1, "top_k must be >= 1");
  LDPR_REQUIRE(config.agreement_threshold > 0 &&
                   config.agreement_threshold <= 1,
               "agreement_threshold must lie in (0, 1]");

  const std::vector<int>& sensitive = background.Column(sensitive_attribute);
  const int k_sensitive = background.domain_size(sensitive_attribute);

  // Guessing baseline: global modal frequency of the sensitive attribute.
  std::vector<long long> global_counts(k_sensitive, 0);
  for (int v : sensitive) ++global_counts[v];
  const long long modal_count =
      *std::max_element(global_counts.begin(), global_counts.end());

  std::vector<int> targets;
  if (config.max_targets > 0 && config.max_targets < n) {
    targets = rng.SampleWithoutReplacement(n, config.max_targets);
  } else {
    targets.resize(n);
    for (int i = 0; i < n; ++i) targets[i] = i;
  }

  // Per-target outputs, filled in parallel. Each worker uses a split RNG
  // stream so tie-breaking stays deterministic given the root seed.
  struct TargetOutcome {
    bool correct = false;
    bool homogeneous = false;
    bool homogeneous_and_correct = false;
    int distinct_values = 0;
  };
  std::vector<TargetOutcome> outcomes(targets.size());
  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    worker_rngs.push_back(rng.Split());
  }

  ParallelFor(0, static_cast<long long>(targets.size()), [&](long long t) {
    const int user = targets[t];
    Rng& local_rng = worker_rngs[t];

    // Matching evidence: profile entries in D_BK, never the sensitive one.
    std::vector<std::pair<const int*, int>> checks;
    for (const auto& [attr, value] : profiles[user]) {
      if (attr != sensitive_attribute && bk_attributes[attr]) {
        checks.emplace_back(background.Column(attr).data(), value);
      }
    }

    // Rank all records by Hamming distance; materialize a concrete top-k
    // with random tie-breaking. A single counting pass finds the distance
    // level at which the k-th record sits, then members are collected.
    std::vector<int> distances(n, 0);
    for (int r = 0; r < n; ++r) {
      int dist = 0;
      for (const auto& [col, value] : checks) {
        if (col[r] != value) ++dist;
      }
      distances[r] = dist;
    }
    std::vector<long long> level_counts(checks.size() + 1, 0);
    for (int r = 0; r < n; ++r) ++level_counts[distances[r]];

    const int k = std::min(config.top_k, n);
    std::vector<int> shortlist;
    shortlist.reserve(k);
    long long taken = 0;
    for (std::size_t level = 0; level <= checks.size() && taken < k;
         ++level) {
      const long long at_level = level_counts[level];
      if (at_level == 0) continue;
      const long long want = std::min<long long>(k - taken, at_level);
      if (want == at_level) {
        for (int r = 0; r < n; ++r) {
          if (distances[r] == static_cast<int>(level)) shortlist.push_back(r);
        }
      } else {
        // Reservoir-sample `want` of the `at_level` tied records.
        std::vector<int> members;
        members.reserve(at_level);
        for (int r = 0; r < n; ++r) {
          if (distances[r] == static_cast<int>(level)) members.push_back(r);
        }
        for (long long i = 0; i < want; ++i) {
          const std::size_t j =
              i + local_rng.UniformInt(members.size() - i);
          std::swap(members[i], members[j]);
          shortlist.push_back(members[i]);
        }
      }
      taken += want;
    }

    // Majority vote of the sensitive attribute within the shortlist.
    std::vector<int> votes(k_sensitive, 0);
    for (int r : shortlist) ++votes[sensitive[r]];
    int modal_value = 0;
    int distinct = 0;
    for (int v = 0; v < k_sensitive; ++v) {
      if (votes[v] > 0) ++distinct;
      if (votes[v] > votes[modal_value]) modal_value = v;
    }

    TargetOutcome& outcome = outcomes[t];
    outcome.correct = (modal_value == sensitive[user]);
    outcome.homogeneous =
        votes[modal_value] >=
        config.agreement_threshold * static_cast<double>(shortlist.size());
    outcome.homogeneous_and_correct = outcome.homogeneous && outcome.correct;
    outcome.distinct_values = distinct;
  });

  HomogeneityResult result;
  result.num_targets = static_cast<int>(targets.size());
  long long correct = 0, homogeneous = 0, homogeneous_correct = 0;
  long long diversity = 0;
  for (const TargetOutcome& outcome : outcomes) {
    correct += outcome.correct;
    homogeneous += outcome.homogeneous;
    homogeneous_correct += outcome.homogeneous_and_correct;
    diversity += outcome.distinct_values;
  }
  result.inference_acc_percent = 100.0 * correct / targets.size();
  result.homogeneous_fraction =
      static_cast<double>(homogeneous) / targets.size();
  result.homogeneous_inference_acc_percent =
      homogeneous > 0 ? 100.0 * homogeneous_correct / homogeneous : 0.0;
  result.mean_l_diversity =
      static_cast<double>(diversity) / targets.size();
  result.baseline_percent = 100.0 * modal_count / n;
  return result;
}

}  // namespace ldpr::attack
