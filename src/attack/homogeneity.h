#ifndef LDPR_ATTACK_HOMOGENEITY_H_
#define LDPR_ATTACK_HOMOGENEITY_H_

#include <vector>

#include "attack/profiling.h"
#include "core/rng.h"
#include "data/dataset.h"

namespace ldpr::attack {

/// Homogeneity attack on top-k shortlists (Machanavajjhala et al.'s
/// l-diversity critique of k-anonymity).
///
/// Section 1 and the Fig. 2 analysis note that even when a target is only
/// narrowed to a top-k anonymity set, "this still represents a threat due
/// to the possibility of performing, e.g., homogeneity attacks": if the k
/// candidate records agree on a sensitive attribute, the attacker learns
/// the target's value without singling the target out. This module runs
/// that second stage on the output of the re-identification matcher.
///
/// Pipeline per target: the matcher R ranks all background records by
/// Hamming distance to the inferred profile (the sensitive attribute never
/// participates in matching); a concrete top-k shortlist is materialized
/// with uniformly random tie-breaking (decision algorithm G); the attacker
/// predicts the shortlist's modal sensitive value.
struct HomogeneityConfig {
  int top_k = 10;
  /// A shortlist counts as homogeneous when the modal value covers at least
  /// this fraction of it.
  double agreement_threshold = 0.8;
  /// Number of target users evaluated (uniform subsample); <= 0 means all.
  int max_targets = 3000;
};

struct HomogeneityResult {
  /// How often the shortlist's modal value equals the target's true
  /// sensitive value.
  double inference_acc_percent = 0.0;
  /// Attack accuracy restricted to homogeneous shortlists (the cases an
  /// attacker would act on). NaN-free: 0 when no shortlist is homogeneous.
  double homogeneous_inference_acc_percent = 0.0;
  /// Fraction of shortlists that are homogeneous.
  double homogeneous_fraction = 0.0;
  /// Mean number of distinct sensitive values per shortlist (the "l" of
  /// l-diversity achieved by the anonymity sets).
  double mean_l_diversity = 0.0;
  /// Guessing baseline: the sensitive attribute's global modal frequency
  /// (best attribute-inference rate with no shortlist at all).
  double baseline_percent = 0.0;
  int num_targets = 0;
};

/// Runs the homogeneity attack. `profiles[i]` is user i's inferred profile
/// (from the multi-survey profiling attack); `background` is D_BK;
/// `bk_attributes` marks attributes usable for matching;
/// `sensitive_attribute` is the attribute to infer — it is excluded from
/// matching even when flagged in `bk_attributes` or present in a profile.
HomogeneityResult HomogeneityAttack(const std::vector<Profile>& profiles,
                                    const data::Dataset& background,
                                    const std::vector<bool>& bk_attributes,
                                    int sensitive_attribute,
                                    const HomogeneityConfig& config, Rng& rng);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_HOMOGENEITY_H_
