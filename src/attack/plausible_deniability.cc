#include "attack/plausible_deniability.h"

#include "core/check.h"
#include "fo/factory.h"

namespace ldpr::attack {

double EmpiricalAttackAccPercent(const fo::FrequencyOracle& oracle,
                                 const std::vector<int>& values, Rng& rng) {
  LDPR_REQUIRE(!values.empty(), "requires at least one value");
  long long correct = 0;
  for (int v : values) {
    fo::Report r = oracle.Randomize(v, rng);
    if (oracle.AttackPredict(r, rng) == v) ++correct;
  }
  return 100.0 * static_cast<double>(correct) / values.size();
}

double MonteCarloAttackAcc(const fo::FrequencyOracle& oracle, int trials,
                           Rng& rng) {
  LDPR_REQUIRE(trials >= 1, "requires trials >= 1");
  long long correct = 0;
  for (int t = 0; t < trials; ++t) {
    int v = static_cast<int>(rng.UniformInt(oracle.k()));
    fo::Report r = oracle.Randomize(v, rng);
    if (oracle.AttackPredict(r, rng) == v) ++correct;
  }
  return static_cast<double>(correct) / trials;
}

double MonteCarloProfileAcc(fo::Protocol protocol, double epsilon,
                            const std::vector<int>& domain_sizes,
                            bool uniform_metric, int trials, Rng& rng) {
  LDPR_REQUIRE(trials >= 1, "requires trials >= 1");
  const int d = static_cast<int>(domain_sizes.size());
  LDPR_REQUIRE(d >= 1, "requires >= 1 attribute");

  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles;
  oracles.reserve(d);
  for (int k : domain_sizes) {
    oracles.push_back(fo::MakeOracle(protocol, k, epsilon));
  }

  long long complete = 0;
  std::vector<int> order(d);
  for (int t = 0; t < trials; ++t) {
    // Random true profile.
    std::vector<int> truth(d);
    for (int j = 0; j < d; ++j) {
      truth[j] = static_cast<int>(rng.UniformInt(domain_sizes[j]));
    }
    // Attribute sequence across #surveys = d collections.
    std::vector<int> sampled(d);
    if (uniform_metric) {
      for (int j = 0; j < d; ++j) order[j] = j;
      rng.Shuffle(&order);
      sampled = order;
    } else {
      for (int j = 0; j < d; ++j) {
        sampled[j] = static_cast<int>(rng.UniformInt(d));
      }
    }
    // Complete-profile reconstruction requires every attribute to be sampled
    // (automatic in the uniform case) and every prediction to be correct;
    // memoization means a repeated attribute adds no fresh information.
    std::vector<int> predicted(d, -1);
    for (int s = 0; s < d; ++s) {
      const int a = sampled[s];
      if (predicted[a] != -1) continue;  // memoized repeat
      fo::Report r = oracles[a]->Randomize(truth[a], rng);
      predicted[a] = oracles[a]->AttackPredict(r, rng);
    }
    bool all_correct = true;
    for (int j = 0; j < d; ++j) {
      if (predicted[j] != truth[j]) {
        all_correct = false;
        break;
      }
    }
    if (all_correct) ++complete;
  }
  return static_cast<double>(complete) / trials;
}

}  // namespace ldpr::attack
