#include "attack/plausible_deniability.h"

#include <algorithm>

#include "core/check.h"
#include "fo/factory.h"
#include "sim/engine.h"

namespace ldpr::attack {

double EmpiricalAttackAccPercent(const fo::FrequencyOracle& oracle,
                                 const std::vector<int>& values, Rng& rng) {
  LDPR_REQUIRE(!values.empty(), "requires at least one value");
  // Sharded randomize-and-attack sweep; per-shard tallies merge at the end.
  const long long correct = sim::ShardedTally(
      static_cast<long long>(values.size()), rng, sim::Options{},
      [&](long long lo, long long hi, Rng& r) {
        long long c = 0;
        for (long long u = lo; u < hi; ++u) {
          fo::Report rep = oracle.Randomize(values[u], r);
          if (oracle.AttackPredict(rep, r) == values[u]) ++c;
        }
        return c;
      });
  return 100.0 * static_cast<double>(correct) / values.size();
}

double MonteCarloAttackAcc(const fo::FrequencyOracle& oracle, int trials,
                           Rng& rng) {
  LDPR_REQUIRE(trials >= 1, "requires trials >= 1");
  const long long correct = sim::ShardedTally(
      trials, rng, sim::Options{}, [&](long long lo, long long hi, Rng& r) {
        long long c = 0;
        for (long long t = lo; t < hi; ++t) {
          int v = static_cast<int>(r.UniformInt(oracle.k()));
          fo::Report rep = oracle.Randomize(v, r);
          if (oracle.AttackPredict(rep, r) == v) ++c;
        }
        return c;
      });
  return static_cast<double>(correct) / trials;
}

double MonteCarloProfileAcc(fo::Protocol protocol, double epsilon,
                            const std::vector<int>& domain_sizes,
                            bool uniform_metric, int trials, Rng& rng) {
  LDPR_REQUIRE(trials >= 1, "requires trials >= 1");
  const int d = static_cast<int>(domain_sizes.size());
  LDPR_REQUIRE(d >= 1, "requires >= 1 attribute");

  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles;
  oracles.reserve(d);
  for (int k : domain_sizes) {
    oracles.push_back(fo::MakeOracle(protocol, k, epsilon));
  }

  const long long complete = sim::ShardedTally(
      trials, rng, sim::Options{},
      [&](long long lo, long long hi, Rng& r) {
        long long c = 0;
        std::vector<int> order(d), truth(d), sampled(d), predicted(d);
        for (long long t = lo; t < hi; ++t) {
          // Random true profile.
          for (int j = 0; j < d; ++j) {
            truth[j] = static_cast<int>(r.UniformInt(domain_sizes[j]));
          }
          // Attribute sequence across #surveys = d collections.
          if (uniform_metric) {
            for (int j = 0; j < d; ++j) order[j] = j;
            r.Shuffle(&order);
            sampled = order;
          } else {
            for (int j = 0; j < d; ++j) {
              sampled[j] = static_cast<int>(r.UniformInt(d));
            }
          }
          // Complete-profile reconstruction requires every attribute to be
          // sampled (automatic in the uniform case) and every prediction to
          // be correct; memoization means a repeated attribute adds no fresh
          // information.
          std::fill(predicted.begin(), predicted.end(), -1);
          for (int s = 0; s < d; ++s) {
            const int a = sampled[s];
            if (predicted[a] != -1) continue;  // memoized repeat
            fo::Report rep = oracles[a]->Randomize(truth[a], r);
            predicted[a] = oracles[a]->AttackPredict(rep, r);
          }
          bool all_correct = true;
          for (int j = 0; j < d; ++j) {
            if (predicted[j] != truth[j]) {
              all_correct = false;
              break;
            }
          }
          if (all_correct) ++c;
        }
        return c;
      });
  return static_cast<double>(complete) / trials;
}

}  // namespace ldpr::attack
