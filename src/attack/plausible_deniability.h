#ifndef LDPR_ATTACK_PLAUSIBLE_DENIABILITY_H_
#define LDPR_ATTACK_PLAUSIBLE_DENIABILITY_H_

#include <vector>

#include "core/rng.h"
#include "fo/frequency_oracle.h"

namespace ldpr::attack {

/// Empirical single-report attacker accuracy (Section 3.2.1), in percent:
/// each true value is randomized once and attacked once.
double EmpiricalAttackAccPercent(const fo::FrequencyOracle& oracle,
                                 const std::vector<int>& values, Rng& rng);

/// Monte-Carlo estimate of the expected attacker accuracy (fraction in
/// [0, 1]) under uniformly distributed true values — the quantity the
/// closed forms of fo::ExpectedAttackAcc approximate.
double MonteCarloAttackAcc(const fo::FrequencyOracle& oracle, int trials,
                           Rng& rng);

/// Simulates profiling one user across all d attributes (one survey per
/// attribute, as in Fig. 1) and returns the fraction of trials in which the
/// adversary reconstructed the *complete* profile correctly.
/// `uniform_metric` selects sampling without replacement (Eq. 4) versus with
/// replacement + memoization (Eq. 5).
double MonteCarloProfileAcc(fo::Protocol protocol, double epsilon,
                            const std::vector<int>& domain_sizes,
                            bool uniform_metric, int trials, Rng& rng);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_PLAUSIBLE_DENIABILITY_H_
