#include "attack/pool.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::attack {

double SupportLikelihoodRatio(const fo::FrequencyOracle& oracle) {
  switch (oracle.protocol()) {
    case fo::Protocol::kGrr:
      return oracle.p() / oracle.q();
    case fo::Protocol::kOlh: {
      const auto& olh = static_cast<const fo::Olh&>(oracle);
      const double p_prime = olh.p_prime();
      const double q_prime = (1.0 - p_prime) / (olh.g() - 1);
      return p_prime / q_prime;
    }
    case fo::Protocol::kSs: {
      const auto& ss = static_cast<const fo::Ss&>(oracle);
      const double p = ss.p();
      const int k = ss.k();
      const int omega = ss.omega();
      // v in Omega: p / C(k-1, omega-1); v not in Omega: (1-p) / C(k-1,
      // omega). Ratio of the binomials is (k - omega) / omega.
      return p * (k - omega) / ((1.0 - p) * omega);
    }
    case fo::Protocol::kSue:
    case fo::Protocol::kOue: {
      const double p = oracle.p();
      const double q = oracle.q();
      return p * (1.0 - q) / ((1.0 - p) * q);
    }
  }
  LDPR_CHECK(false, "unreachable protocol");
}

PoolInferenceAttacker::PoolInferenceAttacker(
    const fo::FrequencyOracle& oracle, std::vector<std::vector<int>> pools,
    std::vector<double> pool_priors)
    : oracle_(oracle), pools_(std::move(pools)) {
  LDPR_REQUIRE(pools_.size() >= 2, "need at least 2 pools, got "
                                       << pools_.size());
  std::vector<bool> covered(oracle_.k(), false);
  for (const auto& pool : pools_) {
    LDPR_REQUIRE(!pool.empty(), "pools must be non-empty");
    for (int v : pool) {
      LDPR_REQUIRE(v >= 0 && v < oracle_.k(),
                   "pool value " << v << " outside domain [0, " << oracle_.k()
                                 << ")");
      LDPR_REQUIRE(!covered[v], "pools must be disjoint; value "
                                    << v << " appears twice");
      covered[v] = true;
    }
  }
  for (int v = 0; v < oracle_.k(); ++v) {
    LDPR_REQUIRE(covered[v],
                 "pools must cover the domain; value " << v << " is missing");
  }

  if (pool_priors.empty()) {
    log_prior_.assign(pools_.size(), -std::log(double(pools_.size())));
  } else {
    LDPR_REQUIRE(pool_priors.size() == pools_.size(),
                 "pool_priors size mismatch");
    double sum = 0.0;
    for (double prior : pool_priors) {
      LDPR_REQUIRE(prior > 0, "pool priors must be positive");
      sum += prior;
    }
    log_prior_.resize(pools_.size());
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      log_prior_[i] = std::log(pool_priors[i] / sum);
    }
  }
  weights_.resize(pools_.size());
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    weights_[i].assign(pools_[i].size(), 1.0 / pools_[i].size());
  }
  ratio_ = SupportLikelihoodRatio(oracle_);
}

void PoolInferenceAttacker::SetWithinPoolWeights(
    int pool, const std::vector<double>& weights) {
  LDPR_REQUIRE(pool >= 0 && pool < num_pools(), "pool index out of range");
  LDPR_REQUIRE(weights.size() == pools_[pool].size(),
               "weights must align with the pool's members");
  double sum = 0.0;
  for (double w : weights) {
    LDPR_REQUIRE(w > 0, "within-pool weights must be positive");
    sum += w;
  }
  weights_[pool].resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights_[pool][i] = weights[i] / sum;
  }
}

std::vector<double> PoolInferenceAttacker::LogPosterior(
    const std::vector<fo::Report>& reports) const {
  std::vector<double> log_post = log_prior_;
  std::vector<long long> support(oracle_.k());
  for (const fo::Report& report : reports) {
    std::fill(support.begin(), support.end(), 0);
    oracle_.AccumulateSupport(report, &support);
    for (std::size_t i = 0; i < pools_.size(); ++i) {
      // sum_{v in P} w_P(v) rho^{s_v}; the common per-report normalizer
      // cancels across pools.
      double likelihood = 0.0;
      for (std::size_t m = 0; m < pools_[i].size(); ++m) {
        likelihood += weights_[i][m] * (support[pools_[i][m]] ? ratio_ : 1.0);
      }
      log_post[i] += std::log(likelihood);
    }
  }
  return log_post;
}

std::vector<double> PoolInferenceAttacker::Posterior(
    const std::vector<fo::Report>& reports) const {
  std::vector<double> log_post = LogPosterior(reports);
  const double mx = *std::max_element(log_post.begin(), log_post.end());
  double sum = 0.0;
  for (double& s : log_post) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : log_post) s /= sum;
  return log_post;
}

int PoolInferenceAttacker::PredictPool(
    const std::vector<fo::Report>& reports) const {
  std::vector<double> log_post = LogPosterior(reports);
  return static_cast<int>(
      std::max_element(log_post.begin(), log_post.end()) - log_post.begin());
}

std::vector<std::vector<int>> ContiguousPools(int k, int num_pools) {
  LDPR_REQUIRE(num_pools >= 2 && num_pools <= k,
               "num_pools must lie in [2, k], got " << num_pools << " for k="
                                                    << k);
  std::vector<std::vector<int>> pools(num_pools);
  for (int v = 0; v < k; ++v) {
    pools[static_cast<std::size_t>(v) * num_pools / k].push_back(v);
  }
  return pools;
}

PoolAttackResult SimulatePoolInference(
    const fo::FrequencyOracle& oracle,
    const std::vector<std::vector<int>>& pools, int num_users,
    int reports_per_user, Rng& rng) {
  LDPR_REQUIRE(num_users >= 1, "num_users must be >= 1");
  LDPR_REQUIRE(reports_per_user >= 1, "reports_per_user must be >= 1");
  PoolInferenceAttacker attacker(oracle, pools);
  int correct = 0;
  std::vector<fo::Report> reports(reports_per_user);
  for (int u = 0; u < num_users; ++u) {
    const int pool =
        static_cast<int>(rng.UniformInt(attacker.num_pools()));
    const auto& members = attacker.pools()[pool];
    for (int t = 0; t < reports_per_user; ++t) {
      const int value = members[rng.UniformInt(members.size())];
      reports[t] = oracle.Randomize(value, rng);
    }
    if (attacker.PredictPool(reports) == pool) ++correct;
  }
  PoolAttackResult result;
  result.acc_percent = 100.0 * correct / num_users;
  result.baseline_percent = 100.0 / attacker.num_pools();
  return result;
}

}  // namespace ldpr::attack
