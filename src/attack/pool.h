#ifndef LDPR_ATTACK_POOL_H_
#define LDPR_ATTACK_POOL_H_

#include <vector>

#include "core/rng.h"
#include "fo/frequency_oracle.h"

namespace ldpr::attack {

/// Pool inference attack (Gadotti et al., USENIX Security '22; discussed in
/// the paper's Section 7).
///
/// Setting: a user answers the *same* attribute over r collections without
/// memoization, drawing each true value from a personal "pool" of related
/// values (Gadotti's example: emoji skin tones). The attacker observes the r
/// sanitized reports and infers the user's pool — a coarse but sensitive
/// fact that LDP's per-report guarantee does not protect across repeats.
///
/// The attacker is exact Bayes. For every one of the five oracles the
/// single-report likelihood, viewed as a function of the candidate true
/// value v, depends only on whether the report *supports* v (equality for
/// GRR, hash match for OLH, subset membership for SS, set bit for UE), with
/// a protocol-specific likelihood ratio
///
///   rho = Pr[report supports v | v true] / Pr[report supports v | v false]:
///     GRR      rho = p / q
///     OLH      rho = p' / q'
///     SS       rho = p (k - omega) / ((1 - p) omega)
///     SUE/OUE  rho = p (1 - q) / ((1 - p) q)
///
/// so the pool posterior after reports y_1..y_r is
///
///   Pr[P | y_1..r] ∝ prior(P) prod_t ( sum_{v in P} w_P(v) rho^{s_v(y_t)} )
///
/// with s_v(y) the support indicator and w_P the within-pool draw
/// distribution (uniform by default; Gadotti's model allows arbitrary
/// within-pool weights). Draws are independent across collections.
///
/// `SupportLikelihoodRatio` exposes rho for one oracle configuration.
double SupportLikelihoodRatio(const fo::FrequencyOracle& oracle);

/// Exact Bayes attacker over a pool partition of the attribute domain.
class PoolInferenceAttacker {
 public:
  /// `pools` must partition {0, ..., k-1} into >= 2 non-empty groups.
  /// `pool_priors` defaults to uniform over pools.
  PoolInferenceAttacker(const fo::FrequencyOracle& oracle,
                        std::vector<std::vector<int>> pools,
                        std::vector<double> pool_priors = {});

  /// Sets the within-pool draw distribution of pool `pool` (aligned with
  /// pools()[pool]; positive weights, normalized internally). Uniform when
  /// never called.
  void SetWithinPoolWeights(int pool, const std::vector<double>& weights);

  /// Log-posterior (unnormalized) over pools given the user's reports.
  std::vector<double> LogPosterior(
      const std::vector<fo::Report>& reports) const;

  /// Normalized posterior over pools.
  std::vector<double> Posterior(const std::vector<fo::Report>& reports) const;

  /// Maximum-a-posteriori pool index.
  int PredictPool(const std::vector<fo::Report>& reports) const;

  int num_pools() const { return static_cast<int>(pools_.size()); }
  const std::vector<std::vector<int>>& pools() const { return pools_; }

 private:
  const fo::FrequencyOracle& oracle_;
  std::vector<std::vector<int>> pools_;
  std::vector<double> log_prior_;
  std::vector<std::vector<double>> weights_;  ///< within-pool, normalized
  double ratio_;  ///< rho, cached
};

/// Splits {0, ..., k-1} into `num_pools` contiguous near-equal pools.
std::vector<std::vector<int>> ContiguousPools(int k, int num_pools);

/// End-to-end simulation: `num_users` users each hold a uniformly random
/// pool, draw `reports_per_user` values uniformly from it across collections
/// and sanitize each with a fresh `oracle` randomization; the attacker
/// predicts every user's pool.
struct PoolAttackResult {
  double acc_percent = 0.0;       ///< attacker accuracy
  double baseline_percent = 0.0;  ///< random guess = 100 / num_pools
};

PoolAttackResult SimulatePoolInference(const fo::FrequencyOracle& oracle,
                                       const std::vector<std::vector<int>>& pools,
                                       int num_users, int reports_per_user,
                                       Rng& rng);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_POOL_H_
