#include "attack/profiling.h"

#include <algorithm>

#include "attack/aif.h"
#include "core/check.h"
#include "fo/factory.h"
#include "fo/metric_ldp.h"
#include "privacy/pie.h"
#include "sim/engine.h"

namespace ldpr::attack {

SurveyPlan MakeSurveyPlan(int d, int num_surveys, Rng& rng) {
  LDPR_REQUIRE(d >= 2 && num_surveys >= 1,
               "MakeSurveyPlan requires d >= 2 and num_surveys >= 1");
  SurveyPlan plan;
  plan.surveys.reserve(num_surveys);
  const int min_attrs = std::max(2, (d + 1) / 2);
  for (int s = 0; s < num_surveys; ++s) {
    const int d_sv = static_cast<int>(rng.UniformRange(min_attrs, d));
    plan.surveys.push_back(rng.SampleWithoutReplacement(d, d_sv));
  }
  return plan;
}

namespace {

class LdpChannel : public AttackChannel {
 public:
  LdpChannel(fo::Protocol protocol, const std::vector<int>& domain_sizes,
             double epsilon) {
    oracles_.reserve(domain_sizes.size());
    for (int k : domain_sizes) {
      oracles_.push_back(fo::MakeOracle(protocol, k, epsilon));
    }
  }

  int ReportAndPredict(int true_value, int attribute, Rng& rng) const override {
    LDPR_REQUIRE(attribute >= 0 &&
                     attribute < static_cast<int>(oracles_.size()),
                 "attribute out of range");
    const fo::FrequencyOracle& oracle = *oracles_[attribute];
    fo::Report r = oracle.Randomize(true_value, rng);
    return oracle.AttackPredict(r, rng);
  }

 private:
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
};

class PieChannel : public AttackChannel {
 public:
  PieChannel(fo::Protocol protocol, const std::vector<int>& domain_sizes,
             double beta, long long n) {
    oracles_.resize(domain_sizes.size());
    clear_text_.resize(domain_sizes.size(), false);
    for (std::size_t j = 0; j < domain_sizes.size(); ++j) {
      privacy::PieCalibration cal =
          privacy::CalibrateForBayesError(beta, n, domain_sizes[j]);
      if (cal.use_randomizer) {
        oracles_[j] = fo::MakeOracle(protocol, domain_sizes[j], cal.epsilon);
      } else {
        clear_text_[j] = true;  // [35, Prop. 9]: small domain, send y = v
      }
    }
  }

  int ReportAndPredict(int true_value, int attribute, Rng& rng) const override {
    LDPR_REQUIRE(attribute >= 0 &&
                     attribute < static_cast<int>(oracles_.size()),
                 "attribute out of range");
    if (clear_text_[attribute]) return true_value;
    const fo::FrequencyOracle& oracle = *oracles_[attribute];
    fo::Report r = oracle.Randomize(true_value, rng);
    return oracle.AttackPredict(r, rng);
  }

 private:
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
  std::vector<bool> clear_text_;
};

class MetricLdpChannel : public AttackChannel {
 public:
  MetricLdpChannel(const std::vector<int>& domain_sizes, double epsilon) {
    mechanisms_.reserve(domain_sizes.size());
    for (int k : domain_sizes) {
      mechanisms_.push_back(std::make_unique<fo::MetricLdp>(k, epsilon));
    }
  }

  int ReportAndPredict(int true_value, int attribute, Rng& rng) const override {
    LDPR_REQUIRE(attribute >= 0 &&
                     attribute < static_cast<int>(mechanisms_.size()),
                 "attribute out of range");
    const fo::MetricLdp& m = *mechanisms_[attribute];
    return m.AttackPredict(m.Randomize(true_value, rng));
  }

 private:
  std::vector<std::unique_ptr<fo::MetricLdp>> mechanisms_;
};

/// Predicts a value from one RS+FD payload column, mirroring the
/// single-report adversary of Section 3.2.1 for the payload's encoding.
int PredictValueFromPayload(const multidim::MultidimReport& report,
                            int attribute, int k, Rng& rng) {
  if (!report.values.empty()) return report.values[attribute];
  const auto& bits = report.bits[attribute];
  std::vector<int> set_bits;
  for (int v = 0; v < k; ++v) {
    if (bits[v]) set_bits.push_back(v);
  }
  if (set_bits.empty()) return static_cast<int>(rng.UniformInt(k));
  return set_bits[rng.UniformInt(set_bits.size())];
}

}  // namespace

std::unique_ptr<AttackChannel> MakeLdpChannel(
    fo::Protocol protocol, const std::vector<int>& domain_sizes,
    double epsilon) {
  return std::make_unique<LdpChannel>(protocol, domain_sizes, epsilon);
}

std::unique_ptr<AttackChannel> MakePieChannel(
    fo::Protocol protocol, const std::vector<int>& domain_sizes, double beta,
    long long n) {
  return std::make_unique<PieChannel>(protocol, domain_sizes, beta, n);
}

std::unique_ptr<AttackChannel> MakeMetricLdpChannel(
    const std::vector<int>& domain_sizes, double epsilon) {
  return std::make_unique<MetricLdpChannel>(domain_sizes, epsilon);
}

std::vector<std::vector<Profile>> SimulateSmpProfiling(
    const data::Dataset& dataset, const AttackChannel& channel,
    const SurveyPlan& plan, PrivacyMetricMode mode, Rng& rng) {
  const int n = dataset.n();
  const int num_surveys = plan.num_surveys();
  LDPR_REQUIRE(num_surveys >= 1, "plan must contain at least one survey");

  std::vector<std::vector<Profile>> snapshots(
      num_surveys, std::vector<Profile>(n));

  // Sharded per-user sweep on independent per-shard RNG streams: results are
  // reproducible from one root seed under any LDPR_THREADS setting, and the
  // engine keeps O(shards) generator state instead of one Rng per user.
  sim::ShardedRun(
      n, rng, sim::Options{},
      [&](int /*shard*/, long long lo, long long hi, Rng& r) {
        std::vector<int> predicted(dataset.d(), -1);
        std::vector<bool> reported(dataset.d(), false);
        std::vector<int> candidates;
        for (long long user = lo; user < hi; ++user) {
          std::fill(predicted.begin(), predicted.end(), -1);
          std::fill(reported.begin(), reported.end(), false);
          for (int s = 0; s < num_surveys; ++s) {
            const std::vector<int>& attrs = plan.surveys[s];
            int chosen = -1;
            if (mode == PrivacyMetricMode::kUniform) {
              // Without replacement across surveys: only fresh attributes.
              candidates.clear();
              for (int a : attrs) {
                if (!reported[a]) candidates.push_back(a);
              }
              if (!candidates.empty()) {
                chosen = candidates[r.UniformInt(candidates.size())];
              }
              // All of this survey's attributes already reported: nothing
              // new.
            } else {
              // With replacement; a repeated attribute is memoized (the user
              // re-sends the prior report, so the adversary learns nothing
              // new).
              int a = attrs[r.UniformInt(attrs.size())];
              if (!reported[a]) chosen = a;
            }
            if (chosen >= 0) {
              predicted[chosen] = channel.ReportAndPredict(
                  dataset.value(static_cast<int>(user), chosen), chosen, r);
              reported[chosen] = true;
            }
            Profile& snap = snapshots[s][user];
            for (int a = 0; a < dataset.d(); ++a) {
              if (predicted[a] != -1) snap.emplace_back(a, predicted[a]);
            }
          }
        }
      });
  return snapshots;
}

std::vector<std::vector<Profile>> SimulateRsFdProfiling(
    const data::Dataset& dataset, multidim::RsFdVariant variant,
    double epsilon, const SurveyPlan& plan, double synthetic_multiplier,
    const ml::GbdtConfig& gbdt_config, Rng& rng) {
  const int n = dataset.n();
  const int num_surveys = plan.num_surveys();
  LDPR_REQUIRE(num_surveys >= 1, "plan must contain at least one survey");

  std::vector<std::vector<Profile>> snapshots(
      num_surveys, std::vector<Profile>(n));
  std::vector<std::vector<int>> predicted(n,
                                          std::vector<int>(dataset.d(), -1));
  std::vector<std::vector<bool>> truly_sampled(
      n, std::vector<bool>(dataset.d(), false));

  for (int s = 0; s < num_surveys; ++s) {
    const std::vector<int>& attrs = plan.surveys[s];
    const int d_sv = static_cast<int>(attrs.size());
    std::vector<int> local_sizes(d_sv);
    for (int j = 0; j < d_sv; ++j) {
      local_sizes[j] = dataset.domain_size(attrs[j]);
    }
    multidim::RsFd rsfd(variant, local_sizes, epsilon);

    // Client phase: every user reports an RS+FD tuple over this survey's
    // attributes, sampling without replacement across surveys (uniform
    // privacy metric, the paper's higher-risk setting). The reports must be
    // materialized here — they are the NK adversary's classifier input — but
    // the sweep runs sharded on deterministic per-shard streams.
    std::vector<multidim::MultidimReport> reports(n);
    sim::ShardedRun(
        n, rng, sim::Options{},
        [&](int /*shard*/, long long lo, long long hi, Rng& r) {
          std::vector<int> record(d_sv), fresh;
          for (long long user = lo; user < hi; ++user) {
            for (int j = 0; j < d_sv; ++j) {
              record[j] = dataset.value(static_cast<int>(user), attrs[j]);
            }
            fresh.clear();
            for (int j = 0; j < d_sv; ++j) {
              if (!truly_sampled[user][attrs[j]]) fresh.push_back(j);
            }
            int local = fresh.empty()
                            ? static_cast<int>(r.UniformInt(d_sv))
                            : fresh[r.UniformInt(fresh.size())];
            truly_sampled[user][attrs[local]] = true;
            reports[user] = rsfd.RandomizeUserWithAttribute(record, local, r);
          }
        });

    // Attack phase: NK sampled-attribute inference, then value prediction on
    // the predicted attribute. Wrong attribute predictions poison the
    // profile — the chained-error effect of Section 4.4.
    MultidimClient client = [&rsfd](const std::vector<int>& rec, Rng& r) {
      return rsfd.RandomizeUser(rec, r);
    };
    MultidimEstimator estimator =
        [&rsfd](const std::vector<multidim::MultidimReport>& reps) {
          return rsfd.Estimate(reps);
        };
    std::vector<int> predicted_attr = NkPredictSampledAttributes(
        reports, client, estimator, local_sizes, synthetic_multiplier,
        gbdt_config, rng);

    for (int user = 0; user < n; ++user) {
      const int local = predicted_attr[user];
      const int global = attrs[local];
      predicted[user][global] = PredictValueFromPayload(
          reports[user], local, local_sizes[local], rng);
      Profile& snap = snapshots[s][user];
      for (int a = 0; a < dataset.d(); ++a) {
        if (predicted[user][a] != -1) snap.emplace_back(a, predicted[user][a]);
      }
    }
  }
  return snapshots;
}

}  // namespace ldpr::attack
