#ifndef LDPR_ATTACK_PROFILING_H_
#define LDPR_ATTACK_PROFILING_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "fo/frequency_oracle.h"
#include "ml/gbdt.h"
#include "multidim/rsfd.h"

namespace ldpr::attack {

/// The attribute subsets collected by each survey (Section 4.2): survey sv
/// collects d_sv = Uniform(d/2, ..., d) attributes, chosen at random.
struct SurveyPlan {
  std::vector<std::vector<int>> surveys;  ///< per survey: global attribute ids

  int num_surveys() const { return static_cast<int>(surveys.size()); }
};

SurveyPlan MakeSurveyPlan(int d, int num_surveys, Rng& rng);

/// How users sample attributes across surveys (Sections 3.2.2 / 3.2.3).
enum class PrivacyMetricMode {
  kUniform,     ///< without replacement: a fresh attribute every survey
  kNonUniform,  ///< with replacement + memoization of repeated attributes
};

/// One user's inferred profile: (attribute, predicted value) pairs; each
/// attribute appears at most once.
using Profile = std::vector<std::pair<int, int>>;

/// How a single attribute report is produced and attacked — abstracts over
/// the privacy model (plain eps-LDP versus the alpha-PIE calibration of
/// Appendix C, which sends small-domain attributes in the clear).
class AttackChannel {
 public:
  virtual ~AttackChannel() = default;
  /// Sanitizes `true_value` of `attribute` and returns the adversary's
  /// prediction of the true value from the sanitized report.
  virtual int ReportAndPredict(int true_value, int attribute,
                               Rng& rng) const = 0;
};

/// eps-LDP channel: protocol randomizer + Section 3.2.1 adversary.
std::unique_ptr<AttackChannel> MakeLdpChannel(
    fo::Protocol protocol, const std::vector<int>& domain_sizes,
    double epsilon);

/// alpha-PIE channel (Appendix C): per attribute, CalibrateForBayesError
/// decides between clear-text release and an eps(alpha)-LDP randomizer.
std::unique_ptr<AttackChannel> MakePieChannel(
    fo::Protocol protocol, const std::vector<int>& domain_sizes, double beta,
    long long n);

/// Metric-LDP (d-privacy) channel — the paper's future-work direction
/// (Section 8): every attribute is treated as ordinal and sanitized with the
/// truncated geometric mechanism at per-unit budget epsilon; the adversary's
/// best guess is the reported value.
std::unique_ptr<AttackChannel> MakeMetricLdpChannel(
    const std::vector<int>& domain_sizes, double epsilon);

/// Simulates multi-survey SMP collection and the profiling adversary.
/// Returns, for every survey prefix s (1-based index s surveys seen),
/// the inferred profile of every user: result[s-1][user].
std::vector<std::vector<Profile>> SimulateSmpProfiling(
    const data::Dataset& dataset, const AttackChannel& channel,
    const SurveyPlan& plan, PrivacyMetricMode mode, Rng& rng);

/// Simulates multi-survey RS+FD collection (Section 4.4): per survey, users
/// run RS+FD over the survey's attributes (uniform metric) and the attacker
/// first predicts the sampled attribute with the NK model (training a GBDT
/// on `synthetic_multiplier * n` synthetic profiles), then predicts the
/// value of the *predicted* attribute from the report payload. Prediction
/// errors therefore chain, which is what makes RS+FD a partial
/// countermeasure.
std::vector<std::vector<Profile>> SimulateRsFdProfiling(
    const data::Dataset& dataset, multidim::RsFdVariant variant,
    double epsilon, const SurveyPlan& plan, double synthetic_multiplier,
    const ml::GbdtConfig& gbdt_config, Rng& rng);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_PROFILING_H_
