#include "attack/reident.h"

#include <algorithm>

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::attack {

std::vector<bool> MakeBackgroundAttributes(int d, ReidentModel model,
                                           Rng& rng) {
  LDPR_REQUIRE(d >= 2, "requires d >= 2");
  std::vector<bool> out(d, false);
  if (model == ReidentModel::kFullKnowledge) {
    std::fill(out.begin(), out.end(), true);
    return out;
  }
  const int min_attrs = std::max(1, (d + 1) / 2);
  const int m = static_cast<int>(rng.UniformRange(min_attrs, d));
  for (int a : rng.SampleWithoutReplacement(d, m)) out[a] = true;
  return out;
}

double BaselineRidAcc(int top_k, int n) {
  LDPR_REQUIRE(top_k >= 1 && n >= 1, "requires top_k >= 1 and n >= 1");
  return 100.0 * std::min(1.0, static_cast<double>(top_k) / n);
}

ReidentResult ReidentAccuracy(const std::vector<Profile>& profiles,
                              const data::Dataset& background,
                              const std::vector<bool>& bk_attributes,
                              const ReidentConfig& config, Rng& rng) {
  const int n = background.n();
  LDPR_REQUIRE(static_cast<int>(profiles.size()) == n,
               "profiles must align 1:1 with background records");
  LDPR_REQUIRE(static_cast<int>(bk_attributes.size()) == background.d(),
               "bk_attributes must have one flag per attribute");
  LDPR_REQUIRE(!config.top_k.empty(), "config.top_k must be non-empty");
  for (int k : config.top_k) LDPR_REQUIRE(k >= 1, "top_k entries must be >= 1");
  LDPR_REQUIRE(config.bk_noise >= 0.0 && config.bk_noise <= 1.0,
               "bk_noise must lie in [0, 1], got " << config.bk_noise);

  // Noisy background knowledge: corrupt a bk_noise fraction of cells before
  // matching. The attacker still matches against this corrupted copy (they
  // do not know which cells are wrong).
  const data::Dataset* matching_background = &background;
  data::Dataset corrupted({2, 2});
  if (config.bk_noise > 0.0) {
    corrupted = data::Dataset(background.domain_sizes());
    corrupted.Reserve(n);
    std::vector<int> record(background.d());
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < background.d(); ++j) {
        record[j] = background.value(i, j);
        if (rng.Bernoulli(config.bk_noise)) {
          const int kj = background.domain_size(j);
          int other = static_cast<int>(rng.UniformInt(kj - 1));
          record[j] = other >= record[j] ? other + 1 : other;
        }
      }
      corrupted.AddRecord(record);
    }
    matching_background = &corrupted;
  }

  // Target subsample (unbiased estimator of the per-user mean RID-ACC).
  std::vector<int> targets;
  if (config.max_targets > 0 && config.max_targets < n) {
    targets = rng.SampleWithoutReplacement(n, config.max_targets);
  } else {
    targets.resize(n);
    for (int i = 0; i < n; ++i) targets[i] = i;
  }

  const std::size_t num_k = config.top_k.size();
  std::vector<double> hit_sums(num_k * targets.size(), 0.0);

  ParallelFor(0, static_cast<long long>(targets.size()), [&](long long t) {
    const int user = targets[t];
    // Matching attributes: profile entries the adversary can check in D_BK.
    std::vector<std::pair<const int*, int>> checks;  // (column ptr, value)
    for (const auto& [attr, value] : profiles[user]) {
      if (bk_attributes[attr]) {
        checks.emplace_back(matching_background->Column(attr).data(), value);
      }
    }

    if (checks.empty()) {
      // No usable evidence: the adversary can only guess uniformly.
      for (std::size_t ki = 0; ki < num_k; ++ki) {
        hit_sums[ki * targets.size() + t] =
            std::min(1.0, static_cast<double>(config.top_k[ki]) / n);
      }
      return;
    }

    // Distance of the target's own record.
    int true_dist = 0;
    for (const auto& [col, value] : checks) {
      if (col[user] != value) ++true_dist;
    }

    // Count records strictly closer / at the same distance.
    long long closer = 0;
    long long ties = 0;
    for (int r = 0; r < n; ++r) {
      int dist = 0;
      for (const auto& [col, value] : checks) {
        if (col[r] != value && ++dist > true_dist) break;
      }
      if (dist < true_dist) {
        ++closer;
      } else if (dist == true_dist) {
        ++ties;
      }
    }
    LDPR_CHECK(ties >= 1, "the target's own record must be among the ties");

    for (std::size_t ki = 0; ki < num_k; ++ki) {
      const double k = config.top_k[ki];
      const double prob =
          std::clamp((k - static_cast<double>(closer)) / ties, 0.0, 1.0);
      hit_sums[ki * targets.size() + t] = prob;
    }
  });

  ReidentResult out;
  out.rid_acc_percent.resize(num_k);
  for (std::size_t ki = 0; ki < num_k; ++ki) {
    double sum = 0.0;
    for (std::size_t t = 0; t < targets.size(); ++t) {
      sum += hit_sums[ki * targets.size() + t];
    }
    out.rid_acc_percent[ki] = 100.0 * sum / targets.size();
  }
  return out;
}

}  // namespace ldpr::attack
