#ifndef LDPR_ATTACK_REIDENT_H_
#define LDPR_ATTACK_REIDENT_H_

#include <vector>

#include "attack/profiling.h"
#include "core/rng.h"
#include "data/dataset.h"

namespace ldpr::attack {

/// Background-knowledge scope (Section 3.2.4).
enum class ReidentModel {
  kFullKnowledge,     ///< FK-RI: D_BK contains every attribute
  kPartialKnowledge,  ///< PK-RI: D_BK restricted to a random attribute subset
};

struct ReidentConfig {
  /// Anonymity-set sizes to evaluate (paper: top-1 and top-10).
  std::vector<int> top_k = {1, 10};
  /// Number of target users evaluated (uniform subsample); <= 0 means all.
  /// RID-ACC is a per-user mean, so subsampling the targets estimates the
  /// same quantity at a fraction of the O(n^2) matching cost.
  int max_targets = 3000;
  /// Fraction of background-knowledge cells replaced with a uniformly
  /// random other value before matching, in [0, 1]. The paper matches
  /// against an exact copy of the collected dataset (bk_noise = 0); real
  /// background knowledge (census releases, stale profiles) is noisy, and
  /// this knob measures how fast the attack degrades with it (abl10).
  double bk_noise = 0.0;
};

struct ReidentResult {
  /// RID-ACC(%) for each entry of ReidentConfig::top_k.
  std::vector<double> rid_acc_percent;
};

/// Runs the matching algorithm R + decision algorithm G of Section 3.2.4.
///
/// `profiles[i]` is the inferred profile of user i, whose true record is row
/// i of `background` (the paper uses the collected dataset itself as D_BK).
/// `bk_attributes[a]` marks the attributes present in the adversary's
/// background knowledge; profile entries outside it are ignored.
///
/// Distance between a profile and a record is the Hamming distance over the
/// profile's attributes (the LDP encodings carry no value metric, Section
/// 3.2.4). For each target, the decision algorithm returns the *expected*
/// top-k hit rate under uniformly random tie-breaking: with c_less records
/// strictly closer than the user's own record and c_eq records at the same
/// distance (the record itself included), the probability that the true
/// record lands in the top-k list is clamp((k - c_less) / c_eq, 0, 1). This
/// matches materializing a random top-k list in expectation, without the
/// variance.
ReidentResult ReidentAccuracy(const std::vector<Profile>& profiles,
                              const data::Dataset& background,
                              const std::vector<bool>& bk_attributes,
                              const ReidentConfig& config, Rng& rng);

/// Convenience: FK-RI uses every attribute; PK-RI draws a random subset of
/// at least ceil(d/2) attributes (Appendix C.2).
std::vector<bool> MakeBackgroundAttributes(int d, ReidentModel model,
                                           Rng& rng);

/// Random-guess baseline: expected RID-ACC(%) = 100 * top_k / n.
double BaselineRidAcc(int top_k, int n);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_REIDENT_H_
