#include "attack/uniqueness.h"

#include <algorithm>
#include <unordered_map>

#include "core/check.h"
#include "fo/analytic_acc.h"

namespace ldpr::attack {

namespace {

/// 64-bit FNV-1a over the projected record, used to bucket profiles.
struct ProfileHash {
  std::size_t operator()(const std::vector<int>& profile) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (int v : profile) {
      h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

double UniquenessProfile::ExpectedTopKHit(int top_k) const {
  LDPR_REQUIRE(top_k >= 1, "top_k must be >= 1, got " << top_k);
  if (num_users == 0) return 0.0;
  double hit = 0.0;
  for (const auto& [size, count] : class_size_counts) {
    // `count` classes of `size` users each; every user in such a class is
    // shortlisted with probability min(k, size)/size.
    const double per_user =
        static_cast<double>(std::min<long long>(top_k, size)) / size;
    hit += per_user * static_cast<double>(size) * count;
  }
  return hit / static_cast<double>(num_users);
}

UniquenessProfile ComputeUniqueness(const data::Dataset& dataset,
                                    const std::vector<int>& attributes) {
  std::vector<int> attrs = attributes;
  if (attrs.empty()) {
    attrs.resize(dataset.d());
    for (int j = 0; j < dataset.d(); ++j) attrs[j] = j;
  }
  for (int j : attrs) {
    LDPR_REQUIRE(j >= 0 && j < dataset.d(),
                 "attribute index " << j << " out of range for d="
                                    << dataset.d());
  }

  std::unordered_map<std::vector<int>, long long, ProfileHash> classes;
  classes.reserve(dataset.n());
  std::vector<int> profile(attrs.size());
  for (int i = 0; i < dataset.n(); ++i) {
    for (std::size_t a = 0; a < attrs.size(); ++a) {
      profile[a] = dataset.value(i, attrs[a]);
    }
    ++classes[profile];
  }

  UniquenessProfile out;
  out.num_users = dataset.n();
  out.num_classes = static_cast<long long>(classes.size());
  long long unique_users = 0;
  double size_weighted = 0.0;
  for (const auto& [key, size] : classes) {
    ++out.class_size_counts[size];
    if (size == 1) ++unique_users;
    size_weighted += static_cast<double>(size) * size;
  }
  if (dataset.n() > 0) {
    out.unique_fraction =
        static_cast<double>(unique_users) / static_cast<double>(dataset.n());
    out.mean_class_size = size_weighted / static_cast<double>(dataset.n());
  }
  return out;
}

std::vector<UniquenessCurvePoint> UniquenessCurve(const data::Dataset& dataset,
                                                  int subsets_per_size,
                                                  Rng& rng) {
  LDPR_REQUIRE(subsets_per_size >= 1,
               "subsets_per_size must be >= 1, got " << subsets_per_size);
  std::vector<UniquenessCurvePoint> curve;
  curve.reserve(dataset.d());
  for (int m = 1; m <= dataset.d(); ++m) {
    UniquenessCurvePoint point;
    point.num_attributes = m;
    // All subsets coincide at m = d; average only where sampling matters.
    const int samples = (m == dataset.d()) ? 1 : subsets_per_size;
    for (int s = 0; s < samples; ++s) {
      std::vector<int> attrs = rng.SampleWithoutReplacement(dataset.d(), m);
      UniquenessProfile profile = ComputeUniqueness(dataset, attrs);
      point.unique_fraction += profile.unique_fraction;
      point.expected_top1 += profile.ExpectedTopKHit(1);
      point.expected_top10 += profile.ExpectedTopKHit(10);
    }
    point.unique_fraction /= samples;
    point.expected_top1 /= samples;
    point.expected_top10 /= samples;
    curve.push_back(point);
  }
  return curve;
}

double PredictedRidAccPercent(const data::Dataset& dataset,
                              const std::vector<int>& attributes,
                              fo::Protocol protocol, double epsilon,
                              int top_k) {
  LDPR_REQUIRE(!attributes.empty(), "attributes must be non-empty");
  std::vector<int> domain_sizes;
  domain_sizes.reserve(attributes.size());
  for (int j : attributes) domain_sizes.push_back(dataset.domain_size(j));
  const double acc_profile =
      fo::ExpectedAccUniform(protocol, epsilon, domain_sizes);
  const UniquenessProfile profile = ComputeUniqueness(dataset, attributes);
  return 100.0 * acc_profile * profile.ExpectedTopKHit(top_k);
}

}  // namespace ldpr::attack
