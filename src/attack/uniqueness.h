#ifndef LDPR_ATTACK_UNIQUENESS_H_
#define LDPR_ATTACK_UNIQUENESS_H_

#include <map>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "fo/frequency_oracle.h"

namespace ldpr::attack {

/// Anonymity-set ("uniqueness") analysis of a population.
///
/// Section 3.2.4 observes that the re-identification success "depends on
/// the accuracy of partially or completely profiling the target user (Eqs. 4
/// and 5) and the 'uniqueness' of users with respect to the collected
/// attributes"; Section 8 names formalizing that dependence as future work.
/// This module supplies the uniqueness half: equivalence-class statistics of
/// a dataset under an attribute subset, and the resulting closed-form
/// prediction of the attacker's RID-ACC,
///
///   predicted RID-ACC(top-k) = ACC_profile * E_user[ min(k, c_user)/c_user ]
///
/// where c_user is the size of the user's equivalence class (a correctly
/// profiled target matches exactly its class; the decider breaks ties
/// uniformly, landing the target in the top-k shortlist with probability
/// min(k, c)/c) and ACC_profile is Eq. 4 / Eq. 5. Mis-profiled users are
/// counted as misses, making the prediction a first-order lower bound that
/// the empirical pipeline (attack/reident) can be checked against.

/// Equivalence-class statistics of `dataset` projected onto `attributes`
/// (all attributes when empty).
struct UniquenessProfile {
  long long num_users = 0;
  long long num_classes = 0;        ///< distinct profiles
  double unique_fraction = 0.0;     ///< users whose class has size 1
  double mean_class_size = 0.0;     ///< user-averaged class size
  /// Class-size histogram: size -> number of classes of that size.
  std::map<long long, long long> class_size_counts;

  /// Expected top-k shortlist hit rate under perfect profiling:
  /// E_user[min(k, c)/c].
  double ExpectedTopKHit(int top_k) const;
};

UniquenessProfile ComputeUniqueness(const data::Dataset& dataset,
                                    const std::vector<int>& attributes = {});

/// One point of the uniqueness-versus-#attributes curve.
struct UniquenessCurvePoint {
  int num_attributes = 0;
  double unique_fraction = 0.0;
  double expected_top1 = 0.0;
  double expected_top10 = 0.0;
};

/// Sweeps m = 1..d attributes; each point averages `subsets_per_size`
/// uniformly random attribute subsets of size m.
std::vector<UniquenessCurvePoint> UniquenessCurve(const data::Dataset& dataset,
                                                  int subsets_per_size,
                                                  Rng& rng);

/// Closed-form predicted RID-ACC (percent) for the SMP + FK-RI pipeline with
/// the uniform privacy metric: Eq. 4 profiling accuracy over `attributes`
/// times the dataset's expected top-k hit rate on those attributes.
double PredictedRidAccPercent(const data::Dataset& dataset,
                              const std::vector<int>& attributes,
                              fo::Protocol protocol, double epsilon,
                              int top_k);

}  // namespace ldpr::attack

#endif  // LDPR_ATTACK_UNIQUENESS_H_
