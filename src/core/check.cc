#include "core/check.h"

namespace ldpr::internal {

namespace {
std::string Format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& message) {
  std::ostringstream oss;
  oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) oss << " — " << message;
  return oss.str();
}
}  // namespace

void FailRequire(const char* expr, const char* file, int line,
                 const std::string& message) {
  throw InvalidArgumentError(Format("LDPR_REQUIRE", expr, file, line, message));
}

void FailCheck(const char* expr, const char* file, int line,
               const std::string& message) {
  throw InternalError(Format("LDPR_CHECK", expr, file, line, message));
}

}  // namespace ldpr::internal
