#ifndef LDPR_CORE_CHECK_H_
#define LDPR_CORE_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace ldpr {

/// Thrown by LDPR_REQUIRE when a caller violates an API precondition
/// (e.g. a non-positive privacy budget or an out-of-range domain size).
class InvalidArgumentError : public std::invalid_argument {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Thrown by LDPR_CHECK when an internal invariant is broken. Reaching this
/// indicates a bug in ldpr itself rather than bad caller input.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] void FailRequire(const char* expr, const char* file, int line,
                              const std::string& message);
[[noreturn]] void FailCheck(const char* expr, const char* file, int line,
                            const std::string& message);
}  // namespace internal

}  // namespace ldpr

/// Validates a caller-supplied precondition; throws InvalidArgumentError with
/// a formatted message on failure. `msg` may use stream syntax:
///   LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
#define LDPR_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream ldpr_oss_;                                          \
      ldpr_oss_ << msg;                                                      \
      ::ldpr::internal::FailRequire(#cond, __FILE__, __LINE__,               \
                                    ldpr_oss_.str());                        \
    }                                                                        \
  } while (0)

/// Validates an internal invariant; throws InternalError on failure.
#define LDPR_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream ldpr_oss_;                                          \
      ldpr_oss_ << msg;                                                      \
      ::ldpr::internal::FailCheck(#cond, __FILE__, __LINE__,                 \
                                  ldpr_oss_.str());                          \
    }                                                                        \
  } while (0)

#endif  // LDPR_CORE_CHECK_H_
