#include "core/flags.h"

#include <cstdlib>

namespace ldpr {

int GetEnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<int>(v);
}

double GetEnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  double v = std::strtod(env, &end);
  if (end == env) return fallback;
  return v;
}

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return env;
}

bool GetEnvBool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

int NumRuns() { return GetEnvInt("LDPR_RUNS", 3); }

int ReidentTargets() { return GetEnvInt("LDPR_REIDENT_TARGETS", 3000); }

double DatasetScale() {
  double s = GetEnvDouble("LDPR_SCALE", 1.0);
  if (s <= 0.0 || s > 1.0) return 1.0;
  return s;
}

}  // namespace ldpr
