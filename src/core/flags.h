#ifndef LDPR_CORE_FLAGS_H_
#define LDPR_CORE_FLAGS_H_

#include <string>

namespace ldpr {

/// Environment-variable readers used by the experiment subsystem to scale
/// runs (number of repetitions, re-identification target subsample, dataset
/// scale) without recompiling — see exp::RunProfile for the full knob table.
/// Each returns `fallback` when the variable is unset or unparsable.
int GetEnvInt(const char* name, int fallback);
double GetEnvDouble(const char* name, double fallback);
std::string GetEnvString(const char* name, const std::string& fallback);

/// Boolean env knob: unset/"" -> fallback; "0"/"false"/"off"/"no" -> false;
/// anything else -> true. Used by LDPR_SMOKE and the CLI.
bool GetEnvBool(const char* name, bool fallback);

/// Number of experiment repetitions (paper: 20). Env LDPR_RUNS, default 3.
int NumRuns();

/// Number of target users evaluated by the O(n * |D_BK|) re-identification
/// matcher. Env LDPR_REIDENT_TARGETS, default 3000; <= 0 means all users.
int ReidentTargets();

/// Global dataset scale factor in (0, 1]. Env LDPR_SCALE, default 1.0.
/// Benches multiply dataset sizes by this to trade fidelity for speed.
double DatasetScale();

}  // namespace ldpr

#endif  // LDPR_CORE_FLAGS_H_
