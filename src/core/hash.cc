#include "core/hash.h"

#include <cstring>

#include "core/check.h"

namespace ldpr {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace {

// The primes and rotate live in core/hash.h (hash_detail) so the inline
// 8-byte fast path and this generic implementation share one definition.
constexpr std::uint64_t kPrime1 = hash_detail::kXxPrime1;
constexpr std::uint64_t kPrime2 = hash_detail::kXxPrime2;
constexpr std::uint64_t kPrime3 = hash_detail::kXxPrime3;
constexpr std::uint64_t kPrime4 = hash_detail::kXxPrime4;
constexpr std::uint64_t kPrime5 = hash_detail::kXxPrime5;

constexpr std::uint64_t Rotl(std::uint64_t x, int r) {
  return hash_detail::XxRotl(x, r);
}

std::uint64_t Read64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t Read32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

std::uint64_t MergeRound(std::uint64_t acc, std::uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

}  // namespace

std::uint64_t XxHash64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + len;
  std::uint64_t h;

  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      p += 8;
      v2 = Round(v2, Read64(p));
      p += 8;
      v3 = Round(v3, Read64(p));
      p += 8;
      v4 = Round(v4, Read64(p));
      p += 8;
    } while (p + 32 <= end);
    h = Rotl(v1, 1) + Rotl(v2, 7) + Rotl(v3, 12) + Rotl(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(len);

  while (p + 8 <= end) {
    h ^= Round(0, Read64(p));
    h = Rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(Read32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

UniversalHash::UniversalHash(std::uint64_t seed, int g) : seed_(seed), g_(g) {
  LDPR_REQUIRE(g >= 1, "UniversalHash output domain g must be >= 1, got " << g);
}

int UniversalHash::operator()(int v) const {
  // The 8-byte specialization of XxHash64 (same output, pinned by
  // core_hash_test); on little-endian targets the hashed word is just v.
  std::uint64_t x = static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  return static_cast<int>(XxHash64Len8(seed_, XxHash64Len8Mix(x)) %
                          static_cast<std::uint64_t>(g_));
}

}  // namespace ldpr
