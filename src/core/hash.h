#ifndef LDPR_CORE_HASH_H_
#define LDPR_CORE_HASH_H_

#include <cstdint>

namespace ldpr {

/// Strong 64-bit bit mixer (SplitMix64 finalizer). Used for seed derivation
/// and as the core of the universal hash family.
std::uint64_t Mix64(std::uint64_t x);

/// xxHash64 of an arbitrary byte buffer. Self-contained implementation
/// (no third-party dependency); matches the reference xxHash64 output.
std::uint64_t XxHash64(const void* data, std::size_t len, std::uint64_t seed);

/// Universal hash family over small integers, H_seed : Z -> [0, g).
///
/// OLH (optimal local hashing) requires each user to pick a hash function
/// H uniformly from a universal family mapping the attribute domain [k] to
/// the reduced domain [g]. We index the family by a 64-bit seed; the function
/// is h(v) = xxhash64(v, seed) mod g.
class UniversalHash {
 public:
  /// Creates the hash function with the given family index (seed) and output
  /// domain size g >= 1.
  UniversalHash(std::uint64_t seed, int g);

  /// Hash of value v into [0, g).
  int operator()(int v) const;

  std::uint64_t seed() const { return seed_; }
  int g() const { return g_; }

 private:
  std::uint64_t seed_;
  int g_;
};

}  // namespace ldpr

#endif  // LDPR_CORE_HASH_H_
