#ifndef LDPR_CORE_HASH_H_
#define LDPR_CORE_HASH_H_

#include <cstdint>

namespace ldpr {

/// Strong 64-bit bit mixer (SplitMix64 finalizer). Used for seed derivation
/// and as the core of the universal hash family.
std::uint64_t Mix64(std::uint64_t x);

/// xxHash64 of an arbitrary byte buffer. Self-contained implementation
/// (no third-party dependency); matches the reference xxHash64 output.
std::uint64_t XxHash64(const void* data, std::size_t len, std::uint64_t seed);

namespace hash_detail {
inline constexpr std::uint64_t kXxPrime1 = 0x9E3779B185EBCA87ULL;
inline constexpr std::uint64_t kXxPrime2 = 0xC2B2AE3D27D4EB4FULL;
inline constexpr std::uint64_t kXxPrime3 = 0x165667B19E3779F9ULL;
inline constexpr std::uint64_t kXxPrime4 = 0x85EBCA77C2B2AE63ULL;
inline constexpr std::uint64_t kXxPrime5 = 0x27D4EB2F165667C5ULL;

inline constexpr std::uint64_t XxRotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}
}  // namespace hash_detail

/// The two halves of XxHash64 specialized to an 8-byte input, split at the
/// seam between input-only and seed-dependent work:
///
///   XxHash64(&w, 8, seed) == XxHash64Len8(seed, XxHash64Len8Mix(w))
///
/// for the native-endian bytes of `w` (core_hash_test pins the identity).
/// The mix half depends only on the input, so the batched OLH decode kernel
/// hoists it out of its per-report loop: one mix per candidate value, then a
/// cheap per-(report, value) finish against each report's seed.
inline std::uint64_t XxHash64Len8Mix(std::uint64_t word) {
  using namespace hash_detail;
  return XxRotl(word * kXxPrime2, 31) * kXxPrime1;
}

/// Seed-only bias of the 8-byte path (the length fold), hoistable per
/// report: XxHash64Len8(seed, mix) ==
/// XxHash64Len8Finish(XxHash64Len8Preseed(seed), mix).
inline std::uint64_t XxHash64Len8Preseed(std::uint64_t seed) {
  return seed + hash_detail::kXxPrime5 + 8;
}

inline std::uint64_t XxHash64Len8Finish(std::uint64_t preseed,
                                        std::uint64_t mix) {
  using namespace hash_detail;
  std::uint64_t h = preseed ^ mix;
  h = XxRotl(h, 27) * kXxPrime1 + kXxPrime4;
  h ^= h >> 33;
  h *= kXxPrime2;
  h ^= h >> 29;
  h *= kXxPrime3;
  h ^= h >> 32;
  return h;
}

inline std::uint64_t XxHash64Len8(std::uint64_t seed, std::uint64_t mix) {
  return XxHash64Len8Finish(XxHash64Len8Preseed(seed), mix);
}

/// Universal hash family over small integers, H_seed : Z -> [0, g).
///
/// OLH (optimal local hashing) requires each user to pick a hash function
/// H uniformly from a universal family mapping the attribute domain [k] to
/// the reduced domain [g]. We index the family by a 64-bit seed; the function
/// is h(v) = xxhash64(v, seed) mod g.
class UniversalHash {
 public:
  /// Creates the hash function with the given family index (seed) and output
  /// domain size g >= 1.
  UniversalHash(std::uint64_t seed, int g);

  /// Hash of value v into [0, g).
  int operator()(int v) const;

  std::uint64_t seed() const { return seed_; }
  int g() const { return g_; }

 private:
  std::uint64_t seed_;
  int g_;
};

}  // namespace ldpr

#endif  // LDPR_CORE_HASH_H_
