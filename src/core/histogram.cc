#include "core/histogram.h"

#include <algorithm>

#include "core/check.h"

namespace ldpr {

std::vector<long long> CountValues(const std::vector<int>& values, int k) {
  LDPR_REQUIRE(k >= 1, "CountValues requires k >= 1, got " << k);
  std::vector<long long> counts(k, 0);
  for (int v : values) {
    LDPR_REQUIRE(v >= 0 && v < k, "value " << v << " outside domain [0, " << k
                                           << ")");
    ++counts[v];
  }
  return counts;
}

std::vector<double> EmpiricalFrequency(const std::vector<int>& values, int k) {
  LDPR_REQUIRE(!values.empty(), "EmpiricalFrequency requires non-empty input");
  std::vector<long long> counts = CountValues(values, k);
  std::vector<double> freq(k);
  for (int i = 0; i < k; ++i) {
    freq[i] = static_cast<double>(counts[i]) / values.size();
  }
  return freq;
}

std::vector<double> ProjectToSimplex(const std::vector<double>& freq) {
  std::vector<double> out(freq.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    out[i] = std::clamp(freq[i], 0.0, 1.0);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate estimate: fall back to uniform.
    std::fill(out.begin(), out.end(), 1.0 / out.size());
    return out;
  }
  for (double& v : out) v /= sum;
  return out;
}

}  // namespace ldpr
