#ifndef LDPR_CORE_HISTOGRAM_H_
#define LDPR_CORE_HISTOGRAM_H_

#include <vector>

namespace ldpr {

/// Counts occurrences of each value in [0, k) within `values`.
/// Values outside [0, k) are rejected (LDPR_REQUIRE).
std::vector<long long> CountValues(const std::vector<int>& values, int k);

/// Normalized empirical frequency of each value in [0, k).
std::vector<double> EmpiricalFrequency(const std::vector<int>& values, int k);

/// Clamps each entry to [0, 1] and re-normalizes to sum to 1. Standard
/// post-processing for LDP frequency estimates, which can be negative or
/// exceed 1 before projection.
std::vector<double> ProjectToSimplex(const std::vector<double>& freq);

}  // namespace ldpr

#endif  // LDPR_CORE_HISTOGRAM_H_
