#include "core/metrics.h"

#include <cmath>

#include "core/check.h"

namespace ldpr {

double Mse(const std::vector<double>& truth, const std::vector<double>& est) {
  LDPR_REQUIRE(truth.size() == est.size() && !truth.empty(),
               "Mse requires equal-sized non-empty vectors");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - est[i];
    acc += d * d;
  }
  return acc / truth.size();
}

double MseAvg(const std::vector<std::vector<double>>& truth,
              const std::vector<std::vector<double>>& est) {
  LDPR_REQUIRE(truth.size() == est.size() && !truth.empty(),
               "MseAvg requires equal-sized non-empty attribute lists");
  double acc = 0.0;
  for (std::size_t j = 0; j < truth.size(); ++j) acc += Mse(truth[j], est[j]);
  return acc / truth.size();
}

double AccuracyPercent(const std::vector<int>& truth,
                       const std::vector<int>& predicted) {
  LDPR_REQUIRE(truth.size() == predicted.size() && !truth.empty(),
               "AccuracyPercent requires equal-sized non-empty vectors");
  long long correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return 100.0 * static_cast<double>(correct) / truth.size();
}

int ArgMax(const std::vector<double>& v) {
  LDPR_REQUIRE(!v.empty(), "ArgMax requires a non-empty vector");
  int best = 0;
  for (int i = 1; i < static_cast<int>(v.size()); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

double Mean(const std::vector<double>& v) {
  LDPR_REQUIRE(!v.empty(), "Mean requires a non-empty vector");
  double s = 0.0;
  for (double x : v) s += x;
  return s / v.size();
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / (v.size() - 1));
}

}  // namespace ldpr
