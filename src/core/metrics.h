#ifndef LDPR_CORE_METRICS_H_
#define LDPR_CORE_METRICS_H_

#include <vector>

namespace ldpr {

/// Mean squared error between a true and an estimated frequency vector.
double Mse(const std::vector<double>& truth, const std::vector<double>& est);

/// The paper's utility metric (Section 5.2.2):
///   MSE_avg = (1/d) * sum_j (1/k_j) * sum_v (f_j(v) - fhat_j(v))^2.
double MseAvg(const std::vector<std::vector<double>>& truth,
              const std::vector<std::vector<double>>& est);

/// Fraction of positions where the two label vectors agree, in percent.
/// This is the paper's ACC / AIF-ACC metric shape.
double AccuracyPercent(const std::vector<int>& truth,
                       const std::vector<int>& predicted);

/// Index of the maximum element (first one on ties).
int ArgMax(const std::vector<double>& v);

/// Mean of a sample.
double Mean(const std::vector<double>& v);

/// Unbiased sample standard deviation (0 for fewer than two samples).
double StdDev(const std::vector<double>& v);

}  // namespace ldpr

#endif  // LDPR_CORE_METRICS_H_
