#include "core/parallel.h"

#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace ldpr {

namespace {
// Depth of ParallelFor regions on this thread. Work scheduled from inside a
// worker (e.g. a sharded simulation launched by a grid cell that is itself
// running on the pool) executes inline instead of spawning a second layer of
// threads: the outer region already saturates the machine, and every caller
// in the tree is deterministic w.r.t. thread count by construction.
thread_local int tl_parallel_depth = 0;
}  // namespace

bool InParallelRegion() { return tl_parallel_depth > 0; }

int DefaultThreadCount() {
  if (const char* env = std::getenv("LDPR_THREADS")) {
    int v = std::atoi(env);
    if (v >= 1) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(long long begin, long long end,
                 const std::function<void(long long)>& fn, int threads) {
  if (begin >= end) return;
  const long long count = end - begin;
  int workers = threads > 0 ? threads : DefaultThreadCount();
  if (workers > count) workers = static_cast<int>(count);

  if (workers <= 1 || InParallelRegion()) {
    for (long long i = begin; i < end; ++i) fn(i);
    return;
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const long long chunk = (count + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    long long lo = begin + w * chunk;
    long long hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&, lo, hi]() {
      ++tl_parallel_depth;
      try {
        for (long long i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelForShards(long long n, int num_shards,
                       const std::function<void(int, long long, long long)>& fn,
                       int threads) {
  if (num_shards <= 0) return;
  const long long chunk = (n + num_shards - 1) / num_shards;
  ParallelFor(
      0, num_shards,
      [&](long long shard) {
        const long long lo = std::min(n, shard * chunk);
        const long long hi = std::min(n, lo + chunk);
        fn(static_cast<int>(shard), lo, hi);
      },
      threads);
}

}  // namespace ldpr
