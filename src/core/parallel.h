#ifndef LDPR_CORE_PARALLEL_H_
#define LDPR_CORE_PARALLEL_H_

#include <functional>

namespace ldpr {

/// Number of worker threads ParallelFor will use. Reads the LDPR_THREADS
/// environment variable, falling back to the hardware concurrency.
int DefaultThreadCount();

/// Runs fn(i) for every i in [begin, end) across `threads` workers
/// (DefaultThreadCount() when threads <= 0). Blocks until all complete.
/// The iteration space is split into contiguous chunks, so fn should be
/// roughly uniform in cost; exceptions thrown by fn are rethrown on the
/// calling thread (the first one captured).
void ParallelFor(long long begin, long long end,
                 const std::function<void(long long)>& fn, int threads = 0);

}  // namespace ldpr

#endif  // LDPR_CORE_PARALLEL_H_
