#ifndef LDPR_CORE_PARALLEL_H_
#define LDPR_CORE_PARALLEL_H_

#include <functional>

namespace ldpr {

/// Number of worker threads ParallelFor will use. Reads the LDPR_THREADS
/// environment variable, falling back to the hardware concurrency.
int DefaultThreadCount();

/// True when the calling thread is itself a ParallelFor worker. Nested
/// ParallelFor/ParallelForShards calls detect this and run inline (serially)
/// instead of spawning a second layer of threads, so outer-level parallelism
/// — e.g. the experiment grid runner fanning (trial, grid-point) cells over
/// the pool — composes with the sharded simulation engine inside each cell
/// without oversubscription. Results are unaffected: every caller is
/// deterministic w.r.t. the thread count by construction.
bool InParallelRegion();

/// Runs fn(i) for every i in [begin, end) across `threads` workers
/// (DefaultThreadCount() when threads <= 0). Blocks until all complete.
/// The iteration space is split into contiguous chunks, so fn should be
/// roughly uniform in cost; exceptions thrown by fn are rethrown on the
/// calling thread (the first one captured).
void ParallelFor(long long begin, long long end,
                 const std::function<void(long long)>& fn, int threads = 0);

/// Splits [0, n) into `num_shards` contiguous ranges and runs
/// fn(shard, begin, end) for each across the worker pool. Shard boundaries
/// depend only on (n, num_shards) — never on the thread count — so callers
/// that seed one RNG stream per shard get results that are reproducible
/// under any LDPR_THREADS setting. Shards with an empty range still run
/// (with begin == end) so per-shard outputs stay index-stable.
void ParallelForShards(long long n, int num_shards,
                       const std::function<void(int, long long, long long)>& fn,
                       int threads = 0);

}  // namespace ldpr

#endif  // LDPR_CORE_PARALLEL_H_
