#include "core/rng.h"

#include <cmath>

#include "core/check.h"
#include "core/hash.h"

namespace ldpr {

Rng::Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

Rng Rng::Split() {
  // Children are seeded by hashing (root seed, counter) so that sibling
  // streams are decorrelated regardless of how much the parent has advanced.
  std::uint64_t child_seed = Mix64(seed_ ^ Mix64(++split_counter_));
  return Rng(child_seed);
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Same hash construction as Split, but stateless and salted into a
  // different stream family so Fork(i) never aliases the i-th Split child.
  constexpr std::uint64_t kForkSalt = 0xA5B35705987C29E1ULL;
  return Rng(Mix64(seed_ ^ kForkSalt ^ Mix64(stream ^ kForkSalt)));
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  LDPR_CHECK(n > 0, "UniformInt requires n > 0");
  std::uniform_int_distribution<std::uint64_t> dist(0, n - 1);
  return dist(engine_);
}

std::int64_t Rng::UniformRange(std::int64_t lo, std::int64_t hi) {
  LDPR_CHECK(lo <= hi, "UniformRange requires lo <= hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::UniformReal() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformReal() < p;
}

double Rng::Laplace(double b) {
  double u = UniformReal() - 0.5;
  return -b * std::copysign(std::log(1.0 - 2.0 * std::abs(u)), u);
}

double Rng::Exponential(double lambda) {
  std::exponential_distribution<double> dist(lambda);
  return dist(engine_);
}

double Rng::Gaussian() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::Gamma(double shape) {
  std::gamma_distribution<double> dist(shape, 1.0);
  return dist(engine_);
}

int Rng::Binomial(int n, double p) {
  std::binomial_distribution<int> dist(n, p);
  return dist(engine_);
}

long long Rng::Binomial64(long long n, double p) {
  LDPR_CHECK(n >= 0, "Binomial64 requires n >= 0");
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  std::binomial_distribution<long long> dist(n, p);
  return dist(engine_);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int m) {
  std::vector<int> idx;
  SampleWithoutReplacementInto(n, m, &idx);
  idx.resize(m);
  return idx;
}

void Rng::SampleWithoutReplacementInto(int n, int m, std::vector<int>* idx) {
  LDPR_REQUIRE(m >= 0 && m <= n,
               "SampleWithoutReplacement requires 0 <= m <= n, got m=" << m
                                                                       << " n=" << n);
  // Partial Fisher–Yates over an index array. For m much smaller than n a
  // rejection-sampling scheme would use less memory, but callers in ldpr use
  // n = attribute-domain sizes (small), so simplicity wins. Both overloads
  // share this one draw sequence: the fused SS aggregator's bit-identical
  // stream guarantee depends on it.
  idx->resize(n);
  for (int i = 0; i < n; ++i) (*idx)[i] = i;
  for (int i = 0; i < m; ++i) {
    int j = i + static_cast<int>(UniformInt(n - i));
    std::swap((*idx)[i], (*idx)[j]);
  }
}

}  // namespace ldpr
