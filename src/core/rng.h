#ifndef LDPR_CORE_RNG_H_
#define LDPR_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ldpr {

/// Deterministic random-number generator used across the library.
///
/// All randomized components in ldpr take an `Rng&` (or a seed) so every
/// experiment is reproducible from a single root seed. `Split()` derives an
/// independent child generator, which lets parallel workers consume
/// uncorrelated streams without sharing state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL);

  /// Derives an independent child generator. Successive calls yield distinct
  /// streams; the parent's future output is unaffected except for advancing
  /// its split counter.
  Rng Split();

  /// Derives the `stream`-th child generator *without* mutating this one.
  /// Fork(i) always returns the same stream for the same (seed, i), no matter
  /// how much the parent has advanced or split — this is what gives sharded
  /// simulations results that are independent of the worker-thread count.
  /// Fork streams are salted so they never collide with Split children.
  Rng Fork(std::uint64_t stream) const;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double UniformReal();

  /// Bernoulli draw: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard Laplace(0, b) sample.
  double Laplace(double b);

  /// Exponential(lambda) sample.
  double Exponential(double lambda);

  /// Standard normal sample.
  double Gaussian();

  /// Gamma(shape, 1) sample; used by the Dirichlet sampler.
  double Gamma(double shape);

  /// Binomial(n, p) sample.
  int Binomial(int n, double p);

  /// Binomial(n, p) sample for 64-bit n. The closed-form aggregation paths
  /// draw support counts over millions of users in one call, which overflows
  /// the int-based overload.
  long long Binomial64(long long n, double p);

  /// Samples `m` distinct values from {0, ..., n-1} uniformly at random,
  /// without replacement. Requires m <= n. Order of the result is random.
  std::vector<int> SampleWithoutReplacement(int n, int m);

  /// SampleWithoutReplacement into a caller-owned buffer (resized to n; the
  /// first m entries are the sample afterwards). Draws identically to the
  /// allocating overload — hot paths reuse `idx` to keep the RNG stream of
  /// the scalar path while skipping its per-call allocation.
  void SampleWithoutReplacementInto(int n, int m, std::vector<int>* idx);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = UniformInt(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() {
    return std::mt19937_64::min();
  }
  static constexpr result_type max() {
    return std::mt19937_64::max();
  }
  result_type operator()() { return engine_(); }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t split_counter_ = 0;
};

}  // namespace ldpr

#endif  // LDPR_CORE_RNG_H_
