#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"

namespace ldpr {

std::vector<double> Normalize(const std::vector<double>& weights) {
  LDPR_REQUIRE(!weights.empty(), "Normalize requires a non-empty vector");
  double sum = 0.0;
  for (double w : weights) {
    LDPR_REQUIRE(w >= 0.0, "Normalize requires non-negative weights, got " << w);
    sum += w;
  }
  LDPR_REQUIRE(sum > 0.0, "Normalize requires a positive weight sum");
  std::vector<double> out(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = weights[i] / sum;
  return out;
}

std::vector<long long> SampleMultinomial(long long n,
                                         const std::vector<double>& weights,
                                         Rng& rng) {
  LDPR_REQUIRE(n >= 0, "SampleMultinomial requires n >= 0, got " << n);
  const std::vector<double> probs = Normalize(weights);
  const std::size_t k = probs.size();
  std::vector<long long> counts(k, 0);
  long long remaining = n;
  double rest = 1.0;
  for (std::size_t i = 0; i + 1 < k && remaining > 0; ++i) {
    // Conditional on the first i cells, cell i is Binomial(remaining, p/rest).
    const double p = rest > 0.0 ? std::clamp(probs[i] / rest, 0.0, 1.0) : 1.0;
    const long long x = rng.Binomial64(remaining, p);
    counts[i] = x;
    remaining -= x;
    rest -= probs[i];
  }
  counts[k - 1] += remaining;
  return counts;
}

CategoricalSampler::CategoricalSampler(const std::vector<double>& weights)
    : normalized_(Normalize(weights)) {
  const int k = static_cast<int>(normalized_.size());
  prob_.assign(k, 0.0);
  alias_.assign(k, 0);

  // Walker's alias method: split scaled probabilities into "small" (< 1) and
  // "large" (>= 1), pairing each small cell with a large donor.
  std::vector<double> scaled(k);
  for (int i = 0; i < k; ++i) scaled[i] = normalized_[i] * k;

  std::vector<int> small, large;
  small.reserve(k);
  large.reserve(k);
  for (int i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    int s = small.back();
    small.pop_back();
    int l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (int l : large) prob_[l] = 1.0;
  for (int s : small) prob_[s] = 1.0;  // numerical leftovers
}

int CategoricalSampler::Sample(Rng& rng) const {
  int i = static_cast<int>(rng.UniformInt(prob_.size()));
  return rng.UniformReal() < prob_[i] ? i : alias_[i];
}

double BinomialPmf(int i, int n, double p) {
  LDPR_REQUIRE(n >= 0 && i >= 0, "BinomialPmf requires n, i >= 0");
  if (i > n) return 0.0;
  if (p <= 0.0) return i == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return i == n ? 1.0 : 0.0;
  double log_pmf = std::lgamma(n + 1.0) - std::lgamma(i + 1.0) -
                   std::lgamma(n - i + 1.0) + i * std::log(p) +
                   (n - i) * std::log1p(-p);
  return std::exp(log_pmf);
}

std::vector<double> SampleDirichlet(int k, double alpha, Rng& rng) {
  LDPR_REQUIRE(k >= 1 && alpha > 0.0,
               "SampleDirichlet requires k >= 1 and alpha > 0");
  std::vector<double> out(k);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    out[i] = rng.Gamma(alpha);
    sum += out[i];
  }
  if (sum <= 0.0) return std::vector<double>(k, 1.0 / k);
  for (double& v : out) v /= sum;
  return out;
}

std::vector<double> ZipfDistribution(int k, double s) {
  LDPR_REQUIRE(k >= 1 && s > 0.0, "ZipfDistribution requires k >= 1, s > 0");
  std::vector<double> w(k);
  for (int i = 0; i < k; ++i) w[i] = 1.0 / std::pow(i + 1.0, s);
  return Normalize(w);
}

std::vector<double> ExponentialHistogram(int k, double lambda, int samples,
                                         Rng& rng) {
  LDPR_REQUIRE(k >= 1 && lambda > 0.0 && samples >= k,
               "ExponentialHistogram requires k >= 1, lambda > 0, samples >= k");
  std::vector<double> draws(samples);
  double max_v = 0.0;
  for (int i = 0; i < samples; ++i) {
    draws[i] = rng.Exponential(lambda);
    max_v = std::max(max_v, draws[i]);
  }
  std::vector<double> hist(k, 0.0);
  for (double v : draws) {
    int b = std::min(k - 1, static_cast<int>(v / max_v * k));
    hist[b] += 1.0;
  }
  // Guard against empty buckets so downstream samplers stay well-defined.
  for (double& h : hist) h += 1e-9;
  return Normalize(hist);
}

std::vector<double> ZipfHistogram(int k, double s, int samples, Rng& rng) {
  LDPR_REQUIRE(k >= 1 && s > 0.0 && samples >= k,
               "ZipfHistogram requires k >= 1, s > 0, samples >= k");
  // Draw from a truncated Zipf over a large support, then re-bucket into k
  // equal-width buckets, as the paper describes for the "Incorrect" priors.
  const int support = std::max(10 * k, 1000);
  CategoricalSampler zipf(ZipfDistribution(support, s));
  std::vector<double> hist(k, 0.0);
  for (int i = 0; i < samples; ++i) {
    int v = zipf.Sample(rng);
    int b = std::min(k - 1, v * k / support);
    hist[b] += 1.0;
  }
  for (double& h : hist) h += 1e-9;
  return Normalize(hist);
}

}  // namespace ldpr
