#ifndef LDPR_CORE_SAMPLING_H_
#define LDPR_CORE_SAMPLING_H_

#include <vector>

#include "core/rng.h"

namespace ldpr {

/// O(1) sampler from a fixed discrete distribution (Walker's alias method).
///
/// Used everywhere a categorical value must be drawn from a non-uniform
/// distribution: synthetic dataset generation, realistic fake data in
/// RS+RFD, and synthetic-profile generation in the NK attack model.
class CategoricalSampler {
 public:
  /// Builds the sampler from (possibly unnormalized) non-negative weights.
  /// Requires at least one strictly positive weight.
  explicit CategoricalSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to weights.
  int Sample(Rng& rng) const;

  int size() const { return static_cast<int>(prob_.size()); }

  /// Normalized probability of index i (for tests and introspection).
  double probability(int i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;       // alias-table acceptance probabilities
  std::vector<int> alias_;         // alias targets
  std::vector<double> normalized_; // normalized input distribution
};

/// Normalizes non-negative weights to a probability vector.
/// Requires a strictly positive sum.
std::vector<double> Normalize(const std::vector<double>& weights);

/// Samples counts ~ Multinomial(n, Normalize(weights)) with the conditional
/// binomial chain: O(k) Binomial64 draws regardless of n, preserving
/// sum(counts) == n exactly. This is the workhorse of the closed-form
/// multidimensional tally paths, which replace per-user fake-data draws over
/// millions of users with one multinomial per attribute.
std::vector<long long> SampleMultinomial(long long n,
                                         const std::vector<double>& weights,
                                         Rng& rng);

/// Binomial probability mass Bin(i; n, p) = C(n, i) p^i (1-p)^(n-i),
/// computed in log-space for numerical stability. Used by the closed-form
/// attacker-accuracy expressions for UE protocols (Section 3.2.1).
double BinomialPmf(int i, int n, double p);

/// Samples a probability vector from Dirichlet(alpha, ..., alpha) of
/// dimension k. alpha = 1 gives the "Incorrect DIR prior" of Section 5.2.
std::vector<double> SampleDirichlet(int k, double alpha, Rng& rng);

/// Zipf(s) distribution over k buckets: p_i proportional to 1/(i+1)^s.
/// The paper's "Incorrect ZIPF prior" draws 100k Zipf samples and re-buckets;
/// the closed form below is the large-sample limit of that histogram.
std::vector<double> ZipfDistribution(int k, double s);

/// Exponential(lambda) histogram over k buckets, built the way the paper
/// describes: draw `samples` Exp(lambda) values and histogram them into k
/// equal-width buckets over [0, max].
std::vector<double> ExponentialHistogram(int k, double lambda, int samples,
                                         Rng& rng);

/// Zipf histogram built by sampling, mirroring the paper's procedure
/// (100k samples re-bucketed into k buckets).
std::vector<double> ZipfHistogram(int k, double s, int samples, Rng& rng);

}  // namespace ldpr

#endif  // LDPR_CORE_SAMPLING_H_
