#include "core/stats.h"

#include <chrono>
#include <cmath>

#include "core/check.h"

namespace ldpr {

Summary Summarize(const std::vector<double>& values) {
  LDPR_REQUIRE(!values.empty(), "Summarize requires at least one value");
  Summary out;
  out.n = static_cast<long long>(values.size());
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / out.n;
  if (out.n > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - out.mean) * (v - out.mean);
    out.variance = sq / (out.n - 1);
    out.stddev = std::sqrt(out.variance);
    out.stderr_mean = out.stddev / std::sqrt(static_cast<double>(out.n));
  }
  return out;
}

Interval WilsonInterval(long long successes, long long trials, double z) {
  LDPR_REQUIRE(trials >= 1, "WilsonInterval requires trials >= 1");
  LDPR_REQUIRE(successes >= 0 && successes <= trials,
               "successes must lie in [0, trials]");
  LDPR_REQUIRE(z > 0, "z must be positive");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  Interval out;
  out.lo = std::max(0.0, (center - margin) / denom);
  out.hi = std::min(1.0, (center + margin) / denom);
  return out;
}

double ChiSquareStatistic(const std::vector<long long>& observed,
                          const std::vector<double>& expected_probs) {
  LDPR_REQUIRE(observed.size() == expected_probs.size(),
               "observed and expected must align");
  LDPR_REQUIRE(observed.size() >= 2, "need at least two bins");
  long long total = 0;
  for (long long c : observed) {
    LDPR_REQUIRE(c >= 0, "observed counts must be non-negative");
    total += c;
  }
  LDPR_REQUIRE(total >= 1, "need at least one observation");
  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    LDPR_REQUIRE(expected_probs[i] > 0, "expected probabilities must be > 0");
    const double expected = expected_probs[i] * total;
    const double diff = observed[i] - expected;
    statistic += diff * diff / expected;
  }
  return statistic;
}

namespace {

/// Regularized lower incomplete gamma P(a, x) by series expansion
/// (converges quickly for x < a + 1).
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (term < sum * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Regularized upper incomplete gamma Q(a, x) by Lentz's continued fraction
/// (converges quickly for x >= a + 1).
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double ChiSquarePValue(double statistic, int dof) {
  LDPR_REQUIRE(dof >= 1, "dof must be >= 1, got " << dof);
  LDPR_REQUIRE(statistic >= 0, "statistic must be non-negative");
  if (statistic == 0.0) return 1.0;
  const double a = 0.5 * dof;
  const double x = 0.5 * statistic;
  // P-value = Q(a, x) = 1 - P(a, x).
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double GoodnessOfFitPValue(const std::vector<long long>& observed,
                           const std::vector<double>& expected_probs) {
  const double statistic = ChiSquareStatistic(observed, expected_probs);
  return ChiSquarePValue(statistic, static_cast<int>(observed.size()) - 1);
}

std::string FormatRejects(const IngestCounters& c) {
  std::string out = "rejects:";
  ForEachRejectField(c, [&out](const char* name, long long value) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  });
  return out;
}

double MonotonicSeconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace ldpr
