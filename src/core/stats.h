#ifndef LDPR_CORE_STATS_H_
#define LDPR_CORE_STATS_H_

#include <string>
#include <vector>

namespace ldpr {

/// Summary statistics of a sample.
struct Summary {
  long long n = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (n-1 denominator)
  double stddev = 0.0;
  double stderr_mean = 0.0;  ///< stddev / sqrt(n)
};

/// Computes Summary over `values` (requires at least one element; variance
/// terms are 0 for n = 1).
Summary Summarize(const std::vector<double>& values);

/// Wilson score interval for a binomial proportion: the [lo, hi] interval
/// for the true success probability after observing `successes` out of
/// `trials`, at normal quantile `z` (1.96 ~ 95%). Preferred over the normal
/// approximation for the small success counts the attack benches produce.
struct Interval {
  double lo = 0.0;
  double hi = 1.0;
};

Interval WilsonInterval(long long successes, long long trials,
                        double z = 1.96);

/// Pearson chi-square statistic of observed counts against expected
/// probabilities (which must sum to ~1; each expected count must be
/// positive).
double ChiSquareStatistic(const std::vector<long long>& observed,
                          const std::vector<double>& expected_probs);

/// Upper-tail p-value of the chi-square distribution with `dof` degrees of
/// freedom: P[X >= statistic]. Implemented via the regularized incomplete
/// gamma function (series + continued fraction), accurate to ~1e-10 over
/// the ranges the tests use.
double ChiSquarePValue(double statistic, int dof);

/// Convenience: chi-square goodness-of-fit p-value of `observed` counts
/// against `expected_probs` (dof = bins - 1).
double GoodnessOfFitPValue(const std::vector<long long>& observed,
                           const std::vector<double>& expected_probs);

/// Mergeable ingest tallies for streaming report consumers (serve/). One
/// instance lives per collector lane so producers never contend on a shared
/// counter; lanes Merge into the epoch totals at seal time.
struct IngestCounters {
  long long reports = 0;   ///< reports decoded and accumulated
  long long bytes = 0;     ///< wire bytes consumed (accepted reports only)
  long long rejected = 0;  ///< malformed buffers cleanly rejected
  /// Admission-control rejects, one field per serve::RejectReason (the
  /// serve layer counts them via serve::CountReject; they stay zero on
  /// surfaces without that admission stage).
  long long duplicates = 0;    ///< (user, epoch) already delivered a report
  long long rate_limited = 0;  ///< per-user token bucket empty
  long long shed = 0;          ///< dropped by overload shedding
  long long closed_epoch = 0;  ///< arrived with no epoch open

  long long TotalRejected() const {
    return rejected + duplicates + rate_limited + shed + closed_epoch;
  }

  void Merge(const IngestCounters& other) {
    reports += other.reports;
    bytes += other.bytes;
    rejected += other.rejected;
    duplicates += other.duplicates;
    rate_limited += other.rate_limited;
    shed += other.shed;
    closed_epoch += other.closed_epoch;
  }
};

/// Visits every reject field of `c` as (name, value), in declaration order.
/// This is the single enumeration of reject surfaces: the serve-demo footer,
/// the telemetry exporters and the tests all walk rejects through this
/// visitor, so a new reject reason (new field here + a serve::CountReject
/// arm) cannot silently miss one of them. Names match
/// serve::RejectReasonName (pinned by serve_server_test).
template <typename Fn>
void ForEachRejectField(const IngestCounters& c, Fn&& fn) {
  fn("malformed", c.rejected);
  fn("duplicate", c.duplicates);
  fn("rate-limited", c.rate_limited);
  fn("shed", c.shed);
  fn("closed-epoch", c.closed_epoch);
}

/// One-line `rejects: malformed=0 duplicate=800 ...` summary rendered via
/// ForEachRejectField — the format the CI socket smoke greps.
std::string FormatRejects(const IngestCounters& c);

/// Monotonic wall-clock seconds (steady_clock): throughput measurement for
/// the ingest paths. Differences are meaningful; absolute values are not.
double MonotonicSeconds();

}  // namespace ldpr

#endif  // LDPR_CORE_STATS_H_
