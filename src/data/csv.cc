#include "data/csv.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/check.h"

namespace ldpr::data {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, delimiter)) {
    // Trim surrounding whitespace.
    std::size_t b = cell.find_first_not_of(" \t\r");
    std::size_t e = cell.find_last_not_of(" \t\r");
    cells.push_back(b == std::string::npos ? "" : cell.substr(b, e - b + 1));
  }
  return cells;
}

}  // namespace

Dataset LoadCsv(const std::string& path, bool has_header, char delimiter) {
  std::ifstream in(path);
  LDPR_REQUIRE(in.good(), "cannot open CSV file: " << path);

  std::string line;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitLine(line, delimiter);
    if (first && has_header) {
      names = std::move(cells);
      first = false;
      continue;
    }
    first = false;
    rows.push_back(std::move(cells));
  }
  LDPR_REQUIRE(!rows.empty(), "CSV file has no data rows: " << path);

  const std::size_t d = rows[0].size();
  LDPR_REQUIRE(d >= 1, "CSV file has no columns: " << path);
  for (const auto& r : rows) {
    LDPR_REQUIRE(r.size() == d, "ragged CSV row in " << path << " (expected "
                                                     << d << " cells, got "
                                                     << r.size() << ")");
  }

  // Label-encode each column in order of first appearance.
  std::vector<std::unordered_map<std::string, int>> encoders(d);
  std::vector<std::vector<int>> encoded(rows.size(), std::vector<int>(d));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      auto [it, inserted] = encoders[j].try_emplace(
          rows[i][j], static_cast<int>(encoders[j].size()));
      (void)inserted;
      encoded[i][j] = it->second;
    }
  }

  std::vector<int> sizes(d);
  for (std::size_t j = 0; j < d; ++j) {
    sizes[j] = static_cast<int>(encoders[j].size());
    LDPR_REQUIRE(sizes[j] >= 2, "CSV column " << j
                                              << " has fewer than 2 distinct "
                                                 "values; not a usable attribute");
  }

  Dataset ds(sizes, names);
  ds.Reserve(static_cast<int>(rows.size()));
  for (const auto& rec : encoded) ds.AddRecord(rec);
  return ds;
}

void SaveCsv(const Dataset& dataset, const std::string& path, char delimiter) {
  std::ofstream out(path);
  LDPR_REQUIRE(out.good(), "cannot open CSV file for writing: " << path);
  for (int j = 0; j < dataset.d(); ++j) {
    if (j > 0) out << delimiter;
    out << dataset.attribute_name(j);
  }
  out << '\n';
  for (int i = 0; i < dataset.n(); ++i) {
    for (int j = 0; j < dataset.d(); ++j) {
      if (j > 0) out << delimiter;
      out << dataset.value(i, j);
    }
    out << '\n';
  }
}

}  // namespace ldpr::data
