#ifndef LDPR_DATA_CSV_H_
#define LDPR_DATA_CSV_H_

#include <string>

#include "data/dataset.h"

namespace ldpr::data {

/// Loads a categorical dataset from CSV.
///
/// Expected format: an optional header row of attribute names followed by one
/// row per record. Cell values may be arbitrary strings; each column is
/// label-encoded to [0, k_j) in order of first appearance. This is the hook
/// for running the pipelines on the *real* Adult / ACSEmployment / Nursery
/// files when they are available (see DESIGN.md, Substitutions).
Dataset LoadCsv(const std::string& path, bool has_header = true,
                char delimiter = ',');

/// Writes a dataset as integer-coded CSV with a header row.
void SaveCsv(const Dataset& dataset, const std::string& path,
             char delimiter = ',');

}  // namespace ldpr::data

#endif  // LDPR_DATA_CSV_H_
