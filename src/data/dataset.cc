#include "data/dataset.h"

#include "core/check.h"
#include "core/histogram.h"

namespace ldpr::data {

Dataset::Dataset(std::vector<int> domain_sizes,
                 std::vector<std::string> attribute_names)
    : domain_sizes_(std::move(domain_sizes)),
      attribute_names_(std::move(attribute_names)) {
  LDPR_REQUIRE(!domain_sizes_.empty(), "Dataset requires at least 1 attribute");
  for (std::size_t j = 0; j < domain_sizes_.size(); ++j) {
    LDPR_REQUIRE(domain_sizes_[j] >= 2, "attribute " << j
                                                     << " needs domain size >= 2");
  }
  if (attribute_names_.empty()) {
    attribute_names_.reserve(domain_sizes_.size());
    for (std::size_t j = 0; j < domain_sizes_.size(); ++j) {
      // Append instead of operator+(const char*, string&&): the latter trips
      // a GCC 12 -Wrestrict false positive (GCC bug 105329) under -O2.
      std::string name = "A";
      name += std::to_string(j);
      attribute_names_.push_back(std::move(name));
    }
  }
  LDPR_REQUIRE(attribute_names_.size() == domain_sizes_.size(),
               "attribute_names must match domain_sizes in length");
  columns_.resize(domain_sizes_.size());
}

void Dataset::AddRecord(const std::vector<int>& values) {
  LDPR_REQUIRE(static_cast<int>(values.size()) == d(),
               "record has " << values.size() << " values, expected " << d());
  for (int j = 0; j < d(); ++j) {
    LDPR_REQUIRE(values[j] >= 0 && values[j] < domain_sizes_[j],
                 "attribute " << j << " value " << values[j]
                              << " outside [0, " << domain_sizes_[j] << ")");
  }
  for (int j = 0; j < d(); ++j) columns_[j].push_back(values[j]);
  ++n_;
}

void Dataset::Reserve(int n) {
  for (auto& col : columns_) col.reserve(n);
}

int Dataset::domain_size(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return domain_sizes_[attribute];
}

const std::string& Dataset::attribute_name(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return attribute_names_[attribute];
}

int Dataset::value(int user, int attribute) const {
  LDPR_REQUIRE(user >= 0 && user < n_, "user index out of range");
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return columns_[attribute][user];
}

std::vector<int> Dataset::Record(int user) const {
  LDPR_REQUIRE(user >= 0 && user < n_, "user index out of range");
  std::vector<int> rec(d());
  for (int j = 0; j < d(); ++j) rec[j] = columns_[j][user];
  return rec;
}

const std::vector<int>& Dataset::Column(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return columns_[attribute];
}

std::vector<std::vector<double>> Dataset::Marginals() const {
  LDPR_REQUIRE(n_ > 0, "Marginals requires a non-empty dataset");
  std::vector<std::vector<double>> out(d());
  for (int j = 0; j < d(); ++j) {
    out[j] = EmpiricalFrequency(columns_[j], domain_sizes_[j]);
  }
  return out;
}

Dataset Dataset::Project(const std::vector<int>& attributes) const {
  LDPR_REQUIRE(!attributes.empty(), "Project requires at least one attribute");
  std::vector<int> sizes;
  std::vector<std::string> names;
  for (int a : attributes) {
    LDPR_REQUIRE(a >= 0 && a < d(), "attribute " << a << " out of range");
    sizes.push_back(domain_sizes_[a]);
    names.push_back(attribute_names_[a]);
  }
  Dataset out(std::move(sizes), std::move(names));
  out.Reserve(n_);
  std::vector<int> rec(attributes.size());
  for (int i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < attributes.size(); ++j) {
      rec[j] = columns_[attributes[j]][i];
    }
    out.AddRecord(rec);
  }
  return out;
}

Dataset Dataset::Subsample(int m, Rng& rng) const {
  LDPR_REQUIRE(m >= 1 && m <= n_, "Subsample requires 1 <= m <= n");
  std::vector<int> picked = rng.SampleWithoutReplacement(n_, m);
  Dataset out(domain_sizes_, attribute_names_);
  out.Reserve(m);
  for (int i : picked) out.AddRecord(Record(i));
  return out;
}

}  // namespace ldpr::data
