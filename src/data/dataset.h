#ifndef LDPR_DATA_DATASET_H_
#define LDPR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "core/rng.h"

namespace ldpr::data {

/// Columnar multidimensional categorical dataset.
///
/// Mirrors the paper's setting: n users, d attributes A_1..A_d, attribute j
/// taking values in {0, ..., k_j - 1}. Storage is column-major because the
/// estimation and attack pipelines operate one attribute at a time.
class Dataset {
 public:
  /// Creates an empty dataset with the given per-attribute domain sizes
  /// (each k_j >= 2) and optional attribute names.
  explicit Dataset(std::vector<int> domain_sizes,
                   std::vector<std::string> attribute_names = {});

  /// Appends one record; values[j] must lie in [0, k_j).
  void AddRecord(const std::vector<int>& values);

  /// Reserves capacity for n records.
  void Reserve(int n);

  int n() const { return n_; }
  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  int domain_size(int attribute) const;
  const std::string& attribute_name(int attribute) const;

  /// Value of attribute `attribute` for user `user`.
  int value(int user, int attribute) const;

  /// Full record of user `user` (one value per attribute).
  std::vector<int> Record(int user) const;

  /// Read-only access to one attribute column.
  const std::vector<int>& Column(int attribute) const;

  /// Empirical marginal distribution of each attribute
  /// (the ground-truth frequencies the LDP estimators target).
  std::vector<std::vector<double>> Marginals() const;

  /// New dataset containing only the given attributes (in the given order).
  Dataset Project(const std::vector<int>& attributes) const;

  /// New dataset containing a uniform random subsample of `m` records.
  Dataset Subsample(int m, Rng& rng) const;

 private:
  std::vector<int> domain_sizes_;
  std::vector<std::string> attribute_names_;
  std::vector<std::vector<int>> columns_;
  int n_ = 0;
};

}  // namespace ldpr::data

#endif  // LDPR_DATA_DATASET_H_
