#include "data/longitudinal.h"

#include "core/check.h"
#include "core/sampling.h"

namespace ldpr::data {

std::vector<Dataset> GenerateLongitudinal(const Dataset& base,
                                          const LongitudinalConfig& config) {
  LDPR_REQUIRE(config.rounds >= 1, "rounds must be >= 1, got "
                                       << config.rounds);
  LDPR_REQUIRE(config.change_probability >= 0.0 &&
                   config.change_probability <= 1.0,
               "change_probability must lie in [0, 1], got "
                   << config.change_probability);
  LDPR_REQUIRE(base.n() >= 1, "base population must be non-empty");

  Rng rng(config.seed);
  // Resampling distributions: base marginals (stationary) or uniform
  // (population shift toward uniform).
  std::vector<CategoricalSampler> samplers;
  samplers.reserve(base.d());
  if (config.drift == DriftKind::kStationary) {
    for (const auto& marginal : base.Marginals()) {
      samplers.emplace_back(marginal);
    }
  } else {
    for (int k : base.domain_sizes()) {
      samplers.emplace_back(std::vector<double>(k, 1.0 / k));
    }
  }

  std::vector<Dataset> rounds;
  rounds.reserve(config.rounds);
  rounds.push_back(base);
  for (int t = 1; t < config.rounds; ++t) {
    const Dataset& previous = rounds.back();
    Dataset next(previous.domain_sizes());
    next.Reserve(previous.n());
    std::vector<int> record(previous.d());
    for (int i = 0; i < previous.n(); ++i) {
      for (int j = 0; j < previous.d(); ++j) {
        record[j] = rng.Bernoulli(config.change_probability)
                        ? samplers[j].Sample(rng)
                        : previous.value(i, j);
      }
      next.AddRecord(record);
    }
    rounds.push_back(std::move(next));
  }
  return rounds;
}

std::vector<std::vector<int>> GenerateScalarRounds(
    const std::vector<double>& marginal, int num_users,
    const LongitudinalConfig& config) {
  LDPR_REQUIRE(config.rounds >= 1, "rounds must be >= 1, got "
                                       << config.rounds);
  LDPR_REQUIRE(config.change_probability >= 0.0 &&
                   config.change_probability <= 1.0,
               "change_probability must lie in [0, 1], got "
                   << config.change_probability);
  LDPR_REQUIRE(num_users >= 1, "num_users must be >= 1, got " << num_users);
  LDPR_REQUIRE(marginal.size() >= 2, "marginal needs a domain of >= 2");

  Rng rng(config.seed);
  CategoricalSampler base(marginal);
  CategoricalSampler resample(
      config.drift == DriftKind::kStationary
          ? marginal
          : std::vector<double>(marginal.size(), 1.0 / marginal.size()));

  std::vector<std::vector<int>> rounds;
  rounds.reserve(config.rounds);
  rounds.emplace_back(num_users);
  for (int& v : rounds[0]) v = base.Sample(rng);
  for (int t = 1; t < config.rounds; ++t) {
    std::vector<int> next = rounds.back();
    for (int& v : next) {
      if (rng.Bernoulli(config.change_probability)) v = resample.Sample(rng);
    }
    rounds.push_back(std::move(next));
  }
  return rounds;
}

double CellChangeFraction(const Dataset& a, const Dataset& b) {
  LDPR_REQUIRE(a.n() == b.n() && a.d() == b.d(),
               "datasets must have identical shape");
  LDPR_REQUIRE(a.n() >= 1, "datasets must be non-empty");
  long long changed = 0;
  for (int j = 0; j < a.d(); ++j) {
    const std::vector<int>& col_a = a.Column(j);
    const std::vector<int>& col_b = b.Column(j);
    for (int i = 0; i < a.n(); ++i) {
      if (col_a[i] != col_b[i]) ++changed;
    }
  }
  return static_cast<double>(changed) /
         (static_cast<double>(a.n()) * a.d());
}

}  // namespace ldpr::data
