#ifndef LDPR_DATA_LONGITUDINAL_H_
#define LDPR_DATA_LONGITUDINAL_H_

#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace ldpr::data {

/// Longitudinal population model: per-round snapshots of a base population
/// whose cell values drift over time.
///
/// The paper's Section 6 recommends memoization for repeated collections,
/// and the memoization client (multidim/memoization) documents its caveat:
/// cached reports assume the underlying value is static. This generator
/// supplies the missing experimental substrate — a population whose values
/// change with a controlled per-round probability — so the utility cost of
/// stale memoized reports can be measured against the privacy gain
/// (bench fw06_memoization_drift).
///
/// Drift process per user, attribute and round: with probability
/// `change_probability` the value is resampled, otherwise carried over.
/// Rounds are generated sequentially, so round t drifts from round t-1.
/// Two resampling regimes:
///
///   kStationary   resample from the attribute's *base marginal* — churn at
///                 the individual level, stable population distribution
///                 (frozen reports stay unbiased population-wise);
///   kUniformShift resample uniformly over the domain — the population
///                 distribution migrates toward uniform, so stale reports
///                 bias the estimates (the regime where memoization's
///                 staleness caveat actually bites).
enum class DriftKind {
  kStationary,
  kUniformShift,
};

struct LongitudinalConfig {
  int rounds = 12;                  ///< number of snapshots (>= 1)
  double change_probability = 0.1;  ///< per cell per round, in [0, 1]
  DriftKind drift = DriftKind::kStationary;
  std::uint64_t seed = 1;
};

/// Per-round snapshots; result[0] is a copy of `base`.
std::vector<Dataset> GenerateLongitudinal(const Dataset& base,
                                          const LongitudinalConfig& config);

/// Scalar per-round value sequences for the longitudinal serving pipeline:
/// round 0 samples every user's value from `marginal`; each later round
/// resamples a user's value with probability `config.change_probability`
/// (from the marginal under kStationary, uniformly under kUniformShift) and
/// carries it over otherwise. result[t][u] is user u's round-t value —
/// exactly the drift process of GenerateLongitudinal for one attribute,
/// shaped for serve::LongitudinalClients::EncodeRound.
std::vector<std::vector<int>> GenerateScalarRounds(
    const std::vector<double>& marginal, int num_users,
    const LongitudinalConfig& config);

/// Fraction of cells that differ between two equally-shaped datasets
/// (diagnostic for the drift process: expected value after t rounds from a
/// start snapshot is bounded by 1 - (1 - p)^t, with equality when resampling
/// never reproduces the old value).
double CellChangeFraction(const Dataset& a, const Dataset& b);

}  // namespace ldpr::data

#endif  // LDPR_DATA_LONGITUDINAL_H_
