#include "data/priors.h"

#include <algorithm>

#include "core/check.h"
#include "core/sampling.h"

namespace ldpr::data {

const char* PriorKindName(PriorKind kind) {
  switch (kind) {
    case PriorKind::kCorrectLaplace:
      return "Correct";
    case PriorKind::kIncorrectDirichlet:
      return "Incorrect-DIR";
    case PriorKind::kIncorrectZipf:
      return "Incorrect-ZIPF";
    case PriorKind::kIncorrectExponential:
      return "Incorrect-EXP";
    case PriorKind::kUniform:
      return "Uniform";
    case PriorKind::kTrueMarginals:
      return "True";
  }
  return "unknown";
}

std::vector<double> LaplacePerturbedHistogram(const std::vector<double>& truth,
                                              int n, double eps, Rng& rng) {
  LDPR_REQUIRE(n >= 1 && eps > 0.0,
               "LaplacePerturbedHistogram requires n >= 1 and eps > 0");
  // A normalized histogram over n records has L1 sensitivity 2/n (one record
  // change moves 1/n of mass between two bins), so the Laplace scale is
  // 2 / (n * eps).
  const double scale = 2.0 / (static_cast<double>(n) * eps);
  std::vector<double> noisy(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    noisy[i] = std::max(0.0, truth[i] + rng.Laplace(scale));
  }
  double sum = 0.0;
  for (double v : noisy) sum += v;
  if (sum <= 0.0) return std::vector<double>(truth.size(), 1.0 / truth.size());
  for (double& v : noisy) v /= sum;
  return noisy;
}

std::vector<std::vector<double>> BuildPriors(const Dataset& dataset,
                                             PriorKind kind, Rng& rng,
                                             double total_central_eps,
                                             int prior_n) {
  const int d = dataset.d();
  std::vector<std::vector<double>> priors(d);
  constexpr int kHistogramSamples = 100000;  // paper: "one hundred thousand"
  switch (kind) {
    case PriorKind::kCorrectLaplace: {
      const double per_attribute_eps = total_central_eps / d;
      const int n = prior_n > 0 ? prior_n : dataset.n();
      const auto truth = dataset.Marginals();
      for (int j = 0; j < d; ++j) {
        priors[j] =
            LaplacePerturbedHistogram(truth[j], n, per_attribute_eps, rng);
      }
      break;
    }
    case PriorKind::kIncorrectDirichlet:
      for (int j = 0; j < d; ++j) {
        priors[j] = SampleDirichlet(dataset.domain_size(j), 1.0, rng);
      }
      break;
    case PriorKind::kIncorrectZipf:
      for (int j = 0; j < d; ++j) {
        priors[j] =
            ZipfHistogram(dataset.domain_size(j), 1.01, kHistogramSamples, rng);
      }
      break;
    case PriorKind::kIncorrectExponential:
      for (int j = 0; j < d; ++j) {
        priors[j] = ExponentialHistogram(dataset.domain_size(j), 1.0,
                                         kHistogramSamples, rng);
      }
      break;
    case PriorKind::kUniform:
      for (int j = 0; j < d; ++j) {
        priors[j].assign(dataset.domain_size(j),
                         1.0 / dataset.domain_size(j));
      }
      break;
    case PriorKind::kTrueMarginals:
      priors = dataset.Marginals();
      break;
  }
  return priors;
}

}  // namespace ldpr::data
