#ifndef LDPR_DATA_PRIORS_H_
#define LDPR_DATA_PRIORS_H_

#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace ldpr::data {

/// Prior-distribution families used by the RS+RFD countermeasure
/// (Section 5.2.1 and Appendix E).
enum class PriorKind {
  /// "Correct": the true per-attribute marginals perturbed with the central-DP
  /// Laplace mechanism at eps = 0.1/d per attribute.
  kCorrectLaplace,
  /// "Incorrect": one Dirichlet(1) draw per attribute.
  kIncorrectDirichlet,
  /// "Incorrect": Zipf(1.01) histogram (100k samples re-bucketed).
  kIncorrectZipf,
  /// "Incorrect": Exponential(1) histogram (100k samples re-bucketed).
  kIncorrectExponential,
  /// Uniform prior; with this, RS+RFD degenerates to RS+FD exactly.
  kUniform,
  /// The exact true marginals — the noiseless limit of kCorrectLaplace,
  /// modeling perfect domain-expert knowledge. Useful as the best case of
  /// the countermeasure and in tests.
  kTrueMarginals,
};

const char* PriorKindName(PriorKind kind);

/// Builds one prior distribution per attribute, per the paper's recipes.
///
/// For kCorrectLaplace, `dataset` supplies the true marginals; the per-
/// attribute budget is `total_central_eps / d` with sensitivity 2/n for a
/// normalized histogram (the paper uses total eps = 0.1). For the other
/// kinds the dataset only supplies (d, k).
///
/// `prior_n` is the population size behind the released statistics (e.g.
/// national Census counts); it controls the Laplace scale 2/(prior_n * eps).
/// Pass 0 to use dataset.n(). Keeping prior_n at the full census size while
/// simulating a smaller sample mirrors the paper's setting, where priors are
/// published national statistics rather than sample-derived ones.
std::vector<std::vector<double>> BuildPriors(const Dataset& dataset,
                                             PriorKind kind, Rng& rng,
                                             double total_central_eps = 0.1,
                                             int prior_n = 0);

/// Laplace-perturbed normalized histogram: adds Lap(2/(n*eps)) to every bin,
/// clamps at zero and re-normalizes. This is the paper's "Correct" prior.
std::vector<double> LaplacePerturbedHistogram(const std::vector<double>& truth,
                                              int n, double eps, Rng& rng);

}  // namespace ldpr::data

#endif  // LDPR_DATA_PRIORS_H_
