#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/sampling.h"

namespace ldpr::data {

namespace {

/// Zipf distribution over k values whose ranking is a random permutation, so
/// different latent classes (and the background) prefer different values.
std::vector<double> PermutedZipf(int k, double s, Rng& rng) {
  std::vector<double> base = ZipfDistribution(k, s);
  std::vector<int> perm(k);
  for (int i = 0; i < k; ++i) perm[i] = i;
  rng.Shuffle(&perm);
  std::vector<double> out(k);
  for (int i = 0; i < k; ++i) out[perm[i]] = base[i];
  return out;
}

int ScaledN(int n, double scale) {
  // Downscaling shrinks the population for quick runs; upscaling (scale > 1)
  // grows it toward deployment sizes — e.g. the fast profile running the
  // ACSEmployment scenarios at the source paper's true 3.2M users.
  LDPR_REQUIRE(scale > 0.0 && scale <= 1024.0,
               "scale must be in (0, 1024], got " << scale);
  const long long scaled = std::llround(static_cast<double>(n) * scale);
  LDPR_REQUIRE(scaled <= 1'000'000'000, "scaled population too large");
  return std::max(100, static_cast<int>(scaled));
}

}  // namespace

Dataset GenerateSyntheticCensus(const SyntheticCensusConfig& config) {
  LDPR_REQUIRE(config.n >= 1, "n must be >= 1");
  LDPR_REQUIRE(!config.domain_sizes.empty(), "domain_sizes must be non-empty");
  LDPR_REQUIRE(config.num_latent_classes >= 1, "need >= 1 latent class");
  LDPR_REQUIRE(config.noise >= 0.0 && config.noise <= 1.0,
               "noise must be in [0, 1]");
  LDPR_REQUIRE(config.base_mix >= 0.0 && config.base_mix <= 1.0,
               "base_mix must be in [0, 1]");

  Rng rng(config.seed);
  const int d = static_cast<int>(config.domain_sizes.size());
  const int num_classes = config.num_latent_classes;

  // Latent class prior: Zipf, so a few profiles dominate (as demographic
  // clusters do) while the tail creates rare, highly identifying records.
  CategoricalSampler class_prior(ZipfDistribution(num_classes, 1.05));

  // Shared background marginal per attribute: strongly skewed, like real
  // census attributes (majority categories dominate).
  std::vector<std::vector<double>> base(d);
  for (int j = 0; j < d; ++j) {
    base[j] = PermutedZipf(config.domain_sizes[j], config.base_exponent, rng);
  }

  // Per-class conditionals: a base_mix share of the shared background plus a
  // class-specific permuted Zipf. The shared part keeps aggregate marginals
  // skewed; the class part induces correlation and record uniqueness.
  std::vector<std::vector<CategoricalSampler>> conditionals;
  conditionals.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    std::vector<CategoricalSampler> per_attr;
    per_attr.reserve(d);
    for (int j = 0; j < d; ++j) {
      const int kj = config.domain_sizes[j];
      std::vector<double> class_part =
          PermutedZipf(kj, config.zipf_exponent, rng);
      std::vector<double> mixed(kj);
      for (int v = 0; v < kj; ++v) {
        mixed[v] = config.base_mix * base[j][v] +
                   (1.0 - config.base_mix) * class_part[v];
      }
      per_attr.emplace_back(mixed);
    }
    conditionals.push_back(std::move(per_attr));
  }
  std::vector<CategoricalSampler> background;
  background.reserve(d);
  for (int j = 0; j < d; ++j) background.emplace_back(base[j]);

  Dataset ds(config.domain_sizes);
  ds.Reserve(config.n);
  std::vector<int> record(d);
  for (int i = 0; i < config.n; ++i) {
    int c = class_prior.Sample(rng);
    for (int j = 0; j < d; ++j) {
      record[j] = rng.Bernoulli(config.noise)
                      ? background[j].Sample(rng)
                      : conditionals[c][j].Sample(rng);
    }
    ds.AddRecord(record);
  }
  return ds;
}

Dataset AdultLike(std::uint64_t seed, double scale) {
  SyntheticCensusConfig config;
  config.n = ScaledN(45222, scale);
  config.domain_sizes = {74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  config.num_latent_classes = 24;
  config.zipf_exponent = 1.8;
  config.noise = 0.15;
  config.seed = seed;
  return GenerateSyntheticCensus(config);
}

Dataset AcsEmploymentLike(std::uint64_t seed, double scale) {
  SyntheticCensusConfig config;
  config.n = ScaledN(10336, scale);
  config.domain_sizes = {92, 25, 5, 2, 2, 9, 4, 5, 5,
                         4,  2,  18, 2, 2, 3, 9, 3, 6};
  config.num_latent_classes = 16;
  config.zipf_exponent = 1.8;
  config.noise = 0.15;
  config.seed = seed;
  return GenerateSyntheticCensus(config);
}

Dataset NurseryLike(std::uint64_t seed, double scale) {
  // Independent, near-uniform attributes: each marginal is uniform with a
  // small random ripple, and there is no latent structure at all.
  const std::vector<int> k = {3, 5, 4, 4, 3, 2, 3, 3, 5};
  const int n = ScaledN(12959, scale);
  Rng rng(seed);

  std::vector<CategoricalSampler> marginals;
  marginals.reserve(k.size());
  for (int kj : k) {
    std::vector<double> w(kj);
    for (int v = 0; v < kj; ++v) w[v] = 1.0 + 0.05 * rng.UniformReal();
    marginals.emplace_back(w);
  }

  Dataset ds(k);
  ds.Reserve(n);
  std::vector<int> record(k.size());
  for (int i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k.size(); ++j) {
      record[j] = marginals[j].Sample(rng);
    }
    ds.AddRecord(record);
  }
  return ds;
}

}  // namespace ldpr::data
