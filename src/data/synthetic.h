#ifndef LDPR_DATA_SYNTHETIC_H_
#define LDPR_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace ldpr::data {

/// Configuration for the latent-mixture census generator.
///
/// The paper evaluates on Adult (UCI), ACSEmployment (Folktables) and Nursery
/// (UCI). Those files are not available offline, so we synthesize datasets
/// with the paper's exact (n, d, k) and the two statistical properties the
/// attacks actually exploit:
///
///  1. skewed, non-uniform marginals — what the sampled-attribute inference
///     (AIF) classifier learns to separate from uniform fake data;
///  2. inter-attribute correlation producing unique / small-anonymity-set
///     records — what drives re-identification success.
///
/// Records are drawn from a mixture of `num_latent_classes` latent profiles;
/// each profile holds a randomly permuted Zipf conditional per attribute.
/// A per-attribute "noise" probability mixes in a shared background marginal,
/// controlling how deterministic the correlation is.
struct SyntheticCensusConfig {
  int n = 1000;
  std::vector<int> domain_sizes;
  int num_latent_classes = 16;
  /// Zipf exponent of each latent class' class-specific component; larger
  /// values concentrate each class on fewer attribute values (more skew).
  double zipf_exponent = 1.2;
  /// Zipf exponent of the shared background marginal.
  double base_exponent = 1.5;
  /// Weight of the shared background inside every class conditional. The
  /// aggregate marginal skew (what the AIF classifier exploits) grows with
  /// base_mix; the class-specific remainder drives correlation/uniqueness.
  double base_mix = 0.6;
  /// Probability that an attribute value is drawn from the shared background
  /// marginal directly instead of the latent class' conditional.
  double noise = 0.25;
  std::uint64_t seed = 1;
};

/// Draws a dataset from the latent-mixture model above.
Dataset GenerateSyntheticCensus(const SyntheticCensusConfig& config);

/// The paper's population sizes (Section 4.1). Used as the `prior_n` of
/// data::BuildPriors when experiments run on a subsampled population: the
/// Census statistics behind RS+RFD priors are full-population counts
/// regardless of how many users a simulation instantiates.
inline constexpr int kAdultN = 45222;
inline constexpr int kAcsEmploymentN = 10336;
inline constexpr int kNurseryN = 12959;

/// The full ACSEmployment extract of the source paper has ~3.2M users; the
/// synthetic default above is the 10k-scale stand-in the per-user
/// simulations can afford. The closed-form fast profile runs fig05 at the
/// true size via this scale factor (see exp/scenarios/fig05_rsrfd_mse_acs).
inline constexpr int kAcsEmploymentPaperN = 3236107;
inline constexpr double kAcsEmploymentPaperScale =
    static_cast<double>(kAcsEmploymentPaperN) / kAcsEmploymentN;

/// Adult-like dataset: n = 45'222, d = 10,
/// k = [74, 7, 16, 7, 14, 6, 5, 2, 41, 2] (paper Section 4.1).
/// `scale` < 1 shrinks n for quick runs; scale > 1 (up to 1024) grows the
/// population toward deployment sizes.
Dataset AdultLike(std::uint64_t seed, double scale = 1.0);

/// ACSEmployment-like dataset: n = 10'336, d = 18,
/// k = [92, 25, 5, 2, 2, 9, 4, 5, 5, 4, 2, 18, 2, 2, 3, 9, 3, 6].
Dataset AcsEmploymentLike(std::uint64_t seed, double scale = 1.0);

/// Nursery-like dataset: n = 12'959, d = 9, k = [3, 5, 4, 4, 3, 2, 3, 3, 5],
/// with independent near-uniform attributes — the property that makes the
/// AIF attack collapse to the baseline in the paper (Appendix D).
Dataset NurseryLike(std::uint64_t seed, double scale = 1.0);

}  // namespace ldpr::data

#endif  // LDPR_DATA_SYNTHETIC_H_
