#include "exp/aif_figure.h"

#include "exp/grid_runner.h"
#include "exp/grids.h"

namespace ldpr::exp {

namespace {

class RsFdSolution : public AifSolution {
 public:
  RsFdSolution(multidim::RsFdVariant variant, std::vector<int> k, double eps)
      : protocol_(variant, std::move(k), eps) {}

  attack::MultidimClient Client() const override {
    return [this](const std::vector<int>& rec, Rng& r) {
      return protocol_.RandomizeUser(rec, r);
    };
  }
  attack::MultidimEstimator Estimator() const override {
    return [this](const std::vector<multidim::MultidimReport>& reps) {
      return protocol_.Estimate(reps);
    };
  }

 private:
  multidim::RsFd protocol_;
};

class RsRfdSolution : public AifSolution {
 public:
  RsRfdSolution(multidim::RsRfdVariant variant, std::vector<int> k, double eps,
                std::vector<std::vector<double>> priors)
      : protocol_(variant, std::move(k), eps, std::move(priors)) {}

  attack::MultidimClient Client() const override {
    return [this](const std::vector<int>& rec, Rng& r) {
      return protocol_.RandomizeUser(rec, r);
    };
  }
  attack::MultidimEstimator Estimator() const override {
    return [this](const std::vector<multidim::MultidimReport>& reps) {
      return protocol_.Estimate(reps);
    };
  }

 private:
  multidim::RsRfd protocol_;
};

}  // namespace

AifSolutionFactory MakeRsFdFactory(multidim::RsFdVariant variant,
                                   const data::Dataset& dataset) {
  const std::vector<int> k = dataset.domain_sizes();
  return [variant, k](double eps, Rng&) {
    return std::make_unique<RsFdSolution>(variant, k, eps);
  };
}

AifSolutionFactory MakeRsRfdFactory(multidim::RsRfdVariant variant,
                                    data::PriorKind prior_kind,
                                    const data::Dataset& dataset,
                                    int prior_n) {
  const data::Dataset* ds = &dataset;
  return [variant, prior_kind, ds, prior_n](double eps, Rng& rng) {
    auto priors = data::BuildPriors(*ds, prior_kind, rng,
                                    /*total_central_eps=*/0.1, prior_n);
    return std::make_unique<RsRfdSolution>(variant, ds->domain_sizes(), eps,
                                           std::move(priors));
  };
}

std::vector<AifPanel> PaperAifPanels() {
  return {
      {attack::AifModel::kNk, {{1.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}}},
      {attack::AifModel::kPk, {{0.0, 0.1}, {0.0, 0.3}, {0.0, 0.5}}},
      {attack::AifModel::kHm, {{1.0, 0.1}, {3.0, 0.3}, {5.0, 0.5}}},
  };
}

void RunAifFigure(Context& ctx, const std::string& bench_name,
                  const data::Dataset& dataset,
                  const std::vector<AifCurve>& curves,
                  const std::vector<AifPanel>& panels) {
  const RunProfile& profile = ctx.profile();
  ctx.EmitRunConfig(bench_name, dataset.n(), dataset.d());
  ctx.out().Comment(
      StrPrintf("# baseline AIF-ACC = %.3f%%", 100.0 / dataset.d()));
  const int runs = profile.runs;

  const std::vector<double> grid = profile.Grid(EpsilonGrid());
  for (const AifPanel& panel : profile.Shortlist(panels)) {
    for (const AifCurve& curve : profile.Shortlist(curves)) {
      const int settings = static_cast<int>(panel.settings.size());

      TableSpec spec;
      spec.section = StrPrintf("model = %s, protocol = %s",
                               attack::AifModelName(panel.model),
                               curve.label.c_str());
      spec.header = StrPrintf("%-8s", "epsilon");
      spec.x_name = "epsilon";
      for (const auto& [s, npk] : panel.settings) {
        std::string cell;
        if (panel.model == attack::AifModel::kNk) {
          cell = StrPrintf("    s=%.0fn", s);
        } else if (panel.model == attack::AifModel::kPk) {
          cell = StrPrintf(" npk=%.1fn", npk);
        } else {
          cell = StrPrintf(" s%.0f_n%.1f", s, npk);
        }
        spec.header += cell;
        const std::size_t b = cell.find_first_not_of(' ');
        spec.columns.push_back(cell.substr(b));
      }
      ctx.out().BeginTable(spec);

      // Legacy seeding: one counter per (panel, curve) table, starting at
      // 20230 and pre-incremented per trial, trials nested inside the
      // (epsilon, setting) sweep: Rng(++seed * 7919 + run).
      const auto means = RunGrid(
          static_cast<int>(grid.size()), runs, settings,
          [&](int point, int trial) {
            std::vector<double> row(settings);
            for (int si = 0; si < settings; ++si) {
              const std::uint64_t seed =
                  20230 +
                  (static_cast<std::uint64_t>(point) * settings + si) * runs +
                  trial + 1;
              Rng rng(seed * 7919 + static_cast<std::uint64_t>(trial));
              const auto& [s, npk] = panel.settings[si];
              auto solution = curve.factory(grid[point], rng);
              attack::AifConfig config;
              config.model = panel.model;
              config.synthetic_multiplier =
                  panel.model == attack::AifModel::kPk ? 1.0 : s;
              config.compromised_fraction =
                  panel.model == attack::AifModel::kNk ? 0.1 : npk;
              config.gbdt = profile.gbdt;
              row[si] = attack::RunAifAttack(dataset, solution->Client(),
                                             solution->Estimator(), config,
                                             rng)
                            .aif_acc_percent;
            }
            return row;
          });

      for (std::size_t p = 0; p < grid.size(); ++p) {
        std::vector<Cell> cells;
        cells.push_back(Cell::Number("%-8.1f", grid[p]));
        for (double v : means[p]) cells.push_back(Cell::Number(" %8.3f", v));
        ctx.out().Row(cells);
      }
    }
  }
}

}  // namespace ldpr::exp
