#ifndef LDPR_EXP_AIF_FIGURE_H_
#define LDPR_EXP_AIF_FIGURE_H_

// The attribute-inference (AIF-ACC) figure family: Fig. 3 / 14 / 15 (RS+FD),
// Fig. 6 (RS+RFD, Correct priors) and Fig. 17 (RS+RFD, Incorrect priors).
// Ported from the legacy bench/aif_bench_util driver onto the GridRunner
// with the historical per-(point, setting, trial) RNG seeds.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/aif.h"
#include "data/dataset.h"
#include "data/priors.h"
#include "exp/experiment.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace ldpr::exp {

/// A client+estimator pair bound to one protocol instance (one eps value).
class AifSolution {
 public:
  virtual ~AifSolution() = default;
  virtual attack::MultidimClient Client() const = 0;
  virtual attack::MultidimEstimator Estimator() const = 0;
};

/// Builds a solution for a given epsilon (and run-specific randomness, used
/// by RS+RFD to draw its priors the way Section 5.2.1 prescribes).
using AifSolutionFactory =
    std::function<std::unique_ptr<AifSolution>(double epsilon, Rng& rng)>;

/// RS+FD[variant] factory.
AifSolutionFactory MakeRsFdFactory(multidim::RsFdVariant variant,
                                   const data::Dataset& dataset);

/// RS+RFD[variant] factory with priors of the given kind. `prior_n` is the
/// full-population size behind the Census statistics (0 = dataset.n()); pass
/// the paper's n when the simulation runs on a subsample so the "Correct"
/// Laplace priors keep the paper's noise level.
AifSolutionFactory MakeRsRfdFactory(multidim::RsRfdVariant variant,
                                    data::PriorKind prior_kind,
                                    const data::Dataset& dataset,
                                    int prior_n = 0);

/// One labeled curve family of an AIF figure.
struct AifCurve {
  std::string label;
  AifSolutionFactory factory;
};

/// One attack-model panel: which model and which (s, npk) settings to sweep.
struct AifPanel {
  attack::AifModel model = attack::AifModel::kNk;
  /// (synthetic multiplier, compromised fraction) pairs; the irrelevant
  /// member is ignored by NK / PK.
  std::vector<std::pair<double, double>> settings;
};

/// The paper's parameter grid: NK s in {1,3,5}n, PK npk in {.1,.3,.5}n,
/// HM zipped pairs.
std::vector<AifPanel> PaperAifPanels();

/// Emits the full figure: one table per (panel, curve), rows are epsilon and
/// columns are the panel's settings, values are mean AIF-ACC(%) over
/// profile().runs trials.
void RunAifFigure(Context& ctx, const std::string& bench_name,
                  const data::Dataset& dataset,
                  const std::vector<AifCurve>& curves,
                  const std::vector<AifPanel>& panels);

}  // namespace ldpr::exp

#endif  // LDPR_EXP_AIF_FIGURE_H_
