#include "exp/datasets.h"

#include <map>
#include <memory>
#include <mutex>

#include "core/check.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "exp/emitter.h"

namespace ldpr::exp {

namespace {

std::mutex& CacheMutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::unique_ptr<data::Dataset>>& Cache() {
  static auto* cache = new std::map<std::string, std::unique_ptr<data::Dataset>>();
  return *cache;
}

}  // namespace

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kAdult: return "adult";
    case DatasetKind::kAcsEmployment: return "acs";
    case DatasetKind::kNursery: return "nursery";
  }
  return "?";
}

const data::Dataset& GetDataset(DatasetKind kind, std::uint64_t seed,
                                double scale) {
  // %a keys the exact double, so nearby scales never alias.
  const std::string key = StrPrintf("%s:%llu:%a", DatasetKindName(kind),
                                    static_cast<unsigned long long>(seed),
                                    scale);
  std::lock_guard<std::mutex> lock(CacheMutex());
  auto it = Cache().find(key);
  if (it == Cache().end()) {
    data::Dataset ds = kind == DatasetKind::kAdult
                           ? data::AdultLike(seed, scale)
                       : kind == DatasetKind::kAcsEmployment
                           ? data::AcsEmploymentLike(seed, scale)
                           : data::NurseryLike(seed, scale);
    it = Cache()
             .emplace(key, std::make_unique<data::Dataset>(std::move(ds)))
             .first;
  }
  return *it->second;
}

const data::Dataset& GetCsvDataset(const std::string& path) {
  const std::string key = "csv:" + path;
  std::lock_guard<std::mutex> lock(CacheMutex());
  auto it = Cache().find(key);
  if (it == Cache().end()) {
    it = Cache()
             .emplace(key,
                      std::make_unique<data::Dataset>(data::LoadCsv(path)))
             .first;
  }
  return *it->second;
}

int DatasetCacheSize() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  return static_cast<int>(Cache().size());
}

void ClearDatasetCache() {
  std::lock_guard<std::mutex> lock(CacheMutex());
  Cache().clear();
}

}  // namespace ldpr::exp
