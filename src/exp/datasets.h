#ifndef LDPR_EXP_DATASETS_H_
#define LDPR_EXP_DATASETS_H_

// Process-wide memoized dataset loading for the experiment subsystem.
//
// Synthesizing the paper populations (and parsing CSV files) is pure in
// (source, seed, scale), so repeated requests — a multi-panel driver, or
// `ldpr_cli experiment run 'fig*'` sweeping thirty scenarios over the same
// two populations — are served from a single in-memory copy instead of
// regenerating/re-reading per panel. Entries live for the process lifetime;
// the handful of paper-scale datasets is a few MB total.

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace ldpr::exp {

/// The three paper populations (data/synthetic.h).
enum class DatasetKind { kAdult, kAcsEmployment, kNursery };

const char* DatasetKindName(DatasetKind kind);

/// Memoized data::AdultLike / AcsEmploymentLike / NurseryLike, keyed by
/// (kind, seed, scale).
const data::Dataset& GetDataset(DatasetKind kind, std::uint64_t seed,
                                double scale);

/// Memoized data::LoadCsv, keyed by path.
const data::Dataset& GetCsvDataset(const std::string& path);

/// Number of cache entries (tests) and cache reset (isolation in tests).
int DatasetCacheSize();
void ClearDatasetCache();

}  // namespace ldpr::exp

#endif  // LDPR_EXP_DATASETS_H_
