#include "exp/emitter.h"

#include <cmath>
#include <cstdarg>

namespace ldpr::exp {

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

Cell Cell::Number(const char* fmt, double v) {
  Cell c;
  c.text = StrPrintf(fmt, v);  // NOLINT: fmt comes from scenario literals
  c.number = v;
  c.is_number = true;
  return c;
}

Cell Cell::Integer(const char* fmt, int v) {
  Cell c;
  c.text = StrPrintf(fmt, v);  // NOLINT
  c.number = static_cast<double>(v);
  c.is_number = true;
  return c;
}

Cell Cell::Text(const char* fmt, const std::string& v) {
  Cell c;
  c.text = StrPrintf(fmt, v.c_str());  // NOLINT
  return c;
}

void Emitter::Config(const std::string&, const std::string&) {}

CsvEmitter::CsvEmitter(std::FILE* out) : out_(out) {}
CsvEmitter::CsvEmitter(std::string* sink) : sink_(sink) {}

void CsvEmitter::Write(const std::string& chunk) {
  if (sink_ != nullptr) {
    sink_->append(chunk);
  } else {
    std::fwrite(chunk.data(), 1, chunk.size(), out_);
  }
}

void CsvEmitter::Comment(const std::string& line) { Write(line + "\n"); }

void CsvEmitter::Text(const std::string& line) { Write(line + "\n"); }

void CsvEmitter::BeginTable(const TableSpec& spec) {
  if (!spec.section.empty()) Write("\n## " + spec.section + "\n");
  if (!spec.header.empty()) Write(spec.header + "\n");
}

void CsvEmitter::Row(const std::vector<Cell>& cells) {
  std::string line;
  for (const Cell& cell : cells) line += cell.text;
  line += '\n';
  Write(line);
  // Legacy drivers fflush(stdout) after every data row so long sweeps stream
  // progressively into tee/pipes; keep that contract.
  if (sink_ == nullptr) std::fflush(out_);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  return StrPrintf("%.17g", v);
}

/// Strips leading blank lines and the "# " prefix off a legacy comment line.
std::string TrimComment(const std::string& line) {
  std::size_t i = line.find_first_not_of('\n');
  if (i == std::string::npos) return "";
  if (line.compare(i, 2, "# ") == 0) i += 2;
  return line.substr(i);
}

}  // namespace

JsonEmitter::JsonEmitter(std::string* sink, std::string experiment_name)
    : sink_(sink), name_(std::move(experiment_name)) {}

void JsonEmitter::Config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, value);
}

void JsonEmitter::Comment(const std::string& line) {
  comments_.push_back(TrimComment(line));
}

void JsonEmitter::Text(const std::string& line) {
  text_.push_back(TrimComment(line));
}

void JsonEmitter::BeginTable(const TableSpec& spec) {
  tables_.push_back({spec, {}});
}

void JsonEmitter::Row(const std::vector<Cell>& cells) {
  // Rows before any BeginTable would be a scenario bug; keep them anyway
  // under an anonymous table instead of crashing a long sweep.
  if (tables_.empty()) tables_.push_back({{}, {}});
  tables_.back().rows.push_back(cells);
}

void JsonEmitter::Finish() {
  std::string& out = *sink_;
  out += "{\"experiment\":\"" + JsonEscape(name_) + "\",";
  out += "\"config\":{";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(config_[i].first) + "\":\"" +
           JsonEscape(config_[i].second) + '"';
  }
  out += "},\"comments\":[";
  for (std::size_t i = 0; i < comments_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(comments_[i]) + '"';
  }
  out += "],\"text\":[";
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"' + JsonEscape(text_[i]) + '"';
  }
  out += "],\"tables\":[";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = tables_[t];
    if (t > 0) out += ',';
    out += "{\"section\":\"" + JsonEscape(table.spec.section) + "\",";
    out += "\"x\":\"" + JsonEscape(table.spec.x_name) + "\",";
    out += "\"columns\":[";
    for (std::size_t c = 0; c < table.spec.columns.size(); ++c) {
      if (c > 0) out += ',';
      out += '"' + JsonEscape(table.spec.columns[c]) + '"';
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r > 0) out += ',';
      out += '[';
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        const Cell& cell = table.rows[r][c];
        if (c > 0) out += ',';
        if (cell.is_number) {
          out += JsonNumber(cell.number);
        } else {
          // Trim the printf padding off text cells.
          std::string v = cell.text;
          const std::size_t b = v.find_first_not_of(' ');
          const std::size_t e = v.find_last_not_of(' ');
          v = b == std::string::npos ? "" : v.substr(b, e - b + 1);
          out += '"' + JsonEscape(v) + '"';
        }
      }
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
}

void TeeEmitter::Config(const std::string& key, const std::string& value) {
  for (Emitter* sink : sinks_) sink->Config(key, value);
}
void TeeEmitter::Comment(const std::string& line) {
  for (Emitter* sink : sinks_) sink->Comment(line);
}
void TeeEmitter::Text(const std::string& line) {
  for (Emitter* sink : sinks_) sink->Text(line);
}
void TeeEmitter::BeginTable(const TableSpec& spec) {
  for (Emitter* sink : sinks_) sink->BeginTable(spec);
}
void TeeEmitter::Row(const std::vector<Cell>& cells) {
  for (Emitter* sink : sinks_) sink->Row(cells);
}
void TeeEmitter::Finish() {
  for (Emitter* sink : sinks_) sink->Finish();
}

}  // namespace ldpr::exp
