#ifndef LDPR_EXP_EMITTER_H_
#define LDPR_EXP_EMITTER_H_

// Pluggable result writers for the experiment subsystem.
//
// Every scenario emits its results through an Emitter instead of printf-ing
// to stdout. A Cell carries both the exact text a legacy driver would have
// printed (so CsvEmitter replays the historical stdout format byte for byte
// — pinned by the golden tests) and the structured value, so JsonEmitter can
// write machine-readable output with the full run configuration without the
// scenario doing anything extra.

#include <cstdarg>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ldpr::exp {

/// snprintf into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// One formatted cell of a table row.
struct Cell {
  /// Numeric cell: `fmt` is the legacy printf format (e.g. " %8.4f").
  static Cell Number(const char* fmt, double v);
  /// Integer cell printed with an int format (e.g. "%-8d").
  static Cell Integer(const char* fmt, int v);
  /// Text cell (e.g. a row label or a "-" placeholder), `fmt` e.g. "%-22s".
  static Cell Text(const char* fmt, const std::string& v);

  std::string text;     ///< exactly what the legacy driver printed
  double number = 0.0;  ///< structured value (valid when is_number)
  bool is_number = false;
};

/// Declares one table of an experiment's output. `section` and `header` are
/// replayed verbatim by CsvEmitter; `x_name`/`columns` name the row cells
/// for structured writers.
struct TableSpec {
  std::string section;  ///< "" = none, else printed as "\n## <section>\n"
  std::string header;   ///< "" = none, else printed verbatim + "\n"
  std::string x_name;   ///< name of the first row cell (the x-axis)
  std::vector<std::string> columns;  ///< names of the remaining row cells
};

/// Sink interface. Scenarios call Comment/Text for free-form lines,
/// BeginTable + Row for tabular results, and Config for structured run
/// metadata (ignored by the CSV writer, recorded by the JSON writer).
class Emitter {
 public:
  virtual ~Emitter() = default;

  /// Structured run metadata (bench name, n, d, runs, scale, ...).
  virtual void Config(const std::string& key, const std::string& value);

  /// A comment line; `line` includes the legacy "# " prefix (and any leading
  /// blank line), e.g. "# n = 452, d = 10".
  virtual void Comment(const std::string& line) = 0;

  /// A free-form output line, replayed verbatim (plus trailing newline).
  virtual void Text(const std::string& line) = 0;

  virtual void BeginTable(const TableSpec& spec) = 0;
  virtual void Row(const std::vector<Cell>& cells) = 0;

  /// Called once after the scenario returns.
  virtual void Finish() {}
};

/// Replays the legacy stdout format bit-identically.
class CsvEmitter : public Emitter {
 public:
  /// Writes to `out` (defaults to stdout), flushing after every row like the
  /// legacy drivers did.
  explicit CsvEmitter(std::FILE* out = stdout);
  /// Collects the output into `*sink` (golden tests).
  explicit CsvEmitter(std::string* sink);

  void Comment(const std::string& line) override;
  void Text(const std::string& line) override;
  void BeginTable(const TableSpec& spec) override;
  void Row(const std::vector<Cell>& cells) override;

 private:
  void Write(const std::string& chunk);

  std::FILE* out_ = nullptr;
  std::string* sink_ = nullptr;
};

/// Writes one JSON document per experiment run with the full config, all
/// comments, and every table as named columns + numeric/text rows.
class JsonEmitter : public Emitter {
 public:
  /// Collects the JSON document into `*sink`; the document is completed by
  /// Finish().
  explicit JsonEmitter(std::string* sink, std::string experiment_name);

  void Config(const std::string& key, const std::string& value) override;
  void Comment(const std::string& line) override;
  void Text(const std::string& line) override;
  void BeginTable(const TableSpec& spec) override;
  void Row(const std::vector<Cell>& cells) override;
  void Finish() override;

 private:
  struct Table {
    TableSpec spec;
    std::vector<std::vector<Cell>> rows;
  };

  std::string* sink_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::string> comments_;
  std::vector<std::string> text_;
  std::vector<Table> tables_;
};

/// Fans every call out to several sinks (e.g. CSV to stdout + JSON to file).
class TeeEmitter : public Emitter {
 public:
  void Add(Emitter* sink) { sinks_.push_back(sink); }

  void Config(const std::string& key, const std::string& value) override;
  void Comment(const std::string& line) override;
  void Text(const std::string& line) override;
  void BeginTable(const TableSpec& spec) override;
  void Row(const std::vector<Cell>& cells) override;
  void Finish() override;

 private:
  std::vector<Emitter*> sinks_;
};

}  // namespace ldpr::exp

#endif  // LDPR_EXP_EMITTER_H_
