#include "exp/experiment.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"
#include "core/flags.h"

namespace ldpr::exp {

void Context::EmitRunConfig(const std::string& bench_name, int n, int d) {
  out_.Comment(StrPrintf("# bench = %s", bench_name.c_str()));
  out_.Comment(StrPrintf("# n = %d, d = %d", n, d));
  out_.Comment(StrPrintf("# runs = %d, scale = %.3f, reident_targets = %d",
                         profile_.runs, profile_.BenchScale(),
                         profile_.reident_targets));
  out_.Config("bench", bench_name);
  out_.Config("n", StrPrintf("%d", n));
  out_.Config("d", StrPrintf("%d", d));
  out_.Config("runs", StrPrintf("%d", profile_.runs));
  out_.Config("scale", StrPrintf("%.3f", profile_.BenchScale()));
  out_.Config("reident_targets", StrPrintf("%d", profile_.reident_targets));
  out_.Config("smoke", profile_.smoke ? "1" : "0");
  // The legacy-exact preamble is pinned byte-for-byte by the goldens, so the
  // fidelity marker only appears on the fast profile (whose goldens pin it).
  if (profile_.fast()) {
    out_.Comment("# profile = fast (closed-form estimation paths)");
    out_.Config("profile", "fast");
  }
}

Registry& Registry::Instance() {
  static auto* registry = new Registry();
  return *registry;
}

void Registry::Register(ExperimentSpec spec) {
  LDPR_REQUIRE(!spec.name.empty(), "experiment name must be non-empty");
  LDPR_REQUIRE(Find(spec.name) == nullptr,
               "duplicate experiment name '" << spec.name << "'");
  LDPR_REQUIRE(spec.run != nullptr,
               "experiment '" << spec.name << "' has no run callback");
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* Registry::Find(const std::string& name) const {
  for (const ExperimentSpec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> Registry::Match(
    const std::string& pattern) const {
  std::vector<const ExperimentSpec*> out;
  for (const ExperimentSpec& spec : specs_) {
    if (GlobMatch(pattern, spec.name) || GlobMatch(pattern, spec.title)) {
      out.push_back(&spec);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<const ExperimentSpec*> Registry::All() const {
  return Match("*");
}

Registrar::Registrar(ExperimentSpec spec) {
  Registry::Instance().Register(std::move(spec));
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0, star = std::string::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

void RunExperiment(const ExperimentSpec& spec, Emitter& out,
                   const RunProfile& profile) {
  out.Config("experiment", spec.name);
  out.Config("title", spec.title);
  Context ctx(out, profile);
  spec.run(ctx);
  out.Finish();
}

int RunExperimentMain(const std::string& name) {
  const ExperimentSpec* spec = Registry::Instance().Find(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown experiment '%s'\n", name.c_str());
    return 1;
  }
  const RunProfile profile = RunProfile::Resolve();
  CsvEmitter csv;
  TeeEmitter tee;
  tee.Add(&csv);

  const std::string json_path = GetEnvString("LDPR_JSON_OUT", "");
  std::string json;
  JsonEmitter json_emitter(&json, spec->name);
  if (!json_path.empty()) tee.Add(&json_emitter);

  try {
    RunExperiment(*spec, tee, profile);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace ldpr::exp
