#ifndef LDPR_EXP_EXPERIMENT_H_
#define LDPR_EXP_EXPERIMENT_H_

// Declarative experiment registry.
//
// Every figure / ablation / framework study of the paper registers an
// ExperimentSpec (src/exp/scenarios/*.cc): a name, a description, the
// datasets it touches, and a run callback that emits results through the
// Context's pluggable writers. The bench binaries, the `ldpr_cli experiment`
// subcommand, and the exp_smoke/golden test suites are all thin shells over
// this registry — adding a new workload is one ~30-line registration
// translation unit, not a new 150-line driver binary.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "exp/datasets.h"
#include "exp/emitter.h"
#include "exp/profile.h"

namespace ldpr::exp {

/// Everything a scenario needs at run time: where to write, how big to run,
/// and memoized dataset access.
class Context {
 public:
  Context(Emitter& out, const RunProfile& profile)
      : out_(out), profile_(profile) {}

  Emitter& out() { return out_; }
  const RunProfile& profile() const { return profile_; }

  /// Memoized paper populations (exp/datasets.h).
  const data::Dataset& Adult(std::uint64_t seed, double scale) const {
    return GetDataset(DatasetKind::kAdult, seed, scale);
  }
  const data::Dataset& Acs(std::uint64_t seed, double scale) const {
    return GetDataset(DatasetKind::kAcsEmployment, seed, scale);
  }
  const data::Dataset& Nursery(std::uint64_t seed, double scale) const {
    return GetDataset(DatasetKind::kNursery, seed, scale);
  }

  /// Emits the standard run-config preamble (legacy PrintRunConfig): CSV
  /// comment lines plus structured Config entries for the JSON writer.
  void EmitRunConfig(const std::string& bench_name, int n, int d);

 private:
  Emitter& out_;
  const RunProfile& profile_;
};

struct ExperimentSpec {
  std::string name;         ///< short id, e.g. "fig02" — unique
  std::string title;        ///< legacy bench id, e.g. "fig02_smp_reident_adult"
  std::string description;  ///< one line, shown by `experiment list`
  std::string group;  ///< "figure" | "ablation" | "framework" | "related"
  std::vector<std::string> datasets;  ///< e.g. {"adult"}; informational
  std::function<void(Context&)> run;
};

/// Global experiment registry. Scenario translation units self-register via
/// the Registrar below; uniqueness is enforced at registration.
class Registry {
 public:
  static Registry& Instance();

  void Register(ExperimentSpec spec);
  const ExperimentSpec* Find(const std::string& name) const;
  /// Experiments whose name or title matches `pattern` ('*'/'?' glob or
  /// exact), sorted by name.
  std::vector<const ExperimentSpec*> Match(const std::string& pattern) const;
  /// All experiments, sorted by name.
  std::vector<const ExperimentSpec*> All() const;

 private:
  std::vector<ExperimentSpec> specs_;
};

/// `static const Registrar r{spec};` at namespace scope registers the spec
/// before main() (scenario TUs are linked as whole objects).
struct Registrar {
  explicit Registrar(ExperimentSpec spec);
};

/// Glob match with '*' and '?' (used by Registry::Match and the CLI).
bool GlobMatch(const std::string& pattern, const std::string& text);

/// Runs one experiment: emits through `out`, then Finish()es it.
void RunExperiment(const ExperimentSpec& spec, Emitter& out,
                   const RunProfile& profile);

/// Entry point of the thin bench driver binaries: looks up `name`, builds a
/// FromEnv profile (Smoke when LDPR_SMOKE is set), writes CSV to stdout and
/// — when LDPR_JSON_OUT names a file — a JSON document alongside. Returns a
/// process exit code.
int RunExperimentMain(const std::string& name);

}  // namespace ldpr::exp

#endif  // LDPR_EXP_EXPERIMENT_H_
