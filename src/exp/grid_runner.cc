#include "exp/grid_runner.h"

#include "core/check.h"
#include "sim/engine.h"

namespace ldpr::exp {

std::vector<std::vector<double>> RunGrid(int points, int trials, int columns,
                                         const GridCellFn& cell) {
  LDPR_REQUIRE(points >= 0 && trials >= 1, "RunGrid needs trials >= 1");
  std::vector<std::vector<double>> results(
      static_cast<std::size_t>(points) * trials);
  sim::RunCells(static_cast<long long>(points) * trials, [&](long long i) {
    const int point = static_cast<int>(i / trials);
    const int trial = static_cast<int>(i % trials);
    std::vector<double> values = cell(point, trial);
    LDPR_CHECK(static_cast<int>(values.size()) == columns,
               "grid cell returned " << values.size() << " values, expected "
                                     << columns);
    results[i] = std::move(values);
  });

  std::vector<std::vector<double>> means(points,
                                         std::vector<double>(columns, 0.0));
  for (int p = 0; p < points; ++p) {
    for (int t = 0; t < trials; ++t) {
      const auto& row = results[static_cast<std::size_t>(p) * trials + t];
      for (int c = 0; c < columns; ++c) means[p][c] += row[c];
    }
    for (int c = 0; c < columns; ++c) means[p][c] /= trials;
  }
  return means;
}

Rng SplitStream(std::uint64_t seed, int trial) {
  Rng root(seed);
  Rng stream = root.Split();
  for (int t = 0; t < trial; ++t) stream = root.Split();
  return stream;
}

}  // namespace ldpr::exp
