#ifndef LDPR_EXP_GRID_RUNNER_H_
#define LDPR_EXP_GRID_RUNNER_H_

// The shared trials x grid-points execution engine of the experiment layer.
//
// A scenario's sweep is a grid of points (the x axis) each averaged over
// `trials` repetitions. GridRunner flattens the (point, trial) space into
// cells and drives them through sim::RunCells, so *trials* parallelize
// across the worker pool exactly like users parallelize across shards
// inside each cell (nested regions run inline; see core/parallel).
//
// Determinism contract: the cell function must derive every random stream
// from (point, trial) alone — typically by reconstructing the legacy
// per-cell seed, or via SplitStream below. Under that contract the result
// is bit-identical to the historical serial for-x{for-run{...}} loops for
// any thread count: per-point means accumulate trial results in trial
// order, matching the legacy sum-then-divide float order.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rng.h"

namespace ldpr::exp {

/// Computes one (point, trial) cell: returns the row's column values for
/// that trial.
using GridCellFn = std::function<std::vector<double>(int point, int trial)>;

/// Runs points x trials cells across the worker pool and returns the
/// trial-means, indexed [point][column]. Every cell must return `columns`
/// values.
std::vector<std::vector<double>> RunGrid(int points, int trials, int columns,
                                         const GridCellFn& cell);

/// Seed salt for the fast (closed-form) profile's per-cell streams: fast
/// cells reuse their scenario's legacy seed schedule XORed with this
/// constant, so the two fidelities never share a stream and the fast
/// goldens stay stable independently of the legacy ones.
inline constexpr std::uint64_t kFastProfileSeedSalt = 0xFA57C0DEF0115EEDULL;

/// Recreates the `trial`-th Rng::Split() child of a root seeded with `seed`
/// — the stream the legacy drivers handed trial #`trial` when they split one
/// root per grid point serially.
Rng SplitStream(std::uint64_t seed, int trial);

}  // namespace ldpr::exp

#endif  // LDPR_EXP_GRID_RUNNER_H_
