#include "exp/grids.h"

#include <cmath>

namespace ldpr::exp {

std::vector<double> LogUtilityEpsilonGrid() {
  std::vector<double> out;
  for (int b = 2; b <= 7; ++b) out.push_back(std::log(static_cast<double>(b)));
  return out;
}

}  // namespace ldpr::exp
