#ifndef LDPR_EXP_GRIDS_H_
#define LDPR_EXP_GRIDS_H_

// The paper's x-axis grids, shared by every scenario (formerly duplicated
// between bench/bench_util and bench/aif_bench_util).

#include <vector>

namespace ldpr::exp {

/// The paper's epsilon grid for the attack experiments.
inline std::vector<double> EpsilonGrid() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}

/// The paper's Bayes-error grid for the alpha-PIE experiments (Appendix C).
inline std::vector<double> BetaGrid() {
  return {0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6, 0.55, 0.5};
}

/// The paper's epsilon grid for the utility experiments (Section 5.2.2):
/// ln 2 .. ln 7.
std::vector<double> LogUtilityEpsilonGrid();

}  // namespace ldpr::exp

#endif  // LDPR_EXP_GRIDS_H_
