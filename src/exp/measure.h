#ifndef LDPR_EXP_MEASURE_H_
#define LDPR_EXP_MEASURE_H_

// Shared measurement loops for the estimation-only scenarios.
//
// The legacy-exact ("serial") helper reproduces the historical drivers'
// idiom draw for draw: randomize every user in record order into a report
// vector, estimate, score — deliberately NOT sim::RunMultidim, whose
// sharded per-worker streams would change the pinned RNG sequences. Keep
// it byte-stable: the legacy goldens and the bit-identical contract of the
// ported scenarios depend on it.

#include <vector>

#include "core/metrics.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "multidim/closed_form.h"

namespace ldpr::exp {

/// One legacy-exact collection round: randomize all n users serially
/// through `protocol` (any solution with RandomizeUser + Estimate — RS+FD,
/// RS+RFD, their adaptive variants, SMP) and return the per-attribute
/// estimates.
template <typename Protocol>
std::vector<std::vector<double>> SerialEstimate(const Protocol& protocol,
                                                const data::Dataset& ds,
                                                Rng& rng) {
  std::vector<decltype(protocol.RandomizeUser(ds.Record(0), rng))> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return protocol.Estimate(reports);
}

/// SerialEstimate scored against the dataset's true marginals.
template <typename Protocol>
double SerialProtocolMse(const Protocol& protocol, const data::Dataset& ds,
                         const std::vector<std::vector<double>>& truth,
                         Rng& rng) {
  return MseAvg(truth, SerialEstimate(protocol, ds, rng));
}

/// The fast-profile counterpart: one closed-form collection round over the
/// scenario's hoisted per-attribute histograms, scored the same way. Any
/// solution with a multidim::EstimateClosedForm overload.
template <typename Protocol>
double ClosedFormProtocolMse(const Protocol& protocol,
                             const multidim::AttributeHistograms& hists,
                             long long n,
                             const std::vector<std::vector<double>>& truth,
                             Rng& rng) {
  return MseAvg(truth, multidim::EstimateClosedForm(protocol, hists, n, rng));
}

}  // namespace ldpr::exp

#endif  // LDPR_EXP_MEASURE_H_
