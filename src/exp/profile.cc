#include "exp/profile.h"

#include <cstdlib>
#include <string>

#include "core/check.h"
#include "core/flags.h"

namespace ldpr::exp {

RunProfile RunProfile::FromEnv() {
  RunProfile profile;
  profile.smoke = false;
  profile.runs = NumRuns();
  profile.reident_targets = ReidentTargets();
  profile.has_scale_override = std::getenv("LDPR_SCALE") != nullptr;
  profile.scale_override = GetEnvDouble("LDPR_SCALE", 0.2);
  profile.gbdt.num_rounds = GetEnvInt("LDPR_GBDT_ROUNDS", 8);
  profile.gbdt.max_depth = GetEnvInt("LDPR_GBDT_DEPTH", 4);
  return profile;
}

RunProfile RunProfile::Smoke() {
  RunProfile profile;
  profile.smoke = true;
  profile.runs = 1;
  profile.reident_targets = 50;
  profile.gbdt.num_rounds = 2;
  profile.gbdt.max_depth = 2;
  return profile;
}

RunProfile RunProfile::Resolve() {
  const std::string name = GetEnvString("LDPR_PROFILE", "legacy");
  LDPR_REQUIRE(name == "legacy" || name == "fast" || name == "smoke",
               "unknown LDPR_PROFILE '" << name
                                        << "' (legacy|fast|smoke)");
  const bool smoke = GetEnvBool("LDPR_SMOKE", false) || name == "smoke";
  RunProfile profile = smoke ? Smoke() : FromEnv();
  if (name == "fast") profile.fidelity = Fidelity::kFast;
  return profile;
}

long long RunProfile::Mc(const char* env, long long full,
                         long long smoke_value) const {
  if (smoke) return smoke_value;
  if (env != nullptr) return GetEnvInt(env, static_cast<int>(full));
  return full;
}

}  // namespace ldpr::exp
