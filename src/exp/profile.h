#ifndef LDPR_EXP_PROFILE_H_
#define LDPR_EXP_PROFILE_H_

// Run-scale presets for the experiment subsystem.
//
// Environment knobs honoured by RunProfile::FromEnv() (the historical bench
// defaults; see README "Experiments"):
//   LDPR_RUNS            repetitions averaged per grid point   (default 3)
//   LDPR_SCALE           dataset scale factor in (0, 1]        (default:
//                        0.2 for attack sweeps, 1.0 / 0.5 for the cheap
//                        estimation-only scenarios — each scenario declares
//                        its own default)
//   LDPR_REIDENT_TARGETS matcher target subsample              (default 3000)
//   LDPR_THREADS         worker threads                        (default: cores)
//   LDPR_GBDT_ROUNDS     AIF attack GBDT boosting rounds       (default 8)
//   LDPR_GBDT_DEPTH      AIF attack GBDT tree depth            (default 4)
//   LDPR_FIG01_TRIALS    fig01 panel (c) Monte-Carlo trials    (default 20000)
//   LDPR_SMOKE           when set, every driver runs the smoke preset
//   LDPR_PROFILE         fidelity/scale preset: "legacy" (default),
//                        "fast" (closed-form estimation paths; new RNG
//                        streams, separately pinned goldens), or "smoke"
//                        (alias for LDPR_SMOKE). "fast" composes with the
//                        smoke preset: LDPR_SMOKE=1 LDPR_PROFILE=fast runs
//                        the closed-form paths at smoke scale.
//
// The paper uses 20 runs at full n on a compute cluster; the FromEnv()
// defaults reproduce every curve's *shape* on a laptop in minutes. Set
// LDPR_RUNS=20 LDPR_SCALE=1 LDPR_REIDENT_TARGETS=0 for a full-fidelity run.
// Smoke() is the CI preset: tiny populations, one trial, truncated grids —
// every registered experiment finishes in well under a minute combined.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ml/gbdt.h"

namespace ldpr::exp {

struct RunProfile {
  /// How estimation-only scenarios simulate the population.
  enum class Fidelity {
    /// Per-user simulation, bit-identical to the historical drivers for any
    /// fixed environment (the existing goldens pin this path).
    kLegacyExact,
    /// Closed-form tally sampling (sim/closed_form.h): per attribute
    /// distribution-exact, orders of magnitude faster at full scale, on its
    /// own RNG streams (separate *_fast goldens).
    kFast,
  };

  bool smoke = false;
  Fidelity fidelity = Fidelity::kLegacyExact;

  int runs = 3;                ///< trials averaged per grid point
  int reident_targets = 3000;  ///< matcher subsample; <= 0 means all users
  bool has_scale_override = false;  ///< LDPR_SCALE was set
  double scale_override = 0.2;      ///< LDPR_SCALE value when set
  double smoke_scale = 0.02;        ///< dataset scale under the smoke preset
  std::size_t grid_cap = 3;         ///< max grid points under smoke
  std::size_t shortlist_cap = 2;    ///< max curves/protocols under smoke
  ml::GbdtConfig gbdt;              ///< AIF attack classifier size

  /// The historical env-driven preset (bit-identical to the pre-registry
  /// bench drivers for any fixed environment). Does not consult
  /// LDPR_PROFILE — use Resolve() for the full env contract.
  static RunProfile FromEnv();
  /// The CI/`--smoke` preset.
  static RunProfile Smoke();
  /// The full environment contract: Smoke() when LDPR_SMOKE is set or
  /// LDPR_PROFILE=smoke, FromEnv() otherwise; LDPR_PROFILE=fast then flips
  /// the fidelity to kFast on either base. Rejects unknown LDPR_PROFILE
  /// values.
  static RunProfile Resolve();

  bool fast() const { return fidelity == Fidelity::kFast; }

  /// Dataset scale: the scenario's own default, overridden by LDPR_SCALE,
  /// collapsed to smoke_scale under smoke.
  double Scale(double scenario_default) const {
    if (smoke) return smoke_scale;
    return has_scale_override ? scale_override : scenario_default;
  }
  /// The attack-sweep default (legacy bench::BenchScale()).
  double BenchScale() const { return Scale(0.2); }

  /// Monte-Carlo style counts (trials, simulated users): `env` (may be null)
  /// overrides `full`; smoke runs use `smoke_value`.
  long long Mc(const char* env, long long full, long long smoke_value) const;

  /// A scenario-chosen count (e.g. #surveys) shrunk under smoke.
  int Count(int full, int smoke_value) const {
    return smoke ? std::min(full, smoke_value) : full;
  }

  /// Truncates an x-axis grid to grid_cap points under smoke.
  template <typename T>
  std::vector<T> Grid(std::vector<T> xs) const {
    if (smoke && xs.size() > grid_cap) xs.resize(grid_cap);
    return xs;
  }

  /// Truncates a curve/protocol/panel list to shortlist_cap under smoke.
  template <typename T>
  std::vector<T> Shortlist(std::vector<T> items) const {
    if (smoke && items.size() > shortlist_cap) items.resize(shortlist_cap);
    return items;
  }
};

}  // namespace ldpr::exp

#endif  // LDPR_EXP_PROFILE_H_
