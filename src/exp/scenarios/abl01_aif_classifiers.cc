// Ablation 1: the AIF attack classifier. The paper uses XGBoost; this
// repository substitutes a from-scratch GBDT. This scenario compares three
// NK-model attackers on the same RS+FD reports:
//   - gbdt:     ml::Gbdt trained on synthetic profiles (the default)
//   - logistic: ml::LogisticRegression on the same features
//   - nbayes:   ml::NaiveBayes on the same features (learned independence
//               model; cheap diagnostic between logistic and bayes)
//   - bayes:    the closed-form Bayes attacker (no training; analytic
//               upper reference under per-attribute independence)
// If gbdt tracks bayes, the XGBoost substitution is immaterial.

#include "attack/aif.h"
#include "attack/bayes_adversary.h"
#include "core/histogram.h"
#include "core/sampling.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "ml/logistic.h"
#include "ml/ml_metrics.h"
#include "ml/naive_bayes.h"

namespace {

using namespace ldpr;
using exp::Cell;

std::vector<double> RunCell(const data::Dataset& ds,
                            multidim::RsFdVariant variant, double eps,
                            const ml::GbdtConfig& gbdt_config, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  const auto& k = ds.domain_sizes();

  // Real reports (test set for every attacker).
  std::vector<multidim::MultidimReport> reports;
  std::vector<int> truth;
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
    truth.push_back(reports.back().sampled_attribute);
  }
  const auto estimated = protocol.Estimate(reports);

  // Synthetic learning set (s = 1n), shared by both trained classifiers.
  std::vector<CategoricalSampler> samplers;
  for (int j = 0; j < ds.d(); ++j) {
    samplers.emplace_back(ProjectToSimplex(estimated[j]));
  }
  ml::LabeledData learn;
  std::vector<int> profile(ds.d());
  for (int s = 0; s < ds.n(); ++s) {
    for (int j = 0; j < ds.d(); ++j) profile[j] = samplers[j].Sample(rng);
    multidim::MultidimReport rep = protocol.RandomizeUser(profile, rng);
    learn.Append(attack::EncodeFeatures(rep, k), rep.sampled_attribute);
  }
  std::vector<std::vector<int>> test_rows;
  for (const auto& rep : reports) {
    test_rows.push_back(attack::EncodeFeatures(rep, k));
  }

  std::vector<double> out(4, 0.0);
  {
    ml::Gbdt model;
    model.Train(learn.rows, learn.labels, ds.d(), gbdt_config, rng);
    out[0] = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    ml::LogisticRegression model;
    ml::LogisticConfig config;
    config.epochs = 15;
    model.Train(learn.rows, learn.labels, ds.d(), config, rng);
    out[1] = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    ml::NaiveBayes model;
    model.Train(learn.rows, learn.labels, ds.d());
    out[2] = 100.0 * ml::Accuracy(truth, model.PredictBatch(test_rows));
  }
  {
    attack::BayesAifAttacker model(protocol, estimated);
    out[3] = 100.0 * ml::Accuracy(truth, model.PredictBatch(reports));
  }
  return out;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Acs(2023, profile.BenchScale());
  ctx.EmitRunConfig("abl01_aif_classifiers", ds.n(), ds.d());
  ctx.out().Comment(exp::StrPrintf("# baseline = %.3f%%", 100.0 / ds.d()));
  const int runs = profile.runs;

  const std::vector<std::pair<multidim::RsFdVariant, const char*>> variants =
      profile.Shortlist(
          std::vector<std::pair<multidim::RsFdVariant, const char*>>{
              {multidim::RsFdVariant::kGrr, "RS+FD[GRR]"},
              {multidim::RsFdVariant::kSueZ, "RS+FD[SUE-z]"}});
  for (const auto& [variant, name] : variants) {
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("protocol = %s (NK model, s = 1n)", name);
    spec.header = exp::StrPrintf("%-8s %10s %10s %10s %10s", "epsilon",
                                 "gbdt", "logistic", "nbayes", "bayes");
    spec.x_name = "epsilon";
    spec.columns = {"gbdt", "logistic", "nbayes", "bayes"};
    ctx.out().BeginTable(spec);

    const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
    // Legacy seeding: seed = 77 per table, Rng(++seed * 104729) per trial.
    const auto means = exp::RunGrid(
        static_cast<int>(grid.size()), runs, 4, [&](int point, int trial) {
          const std::uint64_t seed =
              77 + static_cast<std::uint64_t>(point) * runs + trial + 1;
          Rng rng(seed * 104729);
          return RunCell(ds, variant, grid[point], profile.gbdt, rng);
        });

    for (std::size_t p = 0; p < grid.size(); ++p) {
      std::vector<Cell> cells{Cell::Number("%-8.1f", grid[p])};
      for (double v : means[p]) cells.push_back(Cell::Number(" %10.3f", v));
      ctx.out().Row(cells);
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl01",
    /*title=*/"abl01_aif_classifiers",
    /*description=*/
    "AIF attacker ablation: GBDT vs logistic vs naive/true Bayes",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
