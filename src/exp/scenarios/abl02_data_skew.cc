// Ablation 2: how much of the AIF attack is explained by marginal skew.
// Sweeps the synthetic generator's base_mix (the weight of the shared
// skewed background inside every latent class) and reports the Bayes-NK
// AIF accuracy against RS+FD[GRR]. At base_mix -> 0 the aggregate marginals
// flatten and the attack collapses to the 1/d baseline — the Nursery effect
// of Fig. 15; at high base_mix the attack approaches its ceiling.

#include <algorithm>
#include <cmath>

#include "attack/bayes_adversary.h"
#include "data/synthetic.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "ml/ml_metrics.h"
#include "multidim/rsfd.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const double eps = 8.0;
  ctx.out().Comment("# bench = abl02_data_skew");
  ctx.out().Comment(exp::StrPrintf(
      "# ACS shape, eps = %.1f, Bayes-NK attacker, RS+FD[GRR]", eps));
  ctx.out().Config("bench", "abl02_data_skew");

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %8s %14s %14s", "base_mix", "n",
                               "max_marginal", "AIF-ACC(%)");
  spec.x_name = "base_mix";
  spec.columns = {"n", "max_marginal", "aif_acc"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const int n_target = static_cast<int>(10336 * profile.BenchScale());
  const std::vector<double> grid =
      profile.Grid(std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8, 0.9});

  // Legacy seeding: dataset seed 1000 + run, attack stream Rng(2000 + run)
  // — both independent of the grid point.
  const auto means =
      exp::RunGrid(static_cast<int>(grid.size()), runs, 3,
              [&](int point, int trial) {
                data::SyntheticCensusConfig config;
                config.n = n_target;
                config.domain_sizes = {92, 25, 5, 2, 2, 9, 4, 5, 5,
                                       4,  2,  18, 2, 2, 3, 9, 3, 6};
                config.base_mix = grid[point];
                config.seed = 1000 + trial;
                data::Dataset ds = data::GenerateSyntheticCensus(config);

                // Mean over attributes of the top marginal mass (skew proxy).
                const auto marginals = ds.Marginals();
                double skew = 0.0;
                for (const auto& m : marginals) {
                  double mx = 0.0;
                  for (double v : m) mx = std::max(mx, v);
                  skew += mx;
                }

                multidim::RsFd protocol(multidim::RsFdVariant::kGrr,
                                        ds.domain_sizes(), eps);
                Rng rng(2000 + trial);
                std::vector<multidim::MultidimReport> reports;
                std::vector<int> truth;
                for (int i = 0; i < ds.n(); ++i) {
                  reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
                  truth.push_back(reports.back().sampled_attribute);
                }
                attack::BayesAifAttacker attacker(protocol,
                                                  protocol.Estimate(reports));
                const double acc =
                    100.0 *
                    ml::Accuracy(truth, attacker.PredictBatch(reports));
                return std::vector<double>{static_cast<double>(ds.n()),
                                           skew / ds.d(), acc};
              });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    ctx.out().Row({Cell::Number("%-10.1f", grid[p]),
                   Cell::Integer(" %8d", static_cast<int>(
                                             std::llround(means[p][0]))),
                   Cell::Number(" %14.4f", means[p][1]),
                   Cell::Number(" %14.3f", means[p][2])});
  }
  ctx.out().Comment(exp::StrPrintf("# baseline = %.3f%%", 100.0 / 18.0));
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl02",
    /*title=*/"abl02_data_skew",
    /*description=*/
    "AIF accuracy vs marginal skew of the synthetic population",
    /*group=*/"ablation",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
