// Ablation 3: the target-subsample shortcut of the re-identification
// matcher. RID-ACC is a per-user mean, so evaluating a uniform subsample of
// targets estimates the same quantity at a fraction of the O(n * |D_BK|)
// cost (the repository's default is 3000 targets). This scenario shows the
// estimate converging to the full-population value as the subsample grows.

#include <cmath>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "exp/experiment.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Adult(2023, profile.BenchScale());
  ctx.out().Comment("# bench = abl03_reident_subsample");
  ctx.out().Comment(exp::StrPrintf(
      "# Adult shape, n = %d, GRR, eps = 6, 5 surveys, FK-RI", ds.n()));
  ctx.out().Config("bench", "abl03_reident_subsample");

  Rng rng(1);
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 5, rng);
  auto channel =
      attack::MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 6.0);
  auto snapshots = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);
  std::vector<bool> bk(ds.d(), true);

  attack::ReidentConfig full;
  full.top_k = {10};
  full.max_targets = 0;
  Rng full_rng(2);
  const double reference =
      attack::ReidentAccuracy(snapshots.back(), ds, bk, full, full_rng)
          .rid_acc_percent[0];
  ctx.out().Comment(exp::StrPrintf(
      "# full-population top-10 RID-ACC = %.4f%%\n", reference));
  ctx.out().Config("reference", exp::StrPrintf("%.4f", reference));

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %14s %12s", "targets", "top10(%)",
                               "abs.err");
  spec.x_name = "targets";
  spec.columns = {"top10", "abs_err"};
  ctx.out().BeginTable(spec);

  for (int targets :
       profile.Grid(std::vector<int>{100, 300, 1000, 3000, 10000})) {
    if (targets >= ds.n()) break;
    double mean = 0.0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      attack::ReidentConfig config;
      config.top_k = {10};
      config.max_targets = targets;
      Rng sub_rng(100 + r);
      mean += attack::ReidentAccuracy(snapshots.back(), ds, bk, config,
                                      sub_rng)
                  .rid_acc_percent[0];
    }
    mean /= reps;
    ctx.out().Row({Cell::Integer("%-10d", targets),
                   Cell::Number(" %14.4f", mean),
                   Cell::Number(" %12.4f", std::abs(mean - reference))});
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl03",
    /*title=*/"abl03_reident_subsample",
    /*description=*/
    "Convergence of the re-identification target-subsample estimator",
    /*group=*/"ablation",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
