// Ablation 4: how RS+RFD's two benefits (utility gain and AIF suppression)
// depend on prior quality. Sweeps from uniform priors (= RS+FD) through
// increasingly clean Laplace-perturbed priors to the exact marginals, and
// reports (a) MSE_avg of the estimates and (b) Bayes-NK AIF accuracy.

#include <cmath>

#include "attack/bayes_adversary.h"
#include "core/metrics.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "ml/ml_metrics.h"
#include "multidim/rsrfd.h"

namespace {

using namespace ldpr;
using exp::Cell;

struct PriorSpec {
  const char* label;
  data::PriorKind kind;
  double central_eps;  // for kCorrectLaplace
};

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Acs(2023, profile.BenchScale());
  const double eps = std::log(4.0);
  ctx.out().Comment("# bench = abl04_prior_quality");
  ctx.out().Comment(exp::StrPrintf(
      "# ACS shape, n = %d, RS+RFD[GRR], eps = ln4; AIF at eps = 8",
      ds.n()));
  ctx.out().Config("bench", "abl04_prior_quality");

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-22s %14s %14s", "prior", "MSE_avg",
                               "Bayes AIF(%)");
  spec.x_name = "prior";
  spec.columns = {"mse_avg", "bayes_aif"};
  ctx.out().BeginTable(spec);

  const auto truth = ds.Marginals();
  const int runs = profile.runs;

  const std::vector<PriorSpec> specs = profile.Grid(std::vector<PriorSpec>{
      {"uniform (= RS+FD)", data::PriorKind::kUniform, 0.0},
      {"laplace eps=0.01", data::PriorKind::kCorrectLaplace, 0.01},
      {"laplace eps=0.1", data::PriorKind::kCorrectLaplace, 0.1},
      {"laplace eps=1.0", data::PriorKind::kCorrectLaplace, 1.0},
      {"exact marginals", data::PriorKind::kTrueMarginals, 0.0},
  });

  // Legacy seeding: Rng(500 + run), independent of the prior row.
  const auto means = exp::RunGrid(
      static_cast<int>(specs.size()), runs, 2, [&](int point, int trial) {
        const PriorSpec& prior_spec = specs[point];
        Rng rng(500 + trial);
        auto priors = data::BuildPriors(ds, prior_spec.kind, rng,
                                        prior_spec.central_eps,
                                        data::kAcsEmploymentN);

        // (a) Utility at the paper's utility epsilon.
        multidim::RsRfd utility_protocol(multidim::RsRfdVariant::kGrr,
                                         ds.domain_sizes(), eps, priors);
        std::vector<multidim::MultidimReport> reports;
        reports.reserve(ds.n());
        for (int i = 0; i < ds.n(); ++i) {
          reports.push_back(
              utility_protocol.RandomizeUser(ds.Record(i), rng));
        }
        const double mse = MseAvg(truth, utility_protocol.Estimate(reports));

        // (b) Attribute inference at a high (industry-style) epsilon.
        multidim::RsRfd attack_protocol(multidim::RsRfdVariant::kGrr,
                                        ds.domain_sizes(), 8.0, priors);
        std::vector<multidim::MultidimReport> attack_reports;
        std::vector<int> sampled;
        for (int i = 0; i < ds.n(); ++i) {
          attack_reports.push_back(
              attack_protocol.RandomizeUser(ds.Record(i), rng));
          sampled.push_back(attack_reports.back().sampled_attribute);
        }
        attack::BayesAifAttacker attacker(
            attack_protocol, attack_protocol.Estimate(attack_reports));
        const double aif =
            100.0 *
            ml::Accuracy(sampled, attacker.PredictBatch(attack_reports));
        return std::vector<double>{mse, aif};
      });

  for (std::size_t p = 0; p < specs.size(); ++p) {
    ctx.out().Row({Cell::Text("%-22s", specs[p].label),
                   Cell::Number(" %14.4e", means[p][0]),
                   Cell::Number(" %14.3f", means[p][1])});
  }
  ctx.out().Comment(
      exp::StrPrintf("# AIF baseline = %.3f%%", 100.0 / ds.d()));
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl04",
    /*title=*/"abl04_prior_quality",
    /*description=*/
    "RS+RFD utility and attack suppression vs prior quality",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
