// Ablation 5: communication cost versus utility across the five frequency
// oracles — the trade-off behind the paper's Section 6 recommendation
// ("the OUE and/or OLH protocols, depending on k_j due to communication
// costs"). For each (k, eps) cell the table reports every protocol's bits
// per report and approximate estimator variance (n = 1, f = 0), then the
// cheapest-within-5%-variance recommendation. A second panel prints the
// per-user upload of the three multidimensional solutions on the Adult
// attribute profile.

#include "exp/experiment.h"
#include "fo/comm_cost.h"
#include "fo/factory.h"

namespace {

using namespace ldpr;
using exp::Cell;
using fo::Protocol;

void Run(exp::Context& ctx) {
  ctx.out().Comment("# bench = abl05_comm_cost");
  ctx.out().Comment("# panel 1: per-report bits and variance by (k, eps)");
  ctx.out().Config("bench", "abl05_comm_cost");

  // Built in locals and moved in: assigning literals between the +=
  // appends trips the GCC 12 -Wrestrict false positive (GCC bug 105329).
  std::string header = exp::StrPrintf("%-8s %-6s", "k", "eps");
  std::vector<std::string> columns{"eps"};
  for (Protocol p : fo::AllProtocols()) {
    header += exp::StrPrintf(" %9s_b %9s_v", fo::ProtocolName(p),
                             fo::ProtocolName(p));
    columns.push_back(exp::StrPrintf("%s_bits", fo::ProtocolName(p)));
    columns.push_back(exp::StrPrintf("%s_var", fo::ProtocolName(p)));
  }
  header += exp::StrPrintf(" %11s", "recommended");
  columns.push_back("recommended");
  exp::TableSpec spec;
  spec.header = std::move(header);
  spec.x_name = "domain_k";
  spec.columns = std::move(columns);
  ctx.out().BeginTable(spec);

  for (int k : {2, 16, 74, 512, 4096}) {
    for (double eps : {1.0, 4.0}) {
      std::vector<Cell> cells{Cell::Integer("%-8d", k),
                              Cell::Number(" %-6.1f", eps)};
      for (const auto& point : fo::CostUtilityFrontier(k, eps)) {
        cells.push_back(Cell::Number(" %11.0f", point.bits_per_report));
        cells.push_back(Cell::Number(" %11.3g", point.variance));
      }
      cells.push_back(Cell::Text(
          " %11s", fo::ProtocolName(fo::RecommendProtocol(k, eps))));
      ctx.out().Row(cells);
    }
  }

  ctx.out().Comment(
      "\n# panel 2: per-user upload (bits) on the Adult profile");
  const std::vector<int> adult_k = {74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  exp::TableSpec spec2;
  spec2.header = exp::StrPrintf("%-6s %-10s %10s %10s %10s", "eps",
                                "protocol", "SPL", "SMP", "RS+FD");
  spec2.x_name = "eps";
  spec2.columns = {"protocol", "spl_bits", "smp_bits", "rsfd_bits"};
  ctx.out().BeginTable(spec2);
  for (double eps : {1.0, 4.0}) {
    for (Protocol p : fo::AllProtocols()) {
      ctx.out().Row(
          {Cell::Number("%-6.1f", eps), Cell::Text(" %-10s", fo::ProtocolName(p)),
           Cell::Number(" %10.0f", fo::SplTupleBits(p, adult_k, eps)),
           Cell::Number(" %10.0f", fo::SmpTupleBits(p, adult_k, eps)),
           Cell::Number(" %10.0f", fo::RsFdTupleBits(p, adult_k, eps))});
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl05",
    /*title=*/"abl05_comm_cost",
    /*description=*/
    "Communication cost vs estimator variance across the five oracles",
    /*group=*/"ablation",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
