// Ablation 6: per-attribute adaptive protocol selection (ADP). Compares the
// averaged estimation MSE of RS+FD[ADP] against the fixed RS+FD[GRR] and
// RS+FD[OUE-z] variants, and SMP[ADP] against fixed SMP[GRR] / SMP[OUE], on
// the ACSEmployment attribute profile (k_j from 2 to 92, so the adaptive
// rule genuinely mixes choices). The adaptive curve should track the lower
// envelope of the two fixed curves at every epsilon.

#include "core/metrics.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/measure.h"
#include "multidim/adaptive.h"
#include "multidim/closed_form.h"
#include "multidim/rsfd.h"
#include "multidim/smp.h"
#include "sim/closed_form.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Acs(911, profile.Scale(1.0));
  ctx.EmitRunConfig("abl06_adaptive", ds.n(), ds.d());

  // Per-attribute choices at two budgets, to show the rule actually mixes.
  for (double eps : {1.0, 4.0}) {
    multidim::RsFdAdaptive adp(ds.domain_sizes(), eps);
    std::string line = exp::StrPrintf("# eps=%.1f RS+FD[ADP] choices:", eps);
    for (int j = 0; j < adp.d(); ++j) {
      line += adp.choice(j) == multidim::RsFdVariant::kGrr ? " GRR" : " OUE";
    }
    ctx.out().Comment(line);
  }

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %12s %12s %12s %12s %12s %12s",
                               "epsilon", "FD[ADP]", "FD[GRR]", "FD[OUE-z]",
                               "SMP[ADP]", "SMP[GRR]", "SMP[OUE]");
  spec.x_name = "epsilon";
  spec.columns = {"fd_adp", "fd_grr", "fd_ouez",
                  "smp_adp", "smp_grr", "smp_oue"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  const bool fast = profile.fast();
  multidim::AttributeHistograms hists;
  std::vector<std::vector<double>> truth;
  if (fast) {
    hists = sim::BuildAttributeHistograms(ds);
    truth = ds.Marginals();
  }
  // Legacy seeding: seed = 77, Rng(++seed * 9176) per trial; one stream
  // drives all six measurements sequentially. The fast profile salts the
  // same schedule with kFastProfileSeedSalt (fresh streams, pinned by
  // tests/golden/abl06_fast.txt).
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 6, [&](int point, int trial) {
        const std::uint64_t seed =
            77 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        const double eps = grid[point];
        std::vector<double> row(6, 0.0);
        if (fast) {
          Rng rng((seed * 9176) ^ exp::kFastProfileSeedSalt);
          const long long n = ds.n();
          const auto mse = [&](const auto& protocol) {
            return exp::ClosedFormProtocolMse(protocol, hists, n, truth, rng);
          };
          row[0] = mse(multidim::RsFdAdaptive(ds.domain_sizes(), eps));
          row[1] = mse(multidim::RsFd(multidim::RsFdVariant::kGrr,
                                      ds.domain_sizes(), eps));
          row[2] = mse(multidim::RsFd(multidim::RsFdVariant::kOueZ,
                                      ds.domain_sizes(), eps));
          row[3] = mse(multidim::SmpAdaptive(ds.domain_sizes(), eps));
          row[4] = mse(multidim::Smp(fo::Protocol::kGrr, ds.domain_sizes(),
                                     eps));
          row[5] = mse(multidim::Smp(fo::Protocol::kOue, ds.domain_sizes(),
                                     eps));
          return row;
        }
        Rng rng(seed * 9176);
        {
          multidim::RsFdAdaptive p(ds.domain_sizes(), eps);
          row[0] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        {
          multidim::RsFd p(multidim::RsFdVariant::kGrr, ds.domain_sizes(),
                           eps);
          row[1] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        {
          multidim::RsFd p(multidim::RsFdVariant::kOueZ, ds.domain_sizes(),
                           eps);
          row[2] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        {
          multidim::SmpAdaptive p(ds.domain_sizes(), eps);
          row[3] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        {
          multidim::Smp p(fo::Protocol::kGrr, ds.domain_sizes(), eps);
          row[4] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        {
          multidim::Smp p(fo::Protocol::kOue, ds.domain_sizes(), eps);
          row[5] = exp::SerialProtocolMse(p, ds, ds.Marginals(), rng);
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl06",
    /*title=*/"abl06_adaptive",
    /*description=*/
    "Adaptive protocol selection (ADP) utility vs fixed RS+FD / SMP",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
