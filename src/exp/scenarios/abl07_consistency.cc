// Ablation 7: consistency post-processing (fo/consistency; Wang et al.,
// NDSS'20) applied to the multidimensional estimates. Raw RS+FD / SMP
// estimates can be negative and need not sum to one; DP's immunity to
// post-processing (Section 2.1) lets the server project them onto the
// simplex for free. The table reports MSE_avg of the raw estimates against
// ClampRenorm, Norm-Sub and Base-Cut across eps on the ACS profile — the
// gain is largest in high-privacy regimes where the additive noise is wide.

#include <algorithm>
#include <cmath>

#include "core/metrics.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/measure.h"
#include "fo/consistency.h"
#include "multidim/closed_form.h"
#include "multidim/rsfd.h"
#include "multidim/variance.h"
#include "sim/closed_form.h"

namespace {

using namespace ldpr;
using exp::Cell;

std::vector<std::vector<double>> PostProcess(
    const std::vector<std::vector<double>>& est, fo::ConsistencyMethod method,
    double threshold) {
  std::vector<std::vector<double>> out;
  out.reserve(est.size());
  for (const auto& attribute : est) {
    out.push_back(fo::MakeConsistent(attribute, method, threshold));
  }
  return out;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Acs(606, profile.Scale(1.0));
  ctx.EmitRunConfig("abl07_consistency", ds.n(), ds.d());
  ctx.out().Comment(
      "# RS+FD[GRR]; Base-Cut threshold = 2 sigma of the estimator");

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-8s %12s %12s %12s %12s", "epsilon", "raw",
                               "clamp", "norm-sub", "base-cut");
  spec.x_name = "epsilon";
  spec.columns = {"raw", "clamp", "norm_sub", "base_cut"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  const bool fast = profile.fast();
  multidim::AttributeHistograms hists;
  if (fast) hists = sim::BuildAttributeHistograms(ds);
  // Legacy seeding: seed = 17, Rng(++seed * 2903) per trial. The fast
  // profile salts the same schedule with kFastProfileSeedSalt (fresh
  // streams, pinned by tests/golden/abl07_fast.txt).
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 4, [&](int point, int trial) {
        const std::uint64_t seed =
            17 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        const double eps = grid[point];
        multidim::RsFd protocol(multidim::RsFdVariant::kGrr,
                                ds.domain_sizes(), eps);
        const auto truth = ds.Marginals();
        std::vector<std::vector<double>> est;
        if (fast) {
          Rng rng((seed * 2903) ^ exp::kFastProfileSeedSalt);
          est = multidim::EstimateClosedForm(protocol, hists, ds.n(), rng);
        } else {
          Rng rng(seed * 2903);
          est = exp::SerialEstimate(protocol, ds, rng);
        }
        std::vector<double> row(4, 0.0);
        row[0] = MseAvg(truth, est);
        row[1] = MseAvg(
            truth, PostProcess(est, fo::ConsistencyMethod::kClampRenorm, 0));
        row[2] = MseAvg(truth,
                        PostProcess(est, fo::ConsistencyMethod::kNormSub, 0));
        // 2-sigma Base-Cut using the worst attribute's variance as the level.
        double sigma = 0.0;
        for (int j = 0; j < ds.d(); ++j) {
          sigma = std::max(
              sigma, std::sqrt(multidim::RsFdVariance(
                         multidim::RsFdVariant::kGrr, ds.domain_size(j),
                         ds.d(), eps, ds.n(), 0.0)));
        }
        row[3] = MseAvg(truth,
                        PostProcess(est, fo::ConsistencyMethod::kBaseCut,
                                    2.0 * sigma));
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-8.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl07",
    /*title=*/"abl07_consistency",
    /*description=*/
    "Consistency post-processing gains on RS+FD[GRR] estimates",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
