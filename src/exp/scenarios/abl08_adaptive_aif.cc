// Ablation 8: does per-attribute adaptive selection (RS+FD[ADP]) change the
// attack surface? The NK sampled-attribute inference attack (Section 3.3.1,
// GBDT on synthetic profiles) runs against RS+FD[ADP] and its two fixed
// ingredients on the ACS profile. Expectation: ADP inherits the *worse* of
// its ingredients' leakages wherever it selects OUE-z (zero-vector fake
// data is the paper's most distinguishable choice), so picking protocols
// for utility alone can silently worsen privacy — the utility/privacy
// tension of Section 6 at the protocol-selection level.

#include "attack/aif.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"

namespace {

using namespace ldpr;
using exp::Cell;

template <typename Protocol>
double Attack(const data::Dataset& ds, const Protocol& protocol,
              const ml::GbdtConfig& gbdt, Rng& rng) {
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt = gbdt;
  return attack::RunAifAttack(
             ds,
             [&](const std::vector<int>& r, Rng& g) {
               return protocol.RandomizeUser(r, g);
             },
             [&](const std::vector<multidim::MultidimReport>& reps) {
               return protocol.Estimate(reps);
             },
             config, rng)
      .aif_acc_percent;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Acs(808, profile.BenchScale());
  ctx.EmitRunConfig("abl08_adaptive_aif", ds.n(), ds.d());
  ctx.out().Comment(exp::StrPrintf(
      "# NK model, s = 1n, baseline = %.3f%%", 100.0 / ds.d()));

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-8s %12s %12s %12s", "epsilon", "ADP",
                               "GRR", "OUE-z");
  spec.x_name = "epsilon";
  spec.columns = {"adp", "grr", "oue_z"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  // Legacy seeding: seed = 5, Rng(++seed * 3571) per trial; one stream
  // drives ADP, GRR, OUE-z sequentially.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 3, [&](int point, int trial) {
        const std::uint64_t seed =
            5 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(seed * 3571);
        const double eps = grid[point];
        std::vector<double> row(3, 0.0);
        {
          multidim::RsFdAdaptive protocol(ds.domain_sizes(), eps);
          row[0] = Attack(ds, protocol, profile.gbdt, rng);
        }
        {
          multidim::RsFd protocol(multidim::RsFdVariant::kGrr,
                                  ds.domain_sizes(), eps);
          row[1] = Attack(ds, protocol, profile.gbdt, rng);
        }
        {
          multidim::RsFd protocol(multidim::RsFdVariant::kOueZ,
                                  ds.domain_sizes(), eps);
          row[2] = Attack(ds, protocol, profile.gbdt, rng);
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-8.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.3f", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl08",
    /*title=*/"abl08_adaptive_aif",
    /*description=*/
    "AIF attack surface of adaptive protocol selection (RS+FD[ADP])",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
