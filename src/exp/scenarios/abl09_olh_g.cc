// Ablation 9: the local-hashing domain size g. OLH fixes g = e^eps + 1 to
// minimize the estimator variance; this sweep shows both what that choice
// buys and what it costs. For k = 74 at two budgets, each g reports the
// empirical estimation MSE on a Zipf population and the single-report
// attacker's accuracy (Section 3.2.1 adversary: uniform choice within the
// reported cell's hash preimage). Expected shape: MSE is U-shaped with its
// minimum near g ~ e^eps + 1. Attacker accuracy is hump-shaped: growing g
// first helps the attacker (fewer values share a cell, so hashing hides
// less) until the in-cell GRR itself turns noisy (p' = e^eps/(e^eps+g-1)
// decays), after which accuracy falls again — the variance-optimal g sits
// on the rising flank, so g is an attack-surface knob as well.

#include <algorithm>
#include <cmath>

#include "attack/plausible_deniability.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "fo/olh.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const int k = 74;
  const int n = static_cast<int>(profile.Mc(nullptr, 40000, 2000));
  ctx.out().Comment("# bench = abl09_olh_g");
  ctx.out().Comment(
      exp::StrPrintf("# k = %d, n = %d, Zipf(1.3) population", k, n));
  ctx.out().Config("bench", "abl09_olh_g");

  const int runs = profile.runs;
  for (double eps : {1.0, 3.0}) {
    const int g_opt =
        std::max(2, static_cast<int>(std::lround(std::exp(eps))) + 1);
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("eps = %.1f (optimal g = %d)", eps, g_opt);
    spec.header = exp::StrPrintf("%-6s %12s %14s", "g", "MSE",
                                 "attack ACC(%)");
    spec.x_name = "hash_g";
    spec.columns = {"mse", "attack_acc"};
    ctx.out().BeginTable(spec);

    std::vector<int> gs = {2, 3, 5, 8, 16, 32, 64, 128};
    if (std::find(gs.begin(), gs.end(), g_opt) == gs.end()) {
      gs.push_back(g_opt);
      std::sort(gs.begin(), gs.end());
    }
    gs = profile.Grid(gs);

    // Legacy seeding: seed = 7 per section, Rng(++seed * 467) per trial.
    const auto means = exp::RunGrid(
        static_cast<int>(gs.size()), runs, 2, [&](int point, int trial) {
          const std::uint64_t seed =
              7 + static_cast<std::uint64_t>(point) * runs + trial + 1;
          Rng rng(seed * 467);
          CategoricalSampler population(ZipfDistribution(k, 1.3));
          std::vector<int> values(n);
          for (int& v : values) v = population.Sample(rng);
          const std::vector<double> truth = EmpiricalFrequency(values, k);

          fo::Olh oracle(k, eps, gs[point]);
          const double mse = Mse(truth, oracle.EstimateFrequencies(values, rng));
          const double acc =
              attack::EmpiricalAttackAccPercent(oracle, values, rng);
          return std::vector<double>{mse, acc};
        });

    for (std::size_t p = 0; p < gs.size(); ++p) {
      ctx.out().Row({Cell::Integer("%-6d", gs[p]),
                     Cell::Number(" %12.4e", means[p][0]),
                     Cell::Number(" %14.2f", means[p][1])});
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl09",
    /*title=*/"abl09_olh_g",
    /*description=*/
    "OLH hash-domain size g: estimation MSE vs attacker accuracy",
    /*group=*/"ablation",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
