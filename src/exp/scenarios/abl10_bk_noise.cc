// Ablation 10: background-knowledge quality. The paper's FK-RI experiments
// match profiles against an exact copy of the collected dataset; real
// adversaries hold stale or noisy auxiliary data (census releases, old
// breaches). This sweep corrupts a fraction of the background's cells
// before matching and reports the top-1/top-10 RID-ACC of GRR-inferred
// profiles (5 attributes, eps = 8, near-perfect profiling) on the
// Adult-shaped population. Expected shape: RID-ACC decays smoothly with
// noise and approaches the random baseline near full corruption — attack
// results under the paper's exact-copy assumption are an upper bound on
// realistic adversaries.

#include "attack/profiling.h"
#include "attack/reident.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Adult(606, profile.BenchScale());
  ctx.EmitRunConfig("abl10_bk_noise", ds.n(), ds.d());
  const double eps = 8.0;
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  ctx.out().Comment(exp::StrPrintf(
      "# GRR profiles over %zu attributes at eps = %.1f", attrs.size(), eps));
  ctx.out().Comment(
      exp::StrPrintf("# baseline: top-1 %.4f%%, top-10 %.4f%%",
                     attack::BaselineRidAcc(1, ds.n()),
                     attack::BaselineRidAcc(10, ds.n())));

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %12s %12s", "bk_noise", "top-1(%)",
                               "top-10(%)");
  spec.x_name = "bk_noise";
  spec.columns = {"top1", "top10"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(
      std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0});
  // Legacy seeding: seed = 19, Rng(++seed * 653) per trial.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 2, [&](int point, int trial) {
        const std::uint64_t seed =
            19 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(seed * 653);
        auto channel = attack::MakeLdpChannel(fo::Protocol::kGrr,
                                              ds.domain_sizes(), eps);
        std::vector<attack::Profile> profiles(ds.n());
        for (int i = 0; i < ds.n(); ++i) {
          for (int j : attrs) {
            profiles[i].emplace_back(
                j, channel->ReportAndPredict(ds.value(i, j), j, rng));
          }
        }
        std::vector<bool> bk(ds.d(), true);
        attack::ReidentConfig config;
        config.bk_noise = grid[point];
        config.max_targets = profile.reident_targets;
        auto result = attack::ReidentAccuracy(profiles, ds, bk, config, rng);
        return std::vector<double>{result.rid_acc_percent[0],
                                   result.rid_acc_percent[1]};
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    ctx.out().Row({Cell::Number("%-10.2f", grid[p]),
                   Cell::Number(" %12.4f", means[p][0]),
                   Cell::Number(" %12.4f", means[p][1])});
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl10",
    /*title=*/"abl10_bk_noise",
    /*description=*/
    "Re-identification accuracy vs background-knowledge corruption",
    /*group=*/"ablation",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
