// Ablation 11: RS+RFD[ADP] — the countermeasure (realistic fake data)
// combined with per-attribute adaptive randomizer selection, closing the
// design matrix that abl06 (utility of RS+FD[ADP]) and abl08 (its attack
// surface) opened. Columns: estimation MSE_avg and NK attribute-inference
// accuracy for RS+RFD[ADP] against the fixed RS+RFD[GRR] / RS+RFD[OUE-r]
// and against RS+FD[ADP], on the ACS profile with "Correct" Laplace priors.
// Expected shape: RS+RFD[ADP] tracks the better fixed RS+RFD variant's MSE
// while keeping AIF-ACC near the RS+RFD (not the RS+FD[ADP]) level.

#include "attack/aif.h"
#include "core/metrics.h"
#include "data/priors.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/measure.h"
#include "multidim/adaptive.h"
#include "multidim/rsrfd.h"
#include "multidim/rsrfd_adaptive.h"

namespace {

using namespace ldpr;
using exp::Cell;

template <typename Protocol>
double ProtocolMse(const data::Dataset& ds, const Protocol& protocol,
                   Rng& rng) {
  return exp::SerialProtocolMse(protocol, ds, ds.Marginals(), rng);
}

template <typename Protocol>
double ProtocolAif(const data::Dataset& ds, const Protocol& protocol,
                   const ml::GbdtConfig& gbdt, Rng& rng) {
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt = gbdt;
  return attack::RunAifAttack(
             ds,
             [&](const std::vector<int>& r, Rng& g) {
               return protocol.RandomizeUser(r, g);
             },
             [&](const std::vector<multidim::MultidimReport>& reps) {
               return protocol.Estimate(reps);
             },
             config, rng)
      .aif_acc_percent;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  // Full paper scale by default: the Correct Laplace priors are only
  // meaningful relative to n (abl04); at small n they are noise-dominated
  // and RS+RFD degenerates to the bad-prior regime.
  const data::Dataset& ds = ctx.Acs(515, profile.Scale(1.0));
  ctx.EmitRunConfig("abl11_rsrfd_adaptive", ds.n(), ds.d());
  ctx.out().Comment(exp::StrPrintf(
      "# Correct Laplace priors; NK attack baseline = %.3f%%",
      100.0 / ds.d()));

  exp::TableSpec spec;
  spec.header = exp::StrPrintf(
      "%-6s %11s %11s %11s %11s | %9s %9s %9s %9s", "eps", "RFD[ADP]m",
      "RFD[GRR]m", "RFD[OUEr]m", "FD[ADP]m", "RFD[ADP]a", "RFD[GRR]a",
      "RFD[OUEr]a", "FD[ADP]a");
  spec.x_name = "eps";
  spec.columns = {"rfd_adp_mse", "rfd_grr_mse", "rfd_ouer_mse", "fd_adp_mse",
                  "sep",         "rfd_adp_aif", "rfd_grr_aif",  "rfd_ouer_aif",
                  "fd_adp_aif"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid =
      profile.Grid(std::vector<double>{1.0, 2.0, 4.0, 8.0});
  // Legacy seeding: seed = 23, Rng(++seed * 1237) per trial; one stream
  // drives the four MSE then the four AIF measurements sequentially.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 8, [&](int point, int trial) {
        const std::uint64_t seed =
            23 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(seed * 1237);
        const double eps = grid[point];
        auto priors =
            data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng);
        multidim::RsRfdAdaptive rfd_adp(ds.domain_sizes(), eps, priors);
        multidim::RsRfd rfd_grr(multidim::RsRfdVariant::kGrr,
                                ds.domain_sizes(), eps, priors);
        multidim::RsRfd rfd_ouer(multidim::RsRfdVariant::kOueR,
                                 ds.domain_sizes(), eps, priors);
        multidim::RsFdAdaptive fd_adp(ds.domain_sizes(), eps);
        std::vector<double> row(8, 0.0);
        row[0] = ProtocolMse(ds, rfd_adp, rng);
        row[1] = ProtocolMse(ds, rfd_grr, rng);
        row[2] = ProtocolMse(ds, rfd_ouer, rng);
        row[3] = ProtocolMse(ds, fd_adp, rng);
        row[4] = ProtocolAif(ds, rfd_adp, profile.gbdt, rng);
        row[5] = ProtocolAif(ds, rfd_grr, profile.gbdt, rng);
        row[6] = ProtocolAif(ds, rfd_ouer, profile.gbdt, rng);
        row[7] = ProtocolAif(ds, fd_adp, profile.gbdt, rng);
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-6.1f", grid[p])};
    for (int c = 0; c < 4; ++c) {
      cells.push_back(Cell::Number(" %11.3e", means[p][c]));
    }
    cells.push_back(Cell::Text("%s", " |"));
    for (int c = 4; c < 8; ++c) {
      cells.push_back(Cell::Number(" %9.2f", means[p][c]));
    }
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"abl11",
    /*title=*/"abl11_rsrfd_adaptive",
    /*description=*/
    "RS+RFD[ADP]: adaptive selection combined with the countermeasure",
    /*group=*/"ablation",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
