// csv01: RS+FD estimation utility over a dataset loaded from CSV — the
// pipeline a deployment would run over a real extract (`--csv` / data/csv).
//
// The CSV path comes from LDPR_CSV when set (any label-encodable
// categorical file, header row expected). Otherwise an Adult-like
// population is synthesized, written with data::SaveCsv to the system temp
// directory and re-loaded through the memoized CSV cache, so the loader,
// label encoding and domain inference are exercised end to end either way.
// Truth is the loaded dataset's own marginals (label encoding may permute
// value ids relative to the source; the estimators only ever see the loaded
// coding). Reports the averaged MSE of all five RS+FD variants over the
// paper's utility epsilon grid, on both fidelities.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "core/metrics.h"
#include "data/csv.h"
#include "data/synthetic.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/measure.h"
#include "multidim/closed_form.h"
#include "multidim/rsfd.h"
#include "sim/closed_form.h"

namespace {

using namespace ldpr;
using exp::Cell;

const data::Dataset& LoadCsvDataset(exp::Context& ctx, std::string* source) {
  const char* env_path = std::getenv("LDPR_CSV");
  if (env_path != nullptr && env_path[0] != '\0') {
    *source = env_path;
    return exp::GetCsvDataset(env_path);
  }
  // No real file supplied: round-trip a synthesized population through the
  // CSV layer so the scenario always measures the --csv pipeline.
  const double scale = ctx.profile().Scale(0.2);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       exp::StrPrintf("ldpr_csv01_adult_%.4f.csv", scale))
          .string();
  if (!std::filesystem::exists(path)) {
    // Write-then-rename: concurrent suites regenerating the same scale must
    // never observe a torn file.
    const std::string tmp =
        path + exp::StrPrintf(".tmp.%d", static_cast<int>(::getpid()));
    data::SaveCsv(data::AdultLike(2023, scale), tmp);
    std::filesystem::rename(tmp, path);
  }
  *source = path + " (synthesized)";
  return exp::GetCsvDataset(path);
}

void Run(exp::Context& ctx) {
  std::string source;
  const data::Dataset& ds = LoadCsvDataset(ctx, &source);
  ctx.out().Config("csv", source);
  ctx.EmitRunConfig("csv01_rsfd_csv", ds.n(), ds.d());
  ctx.out().Comment(exp::StrPrintf("# csv = %s", source.c_str()));

  const multidim::RsFdVariant variants[] = {
      multidim::RsFdVariant::kGrr, multidim::RsFdVariant::kSueZ,
      multidim::RsFdVariant::kSueR, multidim::RsFdVariant::kOueZ,
      multidim::RsFdVariant::kOueR};
  const char* names[] = {"FD[GRR]", "FD[SUE-z]", "FD[SUE-r]", "FD[OUE-z]",
                         "FD[OUE-r]"};

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %12s %12s %12s %12s %12s", "epsilon",
                               names[0], names[1], names[2], names[3],
                               names[4]);
  spec.x_name = "epsilon";
  spec.columns.assign(names, names + 5);
  ctx.out().BeginTable(spec);

  const int runs = ctx.profile().runs;
  const std::vector<double> grid =
      ctx.profile().Grid(exp::LogUtilityEpsilonGrid());
  const bool fast = ctx.profile().fast();
  multidim::AttributeHistograms hists;
  std::vector<std::vector<double>> truth = ds.Marginals();
  if (fast) hists = sim::BuildAttributeHistograms(ds);

  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 5, [&](int point, int trial) {
        std::uint64_t seed =
            150 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        if (fast) seed ^= exp::kFastProfileSeedSalt;
        Rng rng(seed * 7919);
        std::vector<double> row(5, 0.0);
        for (int v = 0; v < 5; ++v) {
          multidim::RsFd fd(variants[v], ds.domain_sizes(), grid[point]);
          row[v] = fast ? exp::ClosedFormProtocolMse(fd, hists, ds.n(), truth,
                                                     rng)
                        : exp::SerialProtocolMse(fd, ds, truth, rng);
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.4f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"csv01",
    /*title=*/"csv01_rsfd_csv",
    /*description=*/
    "RS+FD estimation MSE over a CSV-loaded dataset (LDPR_CSV or "
    "synthesized round trip)",
    /*group=*/"framework",
    /*datasets=*/{"csv"},
    /*run=*/Run,
}};

}  // namespace
