// Figure 1: analytical attacker accuracy when collecting multidimensional
// data (d = 3, k = [74, 7, 16]) with the SMP solution over #surveys = 3.
// Panel (a): uniform privacy metric (Eq. 4); panel (b): non-uniform (Eq. 5).
// Panel (c) cross-checks Eq. 4 empirically with the sharded simulation
// engine (attack::MonteCarloProfileAcc runs on sim::ShardedRun, so it scales
// with LDPR_THREADS); LDPR_FIG01_TRIALS sets the Monte-Carlo sample size
// (0 skips the panel).

#include "attack/plausible_deniability.h"
#include "core/rng.h"
#include "exp/experiment.h"
#include "fo/analytic_acc.h"

namespace {

using namespace ldpr;
using exp::Cell;

void AnalyticPanel(exp::Context& ctx, const char* section,
                   const std::vector<int>& k, bool uniform) {
  exp::TableSpec spec;
  spec.section = section;
  spec.header = exp::StrPrintf("%-8s", "epsilon");
  spec.x_name = "epsilon";
  for (fo::Protocol p : fo::AllProtocols()) {
    spec.header += exp::StrPrintf(" %8s", fo::ProtocolName(p));
    spec.columns.push_back(fo::ProtocolName(p));
  }
  ctx.out().BeginTable(spec);
  for (int eps = 1; eps <= 10; ++eps) {
    std::vector<Cell> cells{Cell::Integer("%-8d", eps)};
    for (fo::Protocol p : fo::AllProtocols()) {
      const double acc = uniform ? fo::ExpectedAccUniform(p, eps, k)
                                 : fo::ExpectedAccNonUniform(p, eps, k);
      cells.push_back(Cell::Number(" %8.3f", 100.0 * acc));
    }
    ctx.out().Row(cells);
  }
}

void Run(exp::Context& ctx) {
  const std::vector<int> k{74, 7, 16};

  ctx.out().Comment("# bench = fig01_expected_acc");
  ctx.out().Comment("# d = 3, k = [74, 7, 16], #surveys = 3");
  ctx.out().Config("bench", "fig01_expected_acc");

  AnalyticPanel(ctx, "panel (a): expected ACC_U (%), Eq. (4)", k, true);
  AnalyticPanel(ctx, "panel (b): expected ACC_NU (%), Eq. (5)", k, false);

  const int trials = static_cast<int>(
      ctx.profile().Mc("LDPR_FIG01_TRIALS", 20000, 500));
  if (trials > 0) {
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("panel (c): simulated ACC_U (%%), %d "
                                  "trials/point", trials);
    spec.header = exp::StrPrintf("%-8s", "epsilon");
    spec.x_name = "epsilon";
    for (fo::Protocol p : fo::AllProtocols()) {
      spec.header += exp::StrPrintf(" %8s", fo::ProtocolName(p));
      spec.columns.push_back(fo::ProtocolName(p));
    }
    ctx.out().BeginTable(spec);
    // One serial Rng across all cells, exactly like the legacy driver (the
    // Monte-Carlo itself shards across the pool internally).
    Rng rng(2023);
    for (int eps = 1; eps <= 10; ++eps) {
      std::vector<Cell> cells{Cell::Integer("%-8d", eps)};
      for (fo::Protocol p : fo::AllProtocols()) {
        const double acc = attack::MonteCarloProfileAcc(
            p, eps, k, /*uniform_metric=*/true, trials, rng);
        cells.push_back(Cell::Number(" %8.3f", 100.0 * acc));
      }
      ctx.out().Row(cells);
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig01",
    /*title=*/"fig01_expected_acc",
    /*description=*/
    "Analytical (Eqs. 4-5) and simulated attacker accuracy for SMP, d = 3",
    /*group=*/"figure",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
