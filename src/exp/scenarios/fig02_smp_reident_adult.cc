// Figure 2: attacker's re-identification accuracy (RID-ACC) on the Adult
// dataset for top-k re-identification with the SMP solution, full-knowledge
// FK-RI model, uniform eps-LDP privacy metric, varying the LDP protocol and
// the number of surveys (2..5).

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().BenchScale());
  exp::RunSmpReidentFigure(
      ctx, "fig02_smp_reident_adult", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      exp::ChannelKind::kLdp, exp::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kFullKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig02",
    /*title=*/"fig02_smp_reident_adult",
    /*description=*/
    "SMP top-k re-identification on Adult, FK-RI, uniform eps-LDP metric",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
