// Figure 3: attacker's AIF-ACC on the ACSEmployment dataset with the three
// attack models (NK, PK, HM) and the five RS+FD protocols, varying epsilon,
// the number of synthetic profiles s and compromised profiles npk.

#include "exp/aif_figure.h"

namespace {

using namespace ldpr;

std::vector<exp::AifCurve> RsFdCurves(const data::Dataset& ds) {
  return {
      {"RS+FD[GRR]", exp::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
}

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Acs(2023, ctx.profile().BenchScale());
  exp::RunAifFigure(ctx, "fig03_rsfd_aif_acs", ds, RsFdCurves(ds),
                    exp::PaperAifPanels());
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig03",
    /*title=*/"fig03_rsfd_aif_acs",
    /*description=*/
    "AIF attack accuracy on ACSEmployment against the five RS+FD variants",
    /*group=*/"figure",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
