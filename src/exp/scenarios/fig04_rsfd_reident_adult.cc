// Figure 4: attacker's RID-ACC on the Adult dataset using the RS+FD[GRR]
// protocol across multiple surveys. Per survey, the attacker first predicts
// each user's sampled attribute with the NK model (s = 1n synthetic
// profiles) and then predicts the value of the predicted attribute —
// chained errors collapse the re-identification rates versus SMP (Fig. 2).

#include "attack/profiling.h"
#include "attack/reident.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Adult(2023, 0.5 * profile.BenchScale());
  ctx.EmitRunConfig("fig04_rsfd_reident_adult", ds.n(), ds.d());
  ctx.out().Comment(
      "# protocol = RS+FD[GRR], NK model (s = 1n), FK-RI, uniform");
  ctx.out().Comment(
      exp::StrPrintf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%",
                     attack::BaselineRidAcc(1, ds.n()),
                     attack::BaselineRidAcc(10, ds.n())));

  const int num_surveys = profile.Count(5, 3);
  const int runs = profile.runs;
  const int prefixes = num_surveys - 1;

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-8s", "epsilon");
  spec.x_name = "epsilon";
  for (int k : {1, 10}) {
    for (int s = 2; s <= num_surveys; ++s) {
      spec.header += exp::StrPrintf(" top%d_sv%d", k, s);
      spec.columns.push_back(exp::StrPrintf("top%d_sv%d", k, s));
    }
  }
  ctx.out().BeginTable(spec);

  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  // Legacy seeding: seed = 40, pre-incremented per trial across the grid:
  // Rng(++seed * 7919).
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 2 * prefixes,
      [&](int point, int trial) {
        const std::uint64_t seed =
            40 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(seed * 7919);
        attack::SurveyPlan plan =
            attack::MakeSurveyPlan(ds.d(), num_surveys, rng);
        auto snapshots = attack::SimulateRsFdProfiling(
            ds, multidim::RsFdVariant::kGrr, grid[point], plan,
            /*synthetic_multiplier=*/1.0, profile.gbdt, rng);
        std::vector<bool> bk(ds.d(), true);
        attack::ReidentConfig config;
        config.top_k = {1, 10};
        config.max_targets = profile.reident_targets;
        std::vector<double> acc(2 * prefixes, 0.0);
        for (int s = 2; s <= num_surveys; ++s) {
          auto result =
              attack::ReidentAccuracy(snapshots[s - 1], ds, bk, config, rng);
          acc[s - 2] = result.rid_acc_percent[0];
          acc[prefixes + s - 2] = result.rid_acc_percent[1];
        }
        return acc;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-8.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %8.4f", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig04",
    /*title=*/"fig04_rsfd_reident_adult",
    /*description=*/
    "RS+FD[GRR] multi-survey re-identification on Adult (chained NK attack)",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
