// Figure 5: averaged MSE of multidimensional frequency estimation on the
// ACSEmployment dataset, RS+RFD versus RS+FD (GRR / SUE-r / OUE-r), for
// (a) "Correct" Laplace-perturbed priors and (b) "Incorrect" Dirichlet(1)
// priors, over epsilon in [ln 2, ln 7].

#include "core/metrics.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/measure.h"
#include "multidim/closed_form.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "sim/closed_form.h"

namespace {

using namespace ldpr;
using exp::Cell;

double RsFdMse(const data::Dataset& ds, multidim::RsFdVariant variant,
               double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  return exp::SerialProtocolMse(protocol, ds, ds.Marginals(), rng);
}

double RsRfdMse(const data::Dataset& ds, multidim::RsRfdVariant variant,
                data::PriorKind prior_kind, double eps, Rng& rng) {
  auto priors = data::BuildPriors(ds, prior_kind, rng);
  multidim::RsRfd protocol(variant, ds.domain_sizes(), eps, priors);
  return exp::SerialProtocolMse(protocol, ds, ds.Marginals(), rng);
}

void Panel(exp::Context& ctx, const data::Dataset& ds,
           data::PriorKind prior_kind) {
  const char* names[] = {"RFD[GRR]", "RFD[SUE-r]", "RFD[OUE-r]",
                         "FD[GRR]",  "FD[SUE-r]",  "FD[OUE-r]"};
  exp::TableSpec spec;
  spec.section =
      exp::StrPrintf("priors = %s", data::PriorKindName(prior_kind));
  spec.header = exp::StrPrintf("%-10s %12s %12s %12s %12s %12s %12s",
                               "epsilon", names[0], names[1], names[2],
                               names[3], names[4], names[5]);
  spec.x_name = "epsilon";
  spec.columns.assign(names, names + 6);
  ctx.out().BeginTable(spec);

  const int runs = ctx.profile().runs;
  const std::vector<double> grid =
      ctx.profile().Grid(exp::LogUtilityEpsilonGrid());
  const bool fast = ctx.profile().fast();
  // Fast profile: the per-user report loops collapse to closed-form tally
  // sampling over these hoisted per-attribute histograms.
  multidim::AttributeHistograms hists;
  std::vector<std::vector<double>> truth;
  if (fast) {
    hists = sim::BuildAttributeHistograms(ds);
    truth = ds.Marginals();
  }
  // Legacy seeding: seed = 50 per panel, Rng(++seed * 6151) per trial; one
  // stream drives rfd/fd for all three variants interleaved. The fast
  // profile salts the same schedule with kFastProfileSeedSalt (fresh
  // streams, pinned by tests/golden/fig05_fast.txt).
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 6, [&](int point, int trial) {
        const std::uint64_t seed =
            50 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        const multidim::RsRfdVariant rfd_variants[] = {
            multidim::RsRfdVariant::kGrr, multidim::RsRfdVariant::kSueR,
            multidim::RsRfdVariant::kOueR};
        const multidim::RsFdVariant fd_variants[] = {
            multidim::RsFdVariant::kGrr, multidim::RsFdVariant::kSueR,
            multidim::RsFdVariant::kOueR};
        std::vector<double> row(6, 0.0);
        if (fast) {
          Rng rng((seed * 6151) ^ exp::kFastProfileSeedSalt);
          const long long n = ds.n();
          for (int v = 0; v < 3; ++v) {
            auto priors = data::BuildPriors(ds, prior_kind, rng);
            multidim::RsRfd rfd(rfd_variants[v], ds.domain_sizes(),
                                grid[point], priors);
            row[v] = exp::ClosedFormProtocolMse(rfd, hists, n, truth, rng);
            multidim::RsFd fd(fd_variants[v], ds.domain_sizes(), grid[point]);
            row[3 + v] =
                exp::ClosedFormProtocolMse(fd, hists, n, truth, rng);
          }
          return row;
        }
        Rng rng(seed * 6151);
        for (int v = 0; v < 3; ++v) {
          row[v] = RsRfdMse(ds, rfd_variants[v], prior_kind, grid[point], rng);
          row[3 + v] = RsFdMse(ds, fd_variants[v], grid[point], rng);
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.4f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

void Run(exp::Context& ctx) {
  // Estimation-only workload: full synthetic scale is cheap, so default to
  // it. The closed-form fast profile goes further: its per-cell cost is
  // O(sum k_j) regardless of n, so it defaults to the source paper's true
  // ACSEmployment size (~3.2M users) instead of the 10k-scale stand-in —
  // the one pass over the users is building the per-attribute histograms.
  const double default_scale =
      ctx.profile().fast() ? data::kAcsEmploymentPaperScale : 1.0;
  const data::Dataset& ds = ctx.Acs(2023, ctx.profile().Scale(default_scale));
  ctx.EmitRunConfig("fig05_rsrfd_mse_acs", ds.n(), ds.d());
  Panel(ctx, ds, data::PriorKind::kCorrectLaplace);      // panel (a)
  Panel(ctx, ds, data::PriorKind::kIncorrectDirichlet);  // panel (b)
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig05",
    /*title=*/"fig05_rsrfd_mse_acs",
    /*description=*/
    "Estimation MSE on ACSEmployment: RS+RFD vs RS+FD, both prior regimes",
    /*group=*/"figure",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
