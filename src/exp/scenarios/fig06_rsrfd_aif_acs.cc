// Figure 6: attacker's AIF-ACC on the ACSEmployment dataset against the
// RS+RFD countermeasure with "Correct" (Laplace-perturbed) priors — the
// attack should barely beat the 1/d baseline across NK / PK / HM.

#include "data/synthetic.h"
#include "exp/aif_figure.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Acs(2023, ctx.profile().BenchScale());
  std::vector<exp::AifCurve> curves{
      {"RS+RFD[GRR]",
       exp::MakeRsRfdFactory(multidim::RsRfdVariant::kGrr,
                             data::PriorKind::kCorrectLaplace, ds,
                             data::kAcsEmploymentN)},
      {"RS+RFD[SUE-r]",
       exp::MakeRsRfdFactory(multidim::RsRfdVariant::kSueR,
                             data::PriorKind::kCorrectLaplace, ds,
                             data::kAcsEmploymentN)},
      {"RS+RFD[OUE-r]",
       exp::MakeRsRfdFactory(multidim::RsRfdVariant::kOueR,
                             data::PriorKind::kCorrectLaplace, ds,
                             data::kAcsEmploymentN)},
  };
  exp::RunAifFigure(ctx, "fig06_rsrfd_aif_acs", ds, curves,
                    exp::PaperAifPanels());
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig06",
    /*title=*/"fig06_rsrfd_aif_acs",
    /*description=*/
    "AIF attack on ACSEmployment against RS+RFD with Correct priors",
    /*group=*/"figure",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
