// Figures 7 and 8 (Appendices A-B): the probability trees of the
// RS+RFD[GRR] and RS+RFD[UE-r] protocols. This scenario prints every leaf
// probability of reporting/supporting a target value v analytically and
// verifies each against a Monte-Carlo simulation of the client.

#include <cmath>

#include "core/rng.h"
#include "exp/experiment.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"
#include "multidim/rsrfd.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const int d = 3;
  const int k = 5;
  const double eps = 1.0;
  const double eps_prime = multidim::AmplifiedEpsilon(eps, d);
  const int target = 1;      // value v_i whose support we track
  const int true_value = 1;  // the user's true value (B = v_i branch)
  const std::vector<double> prior{0.4, 0.3, 0.1, 0.1, 0.1};
  const double f_tilde = prior[target];

  ctx.out().Comment("# bench = fig07_08_probability_trees");
  ctx.out().Comment(exp::StrPrintf(
      "# d = %d, k = %d, eps = %.2f, eps' = %.4f, f~(v) = %.2f", d, k, eps,
      eps_prime, f_tilde));
  ctx.out().Config("bench", "fig07_08_probability_trees");

  const int trials =
      static_cast<int>(ctx.profile().Mc(nullptr, 2000000, 20000));
  std::vector<int> record(d, true_value);
  std::vector<std::vector<double>> priors(d, prior);

  auto row = [&](const char* label, double v) {
    ctx.out().Row({Cell::Text("%s", label), Cell::Number("%.6f", v)});
  };

  {
    // ---- Fig. 7: RS+RFD[GRR] -------------------------------------------
    const double e = std::exp(eps_prime);
    const double p = e / (e + k - 1);
    const double q = (1.0 - p) / (k - 1);
    exp::TableSpec spec;
    spec.section = "Fig. 7 probability tree, RS+RFD[GRR]";
    spec.header = "branch                                   analytic";
    spec.x_name = "branch";
    spec.columns = {"analytic"};
    ctx.out().BeginTable(spec);
    row("true data (1/d) -> B' = v  (p)           ", p / d);
    row("true data (1/d) -> B' != v (q*(k-1))     ", (1.0 - p) / d);
    row("fake data (1-1/d) -> B' = v  (f~)        ",
        (1.0 - 1.0 / d) * f_tilde);
    row("fake data (1-1/d) -> B' != v (1-f~)      ",
        (1.0 - 1.0 / d) * (1.0 - f_tilde));
    const double gamma = (q + 1.0 * (p - q) + (d - 1.0) * f_tilde) / d;
    row("P[report v | truth v] (gamma, f = 1)     ", gamma);

    multidim::RsRfd protocol(multidim::RsRfdVariant::kGrr, {k, k, k}, eps,
                             priors);
    Rng rng(1);
    long long hits = 0;
    for (int t = 0; t < trials; ++t) {
      multidim::MultidimReport rep = protocol.RandomizeUser(record, rng);
      hits += (rep.values[0] == target);
    }
    ctx.out().Row({Cell::Text("%s", "Monte-Carlo P[report v | truth v]        "),
                   Cell::Number("%.6f", static_cast<double>(hits) / trials),
                   Cell::Integer("  (%d trials)", trials)});
  }

  {
    // ---- Fig. 8: RS+RFD[UE-r] (with SUE parameters) ---------------------
    const double p = fo::Sue::PForEpsilon(eps_prime);
    const double q = fo::Sue::QForEpsilon(eps_prime);
    exp::TableSpec spec;
    spec.section = "Fig. 8 probability tree, RS+RFD[SUE-r]";
    spec.header = "branch                                   analytic";
    spec.x_name = "branch";
    spec.columns = {"analytic"};
    ctx.out().BeginTable(spec);
    row("true data (1/d), B_i = 1 -> B'_i = 1 (p) ", p / d);
    row("true data (1/d), B_i = 0 -> B'_i = 1 (q) ", q / d);
    row("fake data, B_i = 1 (f~) -> B'_i = 1 (p)  ",
        (1.0 - 1.0 / d) * f_tilde * p);
    row("fake data, B_i = 0      -> B'_i = 1 (q)  ",
        (1.0 - 1.0 / d) * (1.0 - f_tilde) * q);
    const double gamma =
        (1.0 * (p - q) + q + (d - 1.0) * (f_tilde * (p - q) + q)) / d;
    row("P[bit v set | truth v] (gamma, f = 1)    ", gamma);

    multidim::RsRfd protocol(multidim::RsRfdVariant::kSueR, {k, k, k}, eps,
                             priors);
    Rng rng(2);
    long long hits = 0;
    for (int t = 0; t < trials / 4; ++t) {
      multidim::MultidimReport rep = protocol.RandomizeUser(record, rng);
      hits += (rep.bits[0][target] != 0);
    }
    ctx.out().Row(
        {Cell::Text("%s", "Monte-Carlo P[bit v set | truth v]       "),
         Cell::Number("%.6f", static_cast<double>(hits) / (trials / 4)),
         Cell::Integer("  (%d trials)", trials / 4)});
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig07_08",
    /*title=*/"fig07_08_probability_trees",
    /*description=*/
    "RS+RFD probability-tree leaves, analytic vs Monte-Carlo client",
    /*group=*/"figure",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
