// Figure 9 (Appendix C): RID-ACC on the ACSEmployment dataset for top-k
// re-identification with the SMP solution, FK-RI model, uniform eps-LDP
// metric — the Fig. 2 experiment on the second dataset, all five protocols.

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Acs(2023, ctx.profile().BenchScale());
  exp::RunSmpReidentFigure(
      ctx, "fig09_smp_reident_acs", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      exp::ChannelKind::kLdp, exp::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kFullKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig09",
    /*title=*/"fig09_smp_reident_acs",
    /*description=*/
    "SMP top-k re-identification on ACSEmployment, FK-RI, uniform metric",
    /*group=*/"figure",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
