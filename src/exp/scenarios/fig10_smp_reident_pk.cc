// Figure 10 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution and the *partial-knowledge* PK-RI model (background restricted to
// a random subset of >= d/2 attributes), uniform eps-LDP metric.

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().BenchScale());
  exp::RunSmpReidentFigure(
      ctx, "fig10_smp_reident_pk", ds,
      {fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
       fo::Protocol::kOlh, fo::Protocol::kOue},
      exp::ChannelKind::kLdp, exp::EpsilonGrid(),
      attack::PrivacyMetricMode::kUniform,
      attack::ReidentModel::kPartialKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig10",
    /*title=*/"fig10_smp_reident_pk",
    /*description=*/
    "SMP top-k re-identification on Adult with the PK-RI attacker model",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
