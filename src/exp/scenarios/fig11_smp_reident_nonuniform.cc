// Figure 11 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution under the *non-uniform* eps-LDP privacy metric (attribute
// sampling with replacement + memoization), FK-RI and PK-RI models.

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  ctx.out().Text("=== left panels: FK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig11_smp_reident_nonuniform[FK]", ds,
                           protocols, exp::ChannelKind::kLdp,
                           exp::EpsilonGrid(),
                           attack::PrivacyMetricMode::kNonUniform,
                           attack::ReidentModel::kFullKnowledge);
  ctx.out().Text("\n=== right panels: PK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig11_smp_reident_nonuniform[PK]", ds,
                           protocols, exp::ChannelKind::kLdp,
                           exp::EpsilonGrid(),
                           attack::PrivacyMetricMode::kNonUniform,
                           attack::ReidentModel::kPartialKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig11",
    /*title=*/"fig11_smp_reident_nonuniform",
    /*description=*/
    "SMP re-identification on Adult under the non-uniform privacy metric",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
