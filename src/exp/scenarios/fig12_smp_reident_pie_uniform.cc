// Figure 12 (Appendix C): RID-ACC on the Adult dataset with the SMP
// solution under the relaxed (U, alpha)-PIE privacy model, uniform metric,
// FK-RI and PK-RI models, varying the Bayes error beta from 0.95 to 0.5.
// Small-domain attributes travel in the clear ([35, Prop. 9]), so all
// protocols converge to similar (high) re-identification rates.

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  ctx.out().Text("=== left panels: FK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig12_smp_reident_pie_uniform[FK]", ds,
                           protocols, exp::ChannelKind::kPie,
                           exp::BetaGrid(),
                           attack::PrivacyMetricMode::kUniform,
                           attack::ReidentModel::kFullKnowledge);
  ctx.out().Text("\n=== right panels: PK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig12_smp_reident_pie_uniform[PK]", ds,
                           protocols, exp::ChannelKind::kPie,
                           exp::BetaGrid(),
                           attack::PrivacyMetricMode::kUniform,
                           attack::ReidentModel::kPartialKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig12",
    /*title=*/"fig12_smp_reident_pie_uniform",
    /*description=*/
    "SMP re-identification on Adult under (U, alpha)-PIE, uniform metric",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
