// Figure 13 (Appendix C): the Fig. 12 experiment under the *non-uniform*
// privacy metric (sampling with replacement + memoization).

#include "exp/grids.h"
#include "exp/smp_reident.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().BenchScale());
  const std::vector<fo::Protocol> protocols{
      fo::Protocol::kGrr, fo::Protocol::kSs, fo::Protocol::kSue,
      fo::Protocol::kOlh, fo::Protocol::kOue};

  ctx.out().Text("=== left panels: FK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig13_smp_reident_pie_nonuniform[FK]", ds,
                           protocols, exp::ChannelKind::kPie,
                           exp::BetaGrid(),
                           attack::PrivacyMetricMode::kNonUniform,
                           attack::ReidentModel::kFullKnowledge);
  ctx.out().Text("\n=== right panels: PK-RI ===");
  exp::RunSmpReidentFigure(ctx, "fig13_smp_reident_pie_nonuniform[PK]", ds,
                           protocols, exp::ChannelKind::kPie,
                           exp::BetaGrid(),
                           attack::PrivacyMetricMode::kNonUniform,
                           attack::ReidentModel::kPartialKnowledge);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig13",
    /*title=*/"fig13_smp_reident_pie_nonuniform",
    /*description=*/
    "SMP re-identification on Adult under (U, alpha)-PIE, non-uniform metric",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
