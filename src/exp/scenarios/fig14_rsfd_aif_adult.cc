// Figure 14 (Appendix D): attacker's AIF-ACC on the Adult dataset with the
// three attack models and all five RS+FD protocols.

#include "exp/aif_figure.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  // Adult is 4.4x larger than ACSEmployment; halve the bench scale so the
  // GBDT sweep stays laptop-sized at the default settings.
  const data::Dataset& ds =
      ctx.Adult(2023, 0.5 * ctx.profile().BenchScale());
  std::vector<exp::AifCurve> curves{
      {"RS+FD[GRR]", exp::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
  exp::RunAifFigure(ctx, "fig14_rsfd_aif_adult", ds, curves,
                    exp::PaperAifPanels());
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig14",
    /*title=*/"fig14_rsfd_aif_adult",
    /*description=*/
    "AIF attack accuracy on Adult against the five RS+FD variants",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
