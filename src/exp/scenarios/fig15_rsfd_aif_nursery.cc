// Figure 15 (Appendix D): attacker's AIF-ACC on the Nursery dataset, whose
// uniform-like attribute distributions defeat the attack for the GRR / UE-r
// variants (fake data is indistinguishable from real values); only the
// UE-z variants remain vulnerable.

#include "exp/aif_figure.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Nursery(2023, ctx.profile().BenchScale());
  std::vector<exp::AifCurve> curves{
      {"RS+FD[GRR]", exp::MakeRsFdFactory(multidim::RsFdVariant::kGrr, ds)},
      {"RS+FD[SUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueZ, ds)},
      {"RS+FD[OUE-z]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueZ, ds)},
      {"RS+FD[SUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kSueR, ds)},
      {"RS+FD[OUE-r]",
       exp::MakeRsFdFactory(multidim::RsFdVariant::kOueR, ds)},
  };
  exp::RunAifFigure(ctx, "fig15_rsfd_aif_nursery", ds, curves,
                    exp::PaperAifPanels());
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig15",
    /*title=*/"fig15_rsfd_aif_nursery",
    /*description=*/
    "AIF attack accuracy on Nursery: near-uniform marginals defeat it",
    /*group=*/"figure",
    /*datasets=*/{"nursery"},
    /*run=*/Run,
}};

}  // namespace
