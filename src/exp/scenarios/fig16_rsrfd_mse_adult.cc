// Figure 16 (Appendix E): analytical (approximate variance at f = 0) and
// empirical (averaged MSE) utility on the Adult dataset for RS+RFD versus
// RS+FD with "Correct" and the three "Incorrect" prior families.

#include <cmath>

#include "core/metrics.h"
#include "data/priors.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/measure.h"
#include "multidim/closed_form.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/variance.h"
#include "sim/closed_form.h"

namespace {

using namespace ldpr;
using exp::Cell;

struct Pair {
  multidim::RsRfdVariant rfd;
  multidim::RsFdVariant fd;
};

constexpr Pair kPairs[] = {
    {multidim::RsRfdVariant::kGrr, multidim::RsFdVariant::kGrr},
    {multidim::RsRfdVariant::kSueR, multidim::RsFdVariant::kSueR},
    {multidim::RsRfdVariant::kOueR, multidim::RsFdVariant::kOueR},
};

const char* kNames[] = {"RFD[GRR]", "RFD[SUE-r]", "RFD[OUE-r]",
                        "FD[GRR]",  "FD[SUE-r]",  "FD[OUE-r]"};

exp::TableSpec PanelSpec(const std::string& section) {
  exp::TableSpec spec;
  spec.section = section;
  spec.header = exp::StrPrintf("%-10s %12s %12s %12s %12s %12s %12s",
                               "epsilon", kNames[0], kNames[1], kNames[2],
                               kNames[3], kNames[4], kNames[5]);
  spec.x_name = "epsilon";
  spec.columns.assign(kNames, kNames + 6);
  return spec;
}

void AnalyticalPanel(exp::Context& ctx, const data::Dataset& ds,
                     data::PriorKind prior_kind, Rng& rng) {
  ctx.out().BeginTable(PanelSpec(
      exp::StrPrintf("analytical (approx. variance, f = 0), priors = %s",
                     data::PriorKindName(prior_kind))));
  auto priors = data::BuildPriors(ds, prior_kind, rng);
  for (double eps : ctx.profile().Grid(exp::LogUtilityEpsilonGrid())) {
    std::vector<Cell> cells{Cell::Number("%-10.4f", eps)};
    for (const Pair& pair : kPairs) {
      multidim::RsRfd protocol(pair.rfd, ds.domain_sizes(), eps, priors);
      cells.push_back(Cell::Number(
          " %12.4e", multidim::RsRfdApproxMseAvg(protocol, ds.n())));
    }
    for (const Pair& pair : kPairs) {
      cells.push_back(Cell::Number(
          " %12.4e", multidim::RsFdApproxMseAvg(pair.fd, ds.domain_sizes(),
                                                eps, ds.n())));
    }
    ctx.out().Row(cells);
  }
}

void EmpiricalPanel(exp::Context& ctx, const data::Dataset& ds,
                    data::PriorKind prior_kind) {
  ctx.out().BeginTable(PanelSpec(exp::StrPrintf(
      "empirical (MSE_avg), priors = %s", data::PriorKindName(prior_kind))));
  const int runs = ctx.profile().runs;
  const auto truth = ds.Marginals();
  const std::vector<double> grid =
      ctx.profile().Grid(exp::LogUtilityEpsilonGrid());
  const bool fast = ctx.profile().fast();
  multidim::AttributeHistograms hists;
  if (fast) hists = sim::BuildAttributeHistograms(ds);
  // Legacy seeding: seed = 60 per panel, Rng(++seed * 4099) per trial. The
  // fast profile salts the same schedule with kFastProfileSeedSalt (fresh
  // streams, pinned by tests/golden/fig16_fast.txt).
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 6, [&](int point, int trial) {
        const std::uint64_t seed =
            60 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        if (fast) {
          Rng rng((seed * 4099) ^ exp::kFastProfileSeedSalt);
          auto priors = data::BuildPriors(ds, prior_kind, rng);
          const long long n = ds.n();
          std::vector<double> row(6, 0.0);
          for (int v = 0; v < 3; ++v) {
            multidim::RsRfd rfd(kPairs[v].rfd, ds.domain_sizes(), grid[point],
                                priors);
            row[v] = exp::ClosedFormProtocolMse(rfd, hists, n, truth, rng);
            multidim::RsFd fd(kPairs[v].fd, ds.domain_sizes(), grid[point]);
            row[3 + v] =
                exp::ClosedFormProtocolMse(fd, hists, n, truth, rng);
          }
          return row;
        }
        Rng rng(seed * 4099);
        auto priors = data::BuildPriors(ds, prior_kind, rng);
        std::vector<double> row(6, 0.0);
        for (int v = 0; v < 3; ++v) {
          {
            multidim::RsRfd protocol(kPairs[v].rfd, ds.domain_sizes(),
                                     grid[point], priors);
            row[v] = exp::SerialProtocolMse(protocol, ds, truth, rng);
          }
          {
            multidim::RsFd protocol(kPairs[v].fd, ds.domain_sizes(),
                                    grid[point]);
            row[3 + v] = exp::SerialProtocolMse(protocol, ds, truth, rng);
          }
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.4f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

void Run(exp::Context& ctx) {
  // Estimation-only workload: full paper scale is cheap, so default to it.
  const data::Dataset& ds = ctx.Adult(2023, ctx.profile().Scale(1.0));
  ctx.EmitRunConfig("fig16_rsrfd_mse_adult", ds.n(), ds.d());
  Rng prior_rng(61);
  for (data::PriorKind kind : ctx.profile().Shortlist(
           std::vector<data::PriorKind>{data::PriorKind::kCorrectLaplace,
                                        data::PriorKind::kIncorrectDirichlet,
                                        data::PriorKind::kIncorrectZipf,
                                        data::PriorKind::kIncorrectExponential})) {
    AnalyticalPanel(ctx, ds, kind, prior_rng);
    EmpiricalPanel(ctx, ds, kind);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig16",
    /*title=*/"fig16_rsrfd_mse_adult",
    /*description=*/
    "Analytical + empirical utility on Adult: RS+RFD vs RS+FD, four priors",
    /*group=*/"figure",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
