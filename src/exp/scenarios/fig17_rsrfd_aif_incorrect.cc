// Figure 17 (Appendix E): attacker's AIF-ACC (NK model) on the
// ACSEmployment dataset against RS+RFD with the three "Incorrect" prior
// families — Dirichlet(1), Zipf(1.01) and Exp(1). Even wrong non-uniform
// priors suppress the attack versus RS+FD's uniform fakes.

#include "data/synthetic.h"
#include "exp/aif_figure.h"

namespace {

using namespace ldpr;

void Run(exp::Context& ctx) {
  const data::Dataset& ds = ctx.Acs(2023, ctx.profile().BenchScale());

  std::vector<exp::AifCurve> curves;
  const std::pair<multidim::RsRfdVariant, const char*> variants[] = {
      {multidim::RsRfdVariant::kGrr, "RS+RFD[GRR]"},
      {multidim::RsRfdVariant::kSueR, "RS+RFD[SUE-r]"},
      {multidim::RsRfdVariant::kOueR, "RS+RFD[OUE-r]"},
  };
  const std::pair<data::PriorKind, const char*> priors[] = {
      {data::PriorKind::kIncorrectDirichlet, "DIR"},
      {data::PriorKind::kIncorrectZipf, "ZIPF"},
      {data::PriorKind::kIncorrectExponential, "EXP"},
  };
  for (const auto& [variant, vname] : variants) {
    for (const auto& [kind, pname] : priors) {
      curves.push_back({std::string(vname) + " " + pname,
                        exp::MakeRsRfdFactory(variant, kind, ds,
                                              data::kAcsEmploymentN)});
    }
  }

  // NK model only (the paper's Fig. 17), s in {1, 3, 5}n.
  std::vector<exp::AifPanel> panels{
      {attack::AifModel::kNk, {{1.0, 0.0}, {3.0, 0.0}, {5.0, 0.0}}}};
  exp::RunAifFigure(ctx, "fig17_rsrfd_aif_incorrect", ds, curves, panels);
}

const exp::Registrar kRegistrar{{
    /*name=*/"fig17",
    /*title=*/"fig17_rsrfd_aif_incorrect",
    /*description=*/
    "AIF attack (NK) against RS+RFD with the Incorrect prior families",
    /*group=*/"figure",
    /*datasets=*/{"acs"},
    /*run=*/Run,
}};

}  // namespace
