// Future-work experiment (paper Section 8): re-identification risk of the
// SMP solution when attributes are sanitized with metric-LDP (d-privacy,
// truncated geometric mechanism) instead of eps-LDP protocols. Exact-match
// profiling succeeds far more often under metric-LDP at the same nominal
// eps — identity is exactly the kind of non-metric secret d-privacy does
// not protect — quantifying the risk the paper flags for this model.

#include <cmath>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "fo/metric_ldp.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Adult(2023, profile.BenchScale());
  ctx.EmitRunConfig("fw01_metric_ldp_reident", ds.n(), ds.d());
  ctx.out().Comment(
      exp::StrPrintf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%",
                     attack::BaselineRidAcc(1, ds.n()),
                     attack::BaselineRidAcc(10, ds.n())));
  const int num_surveys = profile.Count(5, 3);
  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());

  {
    exp::TableSpec spec;
    spec.section = "per-report attacker accuracy (uniform input), k = 74";
    spec.header = exp::StrPrintf("%-8s %12s %14s %12s", "epsilon",
                                 "metric-LDP", "mean |err|", "GRR");
    spec.x_name = "epsilon";
    spec.columns = {"metric_ldp_acc", "mean_abs_err", "grr_acc"};
    ctx.out().BeginTable(spec);
    for (double eps : grid) {
      fo::MetricLdp m(74, eps);
      const double e = std::exp(eps);
      ctx.out().Row({Cell::Number("%-8.1f", eps),
                     Cell::Number(" %12.4f", m.ExpectedAttackAcc()),
                     Cell::Number(" %14.3f", m.ExpectedAttackDistance()),
                     Cell::Number(" %12.4f", e / (e + 73.0))});
    }
  }

  exp::TableSpec spec;
  spec.section = "SMP re-identification, metric-LDP channel, FK-RI";
  spec.header = exp::StrPrintf("%-8s", "epsilon");
  spec.x_name = "epsilon";
  for (int k : {1, 10}) {
    for (int s = 2; s <= num_surveys; ++s) {
      spec.header += exp::StrPrintf(" top%d_sv%d", k, s);
      spec.columns.push_back(exp::StrPrintf("top%d_sv%d", k, s));
    }
  }
  ctx.out().BeginTable(spec);

  const int prefixes = num_surveys - 1;
  // Legacy seeding: seed = 90, Rng(++seed * 31337) per trial.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 2 * prefixes,
      [&](int point, int trial) {
        const std::uint64_t seed =
            90 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(seed * 31337);
        attack::SurveyPlan plan =
            attack::MakeSurveyPlan(ds.d(), num_surveys, rng);
        auto channel =
            attack::MakeMetricLdpChannel(ds.domain_sizes(), grid[point]);
        auto snapshots = attack::SimulateSmpProfiling(
            ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);
        std::vector<bool> bk(ds.d(), true);
        attack::ReidentConfig config;
        config.top_k = {1, 10};
        config.max_targets = profile.reident_targets;
        std::vector<double> acc(2 * prefixes, 0.0);
        for (int s = 2; s <= num_surveys; ++s) {
          auto result =
              attack::ReidentAccuracy(snapshots[s - 1], ds, bk, config, rng);
          acc[s - 2] = result.rid_acc_percent[0];
          acc[prefixes + s - 2] = result.rid_acc_percent[1];
        }
        return acc;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-8.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %8.4f", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw01",
    /*title=*/"fw01_metric_ldp_reident",
    /*description=*/
    "Re-identification risk of SMP under metric-LDP (d-privacy) channels",
    /*group=*/"framework",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
