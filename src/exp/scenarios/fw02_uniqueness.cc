// Future-work 2 (Section 8): formalizing re-identification risk as
//   predicted RID-ACC = (Eq. 4 profiling accuracy) x (expected top-k hit
//   given a correct profile, from the dataset's anonymity-set structure).
//
// Panel 1 prints the uniqueness curve of the Adult- and ACS-like populations
// (fraction of unique users and expected top-1/top-10 hit rate versus the
// number of profiled attributes) — the paper's "uniqueness of users with
// respect to the collected attributes". Panel 2 compares the closed-form
// prediction against the empirical SMP + FK-RI pipeline for GRR and OUE,
// showing the formula captures both the epsilon dependence and the
// protocol gap of Fig. 2.

#include "attack/profiling.h"
#include "attack/reident.h"
#include "attack/uniqueness.h"
#include "exp/experiment.h"
#include "exp/grids.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& adult = ctx.Adult(41, profile.BenchScale());
  const data::Dataset& acs = ctx.Acs(42, profile.BenchScale());
  ctx.EmitRunConfig("fw02_uniqueness", adult.n(), adult.d());

  ctx.out().Comment("# panel 1: uniqueness curves (8 random subsets per size)");
  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-12s %-4s %10s %10s %10s", "dataset", "m",
                               "unique", "E[top1]", "E[top10]");
  spec.x_name = "dataset";
  spec.columns = {"m", "unique", "e_top1", "e_top10"};
  ctx.out().BeginTable(spec);
  Rng rng(4242);
  const std::pair<const char*, const data::Dataset*> datasets[] = {
      {"Adult", &adult}, {"ACS", &acs}};
  for (const auto& [name, ds] : datasets) {
    for (const auto& point : attack::UniquenessCurve(*ds, 8, rng)) {
      ctx.out().Row({Cell::Text("%-12s", name),
                     Cell::Integer(" %-4d", point.num_attributes),
                     Cell::Number(" %10.4f", point.unique_fraction),
                     Cell::Number(" %10.4f", point.expected_top1),
                     Cell::Number(" %10.4f", point.expected_top10)});
    }
  }

  ctx.out().Comment(
      "\n# panel 2: predicted vs empirical RID-ACC(%), Adult, 5 attrs, "
      "top-1");
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  exp::TableSpec spec2;
  spec2.header = exp::StrPrintf("%-6s %14s %14s %14s %14s", "eps", "GRR_pred",
                                "GRR_emp", "OUE_pred", "OUE_emp");
  spec2.x_name = "eps";
  spec2.columns = {"grr_pred", "grr_emp", "oue_pred", "oue_emp"};
  ctx.out().BeginTable(spec2);
  // One serial stream across the whole sweep, like the legacy driver.
  for (double eps : profile.Grid(exp::EpsilonGrid())) {
    double row[4] = {0, 0, 0, 0};
    int col = 0;
    for (fo::Protocol protocol : {fo::Protocol::kGrr, fo::Protocol::kOue}) {
      row[col++] = attack::PredictedRidAccPercent(adult, attrs, protocol, eps,
                                                  /*top_k=*/1);
      auto channel =
          attack::MakeLdpChannel(protocol, adult.domain_sizes(), eps);
      std::vector<attack::Profile> profiles(adult.n());
      for (int i = 0; i < adult.n(); ++i) {
        for (int j : attrs) {
          profiles[i].emplace_back(
              j, channel->ReportAndPredict(adult.value(i, j), j, rng));
        }
      }
      attack::ReidentConfig config;
      config.top_k = {1};
      std::vector<bool> bk(adult.d(), true);
      row[col++] = attack::ReidentAccuracy(profiles, adult, bk, config, rng)
                       .rid_acc_percent[0];
    }
    ctx.out().Row({Cell::Number("%-6.1f", eps),
                   Cell::Number(" %14.4f", row[0]),
                   Cell::Number(" %14.4f", row[1]),
                   Cell::Number(" %14.4f", row[2]),
                   Cell::Number(" %14.4f", row[3])});
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw02",
    /*title=*/"fw02_uniqueness",
    /*description=*/
    "Uniqueness curves + closed-form RID-ACC prediction vs empirical",
    /*group=*/"framework",
    /*datasets=*/{"adult", "acs"},
    /*run=*/Run,
}};

}  // namespace
