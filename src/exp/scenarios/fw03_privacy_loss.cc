// Future-work 3: realized privacy loss under sequential composition across
// surveys (Section 6's "the overall privacy loss is excessive when using
// high values for eps"). For d = 10 attributes at eps = 1 per survey, the
// table reports, versus the number of surveys: the closed-form and simulated
// mean per-user total for the uniform metric (fresh attribute every survey)
// and the non-uniform metric (with replacement + memoization), plus the mean
// worst-attribute exposure when the same surveys run under RS+FD (whose
// sampled-attribute randomizer uses the amplified budget).

#include "exp/experiment.h"
#include "multidim/amplification.h"
#include "privacy/accountant.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const int d = 10;
  const double eps = 1.0;
  const int users = static_cast<int>(profile.Mc(nullptr, 20000, 2000));
  ctx.out().Comment("# bench = fw03_privacy_loss");
  ctx.out().Comment(exp::StrPrintf(
      "# d = %d, eps = %.1f per survey, %d simulated users", d, eps, users));
  ctx.out().Comment(
      exp::StrPrintf("# RS+FD per-survey amplified eps' = %.4f",
                     multidim::AmplifiedEpsilon(eps, d)));
  ctx.out().Config("bench", "fw03_privacy_loss");

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-9s %12s %12s %12s %12s %12s", "surveys",
                               "uni_closed", "uni_sim", "nonuni_closed",
                               "nonuni_sim", "nonuni_worst");
  spec.x_name = "surveys";
  spec.columns = {"uni_closed", "uni_sim", "nonuni_closed", "nonuni_sim",
                  "nonuni_worst"};
  ctx.out().BeginTable(spec);

  Rng rng(31337);
  for (int surveys :
       profile.Grid(std::vector<int>{1, 2, 3, 5, 8, 10, 20, 50, 100})) {
    double uni_closed = 0.0, uni_sim = 0.0;
    if (surveys <= d) {
      uni_closed = privacy::ExpectedSmpTotalEpsilonUniform(d, surveys, eps);
      uni_sim = privacy::SimulateSmpLedgers(d, surveys, eps, false, users, rng)
                    .mean_total;
    }
    const double nonuni_closed =
        privacy::ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
    privacy::LedgerSummary nonuni =
        privacy::SimulateSmpLedgers(d, surveys, eps, true, users, rng);
    std::vector<Cell> cells{Cell::Integer("%-9d", surveys)};
    if (surveys <= d) {
      cells.push_back(Cell::Number(" %12.4f", uni_closed));
      cells.push_back(Cell::Number(" %12.4f", uni_sim));
    } else {
      cells.push_back(Cell::Text(" %12s", "-"));
      cells.push_back(Cell::Text(" %12s", "-"));
    }
    cells.push_back(Cell::Number(" %12.4f", nonuni_closed));
    cells.push_back(Cell::Number(" %12.4f", nonuni.mean_total));
    cells.push_back(Cell::Number(" %12.4f", nonuni.mean_worst_attribute));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw03",
    /*title=*/"fw03_privacy_loss",
    /*description=*/
    "Sequential-composition privacy loss across repeated surveys",
    /*group=*/"framework",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
