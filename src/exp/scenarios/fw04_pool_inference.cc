// Future-work 4: pool inference attack (Gadotti et al., USENIX Security '22;
// Section 7 related work). A user answers the same attribute across r
// collections without memoization, drawing each value from a personal pool;
// the exact Bayes attacker of attack/pool predicts the pool from the r
// sanitized reports. The table reports attacker accuracy versus r for all
// five oracles — echoing Gadotti's r in {7, 30, 90, 180} plus small r —
// at k = 16 with 4 pools (baseline 25%). Expected shape: every protocol
// leaks the pool as r grows, faster at larger eps; memoization (Section 6's
// recommendation) would cap the attack at the r = 1 column.

#include "attack/pool.h"
#include "exp/experiment.h"
#include "fo/factory.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const int k = 16;
  const int num_pools = 4;
  const int users = static_cast<int>(profile.Mc(nullptr, 3000, 500));
  ctx.out().Comment("# bench = fw04_pool_inference");
  ctx.out().Comment(exp::StrPrintf(
      "# k = %d, %d contiguous pools, %d users, baseline = %.1f%%", k,
      num_pools, users, 100.0 / num_pools));
  ctx.out().Config("bench", "fw04_pool_inference");
  const auto pools = attack::ContiguousPools(k, num_pools);
  const std::vector<int> report_counts =
      profile.Grid(std::vector<int>{1, 2, 7, 30, 90, 180});
  const std::vector<fo::Protocol> protocols =
      profile.Shortlist(fo::AllProtocols());

  for (double eps : profile.Shortlist(std::vector<double>{1.0, 2.0, 4.0})) {
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("eps = %.1f (attacker ACC %%)", eps);
    spec.header = exp::StrPrintf("%-9s", "reports");
    spec.x_name = "reports";
    for (fo::Protocol p : protocols) {
      spec.header += exp::StrPrintf(" %9s", fo::ProtocolName(p));
      spec.columns.push_back(fo::ProtocolName(p));
    }
    ctx.out().BeginTable(spec);
    // One serial stream per section, like the legacy driver.
    Rng rng(9000 + static_cast<int>(eps * 10));
    for (int r : report_counts) {
      std::vector<Cell> cells{Cell::Integer("%-9d", r)};
      for (fo::Protocol protocol : protocols) {
        auto oracle = fo::MakeOracle(protocol, k, eps);
        auto result =
            attack::SimulatePoolInference(*oracle, pools, users, r, rng);
        cells.push_back(Cell::Number(" %9.2f", result.acc_percent));
      }
      ctx.out().Row(cells);
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw04",
    /*title=*/"fw04_pool_inference",
    /*description=*/
    "Pool-inference attack accuracy vs repeated collections",
    /*group=*/"framework",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
