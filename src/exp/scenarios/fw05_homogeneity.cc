// Future-work 5: the homogeneity attack on top-k anonymity sets that the
// paper's Fig. 2 analysis warns about ("although the user is not uniquely
// re-identified, this still represents a threat due to the possibility of
// performing, e.g., homogeneity attacks"). Quasi-identifier profiles are
// inferred from GRR/OUE SMP reports on the Adult-shaped population (one
// report per attribute, as after d surveys with the uniform metric); the
// attacker then majority-votes a held-out sensitive attribute inside each
// target's top-k shortlist. Columns: overall inference accuracy, accuracy
// on homogeneous shortlists only, and the fraction of homogeneous
// shortlists, versus eps and top-k. Baseline = predicting the sensitive
// attribute's global mode for everyone.

#include "attack/homogeneity.h"
#include "attack/profiling.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"

namespace {

using namespace ldpr;
using exp::Cell;

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const data::Dataset& ds = ctx.Adult(2024, profile.BenchScale());
  // Sensitive attribute: the last one (the Adult "salary" slot, k = 2).
  const int sensitive = ds.d() - 1;
  std::vector<int> quasi;
  for (int j = 0; j < ds.d(); ++j) {
    if (j != sensitive) quasi.push_back(j);
  }
  ctx.EmitRunConfig("fw05_homogeneity", ds.n(), ds.d());

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  for (fo::Protocol protocol : profile.Shortlist(std::vector<fo::Protocol>{
           fo::Protocol::kGrr, fo::Protocol::kOue})) {
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("protocol = %s, sensitive = %s (k=%d)",
                                  fo::ProtocolName(protocol),
                                  ds.attribute_name(sensitive).c_str(),
                                  ds.domain_size(sensitive));
    spec.header = exp::StrPrintf("%-6s %10s %10s %10s %10s %10s %10s %10s",
                                 "eps", "k5_acc", "k5_hom_acc", "k5_hom",
                                 "k10_acc", "k10_hom_acc", "k10_hom",
                                 "baseline");
    spec.x_name = "eps";
    spec.columns = {"k5_acc",  "k5_hom_acc",  "k5_hom",  "k10_acc",
                    "k10_hom_acc", "k10_hom", "baseline"};
    ctx.out().BeginTable(spec);

    // Legacy seeding: seed = 3 per table, Rng(++seed * 7001) per trial.
    const auto means = exp::RunGrid(
        static_cast<int>(grid.size()), runs, 7, [&](int point, int trial) {
          const std::uint64_t seed =
              3 + static_cast<std::uint64_t>(point) * runs + trial + 1;
          Rng rng(seed * 7001);
          auto channel = attack::MakeLdpChannel(protocol, ds.domain_sizes(),
                                                grid[point]);
          std::vector<attack::Profile> profiles(ds.n());
          for (int i = 0; i < ds.n(); ++i) {
            for (int j : quasi) {
              profiles[i].emplace_back(
                  j, channel->ReportAndPredict(ds.value(i, j), j, rng));
            }
          }
          std::vector<bool> bk(ds.d(), true);
          const int top_ks[2] = {5, 10};
          std::vector<double> row(7, 0.0);
          for (int ki = 0; ki < 2; ++ki) {
            attack::HomogeneityConfig config;
            config.top_k = top_ks[ki];
            config.max_targets = profile.reident_targets;
            attack::HomogeneityResult result = attack::HomogeneityAttack(
                profiles, ds, bk, sensitive, config, rng);
            row[3 * ki + 0] = result.inference_acc_percent;
            row[3 * ki + 1] = result.homogeneous_inference_acc_percent;
            row[3 * ki + 2] = 100.0 * result.homogeneous_fraction;
            row[6] = result.baseline_percent;
          }
          return row;
        });

    for (std::size_t p = 0; p < grid.size(); ++p) {
      std::vector<Cell> cells{Cell::Number("%-6.1f", grid[p])};
      for (double v : means[p]) cells.push_back(Cell::Number(" %10.2f", v));
      ctx.out().Row(cells);
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw05",
    /*title=*/"fw05_homogeneity",
    /*description=*/
    "Homogeneity attack on top-k anonymity sets of SMP profiles",
    /*group=*/"framework",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
