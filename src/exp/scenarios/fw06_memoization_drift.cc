// Future-work 6: what memoization costs when the population drifts. The
// paper (Sections 3.2.3, 6) recommends sampling with replacement plus
// memoization; the memoization client's caveat is that cached reports
// assume static values. On a drifting Adult-shaped population (per-cell
// change probability p per round) three client policies run the same
// 12-round SMP[GRR] collection:
//
//   fresh     re-randomize every round (uniform-metric-style privacy loss)
//   memoized  cache per attribute, invalidate when the value changes (the
//             correct deployment)
//   frozen    cache per attribute and never invalidate (stale reports)
//
// Per policy the table reports the estimation MSE_avg of the final round's
// marginals and the mean number of fresh randomizations per user — the
// sequential-composition privacy-loss multiplier. Two drift regimes:
// stationary churn (individuals move, population distribution stable) and
// uniform shift (the distribution itself migrates). Expected shape: under
// stationary churn even frozen reports stay population-unbiased — only the
// privacy column separates the policies; under uniform shift frozen's MSE
// grows with p while memoized+invalidate tracks fresh at a fraction of the
// privacy cost, converging to fresh's cost as p -> 1.

#include <utility>
#include <vector>

#include "core/metrics.h"
#include "data/longitudinal.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "multidim/memoization.h"
#include "multidim/smp.h"

namespace {

using namespace ldpr;
using exp::Cell;

struct PolicyResult {
  double final_mse = 0.0;
  double fresh_per_user = 0.0;
};

enum class Policy { kFresh, kMemoized, kFrozen };

PolicyResult RunPolicy(const std::vector<data::Dataset>& rounds,
                       const multidim::Smp& protocol, Policy policy,
                       Rng& rng) {
  const int n = rounds[0].n();
  const int d = rounds[0].d();
  std::vector<multidim::MemoizedSmpClient> clients;
  clients.reserve(n);
  for (int i = 0; i < n; ++i) clients.emplace_back(protocol);

  std::vector<multidim::SmpReport> last_round_reports;
  std::vector<std::vector<int>> previous_records(n);
  for (std::size_t t = 0; t < rounds.size(); ++t) {
    last_round_reports.clear();
    for (int i = 0; i < n; ++i) {
      std::vector<int> record = rounds[t].Record(i);
      if (policy == Policy::kMemoized && t > 0) {
        for (int j = 0; j < d; ++j) {
          if (record[j] != previous_records[i][j]) clients[i].Invalidate(j);
        }
      }
      const int attribute = static_cast<int>(rng.UniformInt(d));
      if (policy == Policy::kFresh) {
        last_round_reports.push_back(
            protocol.RandomizeUserAttribute(record, attribute, rng));
      } else {
        // Frozen policy feeds the *original* record so a drifted value is
        // reported stale even on a cache miss for a new attribute.
        const std::vector<int>& reported =
            policy == Policy::kFrozen ? rounds[0].Record(i) : record;
        last_round_reports.push_back(
            clients[i].Report(reported, attribute, rng));
      }
      previous_records[i] = std::move(record);
    }
  }

  PolicyResult out;
  out.final_mse = MseAvg(rounds.back().Marginals(),
                         protocol.Estimate(last_round_reports));
  if (policy == Policy::kFresh) {
    out.fresh_per_user = static_cast<double>(rounds.size());
  } else {
    double total = 0.0;
    for (const auto& client : clients) total += client.fresh_reports();
    out.fresh_per_user = total / n;
  }
  return out;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const double eps = 2.0;
  const int num_rounds = profile.Count(12, 4);
  const data::Dataset& base = ctx.Adult(999, profile.Scale(0.5));
  ctx.EmitRunConfig("fw06_memoization_drift", base.n(), base.d());
  ctx.out().Comment(exp::StrPrintf(
      "# SMP[GRR], eps = %.1f per fresh report, %d rounds", eps, num_rounds));

  multidim::Smp protocol(fo::Protocol::kGrr, base.domain_sizes(), eps);
  const int runs = profile.runs;
  const std::vector<double> grid =
      profile.Grid(std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2, 0.5});
  // The legacy driver printed one column header ahead of both drift
  // sections; keep that line placement.
  ctx.out().Text(exp::StrPrintf("%-8s %11s %11s %11s %11s %11s %11s",
                                "p_change", "fresh_mse", "memo_mse",
                                "frozen_mse", "fresh_eps", "memo_eps",
                                "frozen_eps"));
  const std::pair<data::DriftKind, const char*> regimes[] = {
      {data::DriftKind::kStationary, "stationary churn"},
      {data::DriftKind::kUniformShift, "uniform shift"}};
  int regime_index = 0;
  for (const auto& [drift, name] : regimes) {
    exp::TableSpec spec;
    spec.section = exp::StrPrintf("drift = %s", name);
    spec.x_name = "p_change";
    spec.columns = {"fresh_mse", "memo_mse", "frozen_mse",
                    "fresh_eps", "memo_eps", "frozen_eps"};
    ctx.out().BeginTable(spec);

    // Legacy seeding: one counter across both regimes, pre-incremented per
    // trial: config.seed = ++seed (from 41), Rng(seed * 131).
    const auto means = exp::RunGrid(
        static_cast<int>(grid.size()), runs, 6, [&](int point, int trial) {
          const std::uint64_t seed =
              41 +
              (static_cast<std::uint64_t>(regime_index) * grid.size() +
               point) *
                  runs +
              trial + 1;
          data::LongitudinalConfig config;
          config.rounds = num_rounds;
          config.change_probability = grid[point];
          config.drift = drift;
          config.seed = seed;
          auto rounds = data::GenerateLongitudinal(base, config);
          Rng rng(seed * 131);
          const Policy policies[3] = {Policy::kFresh, Policy::kMemoized,
                                      Policy::kFrozen};
          std::vector<double> row(6, 0.0);
          for (int pi = 0; pi < 3; ++pi) {
            PolicyResult r = RunPolicy(rounds, protocol, policies[pi], rng);
            row[pi] = r.final_mse;
            row[3 + pi] = r.fresh_per_user;
          }
          return row;
        });

    for (std::size_t p = 0; p < grid.size(); ++p) {
      ctx.out().Row({Cell::Number("%-8.2f", grid[p]),
                     Cell::Number(" %11.4e", means[p][0]),
                     Cell::Number(" %11.4e", means[p][1]),
                     Cell::Number(" %11.4e", means[p][2]),
                     Cell::Number(" %11.2f", eps * means[p][3]),
                     Cell::Number(" %11.2f", eps * means[p][4]),
                     Cell::Number(" %11.2f", eps * means[p][5])});
    }
    ++regime_index;
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"fw06",
    /*title=*/"fw06_memoization_drift",
    /*description=*/
    "Memoization policies under population drift: utility vs privacy loss",
    /*group=*/"framework",
    /*datasets=*/{"adult"},
    /*run=*/Run,
}};

}  // namespace
