// srv01: estimate quality of the streaming collection service across
// epochs while the underlying population drifts.
//
// Each epoch draws n users from a Zipf population whose probability mass
// rotates a little further through the domain (a simple model of a
// distribution shifting between collection rounds). The legacy-exact
// fidelity ships every user's report over the real wire path — randomize,
// serialize (fo/wire), ingest through a lock-striped serve::Collector,
// seal — so the numbers exercise exactly the deployment surface; the fast
// fidelity feeds the same epochs through the collector's closed-form
// histogram lane (O(k) draws per epoch). Per epoch the table reports the
// sealed snapshot's MSE against that epoch's true marginal for GRR, OUE
// and SUE, plus OUE after Norm-Sub consistency post-processing.

#include <vector>

#include "core/metrics.h"
#include "core/sampling.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "fo/factory.h"
#include "serve/collector.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kDomain = 64;
constexpr double kEpsilon = 1.0;

/// The epoch-e population: a Zipf(1.3) marginal rotated by e * k/7 values.
std::vector<double> DriftedTruth(int epoch) {
  const std::vector<double> base = ZipfDistribution(kDomain, 1.3);
  std::vector<double> truth(kDomain);
  const int shift = epoch * (kDomain / 7);
  for (int v = 0; v < kDomain; ++v) {
    truth[v] = base[(v + shift) % kDomain];
  }
  return truth;
}

double SealedMse(serve::EpochManager& manager,
                 const std::vector<double>& truth, bool consistent) {
  const serve::EstimateSnapshot& snapshot = manager.snapshots().back();
  return Mse(truth, consistent ? snapshot.consistent : snapshot.frequencies);
}

void Run(exp::Context& ctx) {
  const bool fast = ctx.profile().fast();
  const long long users = ctx.profile().Mc("LDPR_SERVE_USERS", 200000, 2000);
  const int epochs = ctx.profile().Count(8, 3);
  const int runs = ctx.profile().runs;

  ctx.out().Config("users_per_epoch", exp::StrPrintf("%lld", users));
  ctx.out().Config("epochs", exp::StrPrintf("%d", epochs));
  ctx.EmitRunConfig("srv01_epoch_drift", static_cast<int>(users), 1);

  exp::TableSpec spec;
  spec.header =
      exp::StrPrintf("%-8s %12s %12s %12s %12s", "epoch", "GRR", "OUE", "SUE",
                     "OUE(NormSub)");
  spec.x_name = "epoch";
  spec.columns = {"GRR", "OUE", "SUE", "OUE(NormSub)"};
  ctx.out().BeginTable(spec);

  const fo::Protocol protocols[] = {fo::Protocol::kGrr, fo::Protocol::kOue,
                                    fo::Protocol::kSue};
  const auto means = exp::RunGrid(
      epochs, runs, 4, [&](int epoch, int trial) {
        std::uint64_t seed =
            4200 + static_cast<std::uint64_t>(epoch) * runs + trial + 1;
        if (fast) seed ^= exp::kFastProfileSeedSalt;
        Rng rng(seed * 9176);
        const std::vector<double> truth = DriftedTruth(epoch);

        // One shared population per cell: every protocol serves the same
        // users, like one deployment running three oracles side by side.
        std::vector<long long> histogram;
        std::vector<int> values;
        if (fast) {
          histogram = SampleMultinomial(users, truth, rng);
        } else {
          CategoricalSampler sampler(truth);
          values.resize(users);
          for (int& v : values) v = sampler.Sample(rng);
        }

        std::vector<double> row(4, 0.0);
        for (int p = 0; p < 3; ++p) {
          auto oracle = fo::MakeOracle(protocols[p], kDomain, kEpsilon);
          serve::CollectorOptions options;
          options.lanes = 4;
          serve::EpochManager manager(*oracle, options);
          manager.OpenEpoch();
          if (fast) {
            manager.collector().IngestHistogram(0, histogram, rng);
          } else {
            Rng root = rng.Split();
            const serve::EncodedStream stream =
                serve::EncodeScalarLoad(*oracle, values, root);
            serve::IngestStream(manager.collector(), stream);
          }
          manager.Seal();
          row[p] = SealedMse(manager, truth, /*consistent=*/false);
          if (protocols[p] == fo::Protocol::kOue) {
            row[3] = SealedMse(manager, truth, /*consistent=*/true);
          }
        }
        return row;
      });

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::vector<Cell> cells{Cell::Integer("%-8d", epoch)};
    for (double v : means[epoch]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }

  // Second table: the same drifting epochs served through a sliding-window
  // LongitudinalCollector (OUE, W = 3). Window estimates come from the
  // collector's O(k) count-delta path — never a recompute over reports —
  // and are scored against the window's mixed truth (mean of the member
  // epochs' marginals); drift_L1 is the epoch-over-epoch estimate movement
  // from serve::DiffSnapshots.
  const int window_len = 3;
  if (epochs >= window_len) {
    exp::TableSpec wspec;
    wspec.section = exp::StrPrintf("sliding window (OUE, W=%d)", window_len);
    wspec.header = exp::StrPrintf("%-8s %12s %12s %12s", "epoch",
                                  "windowMSE", "epochMSE", "drift_L1");
    wspec.x_name = "epoch";
    wspec.columns = {"windowMSE", "epochMSE", "drift_L1"};
    ctx.out().BeginTable(wspec);

    std::vector<std::vector<double>> sums(epochs,
                                          std::vector<double>(3, 0.0));
    for (int trial = 0; trial < runs; ++trial) {
      std::uint64_t seed = 5300 + static_cast<std::uint64_t>(trial) + 1;
      if (fast) seed ^= exp::kFastProfileSeedSalt;
      Rng rng(seed * 9176);
      auto oracle = fo::MakeOracle(fo::Protocol::kOue, kDomain, kEpsilon);
      serve::LongitudinalOptions options;
      options.schedule = serve::EpochSchedule::Sliding(window_len);
      options.collector.lanes = 4;
      serve::LongitudinalCollector collector(*oracle, options);
      for (int epoch = 0; epoch < epochs; ++epoch) {
        const std::vector<double> truth = DriftedTruth(epoch);
        collector.OpenEpoch();
        if (fast) {
          const std::vector<long long> histogram =
              SampleMultinomial(users, truth, rng);
          collector.collector().IngestHistogram(0, histogram, rng);
        } else {
          CategoricalSampler sampler(truth);
          std::vector<int> values(users);
          for (int& v : values) v = sampler.Sample(rng);
          Rng root = rng.Split();
          const serve::EncodedStream stream =
              serve::EncodeScalarLoad(*oracle, values, root);
          serve::IngestStream(collector.collector(), stream);
        }
        const serve::EstimateSnapshot& sealed = collector.Seal();
        if (epoch >= 1) {
          const auto& history = collector.snapshots();
          sums[epoch][2] +=
              serve::DiffSnapshots(history[history.size() - 2], sealed)
                  .l1_drift;
        }
        if (epoch < window_len - 1) continue;
        std::vector<double> window_truth(kDomain, 0.0);
        for (int e = epoch - window_len + 1; e <= epoch; ++e) {
          const std::vector<double> member = DriftedTruth(e);
          for (int v = 0; v < kDomain; ++v) {
            window_truth[v] += member[v] / window_len;
          }
        }
        sums[epoch][0] +=
            Mse(window_truth, collector.windows().back().frequencies);
        sums[epoch][1] += Mse(truth, sealed.frequencies);
      }
    }
    for (int epoch = window_len - 1; epoch < epochs; ++epoch) {
      std::vector<Cell> cells{Cell::Integer("%-8d", epoch)};
      for (double v : sums[epoch]) {
        cells.push_back(Cell::Number(" %12.4e", v / runs));
      }
      ctx.out().Row(cells);
    }
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"srv01",
    /*title=*/"srv01_epoch_drift",
    /*description=*/
    "Collection-service MSE across epochs under population drift (wire "
    "ingest path)",
    /*group=*/"serving",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
