// srv01: estimate quality of the streaming collection service across
// epochs while the underlying population drifts.
//
// Each epoch draws n users from a Zipf population whose probability mass
// rotates a little further through the domain (a simple model of a
// distribution shifting between collection rounds). The legacy-exact
// fidelity ships every user's report over the real wire path — randomize,
// serialize (fo/wire), ingest through a lock-striped serve::Collector,
// seal — so the numbers exercise exactly the deployment surface; the fast
// fidelity feeds the same epochs through the collector's closed-form
// histogram lane (O(k) draws per epoch). Per epoch the table reports the
// sealed snapshot's MSE against that epoch's true marginal for GRR, OUE
// and SUE, plus OUE after Norm-Sub consistency post-processing.

#include <vector>

#include "core/metrics.h"
#include "core/sampling.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "fo/factory.h"
#include "serve/collector.h"
#include "serve/loadgen.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kDomain = 64;
constexpr double kEpsilon = 1.0;

/// The epoch-e population: a Zipf(1.3) marginal rotated by e * k/7 values.
std::vector<double> DriftedTruth(int epoch) {
  const std::vector<double> base = ZipfDistribution(kDomain, 1.3);
  std::vector<double> truth(kDomain);
  const int shift = epoch * (kDomain / 7);
  for (int v = 0; v < kDomain; ++v) {
    truth[v] = base[(v + shift) % kDomain];
  }
  return truth;
}

double SealedMse(serve::EpochManager& manager,
                 const std::vector<double>& truth, bool consistent) {
  const serve::EstimateSnapshot& snapshot = manager.snapshots().back();
  return Mse(truth, consistent ? snapshot.consistent : snapshot.frequencies);
}

void Run(exp::Context& ctx) {
  const bool fast = ctx.profile().fast();
  const long long users = ctx.profile().Mc("LDPR_SERVE_USERS", 200000, 2000);
  const int epochs = ctx.profile().Count(8, 3);
  const int runs = ctx.profile().runs;

  ctx.out().Config("users_per_epoch", exp::StrPrintf("%lld", users));
  ctx.out().Config("epochs", exp::StrPrintf("%d", epochs));
  ctx.EmitRunConfig("srv01_epoch_drift", static_cast<int>(users), 1);

  exp::TableSpec spec;
  spec.header =
      exp::StrPrintf("%-8s %12s %12s %12s %12s", "epoch", "GRR", "OUE", "SUE",
                     "OUE(NormSub)");
  spec.x_name = "epoch";
  spec.columns = {"GRR", "OUE", "SUE", "OUE(NormSub)"};
  ctx.out().BeginTable(spec);

  const fo::Protocol protocols[] = {fo::Protocol::kGrr, fo::Protocol::kOue,
                                    fo::Protocol::kSue};
  const auto means = exp::RunGrid(
      epochs, runs, 4, [&](int epoch, int trial) {
        std::uint64_t seed =
            4200 + static_cast<std::uint64_t>(epoch) * runs + trial + 1;
        if (fast) seed ^= exp::kFastProfileSeedSalt;
        Rng rng(seed * 9176);
        const std::vector<double> truth = DriftedTruth(epoch);

        // One shared population per cell: every protocol serves the same
        // users, like one deployment running three oracles side by side.
        std::vector<long long> histogram;
        std::vector<int> values;
        if (fast) {
          histogram = SampleMultinomial(users, truth, rng);
        } else {
          CategoricalSampler sampler(truth);
          values.resize(users);
          for (int& v : values) v = sampler.Sample(rng);
        }

        std::vector<double> row(4, 0.0);
        for (int p = 0; p < 3; ++p) {
          auto oracle = fo::MakeOracle(protocols[p], kDomain, kEpsilon);
          serve::CollectorOptions options;
          options.lanes = 4;
          serve::EpochManager manager(*oracle, options);
          manager.OpenEpoch();
          if (fast) {
            manager.collector().IngestHistogram(0, histogram, rng);
          } else {
            Rng root = rng.Split();
            const serve::EncodedStream stream =
                serve::EncodeScalarLoad(*oracle, values, root);
            serve::IngestStream(manager.collector(), stream);
          }
          manager.Seal();
          row[p] = SealedMse(manager, truth, /*consistent=*/false);
          if (protocols[p] == fo::Protocol::kOue) {
            row[3] = SealedMse(manager, truth, /*consistent=*/true);
          }
        }
        return row;
      });

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::vector<Cell> cells{Cell::Integer("%-8d", epoch)};
    for (double v : means[epoch]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"srv01",
    /*title=*/"srv01_epoch_drift",
    /*description=*/
    "Collection-service MSE across epochs under population drift (wire "
    "ingest path)",
    /*group=*/"serving",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
