// srv02: realized privacy budget of longitudinal collection through the
// serving pipeline, with and without RAPPOR-style memoization.
//
// A fixed population of users reports the same attribute every epoch over
// the real wire path (serve::LongitudinalClients -> IngestStreamUsers ->
// seal). With memoization on, a user whose value is unchanged replays the
// cached permanent answer and the server's replay classification charges it
// eps = 0 — so over a static population the cumulative TotalEpsilon is flat
// after epoch 0 (sublinear in the number of epochs: only the initial n
// fresh randomizations are ever charged). With memoization off every round
// is fresh and the budget grows exactly linearly — the Section 6
// sequential-composition blowup this scenario makes visible. A second
// section repeats the run over a churning population (stationary drift):
// each value change forces one fresh randomization, landing the budget
// between the two extremes.
//
// The tabulated budgets are exact integer-count arithmetic (no Monte Carlo
// noise), so the scenario runs a single pass per section. The fast fidelity
// scales the population down instead of switching to the closed form: the
// wire-path replay classification *is* the quantity under test.

#include <algorithm>
#include <vector>

#include "core/sampling.h"
#include "data/longitudinal.h"
#include "exp/experiment.h"
#include "fo/factory.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kDomain = 32;
constexpr double kEpsilon = 1.0;

void Run(exp::Context& ctx) {
  long long users = ctx.profile().Mc("LDPR_SERVE_USERS", 20000, 500);
  if (ctx.profile().fast()) users = std::max<long long>(users / 10, 100);
  const int epochs = ctx.profile().Count(12, 4);

  ctx.out().Config("users", exp::StrPrintf("%lld", users));
  ctx.out().Config("epochs", exp::StrPrintf("%d", epochs));
  ctx.out().Config("epsilon", exp::StrPrintf("%g", kEpsilon));
  ctx.EmitRunConfig("srv02_longitudinal_budget", static_cast<int>(users), 1);

  const std::vector<double> truth = ZipfDistribution(kDomain, 1.1);
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, kDomain, kEpsilon);

  const auto run_section = [&](double change_probability,
                               const char* section, std::uint64_t seed) {
    exp::TableSpec spec;
    spec.section = section;
    spec.header = exp::StrPrintf("%-8s %14s %14s %8s %14s %14s", "epoch",
                                 "eps_cum(memo)", "eps_cum(off)", "hit%",
                                 "user_eps(memo)", "user_eps(off)");
    spec.x_name = "epoch";
    spec.columns = {"eps_cum(memo)", "eps_cum(off)", "hit%",
                    "user_eps(memo)", "user_eps(off)"};
    ctx.out().BeginTable(spec);

    data::LongitudinalConfig config;
    config.rounds = epochs;
    config.change_probability = change_probability;
    config.drift = data::DriftKind::kStationary;
    config.seed = seed;
    const std::vector<std::vector<int>> rounds =
        data::GenerateScalarRounds(truth, static_cast<int>(users), config);

    serve::LongitudinalOptions options;
    options.collector.lanes = 4;
    serve::LongitudinalCollector memo_collector(*oracle, options);
    // The no-memoization deployment charges every round fresh: the server
    // must not credit chance frame collisions as replays.
    serve::LongitudinalOptions off_options = options;
    off_options.memoized_replays_free = false;
    serve::LongitudinalCollector off_collector(*oracle, off_options);
    serve::LongitudinalClients memo_clients(*oracle, users,
                                            /*memoize=*/true);
    serve::LongitudinalClients off_clients(*oracle, users,
                                           /*memoize=*/false);
    Rng memo_root(seed * 31 + 7);
    Rng off_root(seed * 31 + 8);

    for (int epoch = 0; epoch < epochs; ++epoch) {
      memo_collector.OpenEpoch();
      serve::IngestStreamUsers(
          memo_collector, memo_clients.EncodeRound(rounds[epoch], memo_root));
      const serve::EstimateSnapshot& memo = memo_collector.Seal();

      off_collector.OpenEpoch();
      serve::IngestStreamUsers(
          off_collector, off_clients.EncodeRound(rounds[epoch], off_root));
      const serve::EstimateSnapshot& off = off_collector.Seal();

      ctx.out().Row(
          {Cell::Integer("%-8d", epoch),
           Cell::Number(" %14.1f", memo.cumulative_ledger.total_epsilon),
           Cell::Number(" %14.1f", off.cumulative_ledger.total_epsilon),
           Cell::Number(" %8.1f",
                        100.0 * memo.cumulative_ledger.MemoizationHitRate()),
           Cell::Number(" %14.4f",
                        memo.cumulative_ledger.mean_user_epsilon),
           Cell::Number(" %14.4f",
                        off.cumulative_ledger.mean_user_epsilon)});
    }
  };

  run_section(0.0, "static population (memoized budget is flat after epoch 0)",
              6100);
  run_section(0.1, "churning population (p=0.1 stationary drift)", 6200);
}

const exp::Registrar kRegistrar{{
    /*name=*/"srv02",
    /*title=*/"srv02_longitudinal_budget",
    /*description=*/
    "Cumulative realized epsilon across epochs through the serving pipeline: "
    "memoized replays charged zero vs fresh-every-round linear growth",
    /*group=*/"serving",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
