// srv03: the pool inference attack (Gadotti et al., Section 7) mounted on
// the serving pipeline's sealed snapshot sequence.
//
// Users hold a static personal pool of related values and draw a fresh true
// value from it every epoch; their reports travel the real wire path
// (LongitudinalClients -> IngestStreamUsers -> seal). The attacker is the
// colluding server: it keeps every user's accepted frames across epochs,
// deduplicates them with the same replay classification the ledger uses
// (identical frames carry no independent evidence), decodes them back to
// reports (fo::DeserializeReport) and runs the exact Bayes pool attacker.
//
// The table sweeps the number of collection epochs r and contrasts
// memoization off (every epoch a fresh randomization: accuracy climbs with
// r, the cumulative budget grows linearly) against memoization on (replayed
// permanent answers add no evidence: accuracy saturates at the handful of
// distinct values a pool can produce while the per-user budget stays capped
// at pool-size fresh randomizations). The per-user mean cumulative eps
// comes from the pipeline's own ledger.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "attack/pool.h"
#include "core/hash.h"
#include "exp/experiment.h"
#include "fo/factory.h"
#include "fo/wire.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kDomain = 16;
constexpr int kNumPools = 4;
constexpr double kEpsilon = 2.0;

/// Per-user frame tape: the attacker's view of one user across epochs,
/// deduplicated by frame hash (replays add no independent evidence).
struct UserTape {
  std::vector<std::uint64_t> hashes;
  std::vector<fo::Report> reports;
};

void Run(exp::Context& ctx) {
  long long users = ctx.profile().Mc("LDPR_ATTACK_USERS", 2000, 200);
  if (ctx.profile().fast()) users = std::max<long long>(users / 4, 100);
  const std::vector<int> checkpoints =
      ctx.profile().Grid<int>({1, 2, 4, 8, 16});
  const int max_epochs = checkpoints.back();

  ctx.out().Config("users", exp::StrPrintf("%lld", users));
  ctx.out().Config("pools", exp::StrPrintf("%d", kNumPools));
  ctx.out().Config("epsilon", exp::StrPrintf("%g", kEpsilon));
  ctx.EmitRunConfig("srv03_pool_inference", static_cast<int>(users), 1);

  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, kDomain, kEpsilon);
  const std::vector<std::vector<int>> pools =
      attack::ContiguousPools(kDomain, kNumPools);
  attack::PoolInferenceAttacker attacker(*oracle, pools);

  // Static pool per user; one fresh within-pool draw per epoch.
  Rng rng(7300);
  std::vector<int> user_pool(users);
  for (int& p : user_pool) p = static_cast<int>(rng.UniformInt(kNumPools));
  std::vector<std::vector<int>> rounds(
      max_epochs, std::vector<int>(static_cast<std::size_t>(users)));
  for (int e = 0; e < max_epochs; ++e) {
    for (long long u = 0; u < users; ++u) {
      const std::vector<int>& pool = pools[user_pool[u]];
      rounds[e][u] = pool[rng.UniformInt(pool.size())];
    }
  }

  exp::TableSpec spec;
  spec.header =
      exp::StrPrintf("%-8s %10s %10s %10s %14s %14s", "epochs", "ACC(off)",
                     "ACC(memo)", "baseline", "user_eps(off)",
                     "user_eps(memo)");
  spec.x_name = "epochs";
  spec.columns = {"ACC(off)", "ACC(memo)", "baseline", "user_eps(off)",
                  "user_eps(memo)"};
  ctx.out().BeginTable(spec);

  const auto run_pipeline = [&](bool memoize, std::uint64_t seed,
                                std::vector<UserTape>& tapes,
                                std::vector<double>& acc_at,
                                std::vector<double>& eps_at) {
    serve::LongitudinalOptions options;
    options.collector.lanes = 4;
    options.memoized_replays_free = memoize;
    serve::LongitudinalCollector collector(*oracle, options);
    serve::LongitudinalClients clients(*oracle, users, memoize);
    Rng root(seed);
    std::size_t next_checkpoint = 0;
    for (int e = 0; e < max_epochs; ++e) {
      collector.OpenEpoch();
      const serve::EncodedStream stream =
          clients.EncodeRound(rounds[e], root);
      serve::IngestStreamUsers(collector, stream);
      const serve::EstimateSnapshot& sealed = collector.Seal();
      // The colluding server archives each user's frames. Under memoizing
      // clients it drops duplicates (a replayed permanent answer adds no
      // independent evidence); under non-memoizing clients an identical
      // frame IS an independent randomization and every one is kept.
      for (long long u = 0; u < users; ++u) {
        UserTape& tape = tapes[static_cast<std::size_t>(u)];
        if (memoize) {
          const std::uint64_t hash =
              XxHash64(stream.frame(u), stream.frame_bytes, 73);
          bool seen = false;
          for (std::uint64_t h : tape.hashes) seen = seen || h == hash;
          if (seen) continue;
          tape.hashes.push_back(hash);
        }
        tape.reports.push_back(fo::DeserializeReport(
            *oracle,
            std::vector<std::uint8_t>(stream.frame(u),
                                      stream.frame(u) + stream.frame_bytes)));
      }
      if (next_checkpoint < checkpoints.size() &&
          e + 1 == checkpoints[next_checkpoint]) {
        long long correct = 0;
        for (long long u = 0; u < users; ++u) {
          if (attacker.PredictPool(tapes[static_cast<std::size_t>(u)]
                                       .reports) == user_pool[u]) {
            ++correct;
          }
        }
        acc_at[next_checkpoint] =
            100.0 * static_cast<double>(correct) / static_cast<double>(users);
        eps_at[next_checkpoint] =
            sealed.cumulative_ledger.mean_user_epsilon;
        ++next_checkpoint;
      }
    }
  };

  std::vector<UserTape> off_tapes(static_cast<std::size_t>(users));
  std::vector<UserTape> memo_tapes(static_cast<std::size_t>(users));
  std::vector<double> off_acc(checkpoints.size(), 0.0);
  std::vector<double> memo_acc(checkpoints.size(), 0.0);
  std::vector<double> off_eps(checkpoints.size(), 0.0);
  std::vector<double> memo_eps(checkpoints.size(), 0.0);
  run_pipeline(/*memoize=*/false, 7400, off_tapes, off_acc, off_eps);
  run_pipeline(/*memoize=*/true, 7500, memo_tapes, memo_acc, memo_eps);

  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    ctx.out().Row({Cell::Integer("%-8d", checkpoints[i]),
                   Cell::Number(" %10.2f", off_acc[i]),
                   Cell::Number(" %10.2f", memo_acc[i]),
                   Cell::Number(" %10.2f", 100.0 / kNumPools),
                   Cell::Number(" %14.2f", off_eps[i]),
                   Cell::Number(" %14.2f", memo_eps[i])});
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"srv03",
    /*title=*/"srv03_pool_inference",
    /*description=*/
    "Pool inference attack on the sealed snapshot sequence: attacker "
    "accuracy vs epochs with and without client memoization (wire path)",
    /*group=*/"serving",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
