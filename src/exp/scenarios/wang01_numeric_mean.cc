// Wang et al. (arXiv:1907.00782) multidimensional *mean* estimation:
// averaged MSE of per-attribute mean estimates under the Duchi et al.
// binary mechanism versus the (grid-discretized) Piecewise Mechanism, with
// uniform 1-of-d attribute sampling, over the epsilon grid. An
// estimation-only workload: under the fast profile every collection round
// is closed-form tally sampling (multidim/numeric.h), so full scale
// (LDPR_NUMERIC_USERS, default 1M) costs microseconds per cell.

#include <algorithm>
#include <cmath>

#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "multidim/numeric.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kAttributes = 8;
constexpr int kGridPoints = 64;

/// Synthetic numeric population: per-attribute truncated Gaussians whose
/// means sweep [-0.8, 0.8], snapped to the mechanism's value grid so both
/// fidelity paths see byte-for-byte the same inputs.
std::vector<std::vector<double>> MakeColumns(long long n,
                                             const multidim::NumericLdp& snap,
                                             Rng& rng) {
  std::vector<std::vector<double>> columns(kAttributes);
  for (int j = 0; j < kAttributes; ++j) {
    const double mu = -0.8 + 1.6 * j / (kAttributes - 1);
    const double sigma = 0.2 + 0.03 * j;
    columns[j].resize(n);
    for (long long i = 0; i < n; ++i) {
      const double raw = std::clamp(mu + sigma * rng.Gaussian(), -1.0, 1.0);
      columns[j][i] = snap.GridValue(snap.GridIndex(raw));
    }
  }
  return columns;
}

std::vector<std::vector<long long>> GridHistograms(
    const std::vector<std::vector<double>>& columns,
    const multidim::NumericLdp& snap) {
  std::vector<std::vector<long long>> hists(columns.size());
  for (std::size_t j = 0; j < columns.size(); ++j) {
    hists[j].assign(kGridPoints, 0);
    for (double t : columns[j]) ++hists[j][snap.GridIndex(t)];
  }
  return hists;
}

double MeanMse(const std::vector<double>& truth,
               const std::vector<double>& est) {
  double mse = 0.0;
  for (std::size_t j = 0; j < truth.size(); ++j) {
    mse += (est[j] - truth[j]) * (est[j] - truth[j]);
  }
  return mse / truth.size();
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const long long n = profile.Mc("LDPR_NUMERIC_USERS", 1000000, 2000);
  ctx.EmitRunConfig("wang01_numeric_mean", static_cast<int>(n), kAttributes);

  // The snapping grid is mechanism-independent; any instance works.
  const multidim::NumericLdp snap(multidim::NumericMechanism::kDuchi, 1.0,
                                  kGridPoints);
  Rng data_rng(4242);
  const auto columns = MakeColumns(n, snap, data_rng);
  const bool fast = profile.fast();
  std::vector<std::vector<long long>> hists;
  if (fast) hists = GridHistograms(columns, snap);

  std::vector<double> truth(kAttributes, 0.0);
  for (int j = 0; j < kAttributes; ++j) {
    for (double t : columns[j]) truth[j] += t;
    truth[j] /= static_cast<double>(n);
  }

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %12s %12s", "epsilon", "Duchi", "PM");
  spec.x_name = "epsilon";
  spec.columns = {"duchi", "pm"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  // Seeding: seed = 91, Rng(seed * 7583) per trial; the fast profile salts
  // the same schedule with kFastProfileSeedSalt.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 2, [&](int point, int trial) {
        const std::uint64_t seed =
            91 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(fast ? (seed * 7583) ^ exp::kFastProfileSeedSalt
                     : seed * 7583);
        std::vector<double> row(2, 0.0);
        const multidim::NumericMechanism mechanisms[] = {
            multidim::NumericMechanism::kDuchi,
            multidim::NumericMechanism::kPiecewise};
        for (int m = 0; m < 2; ++m) {
          const multidim::NumericLdp mech(mechanisms[m], grid[point],
                                          kGridPoints);
          const std::vector<double> est =
              fast ? multidim::EstimateNumericMeansClosedForm(mech, hists,
                                                              rng)
                   : multidim::EstimateNumericMeans(mech, columns, rng);
          row[m] = MeanMse(truth, est);
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"wang01",
    /*title=*/"wang01_numeric_mean",
    /*description=*/
    "Numeric mean estimation MSE: Duchi vs Piecewise, 1-of-d sampling",
    /*group=*/"related",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
