// Wang et al. (arXiv:1907.00782) multidimensional *variance* estimation:
// the population splits in half — the first half reports t, the second half
// reports the recentered square s = 2 t^2 - 1 — and the server combines
// Var[t] = E[t^2] - E[t]^2 per attribute. Averaged MSE of the variance
// estimates, Duchi versus the grid-discretized Piecewise Mechanism, over
// the epsilon grid. Estimation-only; closed-form under the fast profile.

#include <algorithm>
#include <cmath>

#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "multidim/numeric.h"

namespace {

using namespace ldpr;
using exp::Cell;

constexpr int kAttributes = 6;
constexpr int kGridPoints = 64;

/// Bimodal per-attribute populations (mixture of two truncated Gaussians),
/// so the true variances genuinely spread across attributes.
std::vector<std::vector<double>> MakeColumns(long long n,
                                             const multidim::NumericLdp& snap,
                                             Rng& rng) {
  std::vector<std::vector<double>> columns(kAttributes);
  for (int j = 0; j < kAttributes; ++j) {
    const double separation = 0.15 + 0.12 * j;
    columns[j].resize(n);
    for (long long i = 0; i < n; ++i) {
      const double mu = rng.Bernoulli(0.5) ? separation : -separation;
      const double raw = std::clamp(mu + 0.2 * rng.Gaussian(), -1.0, 1.0);
      columns[j][i] = snap.GridValue(snap.GridIndex(raw));
    }
  }
  return columns;
}

void Run(exp::Context& ctx) {
  const exp::RunProfile& profile = ctx.profile();
  const long long n = profile.Mc("LDPR_NUMERIC_USERS", 1000000, 2000);
  ctx.EmitRunConfig("wang02_numeric_variance", static_cast<int>(n),
                    kAttributes);

  const multidim::NumericLdp snap(multidim::NumericMechanism::kDuchi, 1.0,
                                  kGridPoints);
  Rng data_rng(5151);
  const auto columns = MakeColumns(n, snap, data_rng);
  const bool fast = profile.fast();

  // Closed-form inputs: separate grid histograms for the mean half and the
  // moment half, split exactly where the per-user path splits.
  const long long mean_half = multidim::NumericMeanHalfCount(n);
  std::vector<std::vector<long long>> mean_hists, moment_hists;
  if (fast) {
    mean_hists.assign(kAttributes, std::vector<long long>(kGridPoints, 0));
    moment_hists.assign(kAttributes, std::vector<long long>(kGridPoints, 0));
    for (int j = 0; j < kAttributes; ++j) {
      for (long long i = 0; i < n; ++i) {
        auto& hist = i < mean_half ? mean_hists[j] : moment_hists[j];
        ++hist[snap.GridIndex(columns[j][i])];
      }
    }
  }

  std::vector<double> true_var(kAttributes, 0.0);
  for (int j = 0; j < kAttributes; ++j) {
    double mean = 0.0, second = 0.0;
    for (double t : columns[j]) {
      mean += t;
      second += t * t;
    }
    mean /= static_cast<double>(n);
    second /= static_cast<double>(n);
    true_var[j] = second - mean * mean;
  }

  exp::TableSpec spec;
  spec.header = exp::StrPrintf("%-10s %12s %12s", "epsilon", "Duchi", "PM");
  spec.x_name = "epsilon";
  spec.columns = {"duchi", "pm"};
  ctx.out().BeginTable(spec);

  const int runs = profile.runs;
  const std::vector<double> grid = profile.Grid(exp::EpsilonGrid());
  // Seeding: seed = 93, Rng(seed * 8689) per trial; the fast profile salts
  // the same schedule with kFastProfileSeedSalt.
  const auto means = exp::RunGrid(
      static_cast<int>(grid.size()), runs, 2, [&](int point, int trial) {
        const std::uint64_t seed =
            93 + static_cast<std::uint64_t>(point) * runs + trial + 1;
        Rng rng(fast ? (seed * 8689) ^ exp::kFastProfileSeedSalt
                     : seed * 8689);
        std::vector<double> row(2, 0.0);
        const multidim::NumericMechanism mechanisms[] = {
            multidim::NumericMechanism::kDuchi,
            multidim::NumericMechanism::kPiecewise};
        for (int m = 0; m < 2; ++m) {
          const multidim::NumericLdp mech(mechanisms[m], grid[point],
                                          kGridPoints);
          const multidim::NumericMoments est =
              fast ? multidim::EstimateNumericMomentsClosedForm(
                         mech, mean_hists, moment_hists, rng)
                   : multidim::EstimateNumericMoments(mech, columns, rng);
          double mse = 0.0;
          for (int j = 0; j < kAttributes; ++j) {
            const double var =
                est.second_moment[j] - est.mean[j] * est.mean[j];
            mse += (var - true_var[j]) * (var - true_var[j]);
          }
          row[m] = mse / kAttributes;
        }
        return row;
      });

  for (std::size_t p = 0; p < grid.size(); ++p) {
    std::vector<Cell> cells{Cell::Number("%-10.1f", grid[p])};
    for (double v : means[p]) cells.push_back(Cell::Number(" %12.4e", v));
    ctx.out().Row(cells);
  }
}

const exp::Registrar kRegistrar{{
    /*name=*/"wang02",
    /*title=*/"wang02_numeric_variance",
    /*description=*/
    "Numeric variance estimation MSE: Duchi vs Piecewise, split population",
    /*group=*/"related",
    /*datasets=*/{},
    /*run=*/Run,
}};

}  // namespace
