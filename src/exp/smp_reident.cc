#include "exp/smp_reident.h"

#include <memory>

#include "core/check.h"
#include "exp/grid_runner.h"

namespace ldpr::exp {

std::vector<double> SmpReidentTrial(const data::Dataset& dataset,
                                    const SmpReidentOptions& options,
                                    Rng& rng) {
  LDPR_REQUIRE(options.num_surveys >= 2, "need at least 2 surveys");
  const int prefixes = options.num_surveys - 1;  // prefixes 2..num_surveys

  attack::SurveyPlan plan =
      attack::MakeSurveyPlan(dataset.d(), options.num_surveys, rng);

  std::unique_ptr<attack::AttackChannel> channel;
  if (options.channel == ChannelKind::kLdp) {
    channel = attack::MakeLdpChannel(options.protocol, dataset.domain_sizes(),
                                     options.x);
  } else {
    channel = attack::MakePieChannel(options.protocol, dataset.domain_sizes(),
                                     options.x, dataset.n());
  }

  auto snapshots =
      attack::SimulateSmpProfiling(dataset, *channel, plan, options.mode, rng);

  std::vector<bool> bk =
      attack::MakeBackgroundAttributes(dataset.d(), options.model, rng);
  attack::ReidentConfig config;
  config.top_k = options.top_k;
  config.max_targets = options.reident_targets;

  // [prefix][ki] accumulators, flattened into output order afterwards.
  std::vector<std::vector<double>> rid_acc(
      prefixes, std::vector<double>(options.top_k.size(), 0.0));
  for (int s = 2; s <= options.num_surveys; ++s) {
    auto result =
        attack::ReidentAccuracy(snapshots[s - 1], dataset, bk, config, rng);
    for (std::size_t ki = 0; ki < options.top_k.size(); ++ki) {
      rid_acc[s - 2][ki] = result.rid_acc_percent[ki];
    }
  }

  std::vector<double> out;
  out.reserve(options.top_k.size() * prefixes);
  for (std::size_t ki = 0; ki < options.top_k.size(); ++ki) {
    for (int s = 2; s <= options.num_surveys; ++s) {
      out.push_back(rid_acc[s - 2][ki]);
    }
  }
  return out;
}

void RunSmpReidentFigure(Context& ctx, const std::string& bench_name,
                         const data::Dataset& dataset,
                         const std::vector<fo::Protocol>& protocols,
                         ChannelKind channel, const std::vector<double>& xs,
                         attack::PrivacyMetricMode mode,
                         attack::ReidentModel model) {
  const RunProfile& profile = ctx.profile();
  ctx.EmitRunConfig(bench_name, dataset.n(), dataset.d());
  const char* x_name = channel == ChannelKind::kLdp ? "epsilon" : "beta";
  ctx.out().Comment(StrPrintf("# baseline: top-1 = %.4f%%, top-10 = %.4f%%",
                              attack::BaselineRidAcc(1, dataset.n()),
                              attack::BaselineRidAcc(10, dataset.n())));

  SmpReidentOptions options;
  options.channel = channel;
  options.mode = mode;
  options.model = model;
  options.num_surveys = profile.Count(5, 3);
  options.reident_targets = profile.reident_targets;
  const int prefixes = options.num_surveys - 1;
  const int columns = static_cast<int>(options.top_k.size()) * prefixes;

  const std::vector<double> grid = profile.Grid(xs);
  for (fo::Protocol protocol : profile.Shortlist(protocols)) {
    options.protocol = protocol;

    TableSpec spec;
    spec.section = StrPrintf("protocol = %s", fo::ProtocolName(protocol));
    spec.header = StrPrintf("%-8s", x_name);
    spec.x_name = x_name;
    for (int k : options.top_k) {
      for (int s = 2; s <= options.num_surveys; ++s) {
        spec.header += StrPrintf(" top%d_sv%d", k, s);
        spec.columns.push_back(StrPrintf("top%d_sv%d", k, s));
      }
    }
    ctx.out().BeginTable(spec);

    // Legacy per-point seeding: seed = 1000, ++seed per grid point; trial t
    // consumed the t-th Split() of Rng(seed).
    const auto means = RunGrid(
        static_cast<int>(grid.size()), profile.runs, columns,
        [&](int point, int trial) {
          SmpReidentOptions cell = options;
          cell.x = grid[point];
          Rng rng =
              SplitStream(1000 + static_cast<std::uint64_t>(point) + 1, trial);
          return SmpReidentTrial(dataset, cell, rng);
        });

    for (std::size_t p = 0; p < grid.size(); ++p) {
      std::vector<Cell> cells;
      cells.push_back(Cell::Number("%-8.3f", grid[p]));
      for (double v : means[p]) cells.push_back(Cell::Number(" %8.4f", v));
      ctx.out().Row(cells);
    }
  }
}

}  // namespace ldpr::exp
