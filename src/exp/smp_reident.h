#ifndef LDPR_EXP_SMP_REIDENT_H_
#define LDPR_EXP_SMP_REIDENT_H_

// The SMP re-identification figure family (Figs. 2, 9-13): multi-survey
// profiling -> top-k matching, swept over an epsilon (or PIE beta) grid per
// protocol. Ported from the legacy bench/bench_util driver onto the
// GridRunner: every (grid-point, trial) cell reconstructs the historical
// RNG stream, so the CSV output is bit-identical to the pre-registry
// drivers while trials parallelize across the worker pool.

#include <vector>

#include "attack/profiling.h"
#include "attack/reident.h"
#include "data/dataset.h"
#include "exp/experiment.h"
#include "fo/frequency_oracle.h"

namespace ldpr::exp {

/// Builds a channel for one x-axis point: plain eps-LDP or alpha-PIE.
enum class ChannelKind { kLdp, kPie };

struct SmpReidentOptions {
  fo::Protocol protocol = fo::Protocol::kGrr;
  ChannelKind channel = ChannelKind::kLdp;
  double x = 1.0;  ///< epsilon (kLdp) or beta (kPie)
  int num_surveys = 5;
  attack::PrivacyMetricMode mode = attack::PrivacyMetricMode::kUniform;
  attack::ReidentModel model = attack::ReidentModel::kFullKnowledge;
  std::vector<int> top_k = {1, 10};
  int reident_targets = 3000;
};

/// One trial of one grid point: surveys -> profiling -> matching. Returns
/// mean RID-ACC(%) flattened in output order, [ki * prefixes + (s - 2)].
std::vector<double> SmpReidentTrial(const data::Dataset& dataset,
                                    const SmpReidentOptions& options,
                                    Rng& rng);

/// Emits one figure panel of the SMP re-identification family: one table
/// per protocol, rows are x-axis values, columns are (top-k x survey
/// prefix) RID-ACC means over profile().runs trials.
void RunSmpReidentFigure(Context& ctx, const std::string& bench_name,
                         const data::Dataset& dataset,
                         const std::vector<fo::Protocol>& protocols,
                         ChannelKind channel, const std::vector<double>& xs,
                         attack::PrivacyMetricMode mode,
                         attack::ReidentModel model);

}  // namespace ldpr::exp

#endif  // LDPR_EXP_SMP_REIDENT_H_
