#include "fo/analytic_acc.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/sampling.h"
#include "fo/unary_encoding.h"

namespace ldpr::fo {

double ExpectedUeAttackAcc(double p, double q, int k) {
  LDPR_REQUIRE(k >= 2, "ExpectedUeAttackAcc requires k >= 2");
  LDPR_REQUIRE(p > q && q >= 0.0 && p <= 1.0, "requires 0 <= q < p <= 1");
  // Condition on the true bit being reported (prob. p) and on the number i-1
  // of spurious set bits among the k-1 others; the adversary then guesses
  // uniformly among the i set bits. If the true bit is off, the adversary can
  // only win when *no* bit is set and the uniform-domain fallback hits (1/k).
  double acc = 0.0;
  for (int i = 1; i <= k; ++i) {
    acc += p * (1.0 / i) * BinomialPmf(i - 1, k - 1, q);
  }
  acc += (1.0 - p) * std::pow(1.0 - q, k - 1) / k;
  return acc;
}

double ExpectedAttackAcc(Protocol protocol, double epsilon, int k) {
  LDPR_REQUIRE(k >= 2 && epsilon > 0.0,
               "ExpectedAttackAcc requires k >= 2 and epsilon > 0");
  const double e = std::exp(epsilon);
  switch (protocol) {
    case Protocol::kGrr:
      return e / (e + k - 1);
    case Protocol::kOlh:
      return 1.0 / (2.0 * std::max(k / (e + 1.0), 1.0));
    case Protocol::kSs: {
      // Paper formula (e^eps + 1) / (2k) assumes fractional omega >= 1; once
      // omega rounds to 1 the subset holds a single value and the attack
      // reduces to GRR's accuracy, which upper-bounds the expression.
      double analytic = (e + 1.0) / (2.0 * k);
      double omega_one = e / (e + k - 1);
      return std::min(analytic, omega_one);
    }
    case Protocol::kSue:
      return ExpectedUeAttackAcc(Sue::PForEpsilon(epsilon),
                                 Sue::QForEpsilon(epsilon), k);
    case Protocol::kOue:
      return ExpectedUeAttackAcc(Oue::PForEpsilon(epsilon),
                                 Oue::QForEpsilon(epsilon), k);
  }
  LDPR_CHECK(false, "unhandled protocol enum value");
}

double ExpectedAccUniform(Protocol protocol, double epsilon,
                          const std::vector<int>& domain_sizes) {
  LDPR_REQUIRE(!domain_sizes.empty(), "domain_sizes must be non-empty");
  double acc = 1.0;
  for (int k : domain_sizes) acc *= ExpectedAttackAcc(protocol, epsilon, k);
  return acc;
}

double ExpectedAccNonUniform(Protocol protocol, double epsilon,
                             const std::vector<int>& domain_sizes) {
  LDPR_REQUIRE(!domain_sizes.empty(), "domain_sizes must be non-empty");
  const double d = static_cast<double>(domain_sizes.size());
  double acc = 1.0;
  for (std::size_t j = 1; j <= domain_sizes.size(); ++j) {
    acc *= ((d + 1.0 - j) / d) *
           ExpectedAttackAcc(protocol, epsilon, domain_sizes[j - 1]);
  }
  return acc;
}

}  // namespace ldpr::fo
