#ifndef LDPR_FO_ANALYTIC_ACC_H_
#define LDPR_FO_ANALYTIC_ACC_H_

#include <vector>

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Closed-form expected single-report attacker accuracy (Section 3.2.1),
/// as a probability in [0, 1]:
///
///   GRR:  e^eps / (e^eps + k - 1)
///   OLH:  1 / (2 max(k / (e^eps + 1), 1))
///   SS:   (e^eps + 1) / (2k), clamped by the exact omega = 1 value
///         e^eps / (e^eps + k - 1) when k <= e^eps + 1
///   SUE/OUE: p * sum_{i=1..k} (1/i) Bin(i-1; k-1, q)
///            + (1-p) (1-q)^{k-1} / k
///
/// The UE expression covers both SUE and OUE by plugging the protocol's
/// (p, q); it is the paper's formula with the Bayes-adversary expectation
/// of Gursoy et al. made explicit.
double ExpectedAttackAcc(Protocol protocol, double epsilon, int k);

/// Generic UE attacker accuracy for arbitrary bit-flip probabilities.
double ExpectedUeAttackAcc(double p, double q, int k);

/// Expected accuracy of profiling a user across d surveys with the *uniform*
/// privacy metric (sampling without replacement; Eq. 4):
///   ACC_U = prod_j ACC(eps, k_j).
double ExpectedAccUniform(Protocol protocol, double epsilon,
                          const std::vector<int>& domain_sizes);

/// Expected accuracy with the *non-uniform* privacy metric (sampling with
/// replacement + memoization; Eq. 5):
///   ACC_NU = prod_j ((d + 1 - j)/d) ACC(eps, k_j).
double ExpectedAccNonUniform(Protocol protocol, double epsilon,
                             const std::vector<int>& domain_sizes);

}  // namespace ldpr::fo

#endif  // LDPR_FO_ANALYTIC_ACC_H_
