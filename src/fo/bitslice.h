#ifndef LDPR_FO_BITSLICE_H_
#define LDPR_FO_BITSLICE_H_

// Word-level building blocks for the block decode kernels
// (fo::Aggregator::AccumulateWireBlock): unaligned word loads over staged
// wire frames, MSB-first field extraction, and an exact multiplicative
// divisibility test that replaces OLH's per-candidate `% g` with one
// multiply. Everything here is bit-exact — fo_bitslice_exact_test pins each
// helper against its naive counterpart, and the kernels built on them
// against the scalar decode path.

#include <cstdint>
#include <cstring>

namespace ldpr::fo::bitslice {

/// Rows staged between block flushes. Small enough that the unary-encoding
/// kernel's vertical byte counters (one byte lane per report) cannot
/// saturate (< 256), large enough to amortize the per-flush unpack and the
/// lane mutex over ~two cache lines of counters.
inline constexpr int kBlockRows = 128;

/// Staging row width for a wire frame of `frame_bytes`: rounded up to whole
/// 64-bit words so kernels can read rows with aligned-stride word loads.
inline constexpr std::size_t RowStride(std::size_t frame_bytes) {
  return (frame_bytes + 7) & ~std::size_t{7};
}

/// Bytes a staging buffer needs beyond `rows * RowStride(...)`: field
/// extraction reads whole 64-bit words, so the last row's final field may
/// pull up to 7 bytes past the row. Callers of AccumulateWireBlock must
/// guarantee this much readable tail after the last row.
inline constexpr std::size_t kRowTailSlack = 8;

inline std::uint64_t Load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// The wire format packs bits MSB-first, so a big-endian load puts the
/// earliest wire bit in the word's most significant position.
inline std::uint64_t Load64Be(const std::uint8_t* p) {
  return __builtin_bswap64(Load64(p));
}

/// Extracts the `width`-bit MSB-first field starting at absolute bit `pos`
/// of `data` (width in [1, 57]: the field plus its leading intra-byte offset
/// must fit one word). Reads the 8 bytes at data + pos/8 — see
/// kRowTailSlack.
inline std::uint64_t ExtractBits(const std::uint8_t* data, int pos,
                                 int width) {
  const std::uint64_t word = Load64Be(data + (pos >> 3));
  return (word >> (64 - (pos & 7) - width)) &
         ((std::uint64_t{1} << width) - 1);
}

/// Exact divisibility-by-d test as one multiply, rotate and compare
/// (Granlund–Montgomery / Hacker's Delight 10-17): for d = m * 2^t with m
/// odd, n % d == 0  <=>  rotr(n * m^-1 mod 2^64, t) <= (2^64 - 1) / d.
/// The OLH kernel turns "h % g == value" into IsDivisible(h - value)
/// (valid when h >= value; h < value < g implies a nonzero difference
/// below g, i.e. never congruent).
struct DivisibilityCheck {
  std::uint64_t inverse = 1;  ///< m^-1 mod 2^64 (odd part's inverse)
  std::uint64_t limit = ~std::uint64_t{0};  ///< floor((2^64 - 1) / d)
  int shift = 0;                            ///< t = trailing zeros of d

  static DivisibilityCheck For(std::uint64_t d) {
    DivisibilityCheck check;
    check.shift = __builtin_ctzll(d);
    const std::uint64_t odd = d >> check.shift;
    // Newton's iteration x <- x(2 - odd*x) doubles the number of correct
    // low bits each step; x = odd starts 3 bits correct (odd^2 ≡ 1 mod 8),
    // so 5 steps reach all 64.
    std::uint64_t x = odd;
    for (int i = 0; i < 5; ++i) x *= 2 - odd * x;
    check.inverse = x;
    check.limit = ~std::uint64_t{0} / d;
    return check;
  }

  bool IsDivisible(std::uint64_t n) const {
    const std::uint64_t q = n * inverse;
    const std::uint64_t rotated =
        shift == 0 ? q : (q >> shift) | (q << (64 - shift));
    return rotated <= limit;
  }
};

}  // namespace ldpr::fo::bitslice

#endif  // LDPR_FO_BITSLICE_H_
