#ifndef LDPR_FO_BITSLICE_H_
#define LDPR_FO_BITSLICE_H_

// Word-level building blocks for the block decode kernels
// (fo::Aggregator::AccumulateWireBlock): unaligned word loads over staged
// wire frames, MSB-first field extraction, and an exact multiplicative
// divisibility test that replaces OLH's per-candidate `% g` with one
// multiply. Everything here is bit-exact — fo_bitslice_exact_test pins each
// helper against its naive counterpart, and the kernels built on them
// against the scalar decode path.

#include <cstdint>
#include <cstring>
#include <vector>

namespace ldpr::fo::bitslice {

/// Rows staged between block flushes. Small enough that the unary-encoding
/// kernel's vertical byte counters (one byte lane per report) cannot
/// saturate (< 256), large enough to amortize the per-flush unpack and the
/// lane mutex over ~two cache lines of counters.
inline constexpr int kBlockRows = 128;

/// Staging row width for a wire frame of `frame_bytes`: rounded up to whole
/// 64-bit words so kernels can read rows with aligned-stride word loads.
inline constexpr std::size_t RowStride(std::size_t frame_bytes) {
  return (frame_bytes + 7) & ~std::size_t{7};
}

/// Bytes a staging buffer needs beyond `rows * RowStride(...)`: field
/// extraction reads whole 64-bit words, so the last row's final field may
/// pull up to 7 bytes past the row. Callers of AccumulateWireBlock must
/// guarantee this much readable tail after the last row.
inline constexpr std::size_t kRowTailSlack = 8;

inline std::uint64_t Load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// The wire format packs bits MSB-first, so a big-endian load puts the
/// earliest wire bit in the word's most significant position.
inline std::uint64_t Load64Be(const std::uint8_t* p) {
  return __builtin_bswap64(Load64(p));
}

/// Extracts the `width`-bit MSB-first field starting at absolute bit `pos`
/// of `data` (width in [1, 57]: the field plus its leading intra-byte offset
/// must fit one word). Reads the 8 bytes at data + pos/8 — see
/// kRowTailSlack.
inline std::uint64_t ExtractBits(const std::uint8_t* data, int pos,
                                 int width) {
  const std::uint64_t word = Load64Be(data + (pos >> 3));
  return (word >> (64 - (pos & 7) - width)) &
         ((std::uint64_t{1} << width) - 1);
}

/// Exact divisibility-by-d test as one multiply, rotate and compare
/// (Granlund–Montgomery / Hacker's Delight 10-17): for d = m * 2^t with m
/// odd, n % d == 0  <=>  rotr(n * m^-1 mod 2^64, t) <= (2^64 - 1) / d.
/// The OLH kernel turns "h % g == value" into IsDivisible(h - value)
/// (valid when h >= value; h < value < g implies a nonzero difference
/// below g, i.e. never congruent).
struct DivisibilityCheck {
  std::uint64_t inverse = 1;  ///< m^-1 mod 2^64 (odd part's inverse)
  std::uint64_t limit = ~std::uint64_t{0};  ///< floor((2^64 - 1) / d)
  int shift = 0;                            ///< t = trailing zeros of d

  static DivisibilityCheck For(std::uint64_t d) {
    DivisibilityCheck check;
    check.shift = __builtin_ctzll(d);
    const std::uint64_t odd = d >> check.shift;
    // Newton's iteration x <- x(2 - odd*x) doubles the number of correct
    // low bits each step; x = odd starts 3 bits correct (odd^2 ≡ 1 mod 8),
    // so 5 steps reach all 64.
    std::uint64_t x = odd;
    for (int i = 0; i < 5; ++i) x *= 2 - odd * x;
    check.inverse = x;
    check.limit = ~std::uint64_t{0} / d;
    return check;
  }

  bool IsDivisible(std::uint64_t n) const {
    const std::uint64_t q = n * inverse;
    const std::uint64_t rotated =
        shift == 0 ? q : (q >> shift) | (q << (64 - shift));
    return rotated <= limit;
  }
};

/// Per-field extraction table for a row of `omega` MSB-first fields of
/// `width` bits each (the SS wire layout: field i starts at absolute bit
/// i * width). Precomputing each field's load byte and right-shift hoists
/// every piece of cursor arithmetic out of the decode loop, leaving one
/// big-endian load + shift + mask per field — and because the field -> byte
/// mapping is identical for every row, the kernel's inner loop carries no
/// data-dependent state at all. Requires width <= 57 (ExtractBits' one-word
/// contract); reads obey the same kRowTailSlack rule as ExtractBits.
struct PackedFieldTable {
  std::vector<std::uint32_t> byte;  ///< field i loads Load64Be(row + byte[i])
  std::vector<std::uint8_t> shift;  ///< then shifts right by shift[i]
  std::uint64_t mask = 0;           ///< and masks with (1 << width) - 1

  PackedFieldTable() = default;
  PackedFieldTable(int omega, int width)
      : byte(omega), shift(omega),
        mask((std::uint64_t{1} << width) - 1) {
    for (int i = 0; i < omega; ++i) {
      const long long pos = static_cast<long long>(i) * width;
      byte[i] = static_cast<std::uint32_t>(pos >> 3);
      shift[i] = static_cast<std::uint8_t>(64 - (pos & 7) - width);
    }
  }

  std::uint64_t Extract(const std::uint8_t* row, int i) const {
    return (Load64Be(row + byte[i]) >> shift[i]) & mask;
  }
};

/// SWAR validator for the SS wire constraint — `omega` packed MSB-first
/// `width`-bit fields, strictly increasing, each < k — with no per-field
/// branch. Fields are pulled `per_group` at a time (per_group * width <= 57,
/// so one ExtractBits covers the group with a carry-headroom bit to spare)
/// into a right-justified word whose lane j holds the group's
/// (cnt - 1 - j)-th field; both checks then run as lane-parallel carry
/// tests over alternating lanes, so a lane's carry always lands in a zeroed
/// neighbor:
///   - range:     lane + (2^width - k) carries out iff lane >= k (and when
///                k == 2^width the addend is 0 and the test correctly never
///                fires);
///   - monotone:  cur + (2^width - 1 - prev) carries out iff cur > prev,
///                with prev the next-higher lane (the preceding field).
/// Group boundaries (last field of group g vs first of g + 1) are stitched
/// with one scalar compare per group. Same accept set as the field-by-field
/// walk — pinned by fo_bitslice_exact_test's Validate/DecodeInto parity
/// fuzzing.
class PackedFieldValidator {
 public:
  PackedFieldValidator() = default;

  PackedFieldValidator(int omega, int width, int k)
      : omega_(omega), width_(width),
        mask_((std::uint64_t{1} << width) - 1) {
    per_group_ = omega < 57 / width ? omega : 57 / width;
    full_ = MasksFor(per_group_, k);
    const int tail = omega % per_group_;
    if (tail != 0) tail_ = MasksFor(tail, k);
    groups_ = (omega + per_group_ - 1) / per_group_;
  }

  /// `data` needs 8 readable bytes past each group's first byte — the same
  /// kRowTailSlack contract as ExtractBits (copy short frames into a padded
  /// scratch first).
  bool Validate(const std::uint8_t* data) const {
    const int full_groups = omega_ / per_group_;
    std::int64_t prev_last = -1;  // fields are >= 0, so group 0 always passes
    int pos = 0;
    for (int g = 0; g < groups_; ++g) {
      const GroupMasks& m = g < full_groups ? full_ : tail_;
      const std::uint64_t grp = ExtractBits(data, pos, m.cnt * width_);
      std::uint64_t bad = (((grp & m.even) + m.even_add) & m.even_carry) |
                          (((grp & m.odd) + m.odd_add) & m.odd_carry);
      const std::uint64_t prev = grp >> width_;
      bad |= (((grp & m.mono_even) + (~prev & m.mono_even)) &
              m.mono_even_carry) ^ m.mono_even_carry;
      bad |= (((grp & m.mono_odd) + (~prev & m.mono_odd)) &
              m.mono_odd_carry) ^ m.mono_odd_carry;
      if (bad != 0) return false;
      const std::int64_t first =
          static_cast<std::int64_t>(grp >> ((m.cnt - 1) * width_));
      if (first <= prev_last) return false;
      prev_last = static_cast<std::int64_t>(grp & mask_);
      pos += m.cnt * width_;
    }
    return true;
  }

 private:
  struct GroupMasks {
    int cnt = 0;
    std::uint64_t even = 0, even_add = 0, even_carry = 0;
    std::uint64_t odd = 0, odd_add = 0, odd_carry = 0;
    std::uint64_t mono_even = 0, mono_even_carry = 0;
    std::uint64_t mono_odd = 0, mono_odd_carry = 0;
  };

  GroupMasks MasksFor(int cnt, int k) const {
    GroupMasks m;
    m.cnt = cnt;
    const std::uint64_t excess =
        (std::uint64_t{1} << width_) - static_cast<std::uint64_t>(k);
    for (int j = 0; j < cnt; ++j) {
      const int sh = j * width_;
      const std::uint64_t lane = mask_ << sh;
      const std::uint64_t carry = std::uint64_t{1} << (sh + width_);
      if (j % 2 == 0) {
        m.even |= lane;
        m.even_add |= excess << sh;
        m.even_carry |= carry;
      } else {
        m.odd |= lane;
        m.odd_add |= excess << sh;
        m.odd_carry |= carry;
      }
      if (j < cnt - 1) {  // lane cnt-1 has no in-group predecessor
        if (j % 2 == 0) {
          m.mono_even |= lane;
          m.mono_even_carry |= carry;
        } else {
          m.mono_odd |= lane;
          m.mono_odd_carry |= carry;
        }
      }
    }
    return m;
  }

  int omega_ = 0;
  int width_ = 0;
  std::uint64_t mask_ = 0;
  int per_group_ = 1;
  int groups_ = 0;
  GroupMasks full_;
  GroupMasks tail_;
};

}  // namespace ldpr::fo::bitslice

#endif  // LDPR_FO_BITSLICE_H_
