#include "fo/comm_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"
#include "fo/factory.h"
#include "fo/olh.h"
#include "fo/ss.h"
#include "fo/wire.h"  // CeilLog2 — the codec and the cost model must agree

namespace ldpr::fo {

double ReportBits(Protocol protocol, int k, double epsilon,
                  const CommCostModel& model) {
  LDPR_REQUIRE(k >= 2, "domain size must be >= 2, got " << k);
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  switch (protocol) {
    case Protocol::kGrr:
      return CeilLog2(k);
    case Protocol::kOlh: {
      Olh olh(k, epsilon);
      return model.olh_seed_bits + CeilLog2(olh.g());
    }
    case Protocol::kSs: {
      Ss ss(k, epsilon);
      return static_cast<double>(ss.omega()) * CeilLog2(k);
    }
    case Protocol::kSue:
    case Protocol::kOue:
      return k;
  }
  LDPR_CHECK(false, "unreachable protocol");
}

double MeasuredReportBits(Protocol protocol, const Report& report, int k,
                          const CommCostModel& model) {
  LDPR_REQUIRE(k >= 2, "domain size must be >= 2, got " << k);
  switch (protocol) {
    case Protocol::kGrr:
      return CeilLog2(k);
    case Protocol::kOlh: {
      // The hashed value lives in [0, g); recover g's bit width from the
      // report: the value itself bounds it from below, but the wire format
      // is fixed by the protocol parameters, so callers should prefer
      // ReportBits. Here we charge the seed plus the value's fixed width
      // for the smallest g consistent with the payload.
      long long g_lower = std::max<long long>(2, report.value + 1);
      return model.olh_seed_bits + CeilLog2(g_lower);
    }
    case Protocol::kSs:
      return static_cast<double>(report.subset.size()) * CeilLog2(k);
    case Protocol::kSue:
    case Protocol::kOue:
      return static_cast<double>(report.bits.size());
  }
  LDPR_CHECK(false, "unreachable protocol");
}

double SplTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                    double epsilon, const CommCostModel& model) {
  LDPR_REQUIRE(!domain_sizes.empty(), "domain_sizes must be non-empty");
  const int d = static_cast<int>(domain_sizes.size());
  double total = 0.0;
  for (int k : domain_sizes) total += ReportBits(protocol, k, epsilon / d, model);
  return total;
}

double SmpTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                    double epsilon, const CommCostModel& model) {
  LDPR_REQUIRE(!domain_sizes.empty(), "domain_sizes must be non-empty");
  const int d = static_cast<int>(domain_sizes.size());
  double mean = 0.0;
  for (int k : domain_sizes) mean += ReportBits(protocol, k, epsilon, model);
  mean /= d;
  return CeilLog2(std::max(d, 2)) + mean;
}

double RsFdTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                     double epsilon, const CommCostModel& model) {
  LDPR_REQUIRE(!domain_sizes.empty(), "domain_sizes must be non-empty");
  const int d = static_cast<int>(domain_sizes.size());
  const double amplified =
      std::log(static_cast<double>(d) * (std::exp(epsilon) - 1.0) + 1.0);
  double total = 0.0;
  for (int k : domain_sizes) total += ReportBits(protocol, k, amplified, model);
  return total;
}

std::vector<CostUtilityPoint> CostUtilityFrontier(int k, double epsilon,
                                                  const CommCostModel& model) {
  std::vector<CostUtilityPoint> points;
  points.reserve(5);
  for (Protocol protocol : AllProtocols()) {
    auto oracle = MakeOracle(protocol, k, epsilon);
    CostUtilityPoint point;
    point.protocol = protocol;
    point.bits_per_report = ReportBits(protocol, k, epsilon, model);
    point.variance = oracle->EstimatorVariance(/*n=*/1, /*f=*/0.0);
    points.push_back(point);
  }
  return points;
}

Protocol RecommendProtocol(int k, double epsilon, double slack,
                           const CommCostModel& model) {
  LDPR_REQUIRE(slack >= 1.0, "slack must be >= 1, got " << slack);
  std::vector<CostUtilityPoint> points = CostUtilityFrontier(k, epsilon, model);
  double best_variance = std::numeric_limits<double>::infinity();
  for (const CostUtilityPoint& point : points)
    best_variance = std::min(best_variance, point.variance);
  Protocol best = Protocol::kOue;
  double best_bits = std::numeric_limits<double>::infinity();
  for (const CostUtilityPoint& point : points) {
    if (point.variance <= slack * best_variance &&
        point.bits_per_report < best_bits) {
      best_bits = point.bits_per_report;
      best = point.protocol;
    }
  }
  return best;
}

}  // namespace ldpr::fo
