#ifndef LDPR_FO_COMM_COST_H_
#define LDPR_FO_COMM_COST_H_

#include <vector>

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Communication-cost model for the five frequency oracles.
///
/// Section 6 of the paper recommends "the OUE and/or OLH protocols
/// (depending on k_j due to communication costs [50])". This module makes
/// that trade-off quantitative: the expected number of bits one sanitized
/// report occupies on the wire, following the encodings of Wang et al.
/// (USENIX Security '17):
///
///   GRR : ceil(log2 k)                 one categorical value
///   OLH : 64 + ceil(log2 g)            hash-function index + hashed value
///   SS  : omega * ceil(log2 k)         the reported subset Omega
///   SUE : k                            one bit per domain value
///   OUE : k                            one bit per domain value
///
/// The OLH hash index is modelled at 64 bits (the seed of a universal hash
/// family member); deployments that derive the seed from the user id pay
/// ceil(log2 g) only, which `kOlhSharedSeed` models.
struct CommCostModel {
  /// Bits charged for the OLH hash-function index (default: a full seed).
  int olh_seed_bits = 64;
};

/// Expected size in bits of one report of `protocol` on a domain of size k
/// at privacy budget epsilon. For SS the subset size omega is the optimal
/// omega(k, epsilon); for OLH, g = round(e^eps) + 1.
double ReportBits(Protocol protocol, int k, double epsilon,
                  const CommCostModel& model = {});

/// Expected size in bits of one *measured* report (exact for the encodings
/// above; provided so tests can cross-check the closed form against real
/// Report payloads).
double MeasuredReportBits(Protocol protocol, const Report& report, int k,
                          const CommCostModel& model = {});

/// Multidimensional solutions (Section 2.3): expected bits each user uploads
/// per collection round.
///
///   SPL   : sum_j ReportBits(protocol, k_j, eps/d)
///   SMP   : ceil(log2 d) + ReportBits(protocol, k_j, eps) averaged over j
///   RS+FD : sum_j ReportBits(protocol, k_j, eps') with eps'=ln(d(e^eps-1)+1)
///
/// RS+FD fake values are drawn from the same output space as real reports,
/// so they cost the same number of bits; SMP additionally discloses the
/// sampled attribute index.
double SplTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                    double epsilon, const CommCostModel& model = {});
double SmpTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                    double epsilon, const CommCostModel& model = {});
double RsFdTupleBits(Protocol protocol, const std::vector<int>& domain_sizes,
                     double epsilon, const CommCostModel& model = {});

/// Utility-versus-communication summary for one oracle configuration:
/// approximate estimator variance (at f = 0) against bits per report.
struct CostUtilityPoint {
  Protocol protocol;
  double bits_per_report = 0.0;
  double variance = 0.0;  ///< Eq. 2 variance at f = 0 for n = 1 (scale by 1/n)
};

/// Evaluates all five oracles at (k, epsilon); used by the cost/utility
/// frontier bench (abl05).
std::vector<CostUtilityPoint> CostUtilityFrontier(
    int k, double epsilon, const CommCostModel& model = {});

/// The cheapest protocol (in bits) whose variance is within `slack` (a
/// multiplicative factor >= 1) of the best variance at (k, epsilon). This is
/// the paper's "OUE and/or OLH depending on k_j" rule made explicit.
Protocol RecommendProtocol(int k, double epsilon, double slack = 1.05,
                           const CommCostModel& model = {});

}  // namespace ldpr::fo

#endif  // LDPR_FO_COMM_COST_H_
