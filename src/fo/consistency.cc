#include "fo/consistency.h"

#include <algorithm>
#include <numeric>

#include "core/check.h"
#include "core/histogram.h"

namespace ldpr::fo {

const char* ConsistencyMethodName(ConsistencyMethod method) {
  switch (method) {
    case ConsistencyMethod::kClampRenorm:
      return "ClampRenorm";
    case ConsistencyMethod::kNormSub:
      return "NormSub";
    case ConsistencyMethod::kBaseCut:
      return "BaseCut";
  }
  return "unknown";
}

std::vector<double> NormSub(const std::vector<double>& estimate) {
  LDPR_REQUIRE(!estimate.empty(), "NormSub requires a non-empty estimate");
  // Sort descending; find the largest m such that adding
  // delta = (1 - sum of top-m) / m keeps all top-m entries positive; zero
  // the rest. This is the exact L2 projection onto the simplex.
  const int k = static_cast<int>(estimate.size());
  std::vector<double> sorted = estimate;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  double prefix = 0.0;
  double delta = 0.0;
  int m = 0;
  for (int i = 0; i < k; ++i) {
    prefix += sorted[i];
    const double candidate = (1.0 - prefix) / (i + 1);
    if (sorted[i] + candidate > 0.0) {
      delta = candidate;
      m = i + 1;
    } else {
      break;
    }
  }
  LDPR_CHECK(m >= 1, "NormSub found no positive support");

  const double cut = sorted[m - 1];  // smallest kept value
  std::vector<double> out(k, 0.0);
  // Keep every entry >= cut (ties handled by keeping exactly m entries).
  int kept = 0;
  for (int v = 0; v < k; ++v) {
    if (estimate[v] >= cut && kept < m) {
      out[v] = estimate[v] + delta;
      ++kept;
    }
  }
  LDPR_CHECK(kept == m, "NormSub support selection mismatch");
  return out;
}

std::vector<double> MakeConsistent(const std::vector<double>& estimate,
                                   ConsistencyMethod method,
                                   double threshold) {
  LDPR_REQUIRE(!estimate.empty(), "MakeConsistent requires a non-empty input");
  switch (method) {
    case ConsistencyMethod::kClampRenorm:
      return ProjectToSimplex(estimate);
    case ConsistencyMethod::kNormSub:
      return NormSub(estimate);
    case ConsistencyMethod::kBaseCut: {
      std::vector<double> out(estimate.size(), 0.0);
      double sum = 0.0;
      for (std::size_t v = 0; v < estimate.size(); ++v) {
        if (estimate[v] > threshold) {
          out[v] = estimate[v];
          sum += estimate[v];
        }
      }
      if (sum <= 0.0) return ProjectToSimplex(estimate);
      for (double& x : out) x /= sum;
      return out;
    }
  }
  LDPR_CHECK(false, "unhandled consistency method");
}

}  // namespace ldpr::fo
