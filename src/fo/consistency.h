#ifndef LDPR_FO_CONSISTENCY_H_
#define LDPR_FO_CONSISTENCY_H_

#include <vector>

namespace ldpr::fo {

/// Post-processing methods that make raw LDP frequency estimates consistent
/// (non-negative, summing to one) without breaking DP — DP is immune to
/// post-processing (Section 2.1). Implemented after Wang et al., "Locally
/// Differentially Private Frequency Estimation with Consistency" (NDSS'20),
/// which the paper cites as part of the frequency-oracle substrate.
enum class ConsistencyMethod {
  /// Clamp to [0, 1] and rescale (the simple baseline).
  kClampRenorm,
  /// Norm-Sub: iteratively zero out negatives and shift the remaining
  /// positives by a common additive term so the total is 1. Minimizes the
  /// L2 distance to the simplex and is the method NDSS'20 recommends for
  /// general distributions.
  kNormSub,
  /// Base-Cut: keep only estimates above the noise threshold and renormalize
  /// (recommended when only the heavy hitters matter).
  kBaseCut,
};

const char* ConsistencyMethodName(ConsistencyMethod method);

/// Applies the chosen method to a raw estimate. For kBaseCut, `threshold`
/// is the cut level (estimates <= threshold are dropped); it is ignored by
/// the other methods.
std::vector<double> MakeConsistent(const std::vector<double>& estimate,
                                   ConsistencyMethod method,
                                   double threshold = 0.0);

/// Norm-Sub exposed directly: projects onto the probability simplex in L2.
std::vector<double> NormSub(const std::vector<double>& estimate);

}  // namespace ldpr::fo

#endif  // LDPR_FO_CONSISTENCY_H_
