#include "fo/factory.h"

#include "core/check.h"
#include "fo/grr.h"
#include "fo/olh.h"
#include "fo/ss.h"
#include "fo/unary_encoding.h"

namespace ldpr::fo {

std::unique_ptr<FrequencyOracle> MakeOracle(Protocol protocol, int k,
                                            double epsilon) {
  switch (protocol) {
    case Protocol::kGrr:
      return std::make_unique<Grr>(k, epsilon);
    case Protocol::kOlh:
      return std::make_unique<Olh>(k, epsilon);
    case Protocol::kSs:
      return std::make_unique<Ss>(k, epsilon);
    case Protocol::kSue:
      return std::make_unique<Sue>(k, epsilon);
    case Protocol::kOue:
      return std::make_unique<Oue>(k, epsilon);
  }
  LDPR_CHECK(false, "unhandled protocol enum value");
}

}  // namespace ldpr::fo
