#ifndef LDPR_FO_FACTORY_H_
#define LDPR_FO_FACTORY_H_

#include <memory>

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Instantiates the requested protocol for domain size k and budget epsilon.
std::unique_ptr<FrequencyOracle> MakeOracle(Protocol protocol, int k,
                                            double epsilon);

}  // namespace ldpr::fo

#endif  // LDPR_FO_FACTORY_H_
