#include "fo/frequency_oracle.h"

#include "core/check.h"

namespace ldpr::fo {

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGrr:
      return "GRR";
    case Protocol::kOlh:
      return "OLH";
    case Protocol::kSs:
      return "SS";
    case Protocol::kSue:
      return "SUE";
    case Protocol::kOue:
      return "OUE";
  }
  return "unknown";
}

std::vector<Protocol> AllProtocols() {
  return {Protocol::kGrr, Protocol::kOlh, Protocol::kSs, Protocol::kSue,
          Protocol::kOue};
}

FrequencyOracle::FrequencyOracle(int k, double epsilon)
    : k_(k), epsilon_(epsilon) {
  LDPR_REQUIRE(k >= 2, "frequency oracle requires domain size k >= 2, got "
                           << k);
  LDPR_REQUIRE(epsilon > 0.0, "frequency oracle requires epsilon > 0, got "
                                  << epsilon);
}

void FrequencyOracle::SetProbabilities(double p, double q) {
  LDPR_CHECK(p > q && q >= 0.0 && p <= 1.0,
             "protocol probabilities must satisfy 0 <= q < p <= 1, got p=" << p
                                                                           << " q="
                                                                           << q);
  p_ = p;
  q_ = q;
}

std::vector<double> FrequencyOracle::EstimateFromCounts(
    const std::vector<long long>& counts, long long n) const {
  LDPR_REQUIRE(static_cast<int>(counts.size()) == k_,
               "counts has size " << counts.size() << ", expected k=" << k_);
  LDPR_REQUIRE(n >= 1, "EstimateFromCounts requires n >= 1");
  std::vector<double> est(k_);
  const double denom = p_ - q_;
  for (int v = 0; v < k_; ++v) {
    est[v] = (static_cast<double>(counts[v]) / n - q_) / denom;
  }
  return est;
}

std::vector<double> FrequencyOracle::EstimateFrequencies(
    const std::vector<int>& values, Rng& rng) const {
  LDPR_REQUIRE(!values.empty(), "EstimateFrequencies requires >= 1 value");
  std::vector<long long> counts(k_, 0);
  for (int v : values) {
    Report r = Randomize(v, rng);
    AccumulateSupport(r, &counts);
  }
  return EstimateFromCounts(counts, static_cast<long long>(values.size()));
}

double FrequencyOracle::EstimatorVariance(long long n, double f) const {
  LDPR_REQUIRE(n >= 1, "EstimatorVariance requires n >= 1");
  const double denom = p_ - q_;
  return q_ * (1.0 - q_) / (n * denom * denom) +
         f * (1.0 - p_ - q_) / (n * denom);
}

}  // namespace ldpr::fo
