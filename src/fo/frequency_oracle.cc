#include "fo/frequency_oracle.h"

#include "core/check.h"
#include "fo/bitslice.h"
#include "fo/wire.h"

namespace ldpr::fo {

const char* ProtocolName(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGrr:
      return "GRR";
    case Protocol::kOlh:
      return "OLH";
    case Protocol::kSs:
      return "SS";
    case Protocol::kSue:
      return "SUE";
    case Protocol::kOue:
      return "OUE";
  }
  return "unknown";
}

std::vector<Protocol> AllProtocols() {
  return {Protocol::kGrr, Protocol::kOlh, Protocol::kSs, Protocol::kSue,
          Protocol::kOue};
}

FrequencyOracle::FrequencyOracle(int k, double epsilon)
    : k_(k), epsilon_(epsilon) {
  LDPR_REQUIRE(k >= 2, "frequency oracle requires domain size k >= 2, got "
                           << k);
  LDPR_REQUIRE(epsilon > 0.0, "frequency oracle requires epsilon > 0, got "
                                  << epsilon);
}

void FrequencyOracle::SetProbabilities(double p, double q) {
  LDPR_CHECK(p > q && q >= 0.0 && p <= 1.0,
             "protocol probabilities must satisfy 0 <= q < p <= 1, got p=" << p
                                                                           << " q="
                                                                           << q);
  p_ = p;
  q_ = q;
}

std::vector<double> FrequencyOracle::EstimateFromCounts(
    const std::vector<long long>& counts, long long n) const {
  LDPR_REQUIRE(static_cast<int>(counts.size()) == k_,
               "counts has size " << counts.size() << ", expected k=" << k_);
  LDPR_REQUIRE(n >= 1, "EstimateFromCounts requires n >= 1");
  std::vector<double> est(k_);
  const double denom = p_ - q_;
  for (int v = 0; v < k_; ++v) {
    est[v] = (static_cast<double>(counts[v]) / n - q_) / denom;
  }
  return est;
}

std::vector<double> FrequencyOracle::EstimateFrequencies(
    const std::vector<int>& values, Rng& rng) const {
  LDPR_REQUIRE(!values.empty(), "EstimateFrequencies requires >= 1 value");
  // The fused aggregator path consumes `rng` exactly like the historical
  // Randomize + AccumulateSupport loop, so results are bit-identical.
  std::unique_ptr<Aggregator> agg = MakeAggregator();
  agg->AccumulateValues(values, rng);
  return agg->Estimate();
}

void FrequencyOracle::BatchRandomize(const int* values, std::size_t count,
                                     Rng& rng, const ReportSink& sink) const {
  for (std::size_t i = 0; i < count; ++i) {
    sink(Randomize(values[i], rng));
  }
}

void FrequencyOracle::BatchRandomize(const std::vector<int>& values, Rng& rng,
                                     const ReportSink& sink) const {
  BatchRandomize(values.data(), values.size(), rng, sink);
}

std::unique_ptr<Aggregator> FrequencyOracle::MakeAggregator() const {
  return std::make_unique<Aggregator>(*this);
}

Aggregator::Aggregator(const FrequencyOracle& oracle)
    : oracle_(oracle), counts_(oracle.k(), 0) {}

void Aggregator::Accumulate(const Report& report) {
  oracle_.AccumulateSupport(report, &counts_);
  ++n_;
}

std::uint8_t* Aggregator::StageRowSlot(std::size_t stride) {
  if (staging_.empty()) {
    staging_stride_ = stride;
    staging_.assign(
        static_cast<std::size_t>(bitslice::kBlockRows) * stride +
            bitslice::kRowTailSlack,
        0);
  }
  return staging_.data() +
         static_cast<std::size_t>(staged_rows_) * staging_stride_;
}

void Aggregator::CommitStagedRow() {
  if (++staged_rows_ == bitslice::kBlockRows) FlushStaged();
}

void Aggregator::FlushStaged() const {
  if (staged_rows_ == 0) return;
  // Logically const (see the header): only the internal representation of
  // already-accumulated reports moves from staged rows into counts_.
  Aggregator* self = const_cast<Aggregator*>(this);
  const int rows = self->staged_rows_;
  self->staged_rows_ = 0;
  self->AccumulateWireBlock(self->staging_.data(), self->staging_stride_,
                            rows);
}

void Aggregator::AccumulateValue(int value, Rng& rng) {
  Report r = oracle_.Randomize(value, rng);
  Accumulate(r);
}

void Aggregator::AccumulateValues(const int* values, std::size_t count,
                                  Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) AccumulateValue(values[i], rng);
}

void Aggregator::AccumulateValues(const std::vector<int>& values, Rng& rng) {
  AccumulateValues(values.data(), values.size(), rng);
}

void Aggregator::AccumulateHistogram(const std::vector<long long>& histogram,
                                     Rng& rng) {
  const int k = oracle_.k();
  LDPR_REQUIRE(static_cast<int>(histogram.size()) == k,
               "histogram has size " << histogram.size() << ", expected k="
                                     << k);
  long long total = 0;
  for (long long h : histogram) {
    LDPR_REQUIRE(h >= 0, "histogram cells must be non-negative");
    total += h;
  }
  // Cell v is supported by a user holding v with probability p and by any
  // other user with probability q, independently across users, so the
  // aggregate count is Binomial(h_v, p) + Binomial(n - h_v, q) exactly.
  for (int v = 0; v < k; ++v) {
    counts_[v] += rng.Binomial64(histogram[v], oracle_.p()) +
                  rng.Binomial64(total - histogram[v], oracle_.q());
  }
  n_ += total;
}

long long Aggregator::AccumulateSubsampledHistogram(
    const std::vector<long long>& histogram, double rate, Rng& rng) {
  LDPR_REQUIRE(rate >= 0.0 && rate <= 1.0,
               "subsample rate must be in [0, 1], got " << rate);
  std::vector<long long> thinned(histogram.size(), 0);
  long long total = 0;
  for (std::size_t v = 0; v < histogram.size(); ++v) {
    LDPR_REQUIRE(histogram[v] >= 0, "histogram cells must be non-negative");
    thinned[v] = rng.Binomial64(histogram[v], rate);
    total += thinned[v];
  }
  AccumulateHistogram(thinned, rng);
  return total;
}

void Aggregator::AccumulateWireBlock(const std::uint8_t* frames,
                                     std::size_t stride, int count) {
  // Scalar reference path: decode each staged frame like the streaming
  // ingest loop would. Protocol subclasses override with block kernels that
  // must stay bit-identical to this.
  WireDecoder decoder(oracle_);
  const std::uint8_t* row = frames;
  for (int r = 0; r < count; ++r, row += stride) {
    const bool ok = decoder.DecodeInto({row, decoder.report_bytes()}, *this);
    LDPR_CHECK(ok, "AccumulateWireBlock fed an invalid frame: callers must "
               "pre-validate (WireDecoder::Validate)");
  }
}

void Aggregator::Merge(const Aggregator& other) {
  LDPR_REQUIRE(oracle_.protocol() == other.oracle_.protocol() &&
                   counts_.size() == other.counts_.size(),
               "cannot merge aggregators of different protocols/domains");
  FlushStaged();
  other.FlushStaged();
  for (std::size_t v = 0; v < counts_.size(); ++v) {
    counts_[v] += other.counts_[v];
  }
  n_ += other.n_;
}

std::vector<double> Aggregator::Estimate() const {
  FlushStaged();
  return oracle_.EstimateFromCounts(counts_, n_);
}

std::vector<double> Aggregator::Estimate(ConsistencyMethod method,
                                         double threshold) const {
  return MakeConsistent(Estimate(), method, threshold);
}

double FrequencyOracle::EstimatorVariance(long long n, double f) const {
  LDPR_REQUIRE(n >= 1, "EstimatorVariance requires n >= 1");
  const double denom = p_ - q_;
  return q_ * (1.0 - q_) / (n * denom * denom) +
         f * (1.0 - p_ - q_) / (n * denom);
}

}  // namespace ldpr::fo
