#ifndef LDPR_FO_FREQUENCY_ORACLE_H_
#define LDPR_FO_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "fo/consistency.h"

namespace ldpr::fo {

/// The five LDP frequency-estimation protocols studied by the paper
/// (Section 2.2).
enum class Protocol {
  kGrr,  ///< Generalized Randomized Response
  kOlh,  ///< Optimal Local Hashing
  kSs,   ///< omega-Subset Selection
  kSue,  ///< Symmetric Unary Encoding (Basic One-time RAPPOR)
  kOue,  ///< Optimal Unary Encoding
};

/// Short display name ("GRR", "OLH", "SS", "SUE", "OUE").
const char* ProtocolName(Protocol protocol);

/// All five protocols, in the paper's order.
std::vector<Protocol> AllProtocols();

/// One sanitized user report. Protocols use different encodings, so the
/// struct carries one field per encoding; only the fields relevant to the
/// emitting protocol are populated.
struct Report {
  /// GRR: the perturbed value in [0, k). OLH: the perturbed *hashed* value
  /// in [0, g).
  int value = -1;
  /// OLH only: index of the hash function drawn from the universal family.
  std::uint64_t hash_seed = 0;
  /// SS only: the reported subset Omega (distinct values in [0, k)).
  std::vector<int> subset;
  /// SUE/OUE only: the sanitized unary-encoded vector of length k.
  std::vector<std::uint8_t> bits;
};

class Aggregator;

/// Receives sanitized reports from BatchRandomize, one call per user. The
/// Report reference is only valid for the duration of the call:
/// implementations reuse a single scratch Report across users to avoid
/// per-user heap traffic, so sinks that need to keep a report must copy it.
using ReportSink = std::function<void(const Report&)>;

/// Interface for a local frequency-estimation protocol ("frequency oracle").
///
/// Each implementation provides the client-side randomizer, the server-side
/// unbiased estimator of Section 2.2 (Eq. 2 with protocol-specific p and q),
/// and the single-report "plausible deniability" adversary of Section 3.2.1.
class FrequencyOracle {
 public:
  /// `k` is the attribute domain size (>= 2); `epsilon` the LDP budget (> 0).
  FrequencyOracle(int k, double epsilon);
  virtual ~FrequencyOracle() = default;

  FrequencyOracle(const FrequencyOracle&) = delete;
  FrequencyOracle& operator=(const FrequencyOracle&) = delete;

  /// Client side: sanitizes the true value (in [0, k)) into a report.
  virtual Report Randomize(int value, Rng& rng) const = 0;

  /// Client side, batched: sanitizes values[0..count) in order, handing each
  /// report to `sink`. Draws from `rng` exactly like `count` successive
  /// Randomize calls (bit-identical stream), but overrides reuse one scratch
  /// Report so the batch allocates O(1) instead of O(count) heap blocks.
  virtual void BatchRandomize(const int* values, std::size_t count, Rng& rng,
                              const ReportSink& sink) const;
  void BatchRandomize(const std::vector<int>& values, Rng& rng,
                      const ReportSink& sink) const;

  /// Streaming server-side aggregation state for this oracle. Protocol
  /// subclasses return aggregators whose hot paths are fused and
  /// allocation-free (GRR/SS count tallies, OLH hashed-support counting,
  /// SUE/OUE bit-column sums).
  virtual std::unique_ptr<Aggregator> MakeAggregator() const;

  /// Server side: adds the report's support to `counts` (size k). A value v
  /// is "supported" when the report is consistent with v under the protocol's
  /// encoding (equality for GRR, hash match for OLH, subset membership for
  /// SS, set bit for UE).
  virtual void AccumulateSupport(const Report& report,
                                 std::vector<long long>* counts) const = 0;

  /// Adversary of Section 3.2.1: predicts the user's true value from one
  /// report. Ties are broken uniformly at random.
  virtual int AttackPredict(const Report& report, Rng& rng) const = 0;

  /// Unbiased frequency estimate from support counts over n reports:
  /// fhat(v) = (C(v)/n - q) / (p - q)  (Eq. 2).
  std::vector<double> EstimateFromCounts(const std::vector<long long>& counts,
                                         long long n) const;

  /// Convenience: randomize every value, then estimate.
  std::vector<double> EstimateFrequencies(const std::vector<int>& values,
                                          Rng& rng) const;

  /// Per-estimate variance of Eq. 2 at true frequency f (Wang et al. 2017):
  /// Var = q(1-q) / (n (p-q)^2) + f (1 - p - q) / (n (p - q)).
  double EstimatorVariance(long long n, double f = 0.0) const;

  virtual Protocol protocol() const = 0;

  int k() const { return k_; }
  double epsilon() const { return epsilon_; }
  /// Probability that the "true" position is reported/supported.
  double p() const { return p_; }
  /// Probability that any other fixed position is reported/supported.
  double q() const { return q_; }

 protected:
  void SetProbabilities(double p, double q);

 private:
  int k_;
  double epsilon_;
  double p_ = 0.0;
  double q_ = 0.0;
};

/// Streaming server-side aggregator: support counts plus the number of
/// accumulated reports, nothing else. Feed it reports one at a time
/// (Accumulate), fused client+server values (AccumulateValue), or whole
/// true-value histograms (AccumulateHistogram); shard-local aggregators
/// Merge into one before Estimate. No per-user Report vector is ever
/// materialized on any of these paths.
///
/// Obtain instances from FrequencyOracle::MakeAggregator(); the oracle must
/// outlive the aggregator.
class Aggregator {
 public:
  explicit Aggregator(const FrequencyOracle& oracle);
  virtual ~Aggregator() = default;

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Server side: folds one report's support into the counts. The UE/SS/OLH
  /// aggregators override this to *stage* the report — packing its exact
  /// SerializeReport image into an internal block of wire rows and deferring
  /// all decode work to their AccumulateWireBlock kernels — so the batch
  /// (non-wire) path runs at block-kernel speed too. Staging is invisible:
  /// every read of the state (counts(), n(), Estimate(), Merge() — both
  /// sides) drains it first, and integer support sums commute, so results
  /// stay bit-identical to the scalar AccumulateSupport loop wherever the
  /// flush boundaries fall.
  virtual void Accumulate(const Report& report);

  /// Fused client + server: randomizes `value` and accumulates its support
  /// directly. Draws from `rng` exactly like Randomize(value, rng)
  /// (bit-identical stream); protocol overrides skip the Report entirely.
  virtual void AccumulateValue(int value, Rng& rng);

  /// AccumulateValue over a span of values.
  void AccumulateValues(const int* values, std::size_t count, Rng& rng);
  void AccumulateValues(const std::vector<int>& values, Rng& rng);

  /// Closed-form batch: draws the aggregate support counts of
  /// histogram[v]-many users holding each value v in O(k) RNG draws total,
  /// instead of simulating the n users one by one. The default samples each
  /// cell's count as Binomial(histogram[v], p) + Binomial(n - histogram[v],
  /// q), which is exactly the marginal distribution of the scalar path for
  /// every protocol (cells are supported with probability p/q independently
  /// across users); cross-cell correlations of one user's SS subset / OLH
  /// preimage / UE bit vector are not reproduced, which leaves every
  /// per-cell estimate, its variance, and any expected-MSE metric
  /// distribution-exact. GRR overrides this with a sum-preserving
  /// multinomial that is exact jointly as well.
  virtual void AccumulateHistogram(const std::vector<long long>& histogram,
                                   Rng& rng);

  /// Closed-form batch for a Bernoulli(rate)-thinned population: draws the
  /// sub-histogram Binomial(histogram[v], rate) per cell — the users that
  /// actually reach this oracle, e.g. the 1/d uniform attribute samplers of
  /// SMP — then folds its closed-form support counts in via
  /// AccumulateHistogram. Returns the number of thinned users accumulated,
  /// which is also what n() grows by.
  long long AccumulateSubsampledHistogram(
      const std::vector<long long>& histogram, double rate, Rng& rng);

  /// Decodes and accumulates a block of pre-validated wire frames — the
  /// serving layer's bitsliced hot path. `frames` points at `count` rows of
  /// `stride` bytes; each row begins with one exact SerializeReport image
  /// (WireDecoder::Validate-accepted) and the caller must guarantee
  ///   - stride >= bitslice::RowStride(frame size) with zero padding bytes,
  ///   - bitslice::kRowTailSlack readable bytes after the last row
  /// (serve::Collector's staging buffers are laid out exactly like this).
  /// Produces bit-identical counts()/n() to `count` scalar
  /// WireDecoder::DecodeInto calls — the base implementation *is* that
  /// scalar loop, and protocol overrides (UE bit-column slicing, batched
  /// OLH hashing, GRR/SS field tallies) are pinned to it by
  /// fo_bitslice_exact_test.
  virtual void AccumulateWireBlock(const std::uint8_t* frames,
                                   std::size_t stride, int count);

  /// Folds another aggregator of the same protocol/domain into this one.
  void Merge(const Aggregator& other);

  /// Unbiased Eq. (2) estimate over everything accumulated so far.
  std::vector<double> Estimate() const;

  /// Estimate followed by consistency post-processing (NDSS'20).
  std::vector<double> Estimate(ConsistencyMethod method,
                               double threshold = 0.0) const;

  const std::vector<long long>& counts() const {
    FlushStaged();
    return counts_;
  }
  long long n() const {
    FlushStaged();
    return n_;
  }
  const FrequencyOracle& oracle() const { return oracle_; }

 protected:
  /// Lazily allocates the report-side staging block (bitslice::kBlockRows
  /// rows of `stride` bytes plus tail slack, zeroed) and returns the next
  /// free row for a staged Accumulate override to pack a wire image into.
  std::uint8_t* StageRowSlot(std::size_t stride);
  /// Commits the row returned by StageRowSlot; flushes the block through
  /// AccumulateWireBlock when it fills.
  void CommitStagedRow();
  /// Drains staged rows into counts_/n_. Const because staging is a deferred
  /// materialization of reports already Accumulated — the logical state (the
  /// multiset of accumulated reports) does not change, only where it lives.
  void FlushStaged() const;

  const FrequencyOracle& oracle_;
  std::vector<long long> counts_;
  long long n_ = 0;

 private:
  std::vector<std::uint8_t> staging_;  ///< wire rows, see StageRowSlot
  std::size_t staging_stride_ = 0;
  int staged_rows_ = 0;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_FREQUENCY_ORACLE_H_
