#ifndef LDPR_FO_FREQUENCY_ORACLE_H_
#define LDPR_FO_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"

namespace ldpr::fo {

/// The five LDP frequency-estimation protocols studied by the paper
/// (Section 2.2).
enum class Protocol {
  kGrr,  ///< Generalized Randomized Response
  kOlh,  ///< Optimal Local Hashing
  kSs,   ///< omega-Subset Selection
  kSue,  ///< Symmetric Unary Encoding (Basic One-time RAPPOR)
  kOue,  ///< Optimal Unary Encoding
};

/// Short display name ("GRR", "OLH", "SS", "SUE", "OUE").
const char* ProtocolName(Protocol protocol);

/// All five protocols, in the paper's order.
std::vector<Protocol> AllProtocols();

/// One sanitized user report. Protocols use different encodings, so the
/// struct carries one field per encoding; only the fields relevant to the
/// emitting protocol are populated.
struct Report {
  /// GRR: the perturbed value in [0, k). OLH: the perturbed *hashed* value
  /// in [0, g).
  int value = -1;
  /// OLH only: index of the hash function drawn from the universal family.
  std::uint64_t hash_seed = 0;
  /// SS only: the reported subset Omega (distinct values in [0, k)).
  std::vector<int> subset;
  /// SUE/OUE only: the sanitized unary-encoded vector of length k.
  std::vector<std::uint8_t> bits;
};

/// Interface for a local frequency-estimation protocol ("frequency oracle").
///
/// Each implementation provides the client-side randomizer, the server-side
/// unbiased estimator of Section 2.2 (Eq. 2 with protocol-specific p and q),
/// and the single-report "plausible deniability" adversary of Section 3.2.1.
class FrequencyOracle {
 public:
  /// `k` is the attribute domain size (>= 2); `epsilon` the LDP budget (> 0).
  FrequencyOracle(int k, double epsilon);
  virtual ~FrequencyOracle() = default;

  FrequencyOracle(const FrequencyOracle&) = delete;
  FrequencyOracle& operator=(const FrequencyOracle&) = delete;

  /// Client side: sanitizes the true value (in [0, k)) into a report.
  virtual Report Randomize(int value, Rng& rng) const = 0;

  /// Server side: adds the report's support to `counts` (size k). A value v
  /// is "supported" when the report is consistent with v under the protocol's
  /// encoding (equality for GRR, hash match for OLH, subset membership for
  /// SS, set bit for UE).
  virtual void AccumulateSupport(const Report& report,
                                 std::vector<long long>* counts) const = 0;

  /// Adversary of Section 3.2.1: predicts the user's true value from one
  /// report. Ties are broken uniformly at random.
  virtual int AttackPredict(const Report& report, Rng& rng) const = 0;

  /// Unbiased frequency estimate from support counts over n reports:
  /// fhat(v) = (C(v)/n - q) / (p - q)  (Eq. 2).
  std::vector<double> EstimateFromCounts(const std::vector<long long>& counts,
                                         long long n) const;

  /// Convenience: randomize every value, then estimate.
  std::vector<double> EstimateFrequencies(const std::vector<int>& values,
                                          Rng& rng) const;

  /// Per-estimate variance of Eq. 2 at true frequency f (Wang et al. 2017):
  /// Var = q(1-q) / (n (p-q)^2) + f (1 - p - q) / (n (p - q)).
  double EstimatorVariance(long long n, double f = 0.0) const;

  virtual Protocol protocol() const = 0;

  int k() const { return k_; }
  double epsilon() const { return epsilon_; }
  /// Probability that the "true" position is reported/supported.
  double p() const { return p_; }
  /// Probability that any other fixed position is reported/supported.
  double q() const { return q_; }

 protected:
  void SetProbabilities(double p, double q);

 private:
  int k_;
  double epsilon_;
  double p_ = 0.0;
  double q_ = 0.0;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_FREQUENCY_ORACLE_H_
