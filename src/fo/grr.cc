#include "fo/grr.h"

#include <cmath>

#include "core/check.h"
#include "fo/bitslice.h"
#include "fo/wire.h"

namespace ldpr::fo {

Grr::Grr(int k, double epsilon) : FrequencyOracle(k, epsilon) {
  const double e = std::exp(epsilon);
  SetProbabilities(e / (e + k - 1), 1.0 / (e + k - 1));
}

int Grr::Perturb(int value, int k, double eps, Rng& rng) {
  LDPR_REQUIRE(k >= 2 && eps > 0.0, "GRR perturb requires k >= 2, eps > 0");
  LDPR_REQUIRE(value >= 0 && value < k,
               "value " << value << " outside [0, " << k << ")");
  const double e = std::exp(eps);
  const double p = e / (e + k - 1);
  if (rng.Bernoulli(p)) return value;
  // Uniform over the k-1 other values.
  int other = static_cast<int>(rng.UniformInt(k - 1));
  return other >= value ? other + 1 : other;
}

Report Grr::Randomize(int value, Rng& rng) const {
  Report r;
  r.value = Perturb(value, k(), epsilon(), rng);
  return r;
}

void Grr::AccumulateSupport(const Report& report,
                            std::vector<long long>* counts) const {
  LDPR_REQUIRE(report.value >= 0 && report.value < k(),
               "GRR report value out of range");
  ++(*counts)[report.value];
}

int Grr::AttackPredict(const Report& report, Rng& /*rng*/) const {
  // The reported value is the single most likely true value (prob. p > q).
  return report.value;
}

namespace {

class GrrAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

  void AccumulateValue(int value, Rng& rng) override {
    const int k = oracle_.k();
    LDPR_REQUIRE(value >= 0 && value < k,
                 "value " << value << " outside [0, " << k << ")");
    // Same draws as Grr::Perturb, tallied without building a Report.
    if (rng.Bernoulli(oracle_.p())) {
      ++counts_[value];
    } else {
      int other = static_cast<int>(rng.UniformInt(k - 1));
      ++counts_[other >= value ? other + 1 : other];
    }
    ++n_;
  }

  void AccumulateWireBlock(const std::uint8_t* frames, std::size_t stride,
                           int count) override {
    // One big-endian word load per frame: the value is the top
    // ceil(log2 k) bits (validation already guaranteed value < k).
    const int width = CeilLog2(oracle_.k());
    const std::uint8_t* row = frames;
    for (int r = 0; r < count; ++r, row += stride) {
      ++counts_[static_cast<int>(bitslice::Load64Be(row) >> (64 - width))];
    }
    n_ += count;
  }

  void AccumulateHistogram(const std::vector<long long>& histogram,
                           Rng& rng) override {
    const int k = oracle_.k();
    LDPR_REQUIRE(static_cast<int>(histogram.size()) == k,
                 "histogram has size " << histogram.size() << ", expected k="
                                       << k);
    // The reports of the histogram[u] users holding u are jointly
    // Multinomial(histogram[u], (q, ..., p, ..., q)); sample it exactly as a
    // Binomial(truthful) draw followed by a uniform binomial chain over the
    // k - 1 lies, preserving sum(counts) == n.
    long long total = 0;
    for (int u = 0; u < k; ++u) {
      const long long group = histogram[u];
      LDPR_REQUIRE(group >= 0, "histogram cells must be non-negative");
      if (group == 0) continue;
      total += group;
      const long long truthful = rng.Binomial64(group, oracle_.p());
      counts_[u] += truthful;
      long long lies = group - truthful;
      int cells_left = k - 1;
      for (int v = 0; v < k && lies > 0; ++v) {
        if (v == u) continue;
        const long long x =
            cells_left == 1 ? lies : rng.Binomial64(lies, 1.0 / cells_left);
        counts_[v] += x;
        lies -= x;
        --cells_left;
      }
    }
    n_ += total;
  }
};

}  // namespace

std::unique_ptr<Aggregator> Grr::MakeAggregator() const {
  return std::make_unique<GrrAggregator>(*this);
}

}  // namespace ldpr::fo
