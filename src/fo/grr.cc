#include "fo/grr.h"

#include <cmath>

#include "core/check.h"

namespace ldpr::fo {

Grr::Grr(int k, double epsilon) : FrequencyOracle(k, epsilon) {
  const double e = std::exp(epsilon);
  SetProbabilities(e / (e + k - 1), 1.0 / (e + k - 1));
}

int Grr::Perturb(int value, int k, double eps, Rng& rng) {
  LDPR_REQUIRE(k >= 2 && eps > 0.0, "GRR perturb requires k >= 2, eps > 0");
  LDPR_REQUIRE(value >= 0 && value < k,
               "value " << value << " outside [0, " << k << ")");
  const double e = std::exp(eps);
  const double p = e / (e + k - 1);
  if (rng.Bernoulli(p)) return value;
  // Uniform over the k-1 other values.
  int other = static_cast<int>(rng.UniformInt(k - 1));
  return other >= value ? other + 1 : other;
}

Report Grr::Randomize(int value, Rng& rng) const {
  Report r;
  r.value = Perturb(value, k(), epsilon(), rng);
  return r;
}

void Grr::AccumulateSupport(const Report& report,
                            std::vector<long long>* counts) const {
  LDPR_REQUIRE(report.value >= 0 && report.value < k(),
               "GRR report value out of range");
  ++(*counts)[report.value];
}

int Grr::AttackPredict(const Report& report, Rng& /*rng*/) const {
  // The reported value is the single most likely true value (prob. p > q).
  return report.value;
}

}  // namespace ldpr::fo
