#ifndef LDPR_FO_GRR_H_
#define LDPR_FO_GRR_H_

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Generalized Randomized Response (Kairouz et al.; Section 2.2.1).
///
/// Reports the true value with p = e^eps / (e^eps + k - 1) and any other
/// fixed value with q = 1 / (e^eps + k - 1). No encoding is used, so the
/// single-report adversary simply takes the report at face value, giving
/// expected accuracy p — the weakest plausible deniability of the five
/// protocols for small k.
class Grr : public FrequencyOracle {
 public:
  Grr(int k, double epsilon);

  Report Randomize(int value, Rng& rng) const override;
  void AccumulateSupport(const Report& report,
                         std::vector<long long>* counts) const override;
  int AttackPredict(const Report& report, Rng& rng) const override;
  Protocol protocol() const override { return Protocol::kGrr; }

  /// Fused tally aggregator; its histogram path draws the report counts as
  /// one sum-preserving multinomial per true-value group (jointly exact).
  std::unique_ptr<Aggregator> MakeAggregator() const override;

  /// Perturbs `value` in an arbitrary domain of size `k` with budget `eps`
  /// (used by the RS+FD / RS+RFD client, which runs GRR at the amplified
  /// budget on a per-attribute domain).
  static int Perturb(int value, int k, double eps, Rng& rng);
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_GRR_H_
