#include "fo/metric_ldp.h"

#include <cmath>

#include "core/check.h"
#include "core/histogram.h"

namespace ldpr::fo {

namespace {

/// Inverts a dense k x k matrix (row-major) by Gauss-Jordan elimination with
/// partial pivoting. The metric-LDP transition matrix is strictly diagonally
/// dominant after normalization for every eps > 0, so this is well-posed at
/// the domain sizes the library targets (k up to a few hundred).
std::vector<double> InvertMatrix(std::vector<double> a, int k) {
  std::vector<double> inv(static_cast<std::size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) inv[i * k + i] = 1.0;

  for (int col = 0; col < k; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int r = col + 1; r < k; ++r) {
      if (std::abs(a[r * k + col]) > std::abs(a[pivot * k + col])) pivot = r;
    }
    LDPR_CHECK(std::abs(a[pivot * k + col]) > 1e-12,
               "transition matrix is numerically singular");
    if (pivot != col) {
      for (int c = 0; c < k; ++c) {
        std::swap(a[pivot * k + c], a[col * k + c]);
        std::swap(inv[pivot * k + c], inv[col * k + c]);
      }
    }
    const double diag = a[col * k + col];
    for (int c = 0; c < k; ++c) {
      a[col * k + c] /= diag;
      inv[col * k + c] /= diag;
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = a[r * k + col];
      if (factor == 0.0) continue;
      for (int c = 0; c < k; ++c) {
        a[r * k + c] -= factor * a[col * k + c];
        inv[r * k + c] -= factor * inv[col * k + c];
      }
    }
  }
  return inv;
}

}  // namespace

MetricLdp::MetricLdp(int k, double epsilon) : k_(k), epsilon_(epsilon) {
  LDPR_REQUIRE(k >= 2, "MetricLdp requires k >= 2, got " << k);
  LDPR_REQUIRE(epsilon > 0.0, "MetricLdp requires epsilon > 0");

  transition_.resize(static_cast<std::size_t>(k_) * k_);
  row_cdf_.resize(static_cast<std::size_t>(k_) * k_);
  for (int x = 0; x < k_; ++x) {
    double z = 0.0;
    for (int y = 0; y < k_; ++y) {
      z += std::exp(-epsilon_ * std::abs(x - y) / 2.0);
    }
    double acc = 0.0;
    for (int y = 0; y < k_; ++y) {
      const double p = std::exp(-epsilon_ * std::abs(x - y) / 2.0) / z;
      transition_[x * k_ + y] = p;
      acc += p;
      row_cdf_[x * k_ + y] = acc;
    }
    row_cdf_[x * k_ + (k_ - 1)] = 1.0;  // absorb rounding
  }
  inverse_ = InvertMatrix(transition_, k_);
}

double MetricLdp::TransitionProbability(int x, int y) const {
  LDPR_REQUIRE(x >= 0 && x < k_ && y >= 0 && y < k_, "value out of range");
  return transition_[x * k_ + y];
}

int MetricLdp::Randomize(int value, Rng& rng) const {
  LDPR_REQUIRE(value >= 0 && value < k_, "value out of range");
  const double u = rng.UniformReal();
  const double* cdf = &row_cdf_[static_cast<std::size_t>(value) * k_];
  // Binary search the row CDF.
  int lo = 0, hi = k_ - 1;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<double> MetricLdp::EstimateFrequencies(
    const std::vector<int>& reports_hist, long long n) const {
  LDPR_REQUIRE(static_cast<int>(reports_hist.size()) == k_,
               "histogram must have k bins");
  LDPR_REQUIRE(n >= 1, "requires n >= 1");
  // Observed distribution o = f * T (row vector times matrix), so the
  // unbiased estimate is fhat = o * T^{-1}.
  std::vector<double> observed(k_);
  for (int y = 0; y < k_; ++y) {
    observed[y] = static_cast<double>(reports_hist[y]) / n;
  }
  std::vector<double> est(k_, 0.0);
  for (int v = 0; v < k_; ++v) {
    double acc = 0.0;
    for (int y = 0; y < k_; ++y) {
      acc += observed[y] * inverse_[y * k_ + v];
    }
    est[v] = acc;
  }
  return est;
}

std::vector<double> MetricLdp::EstimateFrequencies(
    const std::vector<int>& values, Rng& rng) const {
  LDPR_REQUIRE(!values.empty(), "requires at least one value");
  std::vector<int> hist(k_, 0);
  for (int v : values) ++hist[Randomize(v, rng)];
  return EstimateFrequencies(hist, static_cast<long long>(values.size()));
}

double MetricLdp::ExpectedAttackAcc() const {
  double acc = 0.0;
  for (int x = 0; x < k_; ++x) acc += transition_[x * k_ + x];
  return acc / k_;
}

double MetricLdp::ExpectedAttackDistance() const {
  double acc = 0.0;
  for (int x = 0; x < k_; ++x) {
    for (int y = 0; y < k_; ++y) {
      acc += transition_[x * k_ + y] * std::abs(x - y);
    }
  }
  return acc / k_;
}

}  // namespace ldpr::fo
