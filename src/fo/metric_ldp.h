#ifndef LDPR_FO_METRIC_LDP_H_
#define LDPR_FO_METRIC_LDP_H_

#include <vector>

#include "core/rng.h"
#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Metric-LDP (d-privacy) randomizer over an *ordinal* domain — the paper's
/// stated future-work direction (Section 8, citing Alvim et al. 2018 and
/// Chatzikokolakis et al. 2013).
///
/// The mechanism is the truncated geometric / exponential mechanism with the
/// absolute-value metric:
///   Pr[y | x] proportional to exp(-eps * |x - y| / 2),
/// which satisfies eps*d(x1,x2)-privacy: outputs are strongly protected
/// between *similar* values and only weakly between distant ones. This is a
/// different trade-off from eps-LDP, and — as the paper anticipates — it
/// changes the attack surface: the adversary's best guess (the reported
/// value) is right with much higher probability than under GRR at the same
/// nominal eps, but the *error* it makes is small in the metric.
class MetricLdp {
 public:
  /// Domain {0, ..., k-1} with metric |x - y|; eps > 0 is the per-unit
  /// distance budget.
  MetricLdp(int k, double epsilon);

  /// Client side: sanitizes one ordinal value.
  int Randomize(int value, Rng& rng) const;

  /// Pr[y | x] of the mechanism (exposed for tests and the estimator).
  double TransitionProbability(int x, int y) const;

  /// Server side: unbiased frequency estimation by inverting the k x k
  /// transition matrix (solved once at construction; requires the matrix to
  /// be invertible, which holds for every eps > 0).
  std::vector<double> EstimateFrequencies(const std::vector<int>& reports_hist,
                                          long long n) const;

  /// Convenience: randomize all values, histogram, estimate.
  std::vector<double> EstimateFrequencies(const std::vector<int>& values,
                                          Rng& rng) const;

  /// Single-report adversary: the mode of Pr[. | x] is x itself, so the
  /// best guess is the reported value (plausible deniability reduces to the
  /// probability mass the mechanism keeps at distance 0).
  int AttackPredict(int report) const { return report; }

  /// Expected single-report attacker accuracy under a uniform input:
  /// the average over x of Pr[y = x | x].
  double ExpectedAttackAcc() const;

  /// Expected *metric* attack error E|x - y| under a uniform input — the
  /// quantity metric-LDP actually controls.
  double ExpectedAttackDistance() const;

  int k() const { return k_; }
  double epsilon() const { return epsilon_; }

 private:
  int k_;
  double epsilon_;
  /// Row-major k x k transition matrix T[x][y] = Pr[y | x].
  std::vector<double> transition_;
  /// Inverse of the transition matrix (row-major), for unbiased estimation.
  std::vector<double> inverse_;
  /// Per-row alias samplers are overkill; rows are sampled by CDF walk.
  std::vector<double> row_cdf_;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_METRIC_LDP_H_
