#include "fo/olh.h"

#include <cmath>

#include "core/check.h"
#include "core/hash.h"

namespace ldpr::fo {

Olh::Olh(int k, double epsilon)
    : Olh(k, epsilon,
          std::max(2, static_cast<int>(std::lround(std::exp(epsilon))) + 1)) {
}

Olh::Olh(int k, double epsilon, int g) : FrequencyOracle(k, epsilon) {
  LDPR_REQUIRE(g >= 2, "local hashing needs g >= 2, got " << g);
  const double e = std::exp(epsilon);
  g_ = g;
  p_prime_ = e / (e + g_ - 1);
  // Overall support probabilities (Wang et al. 2017):
  //   p = p',   q = (1/g) p' + (1 - 1/g) q' = 1/g.
  SetProbabilities(p_prime_, 1.0 / g_);
}

Report Olh::Randomize(int value, Rng& rng) const {
  LDPR_REQUIRE(value >= 0 && value < k(), "OLH value out of range");
  Report r;
  r.hash_seed = rng();
  UniversalHash h(r.hash_seed, g_);
  const int hashed = h(value);
  // GRR inside the reduced domain [g].
  if (rng.Bernoulli(p_prime_)) {
    r.value = hashed;
  } else {
    int other = static_cast<int>(rng.UniformInt(g_ - 1));
    r.value = other >= hashed ? other + 1 : other;
  }
  return r;
}

void Olh::AccumulateSupport(const Report& report,
                            std::vector<long long>* counts) const {
  LDPR_REQUIRE(report.value >= 0 && report.value < g_,
               "OLH report value out of range");
  UniversalHash h(report.hash_seed, g_);
  for (int v = 0; v < k(); ++v) {
    if (h(v) == report.value) ++(*counts)[v];
  }
}

namespace {

class OlhAggregator : public Aggregator {
 public:
  explicit OlhAggregator(const Olh& oracle) : Aggregator(oracle) {}

  void AccumulateValue(int value, Rng& rng) override {
    const Olh& olh = static_cast<const Olh&>(oracle_);
    const int k = olh.k();
    const int g = olh.g();
    LDPR_REQUIRE(value >= 0 && value < k, "OLH value out of range");
    // Same draws as Olh::Randomize, with the server-side preimage walk
    // fused in.
    const std::uint64_t seed = rng();
    UniversalHash h(seed, g);
    const int hashed = h(value);
    int reported;
    if (rng.Bernoulli(olh.p_prime())) {
      reported = hashed;
    } else {
      int other = static_cast<int>(rng.UniformInt(g - 1));
      reported = other >= hashed ? other + 1 : other;
    }
    for (int v = 0; v < k; ++v) {
      if (h(v) == reported) ++counts_[v];
    }
    ++n_;
  }
};

}  // namespace

std::unique_ptr<Aggregator> Olh::MakeAggregator() const {
  return std::make_unique<OlhAggregator>(*this);
}

int Olh::AttackPredict(const Report& report, Rng& rng) const {
  // The most likely true values are those hashing to the reported cell;
  // pick one uniformly. An empty preimage carries no information, so fall
  // back to a uniform guess over the whole domain.
  UniversalHash h(report.hash_seed, g_);
  std::vector<int> preimage;
  for (int v = 0; v < k(); ++v) {
    if (h(v) == report.value) preimage.push_back(v);
  }
  if (preimage.empty()) return static_cast<int>(rng.UniformInt(k()));
  return preimage[rng.UniformInt(preimage.size())];
}

}  // namespace ldpr::fo
