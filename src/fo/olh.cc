#include "fo/olh.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/check.h"
#include "core/hash.h"
#include "fo/bitslice.h"
#include "fo/wire.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define LDPR_OLH_SIMD 1
#include <immintrin.h>
#endif

namespace ldpr::fo {

Olh::Olh(int k, double epsilon)
    : Olh(k, epsilon,
          std::max(2, static_cast<int>(std::lround(std::exp(epsilon))) + 1)) {
}

Olh::Olh(int k, double epsilon, int g) : FrequencyOracle(k, epsilon) {
  LDPR_REQUIRE(g >= 2, "local hashing needs g >= 2, got " << g);
  const double e = std::exp(epsilon);
  g_ = g;
  p_prime_ = e / (e + g_ - 1);
  // Overall support probabilities (Wang et al. 2017):
  //   p = p',   q = (1/g) p' + (1 - 1/g) q' = 1/g.
  SetProbabilities(p_prime_, 1.0 / g_);
}

Report Olh::Randomize(int value, Rng& rng) const {
  LDPR_REQUIRE(value >= 0 && value < k(), "OLH value out of range");
  Report r;
  r.hash_seed = rng();
  UniversalHash h(r.hash_seed, g_);
  const int hashed = h(value);
  // GRR inside the reduced domain [g].
  if (rng.Bernoulli(p_prime_)) {
    r.value = hashed;
  } else {
    int other = static_cast<int>(rng.UniformInt(g_ - 1));
    r.value = other >= hashed ? other + 1 : other;
  }
  return r;
}

void Olh::AccumulateSupport(const Report& report,
                            std::vector<long long>* counts) const {
  LDPR_REQUIRE(report.value >= 0 && report.value < g_,
               "OLH report value out of range");
  UniversalHash h(report.hash_seed, g_);
  for (int v = 0; v < k(); ++v) {
    if (h(v) == report.value) ++(*counts)[v];
  }
}

namespace {

// ---------------------------------------------------------------------------
// Batched preimage-count kernels: for one candidate value's hash mix, count
// the staged reports r with XxHash64Len8Finish(preseed[r], mix) % g ==
// reported[r]. The modulo is the exact multiplicative divisibility test of
// fo/bitslice.h: h % g == val  <=>  h >= val and g | (h - val). Three
// implementations — portable scalar, AVX2, AVX-512DQ — selected once at
// runtime; all three are pinned bit-identical to the scalar UniversalHash
// walk by fo_bitslice_exact_test.
// ---------------------------------------------------------------------------

long long CountMatchesScalar(const std::uint64_t* preseed,
                             const std::uint64_t* reported, int count,
                             std::uint64_t mix,
                             const bitslice::DivisibilityCheck& div) {
  long long hits = 0;
  for (int r = 0; r < count; ++r) {
    const std::uint64_t h = XxHash64Len8Finish(preseed[r], mix);
    const std::uint64_t val = reported[r];
    hits += static_cast<long long>(h >= val && div.IsDivisible(h - val));
  }
  return hits;
}

void SweepValuesScalar(const std::uint64_t* preseed,
                       const std::uint64_t* reported, int count,
                       const std::uint64_t* mixes, int k,
                       const bitslice::DivisibilityCheck& div,
                       long long* counts) {
  for (int v = 0; v < k; ++v) {
    counts[v] += CountMatchesScalar(preseed, reported, count, mixes[v], div);
  }
}

#if LDPR_OLH_SIMD

// GCC 12's AVX-512 intrinsic headers trip -Wmaybe-uninitialized false
// positives when expanded at -O3 (mask-load/undefined-vector plumbing);
// the kernels below are pure register code with no memory writes.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

using hash_detail::kXxPrime1;
using hash_detail::kXxPrime2;
using hash_detail::kXxPrime3;
using hash_detail::kXxPrime4;

// 64-bit lane-wise multiply by a constant on AVX2 (no vpmullq there):
// schoolbook 32x32 cross products. `b` holds the constant, `b_hi` its high
// halves pre-shifted.
__attribute__((target("avx2"), always_inline)) inline __m256i Mul64Const(
    __m256i a, __m256i b, __m256i b_hi) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, b_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

// Whether d is a power of two, in which case h % d == val is just a mask
// compare — the SIMD sweeps drop the multiplicative test's multiply+rotate
// (and g = round(e^eps) + 1 lands on a power of two for common budgets,
// e.g. g = 4 at eps = 1). Both tests compute exactly h % d == val, so the
// choice cannot change any count.
inline bool IsPow2(std::uint64_t d) { return (d & (d - 1)) == 0; }

__attribute__((target("avx2"))) void SweepValuesAvx2(
    const std::uint64_t* preseed, const std::uint64_t* reported, int count,
    const std::uint64_t* mixes, int k, std::uint64_t g,
    const bitslice::DivisibilityCheck& div, long long* counts) {
#define LDPR_CONST64(name, value)                                   \
  const __m256i name = _mm256_set1_epi64x(                          \
      static_cast<long long>(value));                               \
  const __m256i name##_hi =                                         \
      _mm256_set1_epi64x(static_cast<long long>((value) >> 32))
  LDPR_CONST64(p1, kXxPrime1);
  LDPR_CONST64(p2, kXxPrime2);
  LDPR_CONST64(p3, kXxPrime3);
  LDPR_CONST64(inv, div.inverse);
#undef LDPR_CONST64
  const __m256i p4 = _mm256_set1_epi64x(static_cast<long long>(kXxPrime4));
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  const __m256i limit_biased =
      _mm256_set1_epi64x(static_cast<long long>(div.limit ^
                                                0x8000000000000000ULL));
  const __m128i rsh = _mm_cvtsi32_si128(div.shift);
  const __m128i lsh = _mm_cvtsi32_si128(64 - div.shift);  // psllq(64) == 0
  const __m256i gmask = _mm256_set1_epi64x(static_cast<long long>(g - 1));
  const __m256i minus_one = _mm256_set1_epi64x(-1);
  const bool pow2 = IsPow2(g);
  for (int v = 0; v < k; ++v) {
    const std::uint64_t mix = mixes[v];
    const __m256i vmix = _mm256_set1_epi64x(static_cast<long long>(mix));
    __m256i acc = _mm256_setzero_si256();
    int r = 0;
    for (; r + 4 <= count; r += 4) {
      __m256i h = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(preseed + r));
      h = _mm256_xor_si256(h, vmix);
      h = _mm256_or_si256(_mm256_slli_epi64(h, 27),
                          _mm256_srli_epi64(h, 37));
      h = _mm256_add_epi64(Mul64Const(h, p1, p1_hi), p4);
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
      h = Mul64Const(h, p2, p2_hi);
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
      h = Mul64Const(h, p3, p3_hi);
      h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
      const __m256i val = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(reported + r));
      __m256i bad;
      if (pow2) {
        // h % g == val  <=>  (h & (g-1)) == val
        bad = _mm256_andnot_si256(
            _mm256_cmpeq_epi64(_mm256_and_si256(h, gmask), val), minus_one);
      } else {
        __m256i q = Mul64Const(_mm256_sub_epi64(h, val), inv, inv_hi);
        q = _mm256_or_si256(_mm256_srl_epi64(q, rsh),
                            _mm256_sll_epi64(q, lsh));
        // Unsigned comparisons via sign-bias: reject when rotated quotient
        // exceeds the divisibility limit or h < val (wrapped difference).
        bad = _mm256_or_si256(
            _mm256_cmpgt_epi64(_mm256_xor_si256(q, sign), limit_biased),
            _mm256_cmpgt_epi64(_mm256_xor_si256(val, sign),
                               _mm256_xor_si256(h, sign)));
      }
      acc = _mm256_sub_epi64(acc, _mm256_andnot_si256(bad, minus_one));
    }
    alignas(32) long long lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    counts[v] += lanes[0] + lanes[1] + lanes[2] + lanes[3] +
                 CountMatchesScalar(preseed + r, reported + r, count - r, mix,
                                    div);
  }
}

__attribute__((target("avx512f,avx512dq"))) void SweepValuesAvx512(
    const std::uint64_t* preseed, const std::uint64_t* reported, int count,
    const std::uint64_t* mixes, int k, std::uint64_t g,
    const bitslice::DivisibilityCheck& div, long long* counts) {
  const __m512i p1 = _mm512_set1_epi64(static_cast<long long>(kXxPrime1));
  const __m512i p2 = _mm512_set1_epi64(static_cast<long long>(kXxPrime2));
  const __m512i p3 = _mm512_set1_epi64(static_cast<long long>(kXxPrime3));
  const __m512i p4 = _mm512_set1_epi64(static_cast<long long>(kXxPrime4));
  const __m512i inv = _mm512_set1_epi64(static_cast<long long>(div.inverse));
  const __m512i limit = _mm512_set1_epi64(static_cast<long long>(div.limit));
  const __m512i shift = _mm512_set1_epi64(div.shift);
  const __m512i gmask = _mm512_set1_epi64(static_cast<long long>(g - 1));
  const __m512i one = _mm512_set1_epi64(1);
  const bool pow2 = IsPow2(g);
  for (int v = 0; v < k; ++v) {
    const std::uint64_t mix = mixes[v];
    const __m512i vmix = _mm512_set1_epi64(static_cast<long long>(mix));
    // Two independent accumulator chains: one iteration's ~30-cycle
    // multiply chain would otherwise cap throughput well below the port
    // limit.
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    int r = 0;
    for (; r + 16 <= count; r += 16) {
      __m512i h0 = _mm512_loadu_si512(preseed + r);
      __m512i h1 = _mm512_loadu_si512(preseed + r + 8);
      h0 = _mm512_xor_si512(h0, vmix);
      h1 = _mm512_xor_si512(h1, vmix);
      h0 = _mm512_rol_epi64(h0, 27);
      h1 = _mm512_rol_epi64(h1, 27);
      h0 = _mm512_add_epi64(_mm512_mullo_epi64(h0, p1), p4);
      h1 = _mm512_add_epi64(_mm512_mullo_epi64(h1, p1), p4);
      h0 = _mm512_xor_si512(h0, _mm512_srli_epi64(h0, 33));
      h1 = _mm512_xor_si512(h1, _mm512_srli_epi64(h1, 33));
      h0 = _mm512_mullo_epi64(h0, p2);
      h1 = _mm512_mullo_epi64(h1, p2);
      h0 = _mm512_xor_si512(h0, _mm512_srli_epi64(h0, 29));
      h1 = _mm512_xor_si512(h1, _mm512_srli_epi64(h1, 29));
      h0 = _mm512_mullo_epi64(h0, p3);
      h1 = _mm512_mullo_epi64(h1, p3);
      h0 = _mm512_xor_si512(h0, _mm512_srli_epi64(h0, 32));
      h1 = _mm512_xor_si512(h1, _mm512_srli_epi64(h1, 32));
      const __m512i val0 = _mm512_loadu_si512(reported + r);
      const __m512i val1 = _mm512_loadu_si512(reported + r + 8);
      __mmask8 ok0, ok1;
      if (pow2) {
        ok0 = _mm512_cmpeq_epu64_mask(_mm512_and_si512(h0, gmask), val0);
        ok1 = _mm512_cmpeq_epu64_mask(_mm512_and_si512(h1, gmask), val1);
      } else {
        __m512i q0 = _mm512_mullo_epi64(_mm512_sub_epi64(h0, val0), inv);
        __m512i q1 = _mm512_mullo_epi64(_mm512_sub_epi64(h1, val1), inv);
        q0 = _mm512_rorv_epi64(q0, shift);
        q1 = _mm512_rorv_epi64(q1, shift);
        ok0 = _mm512_cmple_epu64_mask(q0, limit) &
              _mm512_cmpge_epu64_mask(h0, val0);
        ok1 = _mm512_cmple_epu64_mask(q1, limit) &
              _mm512_cmpge_epu64_mask(h1, val1);
      }
      acc0 = _mm512_mask_add_epi64(acc0, ok0, acc0, one);
      acc1 = _mm512_mask_add_epi64(acc1, ok1, acc1, one);
    }
    for (; r + 8 <= count; r += 8) {
      __m512i h = _mm512_loadu_si512(preseed + r);
      h = _mm512_xor_si512(h, vmix);
      h = _mm512_rol_epi64(h, 27);
      h = _mm512_add_epi64(_mm512_mullo_epi64(h, p1), p4);
      h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
      h = _mm512_mullo_epi64(h, p2);
      h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
      h = _mm512_mullo_epi64(h, p3);
      h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 32));
      const __m512i val = _mm512_loadu_si512(reported + r);
      __m512i q = _mm512_mullo_epi64(_mm512_sub_epi64(h, val), inv);
      q = _mm512_rorv_epi64(q, shift);
      const __mmask8 ok = _mm512_cmple_epu64_mask(q, limit) &
                          _mm512_cmpge_epu64_mask(h, val);
      acc0 = _mm512_mask_add_epi64(acc0, ok, acc0, one);
    }
    counts[v] += _mm512_reduce_add_epi64(acc0) +
                 _mm512_reduce_add_epi64(acc1) +
                 CountMatchesScalar(preseed + r, reported + r, count - r, mix,
                                    div);
  }
}

#pragma GCC diagnostic pop

#endif  // LDPR_OLH_SIMD

enum class OlhKernel { kScalar, kAvx2, kAvx512 };

/// Picks the widest kernel the CPU supports, once per aggregator. The
/// LDPR_OLH_KERNEL env var ("scalar" | "avx2" | "avx512") forces a
/// supported tier — the differential tests use it to pin every
/// implementation, not just the auto-dispatched one.
OlhKernel DetectOlhKernel() {
#if LDPR_OLH_SIMD
  const bool has_avx512 = __builtin_cpu_supports("avx512dq") != 0;
  const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (const char* force = std::getenv("LDPR_OLH_KERNEL")) {
    const std::string_view f(force);
    if (f == "scalar") return OlhKernel::kScalar;
    if (f == "avx2" && has_avx2) return OlhKernel::kAvx2;
    if (f == "avx512" && has_avx512) return OlhKernel::kAvx512;
  }
  if (has_avx512) return OlhKernel::kAvx512;
  if (has_avx2) return OlhKernel::kAvx2;
#endif
  return OlhKernel::kScalar;
}

void SweepValues(OlhKernel kernel, const std::uint64_t* preseed,
                 const std::uint64_t* reported, int count,
                 const std::uint64_t* mixes, int k, std::uint64_t g,
                 const bitslice::DivisibilityCheck& div, long long* counts) {
  switch (kernel) {
#if LDPR_OLH_SIMD
    case OlhKernel::kAvx512:
      SweepValuesAvx512(preseed, reported, count, mixes, k, g, div, counts);
      return;
    case OlhKernel::kAvx2:
      SweepValuesAvx2(preseed, reported, count, mixes, k, g, div, counts);
      return;
#endif
    default:
      SweepValuesScalar(preseed, reported, count, mixes, k, div, counts);
      return;
  }
}

class OlhAggregator : public Aggregator {
 public:
  explicit OlhAggregator(const Olh& oracle) : Aggregator(oracle) {}

  void Accumulate(const Report& report) override {
    // Stage the (seed, hashed value) pair as its SerializeReport image —
    // seed big-endian, value MSB-first with zero padding — so the k-hash
    // preimage walk runs through the batched SweepValues kernel at flush
    // instead of one UniversalHash evaluation per (report, value) here.
    const Olh& olh = static_cast<const Olh&>(oracle_);
    const int g = olh.g();
    LDPR_REQUIRE(report.value >= 0 && report.value < g,
                 "OLH hashed value out of range");
    const int width = CeilLog2(g);
    const std::size_t frame_bytes =
        static_cast<std::size_t>((64 + width + 7) / 8);
    std::uint8_t* row = StageRowSlot(bitslice::RowStride(frame_bytes));
    const std::uint64_t seed_be = __builtin_bswap64(report.hash_seed);
    std::memcpy(row, &seed_be, sizeof(seed_be));
    const int vbytes = (width + 7) / 8;
    const std::uint64_t v = static_cast<std::uint64_t>(report.value)
                            << (vbytes * 8 - width);
    for (int b = 0; b < vbytes; ++b) {
      row[8 + b] = static_cast<std::uint8_t>(v >> (8 * (vbytes - 1 - b)));
    }
    CommitStagedRow();
  }

  void AccumulateValue(int value, Rng& rng) override {
    const Olh& olh = static_cast<const Olh&>(oracle_);
    const int k = olh.k();
    const int g = olh.g();
    LDPR_REQUIRE(value >= 0 && value < k, "OLH value out of range");
    // Same draws as Olh::Randomize, with the server-side preimage walk
    // fused in.
    const std::uint64_t seed = rng();
    UniversalHash h(seed, g);
    const int hashed = h(value);
    int reported;
    if (rng.Bernoulli(olh.p_prime())) {
      reported = hashed;
    } else {
      int other = static_cast<int>(rng.UniformInt(g - 1));
      reported = other >= hashed ? other + 1 : other;
    }
    for (int v = 0; v < k; ++v) {
      if (h(v) == reported) ++counts_[v];
    }
    ++n_;
  }

  void AccumulateWireBlock(const std::uint8_t* frames, std::size_t stride,
                           int count) override {
    // Batched preimage walk. Per block: decode every frame's 64-bit seed
    // and hashed value once, then sweep candidate values in the outer loop
    // so the input-only half of the hash (XxHash64Len8Mix, one multiply and
    // rotate per candidate) is computed once per value instead of once per
    // (report, value); the value sweep runs inside the dispatched
    // SweepValues kernel with all constants hoisted out of the loops.
    // Identical support counts to the scalar UniversalHash walk
    // (the decomposition is pinned by core_hash_test, the kernels by
    // fo_bitslice_exact_test).
    const Olh& olh = static_cast<const Olh&>(oracle_);
    const int k = olh.k();
    if (value_mix_.empty()) {
      value_mix_.resize(k);
      for (int v = 0; v < k; ++v) {
        value_mix_[v] = XxHash64Len8Mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(v)));
      }
      divisible_ = bitslice::DivisibilityCheck::For(
          static_cast<std::uint64_t>(olh.g()));
      value_width_ = CeilLog2(olh.g());
    }
    preseed_.resize(count);
    reported_.resize(count);
    const std::uint8_t* row = frames;
    for (int r = 0; r < count; ++r, row += stride) {
      preseed_[r] = XxHash64Len8Preseed(bitslice::Load64Be(row));
      reported_[r] = bitslice::ExtractBits(row, 64, value_width_);
    }
    SweepValues(kernel_, preseed_.data(), reported_.data(), count,
                value_mix_.data(), k, static_cast<std::uint64_t>(olh.g()),
                divisible_, counts_.data());
    n_ += count;
  }

 private:
  const OlhKernel kernel_ = DetectOlhKernel();
  std::vector<std::uint64_t> value_mix_;  ///< per-value input-only hash half
  std::vector<std::uint64_t> preseed_;    ///< block scratch: biased seeds
  std::vector<std::uint64_t> reported_;   ///< block scratch: hashed values
  bitslice::DivisibilityCheck divisible_;
  int value_width_ = 0;
};

}  // namespace

std::unique_ptr<Aggregator> Olh::MakeAggregator() const {
  return std::make_unique<OlhAggregator>(*this);
}

int Olh::AttackPredict(const Report& report, Rng& rng) const {
  // The most likely true values are those hashing to the reported cell;
  // pick one uniformly. An empty preimage carries no information, so fall
  // back to a uniform guess over the whole domain.
  UniversalHash h(report.hash_seed, g_);
  std::vector<int> preimage;
  for (int v = 0; v < k(); ++v) {
    if (h(v) == report.value) preimage.push_back(v);
  }
  if (preimage.empty()) return static_cast<int>(rng.UniformInt(k()));
  return preimage[rng.UniformInt(preimage.size())];
}

}  // namespace ldpr::fo
