#ifndef LDPR_FO_OLH_H_
#define LDPR_FO_OLH_H_

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Optimal Local Hashing (Wang et al. 2017; Section 2.2.2).
///
/// Each user draws a hash function H from a universal family mapping [k] to
/// the reduced domain [g], g = round(e^eps) + 1, then runs GRR on H(v) in
/// [g] and reports <H, GRR(H(v))>. Server-side, a value v is supported when
/// H(v) equals the reported hashed value; the estimator uses p = p' and
/// q = 1/g.
///
/// For the adversary, the report only narrows the value down to the hash
/// preimage of the reported cell, giving expected accuracy about
/// 1 / (2 max(k/(e^eps + 1), 1)) — one of the two most attack-resistant
/// protocols in the paper.
class Olh : public FrequencyOracle {
 public:
  /// Optimal local hashing: g = round(e^eps) + 1 (at least 2).
  Olh(int k, double epsilon);

  /// General local hashing with a caller-chosen reduced domain size g >= 2
  /// (Wang et al.'s LH family; g = 2 is binary local hashing, g = e^eps + 1
  /// minimizes the estimator variance). Used by the g-sweep ablation.
  Olh(int k, double epsilon, int g);

  Report Randomize(int value, Rng& rng) const override;
  void AccumulateSupport(const Report& report,
                         std::vector<long long>* counts) const override;
  int AttackPredict(const Report& report, Rng& rng) const override;
  Protocol protocol() const override { return Protocol::kOlh; }

  /// Fused hashed-support counting: randomizes in the reduced domain and
  /// walks the hash preimage straight into the counts, no Report in between.
  std::unique_ptr<Aggregator> MakeAggregator() const override;

  /// The reduced domain size g = round(e^eps) + 1 (at least 2).
  int g() const { return g_; }
  /// GRR probability inside the reduced domain, p' = e^eps/(e^eps + g - 1).
  double p_prime() const { return p_prime_; }

 private:
  int g_;
  double p_prime_;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_OLH_H_
