#include "fo/ss.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "fo/bitslice.h"
#include "fo/wire.h"

namespace ldpr::fo {

Ss::Ss(int k, double epsilon) : FrequencyOracle(k, epsilon) {
  const double e = std::exp(epsilon);
  omega_ = std::clamp(static_cast<int>(std::lround(k / (e + 1.0))), 1, k - 1);
  const double w = omega_;
  const double denom = w * e + k - w;
  const double p = w * e / denom;
  const double q = (w * e * (w - 1.0) + (k - w) * w) / ((k - 1.0) * denom);
  SetProbabilities(p, q);
}

namespace {

class SsAggregator : public Aggregator {
 public:
  explicit SsAggregator(const Ss& oracle)
      : Aggregator(oracle),
        width_(CeilLog2(oracle.k())),
        frame_bytes_(
            static_cast<std::size_t>((oracle.omega() * width_ + 7) / 8)),
        table_(oracle.omega(), width_) {}

  void AccumulateValue(int value, Rng& rng) override {
    const Ss& ss = static_cast<const Ss&>(oracle_);
    const int k = ss.k();
    LDPR_REQUIRE(value >= 0 && value < k, "SS value out of range");
    // Same draws as Ss::Randomize (the sort there consumes no randomness).
    const bool include_true = rng.Bernoulli(ss.p());
    const int extra = include_true ? ss.omega() - 1 : ss.omega();
    rng.SampleWithoutReplacementInto(k - 1, extra, &scratch_);
    if (include_true) ++counts_[value];
    for (int i = 0; i < extra; ++i) {
      const int o = scratch_[i];
      ++counts_[o >= value ? o + 1 : o];
    }
    ++n_;
  }

  void Accumulate(const Report& report) override {
    // Stage the subset as its SerializeReport image (width-bit fields packed
    // MSB-first, zero padding) and defer the tallies to the block kernel.
    // Same preconditions as Ss::AccumulateSupport; within a row fields need
    // not be sorted — the kernel tallies them positionally, like the scalar
    // support walk.
    const Ss& ss = static_cast<const Ss&>(oracle_);
    const int k = ss.k();
    const int omega = ss.omega();
    LDPR_REQUIRE(static_cast<int>(report.subset.size()) == omega,
                 "SS report subset size " << report.subset.size()
                                          << " != omega " << omega);
    std::uint8_t* row = StageRowSlot(bitslice::RowStride(frame_bytes_));
    std::uint64_t acc = 0;
    int acc_bits = 0;  // stays <= 7 + width, so acc never overflows
    std::size_t out = 0;
    for (int i = 0; i < omega; ++i) {
      const int v = report.subset[i];
      LDPR_REQUIRE(v >= 0 && v < k, "SS subset value out of range");
      acc = (acc << width_) | static_cast<std::uint64_t>(v);
      acc_bits += width_;
      while (acc_bits >= 8) {
        acc_bits -= 8;
        row[out++] = static_cast<std::uint8_t>((acc >> acc_bits) & 0xFF);
      }
    }
    if (acc_bits > 0) {
      row[out] = static_cast<std::uint8_t>((acc << (8 - acc_bits)) & 0xFF);
    }
    CommitStagedRow();
  }

  void AccumulateWireBlock(const std::uint8_t* frames, std::size_t stride,
                           int count) override {
    // omega word-extracted field tallies per frame — no per-bit cursor, no
    // scratch Report, no monotonicity re-checks (validation did those), and
    // no per-field cursor arithmetic either: every row shares the same
    // field -> (load byte, shift) map, precomputed once (PackedFieldTable),
    // so a field is exactly one big-endian load, shift, mask and tally. The
    // 4-wide unroll keeps four independent loads in flight; within a row
    // the tallied values are distinct (validated subsets) so the increments
    // never collide.
    const int omega = static_cast<const Ss&>(oracle_).omega();
    const std::uint64_t mask = table_.mask;
    const std::uint32_t* off = table_.byte.data();
    const std::uint8_t* sh = table_.shift.data();
    long long* counts = counts_.data();
    const std::uint8_t* row = frames;
    for (int r = 0; r < count; ++r, row += stride) {
      int i = 0;
      for (; i + 4 <= omega; i += 4) {
        const std::uint64_t v0 = (bitslice::Load64Be(row + off[i]) >> sh[i]) & mask;
        const std::uint64_t v1 =
            (bitslice::Load64Be(row + off[i + 1]) >> sh[i + 1]) & mask;
        const std::uint64_t v2 =
            (bitslice::Load64Be(row + off[i + 2]) >> sh[i + 2]) & mask;
        const std::uint64_t v3 =
            (bitslice::Load64Be(row + off[i + 3]) >> sh[i + 3]) & mask;
        ++counts[v0];
        ++counts[v1];
        ++counts[v2];
        ++counts[v3];
      }
      for (; i < omega; ++i) {
        ++counts[(bitslice::Load64Be(row + off[i]) >> sh[i]) & mask];
      }
    }
    n_ += count;
  }

 private:
  const int width_;
  const std::size_t frame_bytes_;
  const bitslice::PackedFieldTable table_;
  std::vector<int> scratch_;
};

}  // namespace

std::unique_ptr<Aggregator> Ss::MakeAggregator() const {
  return std::make_unique<SsAggregator>(*this);
}

void Ss::BatchRandomize(const int* values, std::size_t count, Rng& rng,
                        const ReportSink& sink) const {
  Report r;
  r.subset.reserve(omega_);
  std::vector<int> scratch;
  for (std::size_t i = 0; i < count; ++i) {
    const int value = values[i];
    LDPR_REQUIRE(value >= 0 && value < k(), "SS value out of range");
    const bool include_true = rng.Bernoulli(p());
    const int extra = include_true ? omega_ - 1 : omega_;
    rng.SampleWithoutReplacementInto(k() - 1, extra, &scratch);
    r.subset.clear();
    if (include_true) r.subset.push_back(value);
    for (int j = 0; j < extra; ++j) {
      const int o = scratch[j];
      r.subset.push_back(o >= value ? o + 1 : o);
    }
    std::sort(r.subset.begin(), r.subset.end());
    sink(r);
  }
}

Report Ss::Randomize(int value, Rng& rng) const {
  LDPR_REQUIRE(value >= 0 && value < k(), "SS value out of range");
  Report r;
  const bool include_true = rng.Bernoulli(p());
  // Sample the remaining slots from the k-1 other values, without
  // replacement; indices >= `value` in the reduced space map to index + 1.
  const int extra = include_true ? omega_ - 1 : omega_;
  std::vector<int> others = rng.SampleWithoutReplacement(k() - 1, extra);
  r.subset.reserve(omega_);
  if (include_true) r.subset.push_back(value);
  for (int o : others) r.subset.push_back(o >= value ? o + 1 : o);
  std::sort(r.subset.begin(), r.subset.end());
  return r;
}

void Ss::AccumulateSupport(const Report& report,
                           std::vector<long long>* counts) const {
  LDPR_REQUIRE(static_cast<int>(report.subset.size()) == omega_,
               "SS report subset size " << report.subset.size()
                                        << " != omega " << omega_);
  for (int v : report.subset) {
    LDPR_REQUIRE(v >= 0 && v < k(), "SS subset value out of range");
    ++(*counts)[v];
  }
}

int Ss::AttackPredict(const Report& report, Rng& rng) const {
  // Every subset member is equally likely a priori; guess uniformly in Omega.
  LDPR_CHECK(!report.subset.empty(), "SS report has an empty subset");
  return report.subset[rng.UniformInt(report.subset.size())];
}

}  // namespace ldpr::fo
