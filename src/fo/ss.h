#ifndef LDPR_FO_SS_H_
#define LDPR_FO_SS_H_

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// omega-Subset Selection (Wang et al. 2016, Ye & Barg 2018; Section 2.2.3).
///
/// Reports a subset Omega of size omega = round(k / (e^eps + 1)) (clamped to
/// [1, k-1]). The true value enters Omega with probability
/// p_in = omega e^eps / (omega e^eps + k - omega); the remaining slots are
/// filled uniformly without replacement from the other values.
///
/// Support probabilities for Eq. 2:
///   p = omega e^eps / (omega e^eps + k - omega)
///   q = (omega e^eps (omega-1) + (k-omega) omega)
///       / ((k-1)(omega e^eps + k - omega)).
class Ss : public FrequencyOracle {
 public:
  Ss(int k, double epsilon);

  Report Randomize(int value, Rng& rng) const override;
  void AccumulateSupport(const Report& report,
                         std::vector<long long>* counts) const override;
  int AttackPredict(const Report& report, Rng& rng) const override;
  Protocol protocol() const override { return Protocol::kSs; }

  /// Batched randomizer reusing one scratch subset across users.
  void BatchRandomize(const int* values, std::size_t count, Rng& rng,
                      const ReportSink& sink) const override;
  using FrequencyOracle::BatchRandomize;

  /// Fused subset tallies: samples Omega with a reusable index buffer and
  /// increments the counts directly, never materializing a Report.
  std::unique_ptr<Aggregator> MakeAggregator() const override;

  /// Subset size omega.
  int omega() const { return omega_; }

 private:
  int omega_;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_SS_H_
