#include "fo/unary_encoding.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "fo/bitslice.h"

namespace ldpr::fo {

UnaryEncoding::UnaryEncoding(int k, double epsilon, double p, double q)
    : FrequencyOracle(k, epsilon) {
  SetProbabilities(p, q);
}

std::vector<std::uint8_t> UnaryEncoding::OneHot(int value, int k) {
  LDPR_REQUIRE(value >= 0 && value < k,
               "OneHot value " << value << " outside [0, " << k << ")");
  std::vector<std::uint8_t> bits(k, 0);
  bits[value] = 1;
  return bits;
}

std::vector<std::uint8_t> UnaryEncoding::PerturbBits(
    const std::vector<std::uint8_t>& input, double p, double q, Rng& rng) {
  std::vector<std::uint8_t> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = rng.Bernoulli(input[i] ? p : q) ? 1 : 0;
  }
  return out;
}

Report UnaryEncoding::Randomize(int value, Rng& rng) const {
  Report r;
  r.bits = PerturbBits(OneHot(value, k()), p(), q(), rng);
  return r;
}

void UnaryEncoding::AccumulateSupport(const Report& report,
                                      std::vector<long long>* counts) const {
  LDPR_REQUIRE(static_cast<int>(report.bits.size()) == k(),
               "UE report has " << report.bits.size() << " bits, expected "
                                << k());
  for (int v = 0; v < k(); ++v) {
    if (report.bits[v]) ++(*counts)[v];
  }
}

namespace {

class UeAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

  void Accumulate(const Report& report) override {
    // Stage the bit vector as its wire image (k MSB-first bits, zero
    // padding) and defer the column sums to the SWAR block kernel below.
    // Any nonzero byte counts as a set bit, exactly like AccumulateSupport.
    // Packing is SWAR too: 8 bit-bytes collapse to one wire byte via an
    // OR-fold to 0/1 lanes and a carry-free gather multiply (every partial
    // product lands on a distinct bit).
    const int k = oracle_.k();
    LDPR_REQUIRE(static_cast<int>(report.bits.size()) == k,
                 "UE report has " << report.bits.size() << " bits, expected "
                                  << k);
    std::uint8_t* row = StageRowSlot(
        bitslice::RowStride(static_cast<std::size_t>((k + 7) / 8)));
    const std::uint8_t* bits = report.bits.data();
    int byte = 0;
    for (; (byte + 1) * 8 <= k; ++byte) {
      std::uint64_t x = bitslice::Load64(bits + byte * 8);
      x = (x | (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
      x = (x | (x >> 2)) & 0x0303030303030303ULL;
      x = (x | (x >> 1)) & 0x0101010101010101ULL;
      // byte-lane j (bits[8*byte + j]) -> wire bit 7 - j of this byte
      row[byte] = static_cast<std::uint8_t>((x * 0x8040201008040201ULL) >> 56);
    }
    if (byte * 8 < k) {
      unsigned tail = 0;
      for (int b = 0; byte * 8 + b < k; ++b) {
        tail |= (bits[byte * 8 + b] != 0 ? 1u : 0u) << (7 - b);
      }
      row[byte] = static_cast<std::uint8_t>(tail);
    }
    CommitStagedRow();
  }

  void AccumulateValue(int value, Rng& rng) override {
    const int k = oracle_.k();
    LDPR_REQUIRE(value >= 0 && value < k,
                 "OneHot value " << value << " outside [0, " << k << ")");
    // Same ascending per-bit draws as OneHot + PerturbBits, summed into the
    // columns directly.
    const double p = oracle_.p();
    const double q = oracle_.q();
    for (int i = 0; i < k; ++i) {
      if (rng.Bernoulli(i == value ? p : q)) ++counts_[i];
    }
    ++n_;
  }

  void AccumulateWireBlock(const std::uint8_t* frames, std::size_t stride,
                           int count) override {
    // Bitsliced column sums. The staged rows are one UE bit vector each
    // (k MSB-first bits, zero-padded to a whole number of 64-bit words), so
    // each 64-bit word column is summed vertically with eight SWAR byte
    // counters: acc[j] byte lane b counts the rows whose word bit 8b + j is
    // set, i.e. wire column 64*word + 8*b + (7 - j). One load plus 24 ALU
    // ops covers 64 columns of a report — versus 64 branchy scratch-vector
    // increments on the scalar path. Byte lanes saturate at 255 rows, hence
    // the kBlockRows sub-blocking.
    const int k = oracle_.k();
    const int words = (k + 63) / 64;
    constexpr std::uint64_t kLanes = 0x0101010101010101ULL;
    for (int done = 0; done < count; done += bitslice::kBlockRows) {
      const int rows = std::min(count - done, bitslice::kBlockRows);
      for (int w = 0; w < words; ++w) {
        const std::uint8_t* p =
            frames + static_cast<std::size_t>(done) * stride +
            static_cast<std::size_t>(w) * 8;
        std::uint64_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (int r = 0; r < rows; ++r, p += stride) {
          const std::uint64_t x = bitslice::Load64(p);
          acc[0] += x & kLanes;
          acc[1] += (x >> 1) & kLanes;
          acc[2] += (x >> 2) & kLanes;
          acc[3] += (x >> 3) & kLanes;
          acc[4] += (x >> 4) & kLanes;
          acc[5] += (x >> 5) & kLanes;
          acc[6] += (x >> 6) & kLanes;
          acc[7] += (x >> 7) & kLanes;
        }
        const int base = 64 * w;
        for (int b = 0; b < 8 && base + 8 * b < k; ++b) {
          for (int j = 7; j >= 0; --j) {
            const int v = base + 8 * b + (7 - j);
            if (v >= k) break;
            counts_[v] += static_cast<long long>((acc[j] >> (8 * b)) & 0xFF);
          }
        }
      }
    }
    n_ += count;
  }
};

}  // namespace

std::unique_ptr<Aggregator> UnaryEncoding::MakeAggregator() const {
  return std::make_unique<UeAggregator>(*this);
}

void UnaryEncoding::BatchRandomize(const int* values, std::size_t count,
                                   Rng& rng, const ReportSink& sink) const {
  Report r;
  r.bits.resize(k());
  for (std::size_t i = 0; i < count; ++i) {
    const int value = values[i];
    LDPR_REQUIRE(value >= 0 && value < k(),
                 "OneHot value " << value << " outside [0, " << k() << ")");
    for (int b = 0; b < k(); ++b) {
      r.bits[b] = rng.Bernoulli(b == value ? p() : q()) ? 1 : 0;
    }
    sink(r);
  }
}

int UnaryEncoding::AttackPredict(const Report& report, Rng& rng) const {
  std::vector<int> set_bits;
  for (int v = 0; v < k(); ++v) {
    if (report.bits[v]) set_bits.push_back(v);
  }
  if (set_bits.empty()) return static_cast<int>(rng.UniformInt(k()));
  if (set_bits.size() == 1) return set_bits[0];
  return set_bits[rng.UniformInt(set_bits.size())];
}

double Sue::PForEpsilon(double epsilon) {
  const double e2 = std::exp(epsilon / 2.0);
  return e2 / (e2 + 1.0);
}

double Sue::QForEpsilon(double epsilon) {
  return 1.0 / (std::exp(epsilon / 2.0) + 1.0);
}

Sue::Sue(int k, double epsilon)
    : UnaryEncoding(k, epsilon, PForEpsilon(epsilon), QForEpsilon(epsilon)) {}

double Oue::PForEpsilon(double /*epsilon*/) { return 0.5; }

double Oue::QForEpsilon(double epsilon) {
  return 1.0 / (std::exp(epsilon) + 1.0);
}

Oue::Oue(int k, double epsilon)
    : UnaryEncoding(k, epsilon, PForEpsilon(epsilon), QForEpsilon(epsilon)) {}

}  // namespace ldpr::fo
