#include "fo/unary_encoding.h"

#include <cmath>

#include "core/check.h"

namespace ldpr::fo {

UnaryEncoding::UnaryEncoding(int k, double epsilon, double p, double q)
    : FrequencyOracle(k, epsilon) {
  SetProbabilities(p, q);
}

std::vector<std::uint8_t> UnaryEncoding::OneHot(int value, int k) {
  LDPR_REQUIRE(value >= 0 && value < k,
               "OneHot value " << value << " outside [0, " << k << ")");
  std::vector<std::uint8_t> bits(k, 0);
  bits[value] = 1;
  return bits;
}

std::vector<std::uint8_t> UnaryEncoding::PerturbBits(
    const std::vector<std::uint8_t>& input, double p, double q, Rng& rng) {
  std::vector<std::uint8_t> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    out[i] = rng.Bernoulli(input[i] ? p : q) ? 1 : 0;
  }
  return out;
}

Report UnaryEncoding::Randomize(int value, Rng& rng) const {
  Report r;
  r.bits = PerturbBits(OneHot(value, k()), p(), q(), rng);
  return r;
}

void UnaryEncoding::AccumulateSupport(const Report& report,
                                      std::vector<long long>* counts) const {
  LDPR_REQUIRE(static_cast<int>(report.bits.size()) == k(),
               "UE report has " << report.bits.size() << " bits, expected "
                                << k());
  for (int v = 0; v < k(); ++v) {
    if (report.bits[v]) ++(*counts)[v];
  }
}

namespace {

class UeAggregator : public Aggregator {
 public:
  using Aggregator::Aggregator;

  void AccumulateValue(int value, Rng& rng) override {
    const int k = oracle_.k();
    LDPR_REQUIRE(value >= 0 && value < k,
                 "OneHot value " << value << " outside [0, " << k << ")");
    // Same ascending per-bit draws as OneHot + PerturbBits, summed into the
    // columns directly.
    const double p = oracle_.p();
    const double q = oracle_.q();
    for (int i = 0; i < k; ++i) {
      if (rng.Bernoulli(i == value ? p : q)) ++counts_[i];
    }
    ++n_;
  }
};

}  // namespace

std::unique_ptr<Aggregator> UnaryEncoding::MakeAggregator() const {
  return std::make_unique<UeAggregator>(*this);
}

void UnaryEncoding::BatchRandomize(const int* values, std::size_t count,
                                   Rng& rng, const ReportSink& sink) const {
  Report r;
  r.bits.resize(k());
  for (std::size_t i = 0; i < count; ++i) {
    const int value = values[i];
    LDPR_REQUIRE(value >= 0 && value < k(),
                 "OneHot value " << value << " outside [0, " << k() << ")");
    for (int b = 0; b < k(); ++b) {
      r.bits[b] = rng.Bernoulli(b == value ? p() : q()) ? 1 : 0;
    }
    sink(r);
  }
}

int UnaryEncoding::AttackPredict(const Report& report, Rng& rng) const {
  std::vector<int> set_bits;
  for (int v = 0; v < k(); ++v) {
    if (report.bits[v]) set_bits.push_back(v);
  }
  if (set_bits.empty()) return static_cast<int>(rng.UniformInt(k()));
  if (set_bits.size() == 1) return set_bits[0];
  return set_bits[rng.UniformInt(set_bits.size())];
}

double Sue::PForEpsilon(double epsilon) {
  const double e2 = std::exp(epsilon / 2.0);
  return e2 / (e2 + 1.0);
}

double Sue::QForEpsilon(double epsilon) {
  return 1.0 / (std::exp(epsilon / 2.0) + 1.0);
}

Sue::Sue(int k, double epsilon)
    : UnaryEncoding(k, epsilon, PForEpsilon(epsilon), QForEpsilon(epsilon)) {}

double Oue::PForEpsilon(double /*epsilon*/) { return 0.5; }

double Oue::QForEpsilon(double epsilon) {
  return 1.0 / (std::exp(epsilon) + 1.0);
}

Oue::Oue(int k, double epsilon)
    : UnaryEncoding(k, epsilon, PForEpsilon(epsilon), QForEpsilon(epsilon)) {}

}  // namespace ldpr::fo
