#ifndef LDPR_FO_UNARY_ENCODING_H_
#define LDPR_FO_UNARY_ENCODING_H_

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Shared implementation of the two unary-encoding protocols (Section 2.2.4):
/// the input value is one-hot encoded into a k-bit vector B, and each bit is
/// flipped independently with Pr[B'_i = 1] = p if B_i = 1 and q if B_i = 0.
///
///   SUE (Basic One-time RAPPOR):  p = e^{eps/2} / (e^{eps/2} + 1), q = 1 - p.
///   OUE (Optimal Unary Encoding): p = 1/2, q = 1 / (e^eps + 1).
///
/// The single-report adversary (Section 3.2.1) looks at the set bits: exactly
/// one set bit -> predict it; several -> uniform choice among them; none ->
/// uniform over the domain.
class UnaryEncoding : public FrequencyOracle {
 public:
  /// Constructs with explicit flip probabilities (0 <= q < p <= 1). Prefer
  /// the Sue / Oue subclasses unless experimenting with custom parameters.
  UnaryEncoding(int k, double epsilon, double p, double q);

  Report Randomize(int value, Rng& rng) const override;
  void AccumulateSupport(const Report& report,
                         std::vector<long long>* counts) const override;
  int AttackPredict(const Report& report, Rng& rng) const override;

  /// Batched randomizer perturbing into one reused k-bit scratch vector.
  void BatchRandomize(const int* values, std::size_t count, Rng& rng,
                      const ReportSink& sink) const override;
  using FrequencyOracle::BatchRandomize;

  /// Fused bit-column sums: each sanitized bit is drawn and folded into its
  /// column count in place — no one-hot input, no output vector, no Report.
  std::unique_ptr<Aggregator> MakeAggregator() const override;

  /// Applies the bit-flip channel to an arbitrary input bit vector. This is
  /// the primitive RS+FD reuses to build fake reports from zero vectors
  /// (UE-z) and from random one-hot vectors (UE-r).
  static std::vector<std::uint8_t> PerturbBits(
      const std::vector<std::uint8_t>& input, double p, double q, Rng& rng);

  /// One-hot encodes `value` into a k-bit vector.
  static std::vector<std::uint8_t> OneHot(int value, int k);
};

/// Symmetric UE, a.k.a. Basic One-time RAPPOR (Erlingsson et al. 2014).
class Sue : public UnaryEncoding {
 public:
  Sue(int k, double epsilon);
  Protocol protocol() const override { return Protocol::kSue; }

  /// SUE flip probabilities for a given budget.
  static double PForEpsilon(double epsilon);
  static double QForEpsilon(double epsilon);
};

/// Optimal UE (Wang et al. 2017).
class Oue : public UnaryEncoding {
 public:
  Oue(int k, double epsilon);
  Protocol protocol() const override { return Protocol::kOue; }

  static double PForEpsilon(double epsilon);
  static double QForEpsilon(double epsilon);
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_UNARY_ENCODING_H_
