#include "fo/wire.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"
#include "fo/bitslice.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::fo {

int CeilLog2(long long n) {
  LDPR_CHECK(n >= 1, "CeilLog2 requires n >= 1");
  int bits = 0;
  long long capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

bool ExactWireSize(std::span<const std::uint8_t> buffer, int bits) {
  if (buffer.data() == nullptr ||
      buffer.size() != static_cast<std::size_t>((bits + 7) / 8)) {
    return false;
  }
  const int padding = static_cast<int>(buffer.size()) * 8 - bits;
  return padding == 0 ||
         (buffer.back() & ((1u << padding) - 1u)) == 0;
}

void BitWriter::Write(std::uint64_t value, int width) {
  LDPR_REQUIRE(width >= 0 && width <= 64,
               "bit width must be in [0, 64], got " << width);
  if (width < 64) {
    LDPR_REQUIRE(value < (std::uint64_t{1} << width),
                 "value " << value << " does not fit in " << width
                          << " bits");
  }
  for (int i = width - 1; i >= 0; --i) {
    const int bit = static_cast<int>((value >> i) & 1);
    const int offset = bit_count_ % 8;
    if (offset == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<std::uint8_t>(bit << (7 - offset));
    ++bit_count_;
  }
}

std::uint64_t BitReader::Read(int width) {
  LDPR_REQUIRE(width >= 0 && width <= 64,
               "bit width must be in [0, 64], got " << width);
  LDPR_REQUIRE(bit_position_ + width <= static_cast<int>(bytes_.size()) * 8,
               "wire buffer exhausted: need " << width << " bits at offset "
                                              << bit_position_);
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int byte = bit_position_ / 8;
    const int offset = bit_position_ % 8;
    value = (value << 1) |
            static_cast<std::uint64_t>((bytes_[byte] >> (7 - offset)) & 1);
    ++bit_position_;
  }
  return value;
}

int SerializedReportBits(const FrequencyOracle& oracle) {
  const int k = oracle.k();
  switch (oracle.protocol()) {
    case Protocol::kGrr:
      return CeilLog2(k);
    case Protocol::kOlh:
      return 64 + CeilLog2(static_cast<const Olh&>(oracle).g());
    case Protocol::kSs:
      return static_cast<const Ss&>(oracle).omega() * CeilLog2(k);
    case Protocol::kSue:
    case Protocol::kOue:
      return k;
  }
  LDPR_CHECK(false, "unreachable protocol");
}

std::vector<std::uint8_t> SerializeReport(const FrequencyOracle& oracle,
                                          const Report& report) {
  BitWriter writer;
  AppendReport(oracle, report, &writer);
  LDPR_CHECK(writer.bit_count() == SerializedReportBits(oracle),
             "serialized width mismatch");
  return writer.bytes();
}

void AppendReport(const FrequencyOracle& oracle, const Report& report,
                  BitWriter* writer_ptr) {
  const int k = oracle.k();
  BitWriter& writer = *writer_ptr;
  switch (oracle.protocol()) {
    case Protocol::kGrr: {
      LDPR_REQUIRE(report.value >= 0 && report.value < k,
                   "GRR report value out of range");
      writer.Write(static_cast<std::uint64_t>(report.value), CeilLog2(k));
      break;
    }
    case Protocol::kOlh: {
      const int g = static_cast<const Olh&>(oracle).g();
      LDPR_REQUIRE(report.value >= 0 && report.value < g,
                   "OLH hashed value out of range");
      writer.Write(report.hash_seed, 64);
      writer.Write(static_cast<std::uint64_t>(report.value), CeilLog2(g));
      break;
    }
    case Protocol::kSs: {
      const int omega = static_cast<const Ss&>(oracle).omega();
      LDPR_REQUIRE(static_cast<int>(report.subset.size()) == omega,
                   "SS subset has " << report.subset.size()
                                    << " values, expected " << omega);
      std::vector<int> sorted = report.subset;
      std::sort(sorted.begin(), sorted.end());
      const int width = CeilLog2(k);
      int previous = -1;
      for (int v : sorted) {
        LDPR_REQUIRE(v >= 0 && v < k, "SS subset value out of range");
        LDPR_REQUIRE(v != previous, "SS subset values must be distinct");
        writer.Write(static_cast<std::uint64_t>(v), width);
        previous = v;
      }
      break;
    }
    case Protocol::kSue:
    case Protocol::kOue: {
      LDPR_REQUIRE(static_cast<int>(report.bits.size()) == k,
                   "UE bit vector has " << report.bits.size()
                                        << " bits, expected " << k);
      for (std::uint8_t bit : report.bits) {
        LDPR_REQUIRE(bit <= 1, "UE bits must be 0/1");
        writer.Write(bit, 1);
      }
      break;
    }
  }
}

Report DeserializeReport(const FrequencyOracle& oracle,
                         std::span<const std::uint8_t> bytes) {
  BitReader reader(bytes);
  Report report;
  ReadReportInto(oracle, &reader, &report);
  return report;
}

void ReadReportInto(const FrequencyOracle& oracle, BitReader* reader_ptr,
                    Report* report_ptr) {
  const int k = oracle.k();
  BitReader& reader = *reader_ptr;
  Report& report = *report_ptr;
  switch (oracle.protocol()) {
    case Protocol::kGrr: {
      report.value = static_cast<int>(reader.Read(CeilLog2(k)));
      LDPR_REQUIRE(report.value < k, "decoded GRR value out of range");
      break;
    }
    case Protocol::kOlh: {
      const int g = static_cast<const Olh&>(oracle).g();
      report.hash_seed = reader.Read(64);
      report.value = static_cast<int>(reader.Read(CeilLog2(g)));
      LDPR_REQUIRE(report.value < g, "decoded OLH value out of range");
      break;
    }
    case Protocol::kSs: {
      const int omega = static_cast<const Ss&>(oracle).omega();
      const int width = CeilLog2(k);
      report.subset.clear();
      report.subset.reserve(omega);
      int previous = -1;
      for (int i = 0; i < omega; ++i) {
        const int v = static_cast<int>(reader.Read(width));
        LDPR_REQUIRE(v < k, "decoded SS value out of range");
        LDPR_REQUIRE(v > previous, "decoded SS subset not strictly sorted");
        report.subset.push_back(v);
        previous = v;
      }
      break;
    }
    case Protocol::kSue:
    case Protocol::kOue: {
      report.bits.resize(k);
      for (int i = 0; i < k; ++i) {
        report.bits[i] = static_cast<std::uint8_t>(reader.Read(1));
      }
      break;
    }
  }
}

WireDecoder::WireDecoder(const FrequencyOracle& oracle)
    : protocol_(oracle.protocol()), k_(oracle.k()) {
  report_bits_ = SerializedReportBits(oracle);
  report_bytes_ = static_cast<std::size_t>((report_bits_ + 7) / 8);
  switch (protocol_) {
    case Protocol::kGrr:
      value_width_ = CeilLog2(k_);
      break;
    case Protocol::kOlh:
      g_ = static_cast<const Olh&>(oracle).g();
      value_width_ = CeilLog2(g_);
      break;
    case Protocol::kSs:
      omega_ = static_cast<const Ss&>(oracle).omega();
      value_width_ = CeilLog2(k_);
      scratch_.subset.resize(omega_);
      validate_scratch_.resize(report_bytes_ + bitslice::kRowTailSlack, 0);
      ss_validator_ = bitslice::PackedFieldValidator(omega_, value_width_, k_);
      break;
    case Protocol::kSue:
    case Protocol::kOue:
      scratch_.bits.resize(k_);
      break;
  }
}

bool WireDecoder::DecodeInto(std::span<const std::uint8_t> buffer,
                             Aggregator& agg) {
  if (!ExactWireSize(buffer, report_bits_)) return false;
  int bit_offset = 0;
  if (!DecodeField(buffer.data(), &bit_offset)) return false;
  agg.Accumulate(scratch_);
  return true;
}

namespace {

// Big-endian integer of bytes [first, size): since the wire packs fields
// MSB-first and ExactWireSize guarantees zero padding, a single trailing
// field read this way IS the field's value.
std::uint64_t BeBytes(const std::uint8_t* data, std::size_t first,
                      std::size_t size) {
  std::uint64_t v = 0;
  for (std::size_t i = first; i < size; ++i) v = (v << 8) | data[i];
  return v;
}

}  // namespace

bool WireDecoder::Validate(std::span<const std::uint8_t> buffer) {
  if (!ExactWireSize(buffer, report_bits_)) return false;
  // Fields pack MSB-first, so a trailing field occupies the TOP bits of its
  // bytes; shift the zero padding (verified zero above) back out.
  const std::uint8_t* data = buffer.data();
  const std::size_t size = buffer.size();
  const int padding = static_cast<int>(size) * 8 - report_bits_;
  switch (protocol_) {
    case Protocol::kGrr:
      return (BeBytes(data, 0, size) >> padding) <
             static_cast<std::uint64_t>(k_);
    case Protocol::kOlh:
      // Any 64-bit seed is valid; the hashed value is the tail.
      return (BeBytes(data, 8, size) >> padding) <
             static_cast<std::uint64_t>(g_);
    case Protocol::kSs: {
      // SWAR group checks over a padded copy: ~omega/8 word extractions and
      // carry tests instead of a per-field compare chain — the `< k` and
      // strictly-increasing checks run lane-parallel across each group
      // (bitslice::PackedFieldValidator, same accept set as the field walk).
      std::memcpy(validate_scratch_.data(), data, size);
      return ss_validator_.Validate(validate_scratch_.data());
    }
    case Protocol::kSue:
    case Protocol::kOue:
      // Any bit pattern of the right width (with zero padding, checked
      // above) is a valid UE report.
      return true;
  }
  return false;
}

bool WireDecoder::DecodeField(const std::uint8_t* data, int* bit_offset) {
  BitCursor cursor{data, *bit_offset};
  switch (protocol_) {
    case Protocol::kGrr: {
      const int value = static_cast<int>(cursor.Read(value_width_));
      if (value >= k_) return false;
      scratch_.value = value;
      break;
    }
    case Protocol::kOlh: {
      scratch_.hash_seed = cursor.Read(64);
      const int value = static_cast<int>(cursor.Read(value_width_));
      if (value >= g_) return false;
      scratch_.value = value;
      break;
    }
    case Protocol::kSs: {
      int previous = -1;
      for (int i = 0; i < omega_; ++i) {
        const int v = static_cast<int>(cursor.Read(value_width_));
        if (v >= k_ || v <= previous) return false;
        scratch_.subset[i] = v;
        previous = v;
      }
      break;
    }
    case Protocol::kSue:
    case Protocol::kOue: {
      // Any bit pattern of the right width is a valid UE report. Byte-wise
      // unpack on the aligned fast path (whole buffers always are); generic
      // cursor reads when packed mid-tuple.
      if ((cursor.position & 7) == 0) {
        const std::uint8_t* base = data + (cursor.position >> 3);
        for (int i = 0; i < k_; ++i) {
          scratch_.bits[i] =
              static_cast<std::uint8_t>((base[i >> 3] >> (7 - (i & 7))) & 1);
        }
        cursor.position += k_;
      } else {
        for (int i = 0; i < k_; ++i) {
          scratch_.bits[i] = static_cast<std::uint8_t>(cursor.Read(1));
        }
      }
      break;
    }
  }
  *bit_offset = cursor.position;
  return true;
}

}  // namespace ldpr::fo
