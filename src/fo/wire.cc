#include "fo/wire.h"

#include <algorithm>

#include "core/check.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::fo {

namespace {

int CeilLog2(long long n) {
  LDPR_CHECK(n >= 1, "CeilLog2 requires n >= 1");
  int bits = 0;
  long long capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

void BitWriter::Write(std::uint64_t value, int width) {
  LDPR_REQUIRE(width >= 0 && width <= 64,
               "bit width must be in [0, 64], got " << width);
  if (width < 64) {
    LDPR_REQUIRE(value < (std::uint64_t{1} << width),
                 "value " << value << " does not fit in " << width
                          << " bits");
  }
  for (int i = width - 1; i >= 0; --i) {
    const int bit = static_cast<int>((value >> i) & 1);
    const int offset = bit_count_ % 8;
    if (offset == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<std::uint8_t>(bit << (7 - offset));
    ++bit_count_;
  }
}

std::uint64_t BitReader::Read(int width) {
  LDPR_REQUIRE(width >= 0 && width <= 64,
               "bit width must be in [0, 64], got " << width);
  LDPR_REQUIRE(bit_position_ + width <= static_cast<int>(bytes_.size()) * 8,
               "wire buffer exhausted: need " << width << " bits at offset "
                                              << bit_position_);
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int byte = bit_position_ / 8;
    const int offset = bit_position_ % 8;
    value = (value << 1) |
            static_cast<std::uint64_t>((bytes_[byte] >> (7 - offset)) & 1);
    ++bit_position_;
  }
  return value;
}

int SerializedReportBits(const FrequencyOracle& oracle) {
  const int k = oracle.k();
  switch (oracle.protocol()) {
    case Protocol::kGrr:
      return CeilLog2(k);
    case Protocol::kOlh:
      return 64 + CeilLog2(static_cast<const Olh&>(oracle).g());
    case Protocol::kSs:
      return static_cast<const Ss&>(oracle).omega() * CeilLog2(k);
    case Protocol::kSue:
    case Protocol::kOue:
      return k;
  }
  LDPR_CHECK(false, "unreachable protocol");
}

std::vector<std::uint8_t> SerializeReport(const FrequencyOracle& oracle,
                                          const Report& report) {
  const int k = oracle.k();
  BitWriter writer;
  switch (oracle.protocol()) {
    case Protocol::kGrr: {
      LDPR_REQUIRE(report.value >= 0 && report.value < k,
                   "GRR report value out of range");
      writer.Write(static_cast<std::uint64_t>(report.value), CeilLog2(k));
      break;
    }
    case Protocol::kOlh: {
      const int g = static_cast<const Olh&>(oracle).g();
      LDPR_REQUIRE(report.value >= 0 && report.value < g,
                   "OLH hashed value out of range");
      writer.Write(report.hash_seed, 64);
      writer.Write(static_cast<std::uint64_t>(report.value), CeilLog2(g));
      break;
    }
    case Protocol::kSs: {
      const int omega = static_cast<const Ss&>(oracle).omega();
      LDPR_REQUIRE(static_cast<int>(report.subset.size()) == omega,
                   "SS subset has " << report.subset.size()
                                    << " values, expected " << omega);
      std::vector<int> sorted = report.subset;
      std::sort(sorted.begin(), sorted.end());
      const int width = CeilLog2(k);
      int previous = -1;
      for (int v : sorted) {
        LDPR_REQUIRE(v >= 0 && v < k, "SS subset value out of range");
        LDPR_REQUIRE(v != previous, "SS subset values must be distinct");
        writer.Write(static_cast<std::uint64_t>(v), width);
        previous = v;
      }
      break;
    }
    case Protocol::kSue:
    case Protocol::kOue: {
      LDPR_REQUIRE(static_cast<int>(report.bits.size()) == k,
                   "UE bit vector has " << report.bits.size()
                                        << " bits, expected " << k);
      for (std::uint8_t bit : report.bits) {
        LDPR_REQUIRE(bit <= 1, "UE bits must be 0/1");
        writer.Write(bit, 1);
      }
      break;
    }
  }
  LDPR_CHECK(writer.bit_count() == SerializedReportBits(oracle),
             "serialized width mismatch");
  return writer.bytes();
}

Report DeserializeReport(const FrequencyOracle& oracle,
                         const std::vector<std::uint8_t>& bytes) {
  const int k = oracle.k();
  BitReader reader(bytes);
  Report report;
  switch (oracle.protocol()) {
    case Protocol::kGrr: {
      report.value = static_cast<int>(reader.Read(CeilLog2(k)));
      LDPR_REQUIRE(report.value < k, "decoded GRR value out of range");
      break;
    }
    case Protocol::kOlh: {
      const int g = static_cast<const Olh&>(oracle).g();
      report.hash_seed = reader.Read(64);
      report.value = static_cast<int>(reader.Read(CeilLog2(g)));
      LDPR_REQUIRE(report.value < g, "decoded OLH value out of range");
      break;
    }
    case Protocol::kSs: {
      const int omega = static_cast<const Ss&>(oracle).omega();
      const int width = CeilLog2(k);
      report.subset.reserve(omega);
      int previous = -1;
      for (int i = 0; i < omega; ++i) {
        const int v = static_cast<int>(reader.Read(width));
        LDPR_REQUIRE(v < k, "decoded SS value out of range");
        LDPR_REQUIRE(v > previous, "decoded SS subset not strictly sorted");
        report.subset.push_back(v);
        previous = v;
      }
      break;
    }
    case Protocol::kSue:
    case Protocol::kOue: {
      report.bits.resize(k);
      for (int i = 0; i < k; ++i) {
        report.bits[i] = static_cast<std::uint8_t>(reader.Read(1));
      }
      break;
    }
  }
  return report;
}

}  // namespace ldpr::fo
