#ifndef LDPR_FO_WIRE_H_
#define LDPR_FO_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fo/bitslice.h"
#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Bit-exact wire format for sanitized reports.
///
/// The communication-cost model (fo/comm_cost) prices each protocol's report
/// at its information-theoretic width; this module is the matching codec a
/// deployment would actually ship: it packs a Report into exactly
/// ReportBits(protocol, k, eps) bits (rounded up to whole bytes only at the
/// buffer boundary) and restores it losslessly. Round-tripping every
/// protocol's reports is also the strongest possible test that the cost
/// model's widths are sufficient.
///
/// Encodings (all big-endian within a byte stream, bits packed MSB-first):
///   GRR   value                    ceil(log2 k) bits
///   OLH   hash seed, hashed value  64 + ceil(log2 g) bits
///   SS    omega sorted values      omega * ceil(log2 k) bits
///   SUE   bit vector               k bits
///   OUE   bit vector               k bits
///
/// The subset size omega and the reduced domain g are protocol parameters
/// (derivable from k and eps), so they are not transmitted.

/// Append-only MSB-first bit buffer.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value` (width in [0, 64]).
  void Write(std::uint64_t value, int width);

  /// Number of bits written so far.
  int bit_count() const { return bit_count_; }

  /// The packed bytes (the final partial byte is zero-padded).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_count_ = 0;
};

/// Sequential MSB-first bit reader over a byte buffer (not owned: the
/// buffer must outlive the reader).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `width` bits (width in [0, 64]); throws InvalidArgumentError when
  /// the buffer is exhausted.
  std::uint64_t Read(int width);

  int bits_consumed() const { return bit_position_; }

 private:
  std::span<const std::uint8_t> bytes_;
  int bit_position_ = 0;
};

/// Serializes one report emitted by `oracle`. Throws when the report's shape
/// does not match the oracle (wrong payload, out-of-range values).
std::vector<std::uint8_t> SerializeReport(const FrequencyOracle& oracle,
                                          const Report& report);

/// Appends one report's payload to `writer` without byte-aligning — the
/// building block multidimensional tuples (serve/multidim_wire) use to pack
/// several per-attribute reports into one buffer at exactly the priced
/// tuple width. SerializeReport is this plus a fresh writer.
void AppendReport(const FrequencyOracle& oracle, const Report& report,
                  BitWriter* writer);

/// Reads one report's payload from `reader` (the inverse of AppendReport).
/// Throws on exhausted buffers or malformed payloads. `report` is reused:
/// its vectors are resized, not reallocated, when capacity suffices.
void ReadReportInto(const FrequencyOracle& oracle, BitReader* reader,
                    Report* report);

/// Exact payload width in bits for one of `oracle`'s reports (the value the
/// comm-cost model prices; byte buffers round up to the next multiple of 8).
int SerializedReportBits(const FrequencyOracle& oracle);

/// Bits needed to address n distinct values (0 for n = 1). Shared by the
/// codec and the multidimensional tuple formats built on it.
int CeilLog2(long long n);

/// Unchecked MSB-first bit cursor for pre-validated buffers: the decode hot
/// paths (WireDecoder, serve/multidim_collector) check a buffer's length
/// once via ExactWireSize and then read fields without per-bit bounds
/// checks. Never point one at a buffer that has not been length-checked.
struct BitCursor {
  const std::uint8_t* data;
  int position = 0;

  std::uint64_t Read(int width) {
    // Wide fields (the OLH 64-bit seed, possibly mid-tuple and so not
    // byte-aligned) exceed what one word accumulation can hold once the
    // intra-byte offset is added; split them.
    if (width > 56) {
      const std::uint64_t high = Read(width - 32);
      return (high << 32) | Read(32);
    }
    // Byte-at-a-time MSB-first accumulation: ceil(width/8) + 1 iterations
    // instead of one per bit.
    const std::uint8_t* p = data + (position >> 3);
    int have = 8 - (position & 7);
    std::uint64_t value = *p & ((std::uint64_t{1} << have) - 1);
    while (have < width) {
      value = (value << 8) | *++p;
      have += 8;
    }
    position += width;
    return have == width ? value : value >> (have - width);
  }
};

/// The strict acceptance rule every ingest surface shares: the buffer is
/// exactly `bits` rounded up to whole bytes AND the final byte's padding
/// bits are zero — so each accepted buffer is exactly one serializer image.
bool ExactWireSize(std::span<const std::uint8_t> buffer, int bits);

/// Restores a report serialized by SerializeReport for the same oracle
/// configuration (protocol, k, epsilon). SS subsets come back sorted.
Report DeserializeReport(const FrequencyOracle& oracle,
                         std::span<const std::uint8_t> bytes);

/// Streaming decode-into-aggregator fast path — the serving layer's hot
/// loop. Where DeserializeReport allocates a fresh Report and throws on
/// malformed input, a WireDecoder validates the whole buffer up front,
/// decodes into one reused scratch Report, and folds the support straight
/// into an Aggregator: no heap traffic and no exceptions on the ingest path,
/// at millions of reports per second per core.
///
/// Acceptance is strict — stricter than DeserializeReport: the buffer must
/// be exactly the report's width rounded up to whole bytes, the zero-padding
/// bits of the final byte must actually be zero, and every decoded value
/// must be in range (SS subsets strictly increasing). Under those rules
/// decoding is a bijection with SerializeReport, so a collector can count a
/// rejected buffer as definitively malformed rather than merely suspicious.
class WireDecoder {
 public:
  explicit WireDecoder(const FrequencyOracle& oracle);

  /// Decodes one report and accumulates it into `agg` (which must have been
  /// created by the same oracle). Returns true on success. A malformed
  /// buffer is rejected with `agg` untouched; nothing is thrown.
  bool DecodeInto(std::span<const std::uint8_t> buffer, Aggregator& agg);

  /// Accept/reject without decoding or accumulating — the staging-buffer
  /// half of the bitsliced ingest path (serve::Collector validates and
  /// copies each frame here, deferring all decode work to
  /// fo::Aggregator::AccumulateWireBlock at flush). Accepts exactly the
  /// buffers DecodeInto accepts (pinned by the serve fuzz tests). Non-const
  /// for the same reason DecodeInto is: SS field checks run over a reusable
  /// padded scratch so extraction is branchless word loads, never reading
  /// past the caller's buffer.
  bool Validate(std::span<const std::uint8_t> buffer);

  /// Field-level half of DecodeInto for packed multidimensional tuples
  /// (serve/multidim_collector): decodes one report starting at bit
  /// `*bit_offset` of `data` into the internal scratch and advances the
  /// offset. The caller must already have validated that the buffer extends
  /// at least report_bits() past the offset; only field *values* are checked
  /// here. Returns false on an out-of-range / non-increasing field, in which
  /// case the caller drops the whole tuple (nothing was accumulated).
  bool DecodeField(const std::uint8_t* data, int* bit_offset);

  /// Accumulates the report last decoded by a successful DecodeField.
  /// Splitting decode from accumulate lets a tuple decoder validate every
  /// attribute before mutating any aggregator (all-or-nothing ingest).
  void AccumulateScratch(Aggregator& agg) const { agg.Accumulate(scratch_); }

  /// The exact buffer size DecodeInto accepts.
  std::size_t report_bytes() const { return report_bytes_; }
  /// The payload width in bits (SerializedReportBits of the oracle).
  int report_bits() const { return report_bits_; }

 private:
  const Protocol protocol_;
  const int k_;
  int value_width_ = 0;  ///< GRR/SS value width; OLH hashed-value width
  int omega_ = 0;        ///< SS subset size
  int g_ = 0;            ///< OLH reduced domain
  int report_bits_ = 0;
  std::size_t report_bytes_ = 0;
  Report scratch_;
  /// SS validation scratch: frame bytes + bitslice::kRowTailSlack, so
  /// whole-word field extraction stays in bounds.
  std::vector<std::uint8_t> validate_scratch_;
  /// SS range + strictly-increasing checks as lane-parallel carry tests.
  bitslice::PackedFieldValidator ss_validator_;
};

}  // namespace ldpr::fo

#endif  // LDPR_FO_WIRE_H_
