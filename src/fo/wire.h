#ifndef LDPR_FO_WIRE_H_
#define LDPR_FO_WIRE_H_

#include <cstdint>
#include <vector>

#include "fo/frequency_oracle.h"

namespace ldpr::fo {

/// Bit-exact wire format for sanitized reports.
///
/// The communication-cost model (fo/comm_cost) prices each protocol's report
/// at its information-theoretic width; this module is the matching codec a
/// deployment would actually ship: it packs a Report into exactly
/// ReportBits(protocol, k, eps) bits (rounded up to whole bytes only at the
/// buffer boundary) and restores it losslessly. Round-tripping every
/// protocol's reports is also the strongest possible test that the cost
/// model's widths are sufficient.
///
/// Encodings (all big-endian within a byte stream, bits packed MSB-first):
///   GRR   value                    ceil(log2 k) bits
///   OLH   hash seed, hashed value  64 + ceil(log2 g) bits
///   SS    omega sorted values      omega * ceil(log2 k) bits
///   SUE   bit vector               k bits
///   OUE   bit vector               k bits
///
/// The subset size omega and the reduced domain g are protocol parameters
/// (derivable from k and eps), so they are not transmitted.

/// Append-only MSB-first bit buffer.
class BitWriter {
 public:
  /// Appends the low `width` bits of `value` (width in [0, 64]).
  void Write(std::uint64_t value, int width);

  /// Number of bits written so far.
  int bit_count() const { return bit_count_; }

  /// The packed bytes (the final partial byte is zero-padded).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_count_ = 0;
};

/// Sequential MSB-first bit reader over a byte buffer.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  /// Reads `width` bits (width in [0, 64]); throws InvalidArgumentError when
  /// the buffer is exhausted.
  std::uint64_t Read(int width);

  int bits_consumed() const { return bit_position_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  int bit_position_ = 0;
};

/// Serializes one report emitted by `oracle`. Throws when the report's shape
/// does not match the oracle (wrong payload, out-of-range values).
std::vector<std::uint8_t> SerializeReport(const FrequencyOracle& oracle,
                                          const Report& report);

/// Exact payload width in bits for one of `oracle`'s reports (the value the
/// comm-cost model prices; byte buffers round up to the next multiple of 8).
int SerializedReportBits(const FrequencyOracle& oracle);

/// Restores a report serialized by SerializeReport for the same oracle
/// configuration (protocol, k, epsilon). SS subsets come back sorted.
Report DeserializeReport(const FrequencyOracle& oracle,
                         const std::vector<std::uint8_t>& bytes);

}  // namespace ldpr::fo

#endif  // LDPR_FO_WIRE_H_
