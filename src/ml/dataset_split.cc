#include "ml/dataset_split.h"

#include <numeric>

#include "core/check.h"

namespace ldpr::ml {

void LabeledData::Append(std::vector<int> row, int label) {
  rows.push_back(std::move(row));
  labels.push_back(label);
}

void LabeledData::AppendAll(const LabeledData& other) {
  rows.insert(rows.end(), other.rows.begin(), other.rows.end());
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
}

TrainTestSplit Split(const LabeledData& data, double train_fraction, Rng& rng) {
  LDPR_REQUIRE(data.rows.size() == data.labels.size(),
               "rows/labels size mismatch");
  LDPR_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
               "train_fraction must be in (0, 1)");
  const int n = data.n();
  LDPR_REQUIRE(n >= 2, "Split requires at least 2 rows");
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  int train_n = static_cast<int>(train_fraction * n);
  train_n = std::max(1, std::min(n - 1, train_n));

  TrainTestSplit out;
  out.train.rows.reserve(train_n);
  out.test.rows.reserve(n - train_n);
  for (int i = 0; i < n; ++i) {
    LabeledData& dst = i < train_n ? out.train : out.test;
    dst.Append(data.rows[order[i]], data.labels[order[i]]);
  }
  return out;
}

}  // namespace ldpr::ml
