#ifndef LDPR_ML_DATASET_SPLIT_H_
#define LDPR_ML_DATASET_SPLIT_H_

#include <vector>

#include "core/rng.h"

namespace ldpr::ml {

/// A labeled classification dataset (feature rows + integer labels).
struct LabeledData {
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;

  int n() const { return static_cast<int>(rows.size()); }
  void Append(std::vector<int> row, int label);
  void AppendAll(const LabeledData& other);
};

/// Splits into train/test with `train_fraction` of the rows (shuffled).
struct TrainTestSplit {
  LabeledData train;
  LabeledData test;
};

TrainTestSplit Split(const LabeledData& data, double train_fraction, Rng& rng);

}  // namespace ldpr::ml

#endif  // LDPR_ML_DATASET_SPLIT_H_
