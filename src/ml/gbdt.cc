#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::ml {

namespace {
constexpr int kMaxBins = 256;
constexpr double kMinHessian = 1e-6;
}  // namespace

double Gbdt::Tree::Predict(const std::vector<int>& row) const {
  int node = 0;
  while (nodes[node].feature >= 0) {
    const Node& nd = nodes[node];
    node = row[nd.feature] <= nd.threshold ? nd.left : nd.right;
  }
  return nodes[node].weight;
}

double Gbdt::Tree::PredictBinned(const std::uint8_t* row_values, int stride,
                                 long long row) const {
  int node = 0;
  while (nodes[node].feature >= 0) {
    const Node& nd = nodes[node];
    node = row_values[static_cast<long long>(nd.feature) * stride + row] <=
                   nd.threshold
               ? nd.left
               : nd.right;
  }
  return nodes[node].weight;
}

Gbdt::Tree Gbdt::GrowTree(const std::vector<double>& grad,
                          const std::vector<double>& hess,
                          const GbdtConfig& config) const {
  Tree tree;
  std::vector<long long> indices(train_n_);
  std::iota(indices.begin(), indices.end(), 0LL);

  struct Work {
    int node_id;
    long long begin;
    long long end;
    int depth;
  };
  std::vector<Work> stack;

  tree.nodes.push_back(Node{});
  stack.push_back(Work{0, 0, train_n_, 0});

  // Per-feature scratch histograms, reused across nodes.
  std::vector<double> hist_g(kMaxBins), hist_h(kMaxBins);
  std::vector<long long> hist_c(kMaxBins);

  while (!stack.empty()) {
    Work w = stack.back();
    stack.pop_back();
    const long long count = w.end - w.begin;

    double g_sum = 0.0, h_sum = 0.0;
    for (long long i = w.begin; i < w.end; ++i) {
      g_sum += grad[indices[i]];
      h_sum += hess[indices[i]];
    }

    auto make_leaf = [&]() {
      tree.nodes[w.node_id].feature = -1;
      tree.nodes[w.node_id].weight =
          -config.learning_rate * g_sum / (h_sum + config.lambda);
    };

    if (w.depth >= config.max_depth ||
        count < 2LL * config.min_samples_leaf ||
        h_sum < 2.0 * config.min_child_hessian) {
      make_leaf();
      continue;
    }

    // Best split search over exact per-value histograms.
    const double parent_score = g_sum * g_sum / (h_sum + config.lambda);
    double best_gain = 1e-12;
    int best_feature = -1;
    int best_threshold = 0;
    for (int f = 0; f < num_features_; ++f) {
      const int bins = column_bins_[f];
      if (bins < 2) continue;
      const std::uint8_t* col = columns_.data() +
                                static_cast<long long>(f) * train_n_;
      std::fill(hist_g.begin(), hist_g.begin() + bins, 0.0);
      std::fill(hist_h.begin(), hist_h.begin() + bins, 0.0);
      std::fill(hist_c.begin(), hist_c.begin() + bins, 0LL);
      for (long long i = w.begin; i < w.end; ++i) {
        const long long row = indices[i];
        const int b = col[row];
        hist_g[b] += grad[row];
        hist_h[b] += hess[row];
        ++hist_c[b];
      }
      double gl = 0.0, hl = 0.0;
      long long cl = 0;
      for (int b = 0; b < bins - 1; ++b) {
        gl += hist_g[b];
        hl += hist_h[b];
        cl += hist_c[b];
        const long long cr = count - cl;
        if (cl < config.min_samples_leaf || cr < config.min_samples_leaf) {
          continue;
        }
        const double hr = h_sum - hl;
        if (hl < config.min_child_hessian || hr < config.min_child_hessian) {
          continue;
        }
        const double gr = g_sum - gl;
        const double gain = gl * gl / (hl + config.lambda) +
                            gr * gr / (hr + config.lambda) - parent_score;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = b;
        }
      }
    }

    if (best_feature < 0) {
      make_leaf();
      continue;
    }

    const std::uint8_t* col =
        columns_.data() + static_cast<long long>(best_feature) * train_n_;
    auto mid_it = std::partition(
        indices.begin() + w.begin, indices.begin() + w.end,
        [&](long long row) { return col[row] <= best_threshold; });
    const long long mid = mid_it - indices.begin();
    LDPR_CHECK(mid > w.begin && mid < w.end,
               "split produced an empty child; histogram and partition "
               "disagree");

    // Reserve the children before touching the parent node: push_back can
    // reallocate and would invalidate any reference into `tree.nodes`.
    const int left_id = static_cast<int>(tree.nodes.size());
    const int right_id = left_id + 1;
    tree.nodes.push_back(Node{});
    tree.nodes.push_back(Node{});
    Node& parent = tree.nodes[w.node_id];
    parent.feature = best_feature;
    parent.threshold = best_threshold;
    parent.left = left_id;
    parent.right = right_id;
    stack.push_back(Work{left_id, w.begin, mid, w.depth + 1});
    stack.push_back(Work{right_id, mid, w.end, w.depth + 1});
  }
  return tree;
}

void Gbdt::Train(const std::vector<std::vector<int>>& rows,
                 const std::vector<int>& labels, int num_classes,
                 const GbdtConfig& config, Rng& rng) {
  (void)rng;  // reserved for future row/feature subsampling
  LDPR_REQUIRE(!rows.empty(), "Gbdt::Train requires at least one row");
  LDPR_REQUIRE(rows.size() == labels.size(), "rows/labels size mismatch");
  LDPR_REQUIRE(num_classes >= 2, "Gbdt::Train requires >= 2 classes");
  LDPR_REQUIRE(config.num_rounds >= 1 && config.max_depth >= 1,
               "num_rounds and max_depth must be >= 1");

  // Validate every input before mutating any member, so a failed Train
  // leaves the model exactly as it was (strong exception guarantee).
  const long long n = static_cast<long long>(rows.size());
  const int m = static_cast<int>(rows[0].size());
  LDPR_REQUIRE(m >= 1, "rows must have >= 1 feature");
  for (long long i = 0; i < n; ++i) {
    LDPR_REQUIRE(static_cast<int>(rows[i].size()) == m,
                 "ragged feature matrix at row " << i);
    for (int f = 0; f < m; ++f) {
      LDPR_REQUIRE(rows[i][f] >= 0 && rows[i][f] < kMaxBins,
                   "feature values must be in [0, 256), got " << rows[i][f]);
    }
    LDPR_REQUIRE(labels[i] >= 0 && labels[i] < num_classes,
                 "label out of range: " << labels[i]);
  }

  train_n_ = n;
  num_features_ = m;
  num_classes_ = num_classes;

  // Column-major binned copy of the features.
  columns_.assign(static_cast<long long>(num_features_) * train_n_, 0);
  column_bins_.assign(num_features_, 1);
  for (long long i = 0; i < train_n_; ++i) {
    for (int f = 0; f < num_features_; ++f) {
      const int v = rows[i][f];
      columns_[static_cast<long long>(f) * train_n_ + i] =
          static_cast<std::uint8_t>(v);
      column_bins_[f] = std::max(column_bins_[f], v + 1);
    }
  }

  // Base margin: log class priors (with add-one smoothing).
  std::vector<double> class_count(num_classes_, 1.0);
  for (int y : labels) class_count[y] += 1.0;
  base_margin_.resize(num_classes_);
  const double total = static_cast<double>(train_n_) + num_classes_;
  for (int c = 0; c < num_classes_; ++c) {
    base_margin_[c] = std::log(class_count[c] / total);
  }

  std::vector<double> margins(train_n_ * num_classes_);
  for (long long i = 0; i < train_n_; ++i) {
    for (int c = 0; c < num_classes_; ++c) {
      margins[i * num_classes_ + c] = base_margin_[c];
    }
  }

  std::vector<double> grad(static_cast<long long>(num_classes_) * train_n_);
  std::vector<double> hess(static_cast<long long>(num_classes_) * train_n_);

  rounds_.clear();
  rounds_.reserve(config.num_rounds);
  const int threads = config.num_threads;

  for (int round = 0; round < config.num_rounds; ++round) {
    // Softmax gradients: g = p - y, h = p (1 - p), per class (column-major
    // per class for cache-friendly tree growth).
    ParallelFor(
        0, train_n_,
        [&](long long i) {
          const double* m = &margins[i * num_classes_];
          double max_m = m[0];
          for (int c = 1; c < num_classes_; ++c) max_m = std::max(max_m, m[c]);
          double z = 0.0;
          for (int c = 0; c < num_classes_; ++c) z += std::exp(m[c] - max_m);
          for (int c = 0; c < num_classes_; ++c) {
            const double p = std::exp(m[c] - max_m) / z;
            grad[static_cast<long long>(c) * train_n_ + i] =
                p - (labels[i] == c ? 1.0 : 0.0);
            hess[static_cast<long long>(c) * train_n_ + i] =
                std::max(p * (1.0 - p), kMinHessian);
          }
        },
        threads);

    std::vector<Tree> class_trees(num_classes_);
    ParallelFor(
        0, num_classes_,
        [&](long long c) {
          std::vector<double> g(grad.begin() + c * train_n_,
                                grad.begin() + (c + 1) * train_n_);
          std::vector<double> h(hess.begin() + c * train_n_,
                                hess.begin() + (c + 1) * train_n_);
          class_trees[c] = GrowTree(g, h, config);
          for (long long i = 0; i < train_n_; ++i) {
            margins[i * num_classes_ + c] +=
                class_trees[c].PredictBinned(columns_.data(),
                                             static_cast<int>(train_n_), i);
          }
        },
        threads);
    rounds_.push_back(std::move(class_trees));
  }

  // Training-time buffers are no longer needed after fitting.
  columns_.clear();
  columns_.shrink_to_fit();
}

std::vector<double> Gbdt::PredictMargin(const std::vector<int>& row) const {
  LDPR_REQUIRE(trained(), "Gbdt::PredictMargin called before Train");
  LDPR_REQUIRE(static_cast<int>(row.size()) == num_features_,
               "row has " << row.size() << " features, expected "
                          << num_features_);
  std::vector<double> margin = base_margin_;
  for (const auto& round : rounds_) {
    for (int c = 0; c < num_classes_; ++c) {
      margin[c] += round[c].Predict(row);
    }
  }
  return margin;
}

std::vector<double> Gbdt::PredictProba(const std::vector<int>& row) const {
  std::vector<double> margin = PredictMargin(row);
  double max_m = *std::max_element(margin.begin(), margin.end());
  double z = 0.0;
  for (double& m : margin) {
    m = std::exp(m - max_m);
    z += m;
  }
  for (double& m : margin) m /= z;
  return margin;
}

int Gbdt::Predict(const std::vector<int>& row) const {
  std::vector<double> margin = PredictMargin(row);
  return static_cast<int>(
      std::max_element(margin.begin(), margin.end()) - margin.begin());
}

std::vector<int> Gbdt::PredictBatch(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<int> out(rows.size());
  ParallelFor(0, static_cast<long long>(rows.size()),
              [&](long long i) { out[i] = Predict(rows[i]); });
  return out;
}

}  // namespace ldpr::ml
