#ifndef LDPR_ML_GBDT_H_
#define LDPR_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace ldpr::ml {

/// Training hyper-parameters, mirroring XGBoost's `multi:softmax` defaults
/// at a scale suited to the attack experiments (tens of thousands of rows,
/// up to ~200 ordinal features, up to ~20 classes).
struct GbdtConfig {
  int num_rounds = 15;        ///< boosting rounds
  int max_depth = 5;          ///< maximum tree depth
  double learning_rate = 0.3; ///< shrinkage (XGBoost default eta)
  double lambda = 1.0;        ///< L2 regularization on leaf weights
  double min_child_hessian = 1.0;  ///< minimum hessian sum per child
  int min_samples_leaf = 2;   ///< minimum rows per child
  int num_threads = 0;        ///< 0 = DefaultThreadCount()
};

/// Histogram gradient-boosted decision trees with a softmax multiclass
/// objective — the repository's from-scratch substitute for XGBoost [9],
/// which the paper uses to predict the sampled attribute of RS+FD users.
///
/// Features must be small non-negative integers (< 256); this matches both
/// feature encodings the attack uses (label-encoded categorical reports for
/// GRR-based protocols and 0/1 bits for UE-based protocols) and lets the
/// trainer use exact per-value histograms instead of quantile binning.
class Gbdt {
 public:
  Gbdt() = default;

  /// Fits `num_classes`-way boosted trees on `rows` (n x m feature matrix)
  /// with labels in [0, num_classes).
  void Train(const std::vector<std::vector<int>>& rows,
             const std::vector<int>& labels, int num_classes,
             const GbdtConfig& config, Rng& rng);

  /// Class scores (unnormalized margins) for one feature row.
  std::vector<double> PredictMargin(const std::vector<int>& row) const;

  /// Softmax probabilities for one feature row.
  std::vector<double> PredictProba(const std::vector<int>& row) const;

  /// Most likely class for one feature row.
  int Predict(const std::vector<int>& row) const;

  /// Predicted class for every row (parallelized).
  std::vector<int> PredictBatch(const std::vector<std::vector<int>>& rows) const;

  bool trained() const { return num_classes_ > 0; }
  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }

 private:
  struct Node {
    int feature = -1;      // -1 marks a leaf
    int threshold = 0;     // go left when value <= threshold
    int left = -1;
    int right = -1;
    double weight = 0.0;   // leaf output
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const std::vector<int>& row) const;
    double PredictBinned(const std::uint8_t* row_values, int stride,
                         long long row) const;
  };

  /// Grows one regression tree on (grad, hess) for a single class.
  Tree GrowTree(const std::vector<double>& grad, const std::vector<double>& hess,
                const GbdtConfig& config) const;

  int num_classes_ = 0;
  int num_features_ = 0;
  std::vector<double> base_margin_;          // per-class prior margin
  std::vector<std::vector<Tree>> rounds_;    // [round][class]

  // Training-time state (column-major binned features).
  std::vector<std::uint8_t> columns_;  // num_features_ x n
  std::vector<int> column_bins_;       // distinct-value bound per feature
  long long train_n_ = 0;
};

}  // namespace ldpr::ml

#endif  // LDPR_ML_GBDT_H_
