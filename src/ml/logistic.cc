#include "ml/logistic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::ml {

void LogisticRegression::Train(const std::vector<std::vector<int>>& rows,
                               const std::vector<int>& labels, int num_classes,
                               const LogisticConfig& config, Rng& rng) {
  LDPR_REQUIRE(!rows.empty() && rows.size() == labels.size(),
               "LogisticRegression::Train requires matching non-empty inputs");
  LDPR_REQUIRE(num_classes >= 2, "requires >= 2 classes");
  num_classes_ = num_classes;
  num_features_ = static_cast<int>(rows[0].size());
  const int w_stride = num_features_ + 1;
  weights_.assign(static_cast<std::size_t>(num_classes_) * w_stride, 0.0);

  const long long n = static_cast<long long>(rows.size());
  std::vector<long long> order(n);
  std::iota(order.begin(), order.end(), 0LL);

  std::vector<double> margin(num_classes_);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Decaying step size stabilizes late epochs.
    const double lr = config.learning_rate / (1.0 + 0.1 * epoch);
    for (long long idx = 0; idx < n; ++idx) {
      const long long i = order[idx];
      const std::vector<int>& x = rows[i];
      LDPR_REQUIRE(static_cast<int>(x.size()) == num_features_,
                   "ragged feature matrix at row " << i);
      // Forward pass.
      double max_m = -1e300;
      for (int c = 0; c < num_classes_; ++c) {
        const double* w = &weights_[static_cast<std::size_t>(c) * w_stride];
        double m = w[num_features_];
        for (int f = 0; f < num_features_; ++f) m += w[f] * x[f];
        margin[c] = m;
        max_m = std::max(max_m, m);
      }
      double z = 0.0;
      for (int c = 0; c < num_classes_; ++c) {
        margin[c] = std::exp(margin[c] - max_m);
        z += margin[c];
      }
      // SGD update: w_c -= lr ((p_c - y_c) x + l2 w_c).
      for (int c = 0; c < num_classes_; ++c) {
        const double err = margin[c] / z - (labels[i] == c ? 1.0 : 0.0);
        double* w = &weights_[static_cast<std::size_t>(c) * w_stride];
        for (int f = 0; f < num_features_; ++f) {
          w[f] -= lr * (err * x[f] + config.l2 * w[f]);
        }
        w[num_features_] -= lr * err;
      }
    }
  }
}

std::vector<double> LogisticRegression::PredictProba(
    const std::vector<int>& row) const {
  LDPR_REQUIRE(trained(), "PredictProba called before Train");
  LDPR_REQUIRE(static_cast<int>(row.size()) == num_features_,
               "row feature-count mismatch");
  const int w_stride = num_features_ + 1;
  std::vector<double> margin(num_classes_);
  double max_m = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const double* w = &weights_[static_cast<std::size_t>(c) * w_stride];
    double m = w[num_features_];
    for (int f = 0; f < num_features_; ++f) m += w[f] * row[f];
    margin[c] = m;
    max_m = std::max(max_m, m);
  }
  double z = 0.0;
  for (double& m : margin) {
    m = std::exp(m - max_m);
    z += m;
  }
  for (double& m : margin) m /= z;
  return margin;
}

int LogisticRegression::Predict(const std::vector<int>& row) const {
  std::vector<double> p = PredictProba(row);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

std::vector<int> LogisticRegression::PredictBatch(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<int> out(rows.size());
  ParallelFor(0, static_cast<long long>(rows.size()),
              [&](long long i) { out[i] = Predict(rows[i]); });
  return out;
}

}  // namespace ldpr::ml
