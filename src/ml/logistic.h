#ifndef LDPR_ML_LOGISTIC_H_
#define LDPR_ML_LOGISTIC_H_

#include <vector>

#include "core/rng.h"

namespace ldpr::ml {

/// Multinomial logistic regression trained with mini-batch SGD.
///
/// A simple linear baseline next to Gbdt: the AIF attack results should not
/// hinge on tree-specific behaviour, and the paper's "classifier learning
/// setting" only assumes *some* multiclass learner. Also used in tests as an
/// independent cross-check of the GBDT substrate.
struct LogisticConfig {
  int epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int batch_size = 64;
};

class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// Fits on `rows` (n x m, small non-negative integers; features are used
  /// as-is, so one-hot encode categoricals upstream when appropriate).
  void Train(const std::vector<std::vector<int>>& rows,
             const std::vector<int>& labels, int num_classes,
             const LogisticConfig& config, Rng& rng);

  std::vector<double> PredictProba(const std::vector<int>& row) const;
  int Predict(const std::vector<int>& row) const;
  std::vector<int> PredictBatch(const std::vector<std::vector<int>>& rows) const;

  bool trained() const { return num_classes_ > 0; }

 private:
  int num_classes_ = 0;
  int num_features_ = 0;
  std::vector<double> weights_;  // num_classes_ x (num_features_ + 1), bias last
};

}  // namespace ldpr::ml

#endif  // LDPR_ML_LOGISTIC_H_
