#include "ml/ml_metrics.h"

#include "core/check.h"

namespace ldpr::ml {

double Accuracy(const std::vector<int>& truth, const std::vector<int>& pred) {
  LDPR_REQUIRE(truth.size() == pred.size() && !truth.empty(),
               "Accuracy requires equal-sized non-empty vectors");
  long long correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) ++correct;
  }
  return static_cast<double>(correct) / truth.size();
}

std::vector<std::vector<double>> ConfusionMatrix(const std::vector<int>& truth,
                                                 const std::vector<int>& pred,
                                                 int num_classes) {
  LDPR_REQUIRE(truth.size() == pred.size() && !truth.empty(),
               "ConfusionMatrix requires equal-sized non-empty vectors");
  LDPR_REQUIRE(num_classes >= 2, "ConfusionMatrix requires >= 2 classes");
  std::vector<std::vector<long long>> counts(
      num_classes, std::vector<long long>(num_classes, 0));
  std::vector<long long> row_totals(num_classes, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    LDPR_REQUIRE(truth[i] >= 0 && truth[i] < num_classes, "truth label range");
    LDPR_REQUIRE(pred[i] >= 0 && pred[i] < num_classes, "pred label range");
    ++counts[truth[i]][pred[i]];
    ++row_totals[truth[i]];
  }
  std::vector<std::vector<double>> out(num_classes,
                                       std::vector<double>(num_classes, 0.0));
  for (int t = 0; t < num_classes; ++t) {
    if (row_totals[t] == 0) continue;
    for (int p = 0; p < num_classes; ++p) {
      out[t][p] = static_cast<double>(counts[t][p]) / row_totals[t];
    }
  }
  return out;
}

double MacroF1(const std::vector<int>& truth, const std::vector<int>& pred,
               int num_classes) {
  LDPR_REQUIRE(truth.size() == pred.size() && !truth.empty(),
               "MacroF1 requires equal-sized non-empty vectors");
  LDPR_REQUIRE(num_classes >= 2, "MacroF1 requires >= 2 classes");
  std::vector<long long> tp(num_classes, 0), fp(num_classes, 0),
      fn(num_classes, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == pred[i]) {
      ++tp[truth[i]];
    } else {
      ++fp[pred[i]];
      ++fn[truth[i]];
    }
  }
  double f1_sum = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    const double denom = 2.0 * tp[c] + fp[c] + fn[c];
    f1_sum += denom > 0.0 ? 2.0 * tp[c] / denom : 0.0;
  }
  return f1_sum / num_classes;
}

}  // namespace ldpr::ml
