#ifndef LDPR_ML_ML_METRICS_H_
#define LDPR_ML_ML_METRICS_H_

#include <vector>

namespace ldpr::ml {

/// Classification accuracy in [0, 1].
double Accuracy(const std::vector<int>& truth, const std::vector<int>& pred);

/// Row-normalized confusion matrix C[t][p] = P(pred = p | truth = t).
std::vector<std::vector<double>> ConfusionMatrix(const std::vector<int>& truth,
                                                 const std::vector<int>& pred,
                                                 int num_classes);

/// Macro-averaged F1 score over `num_classes` classes.
double MacroF1(const std::vector<int>& truth, const std::vector<int>& pred,
               int num_classes);

}  // namespace ldpr::ml

#endif  // LDPR_ML_ML_METRICS_H_
