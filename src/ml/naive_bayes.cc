#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"

namespace ldpr::ml {

void NaiveBayes::Train(const std::vector<std::vector<int>>& rows,
                       const std::vector<int>& labels, int num_classes,
                       const NaiveBayesConfig& config) {
  LDPR_REQUIRE(!rows.empty(), "training set must be non-empty");
  LDPR_REQUIRE(rows.size() == labels.size(),
               "rows (" << rows.size() << ") and labels (" << labels.size()
                        << ") must align");
  LDPR_REQUIRE(num_classes >= 2, "need at least 2 classes, got "
                                     << num_classes);
  LDPR_REQUIRE(config.alpha > 0, "smoothing alpha must be positive, got "
                                     << config.alpha);

  // Validate and scan into locals first so a failed Train leaves the model
  // unchanged (strong exception safety; a half-trained model must not look
  // trained()).
  const int num_features = static_cast<int>(rows[0].size());
  LDPR_REQUIRE(num_features >= 1, "rows must have at least one feature");

  std::vector<int> cardinality(num_features, 1);
  for (const auto& row : rows) {
    LDPR_REQUIRE(static_cast<int>(row.size()) == num_features,
                 "ragged feature matrix");
    for (int f = 0; f < num_features; ++f) {
      LDPR_REQUIRE(row[f] >= 0, "features must be non-negative");
      cardinality[f] = std::max(cardinality[f], row[f] + 1);
    }
  }
  for (int label : labels) {
    LDPR_REQUIRE(label >= 0 && label < num_classes,
                 "label out of range: " << label);
  }

  std::vector<int> offset(num_features, 0);
  int total_values = 0;
  for (int f = 0; f < num_features; ++f) {
    offset[f] = total_values;
    total_values += cardinality[f];
  }

  // Counts.
  std::vector<double> class_count(num_classes, 0.0);
  std::vector<double> value_count(
      static_cast<std::size_t>(total_values) * num_classes, 0.0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const int c = labels[i];
    class_count[c] += 1.0;
    for (int f = 0; f < num_features; ++f) {
      value_count[(static_cast<std::size_t>(offset[f]) + rows[i][f]) *
                      num_classes +
                  c] += 1.0;
    }
  }

  // Smoothed log probabilities.
  const double n = static_cast<double>(rows.size());
  std::vector<double> log_prior(num_classes, 0.0);
  for (int c = 0; c < num_classes; ++c) {
    log_prior[c] = std::log((class_count[c] + config.alpha) /
                            (n + config.alpha * num_classes));
  }
  std::vector<double> log_conditional(value_count.size(), 0.0);
  for (int f = 0; f < num_features; ++f) {
    for (int c = 0; c < num_classes; ++c) {
      const double denom = class_count[c] + config.alpha * cardinality[f];
      for (int v = 0; v < cardinality[f]; ++v) {
        const std::size_t idx =
            (static_cast<std::size_t>(offset[f]) + v) * num_classes + c;
        log_conditional[idx] =
            std::log((value_count[idx] + config.alpha) / denom);
      }
    }
  }

  // Commit.
  num_classes_ = num_classes;
  num_features_ = num_features;
  feature_cardinality_ = std::move(cardinality);
  feature_offset_ = std::move(offset);
  log_prior_ = std::move(log_prior);
  log_conditional_ = std::move(log_conditional);
}

double NaiveBayes::LogConditional(int feature, int cls, int value) const {
  const int clamped =
      std::clamp(value, 0, feature_cardinality_[feature] - 1);
  return log_conditional_[(static_cast<std::size_t>(feature_offset_[feature]) +
                           clamped) *
                              num_classes_ +
                          cls];
}

std::vector<double> NaiveBayes::PredictLogJoint(
    const std::vector<int>& row) const {
  LDPR_REQUIRE(trained(), "model is not trained");
  LDPR_REQUIRE(static_cast<int>(row.size()) == num_features_,
               "row has " << row.size() << " features, expected "
                          << num_features_);
  std::vector<double> scores = log_prior_;
  for (int f = 0; f < num_features_; ++f) {
    for (int c = 0; c < num_classes_; ++c) {
      scores[c] += LogConditional(f, c, row[f]);
    }
  }
  return scores;
}

std::vector<double> NaiveBayes::PredictProba(
    const std::vector<int>& row) const {
  std::vector<double> scores = PredictLogJoint(row);
  const double mx = *std::max_element(scores.begin(), scores.end());
  double sum = 0.0;
  for (double& s : scores) {
    s = std::exp(s - mx);
    sum += s;
  }
  for (double& s : scores) s /= sum;
  return scores;
}

int NaiveBayes::Predict(const std::vector<int>& row) const {
  std::vector<double> scores = PredictLogJoint(row);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<int> NaiveBayes::PredictBatch(
    const std::vector<std::vector<int>>& rows) const {
  std::vector<int> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Predict(row));
  return out;
}

}  // namespace ldpr::ml
