#ifndef LDPR_ML_NAIVE_BAYES_H_
#define LDPR_ML_NAIVE_BAYES_H_

#include <vector>

#include "ml/dataset_split.h"

namespace ldpr::ml {

/// Categorical naive Bayes with Laplace smoothing.
///
/// A third attack learner for the sampled-attribute inference pipeline
/// (Section 3.3), between the GBDT (the paper's XGBoost substitute) and the
/// closed-form Bayes adversary: naive Bayes *learns* the per-feature class
/// conditionals from the training set but assumes feature independence given
/// the class — exactly the structure of an RS+FD tuple (one value per
/// attribute, independent randomization), which makes it a natural
/// diagnostic: if the GBDT falls far below naive Bayes, the GBDT is
/// under-trained; if it exceeds it, the data carries cross-feature signal.
struct NaiveBayesConfig {
  double alpha = 1.0;  ///< Laplace smoothing pseudo-count (> 0)
};

class NaiveBayes {
 public:
  NaiveBayes() = default;

  /// Fits class priors and per-feature categorical conditionals on `rows`
  /// (n x m matrix of small non-negative integers) with labels in
  /// [0, num_classes).
  void Train(const std::vector<std::vector<int>>& rows,
             const std::vector<int>& labels, int num_classes,
             const NaiveBayesConfig& config = {});

  /// Per-class log joint log P(c) + sum_f log P(x_f | c).
  std::vector<double> PredictLogJoint(const std::vector<int>& row) const;

  /// Posterior probabilities for one row.
  std::vector<double> PredictProba(const std::vector<int>& row) const;

  /// Most likely class for one row.
  int Predict(const std::vector<int>& row) const;

  /// Predicted class for every row.
  std::vector<int> PredictBatch(const std::vector<std::vector<int>>& rows) const;

  bool trained() const { return num_classes_ > 0; }
  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }

 private:
  int num_classes_ = 0;
  int num_features_ = 0;
  std::vector<int> feature_cardinality_;  ///< distinct values per feature
  std::vector<double> log_prior_;         ///< [class]
  /// Flattened [feature][class][value] log conditionals.
  std::vector<double> log_conditional_;
  std::vector<int> feature_offset_;  ///< start of feature f's block

  double LogConditional(int feature, int cls, int value) const;
};

}  // namespace ldpr::ml

#endif  // LDPR_ML_NAIVE_BAYES_H_
