#include "multidim/adaptive.h"

#include <cmath>
#include <utility>

#include "core/check.h"
#include "fo/grr.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"
#include "multidim/variance.h"

namespace ldpr::multidim {

fo::Protocol AdaptiveSmpChoice(int k, double epsilon) {
  LDPR_REQUIRE(k >= 2, "domain size must be >= 2, got " << k);
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  // Eq. 2 variance at f = 0 is q(1-q)/(n(p-q)^2); comparing GRR against OUE
  // reduces to Wang et al.'s rule: GRR wins iff k < 3 e^eps + 2. We compare
  // the variances directly so the rule stays correct if either protocol's
  // parameters change.
  fo::Grr grr(k, epsilon);
  fo::Oue oue(k, epsilon);
  return grr.EstimatorVariance(1) <= oue.EstimatorVariance(1)
             ? fo::Protocol::kGrr
             : fo::Protocol::kOue;
}

RsFdVariant AdaptiveRsFdChoice(int k, int d, double epsilon) {
  LDPR_REQUIRE(k >= 2 && d >= 2 && epsilon > 0,
               "AdaptiveRsFdChoice requires k >= 2, d >= 2, epsilon > 0");
  const double var_grr =
      RsFdVariance(RsFdVariant::kGrr, k, d, epsilon, /*n=*/1, /*f=*/0.0);
  const double var_oue =
      RsFdVariance(RsFdVariant::kOueZ, k, d, epsilon, /*n=*/1, /*f=*/0.0);
  return var_grr <= var_oue ? RsFdVariant::kGrr : RsFdVariant::kOueZ;
}

SmpAdaptive::SmpAdaptive(std::vector<int> domain_sizes, double epsilon)
    : domain_sizes_(std::move(domain_sizes)), epsilon_(epsilon) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "SMP targets multidimensional data (d >= 2), got d="
                   << domain_sizes_.size());
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  oracles_.reserve(domain_sizes_.size());
  for (int k : domain_sizes_) {
    oracles_.push_back(
        fo::MakeOracle(AdaptiveSmpChoice(k, epsilon), k, epsilon));
  }
}

SmpReport SmpAdaptive::RandomizeUser(const std::vector<int>& record,
                                     Rng& rng) const {
  return RandomizeUserAttribute(record, static_cast<int>(rng.UniformInt(d())),
                                rng);
}

SmpReport SmpAdaptive::RandomizeUserAttribute(const std::vector<int>& record,
                                              int attribute, Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  SmpReport out;
  out.attribute = attribute;
  out.report = oracles_[attribute]->Randomize(record[attribute], rng);
  return out;
}

std::vector<std::vector<double>> SmpAdaptive::Estimate(
    const std::vector<SmpReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  std::vector<std::vector<long long>> counts(d());
  std::vector<long long> per_attribute_n(d(), 0);
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const SmpReport& r : reports) {
    LDPR_REQUIRE(r.attribute >= 0 && r.attribute < d(),
                 "report attribute out of range");
    oracles_[r.attribute]->AccumulateSupport(r.report, &counts[r.attribute]);
    ++per_attribute_n[r.attribute];
  }
  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    if (per_attribute_n[j] == 0) {
      est[j].assign(domain_sizes_[j], 0.0);
      continue;
    }
    est[j] = oracles_[j]->EstimateFromCounts(counts[j], per_attribute_n[j]);
  }
  return est;
}

fo::Protocol SmpAdaptive::choice(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return oracles_[attribute]->protocol();
}

const fo::FrequencyOracle& SmpAdaptive::oracle(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return *oracles_[attribute];
}

RsFdAdaptive::RsFdAdaptive(std::vector<int> domain_sizes, double epsilon)
    : domain_sizes_(std::move(domain_sizes)), epsilon_(epsilon) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "RS+FD targets multidimensional data (d >= 2), got d="
                   << domain_sizes_.size());
  for (int k : domain_sizes_) {
    LDPR_REQUIRE(k >= 2, "every attribute needs domain size >= 2");
  }
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  amplified_epsilon_ = AmplifiedEpsilon(epsilon_, d());
  choices_.reserve(domain_sizes_.size());
  for (int k : domain_sizes_) {
    choices_.push_back(AdaptiveRsFdChoice(k, d(), epsilon_));
  }
  oue_p_ = fo::Oue::PForEpsilon(amplified_epsilon_);
  oue_q_ = fo::Oue::QForEpsilon(amplified_epsilon_);
}

RsFdVariant RsFdAdaptive::choice(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return choices_[attribute];
}

double RsFdAdaptive::p(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (choices_[attribute] == RsFdVariant::kOueZ) return oue_p_;
  const double e = std::exp(amplified_epsilon_);
  return e / (e + domain_sizes_[attribute] - 1);
}

double RsFdAdaptive::q(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (choices_[attribute] == RsFdVariant::kOueZ) return oue_q_;
  return (1.0 - p(attribute)) / (domain_sizes_[attribute] - 1);
}

MultidimReport RsFdAdaptive::RandomizeUser(const std::vector<int>& record,
                                           Rng& rng) const {
  return RandomizeUserWithAttribute(
      record, static_cast<int>(rng.UniformInt(d())), rng);
}

MultidimReport RsFdAdaptive::RandomizeUserWithAttribute(
    const std::vector<int>& record, int sampled_attribute, Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  LDPR_REQUIRE(sampled_attribute >= 0 && sampled_attribute < d(),
               "sampled attribute out of range");
  MultidimReport out;
  out.sampled_attribute = sampled_attribute;
  out.values.assign(d(), -1);
  out.bits.resize(d());
  for (int j = 0; j < d(); ++j) {
    const int kj = domain_sizes_[j];
    if (choices_[j] == RsFdVariant::kGrr) {
      if (j == sampled_attribute) {
        out.values[j] = fo::Grr::Perturb(record[j], kj, amplified_epsilon_,
                                         rng);
      } else {
        out.values[j] = static_cast<int>(rng.UniformInt(kj));
      }
    } else {
      std::vector<std::uint8_t> input;
      if (j == sampled_attribute) {
        input = fo::UnaryEncoding::OneHot(record[j], kj);
      } else {
        input.assign(kj, 0);  // OUE-z fake data
      }
      out.bits[j] = fo::UnaryEncoding::PerturbBits(input, oue_p_, oue_q_, rng);
    }
  }
  return out;
}

std::vector<std::vector<double>> RsFdAdaptive::Estimate(
    const std::vector<MultidimReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  std::vector<std::vector<long long>> counts(d());
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const MultidimReport& r : reports) {
    LDPR_REQUIRE(static_cast<int>(r.values.size()) == d() &&
                     static_cast<int>(r.bits.size()) == d(),
                 "adaptive report width mismatch");
    for (int j = 0; j < d(); ++j) {
      if (choices_[j] == RsFdVariant::kGrr) {
        LDPR_REQUIRE(r.values[j] >= 0 && r.values[j] < domain_sizes_[j],
                     "report value out of range");
        ++counts[j][r.values[j]];
      } else {
        LDPR_REQUIRE(static_cast<int>(r.bits[j].size()) == domain_sizes_[j],
                     "report bit-vector length mismatch");
        for (int v = 0; v < domain_sizes_[j]; ++v) {
          if (r.bits[j][v]) ++counts[j][v];
        }
      }
    }
  }

  return EstimateFromSupportCounts(counts,
                                   static_cast<long long>(reports.size()));
}

std::vector<std::vector<double>> RsFdAdaptive::EstimateFromSupportCounts(
    const std::vector<std::vector<long long>>& counts, long long n_ll) const {
  LDPR_REQUIRE(static_cast<int>(counts.size()) == d(),
               "counts width mismatch");
  LDPR_REQUIRE(n_ll >= 1, "EstimateFromSupportCounts requires n >= 1");
  const double n = static_cast<double>(n_ll);
  const double dd = static_cast<double>(d());

  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    LDPR_REQUIRE(static_cast<int>(counts[j].size()) == domain_sizes_[j],
                 "counts for attribute " << j << " have wrong length");
    const double kj = domain_sizes_[j];
    const double pj = p(j);
    const double qj = q(j);
    est[j].resize(domain_sizes_[j]);
    for (int v = 0; v < domain_sizes_[j]; ++v) {
      const double c = static_cast<double>(counts[j][v]);
      if (choices_[j] == RsFdVariant::kGrr) {
        est[j][v] =
            (c * dd * kj - n * (dd - 1.0 + qj * kj)) / (n * kj * (pj - qj));
      } else {
        est[j][v] = dd * (c - n * qj) / (n * (pj - qj));
      }
    }
  }
  return est;
}

}  // namespace ldpr::multidim
