#ifndef LDPR_MULTIDIM_ADAPTIVE_H_
#define LDPR_MULTIDIM_ADAPTIVE_H_

#include <memory>
#include <vector>

#include "fo/factory.h"
#include "fo/frequency_oracle.h"
#include "multidim/rsfd.h"
#include "multidim/smp.h"

namespace ldpr::multidim {

/// Per-attribute adaptive protocol selection ("ADP").
///
/// The RS+FD paper (Arcolezi et al., CIKM '21) ships an ADP variant that
/// picks, per attribute, whichever of GRR and OUE has the smaller
/// closed-form estimator variance; Wang et al. (USENIX Security '17)
/// establish the same rule for single-attribute collection (GRR wins iff
/// k_j < 3 e^eps + 2). This module provides the rule and SMP / RS+FD
/// solutions built on it — the configuration the studied paper's Section 6
/// recommendation ("OUE and/or OLH depending on k_j") converges to when
/// communication cost is not binding.

/// Lower-variance single-attribute choice between GRR and OUE at budget
/// `epsilon` for domain size `k` (Eq. 2 variance at f = 0).
fo::Protocol AdaptiveSmpChoice(int k, double epsilon);

/// Lower-variance RS+FD variant between RS+FD[GRR] and RS+FD[OUE-z] for one
/// attribute of domain size `k` among `d` attributes at budget `epsilon`
/// (Theorem-2-style variance at f = 0; the CIKM '21 ADP rule).
RsFdVariant AdaptiveRsFdChoice(int k, int d, double epsilon);

/// SMP with a per-attribute adaptive oracle: attribute j uses
/// AdaptiveSmpChoice(k_j, epsilon). Reports are standard SmpReports; the
/// estimator dispatches on the per-attribute choice.
class SmpAdaptive {
 public:
  SmpAdaptive(std::vector<int> domain_sizes, double epsilon);

  SmpReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;
  SmpReport RandomizeUserAttribute(const std::vector<int>& record,
                                   int attribute, Rng& rng) const;

  /// Per-attribute estimates; attribute j uses only reports that sampled j.
  std::vector<std::vector<double>> Estimate(
      const std::vector<SmpReport>& reports) const;

  /// The protocol chosen for attribute j.
  fo::Protocol choice(int attribute) const;
  const fo::FrequencyOracle& oracle(int attribute) const;

  int d() const { return static_cast<int>(oracles_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }

 private:
  std::vector<int> domain_sizes_;
  double epsilon_;
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
};

/// RS+FD with a per-attribute adaptive randomizer (RS+FD[ADP]): attribute j
/// uses AdaptiveRsFdChoice(k_j, d, epsilon). Sampled values are sanitized at
/// the amplified budget with the chosen randomizer; fake data follows the
/// chosen variant's procedure (uniform value for GRR attributes, OUE on a
/// zero vector for OUE-z attributes).
///
/// Reports populate `values[j]` for GRR attributes (with `bits[j]` empty)
/// and `bits[j]` for OUE-z attributes (with `values[j] = -1`).
class RsFdAdaptive {
 public:
  RsFdAdaptive(std::vector<int> domain_sizes, double epsilon);

  MultidimReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;
  MultidimReport RandomizeUserWithAttribute(const std::vector<int>& record,
                                            int sampled_attribute,
                                            Rng& rng) const;

  /// Per-attribute unbiased estimates (RS+FD[GRR] / RS+FD[UE-z] estimators,
  /// dispatched on the per-attribute choice).
  std::vector<std::vector<double>> Estimate(
      const std::vector<MultidimReport>& reports) const;

  /// The per-attribute estimators applied to pre-accumulated support counts
  /// over n reports — the streaming/closed-form half of Estimate.
  std::vector<std::vector<double>> EstimateFromSupportCounts(
      const std::vector<std::vector<long long>>& counts, long long n) const;

  /// The RS+FD variant chosen for attribute j (kGrr or kOueZ).
  RsFdVariant choice(int attribute) const;

  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }
  double amplified_epsilon() const { return amplified_epsilon_; }

  /// Randomizer probabilities at the amplified budget for attribute j.
  double p(int attribute) const;
  double q(int attribute) const;

 private:
  std::vector<int> domain_sizes_;
  double epsilon_;
  double amplified_epsilon_;
  std::vector<RsFdVariant> choices_;
  double oue_p_ = 0.0;
  double oue_q_ = 0.0;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_ADAPTIVE_H_
