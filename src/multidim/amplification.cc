#include "multidim/amplification.h"

#include <cmath>

#include "core/check.h"

namespace ldpr::multidim {

double AmplifiedEpsilon(double epsilon, int d) {
  LDPR_REQUIRE(epsilon > 0.0, "AmplifiedEpsilon requires epsilon > 0");
  LDPR_REQUIRE(d >= 1, "AmplifiedEpsilon requires d >= 1");
  return std::log(d * (std::exp(epsilon) - 1.0) + 1.0);
}

double DeamplifiedEpsilon(double epsilon_prime, int d) {
  LDPR_REQUIRE(epsilon_prime > 0.0, "DeamplifiedEpsilon requires eps' > 0");
  LDPR_REQUIRE(d >= 1, "DeamplifiedEpsilon requires d >= 1");
  return std::log((std::exp(epsilon_prime) - 1.0) / d + 1.0);
}

}  // namespace ldpr::multidim
