#ifndef LDPR_MULTIDIM_AMPLIFICATION_H_
#define LDPR_MULTIDIM_AMPLIFICATION_H_

namespace ldpr::multidim {

/// Privacy amplification by sampling (Li et al. 2012), as used by RS+FD and
/// RS+RFD: when each user reports a uniformly sampled 1-of-d attribute and
/// hides which one, the sampled attribute may be sanitized with
///   eps' = ln(d (e^eps - 1) + 1)
/// while the whole mechanism still satisfies eps-LDP. Requires eps > 0,
/// d >= 1.
double AmplifiedEpsilon(double epsilon, int d);

/// Inverse of AmplifiedEpsilon: the end-to-end budget eps such that the
/// sampled attribute is sanitized with eps'. Requires eps' > 0, d >= 1.
double DeamplifiedEpsilon(double epsilon_prime, int d);

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_AMPLIFICATION_H_
