#include "multidim/closed_form.h"

#include <memory>

#include "core/check.h"
#include "core/sampling.h"
#include "fo/frequency_oracle.h"

namespace ldpr::multidim {

namespace {

/// Validates `hists` against a solution of dimensionality d / the given
/// domain sizes and total population n.
void CheckHistograms(const AttributeHistograms& hists,
                     const std::vector<int>& domain_sizes, long long n) {
  LDPR_REQUIRE(hists.size() == domain_sizes.size(),
               "histograms cover " << hists.size() << " attributes, expected "
                                   << domain_sizes.size());
  LDPR_REQUIRE(n >= 1, "closed-form sampling requires n >= 1");
  for (std::size_t j = 0; j < hists.size(); ++j) {
    LDPR_REQUIRE(static_cast<int>(hists[j].size()) == domain_sizes[j],
                 "histogram for attribute " << j << " has wrong length");
    long long total = 0;
    for (long long h : hists[j]) {
      LDPR_REQUIRE(h >= 0, "histogram cells must be non-negative");
      total += h;
    }
    LDPR_REQUIRE(total == n, "histogram for attribute "
                                 << j << " sums to " << total
                                 << ", expected n = " << n);
  }
}

/// Thins one attribute's histogram by the 1/d attribute-sampling rate:
/// sub[v] ~ Binomial(hist[v], 1/d), returning the thinned total m_j.
long long ThinByAttributeSampling(const std::vector<long long>& hist, int d,
                                  Rng& rng, std::vector<long long>* sub) {
  const double rate = 1.0 / static_cast<double>(d);
  sub->assign(hist.size(), 0);
  long long m = 0;
  for (std::size_t v = 0; v < hist.size(); ++v) {
    (*sub)[v] = rng.Binomial64(hist[v], rate);
    m += (*sub)[v];
  }
  return m;
}

/// Sampled-user closed form, shared by every randomizer: value v of the
/// attribute is supported with probability p by each of the sub[v] users
/// truly holding v and with probability q by each of the other m - sub[v]
/// sampled users, so cell v's count is Binomial(sub[v], p) +
/// Binomial(m - sub[v], q) — O(k) draws. For UE payloads this is exact
/// jointly across cells (bits perturb independently); for GRR it is the
/// per-cell-exact marginal form of the report multinomial (the same
/// contract as fo::Aggregator::AccumulateHistogram's default — every
/// per-cell estimate, its variance, and any expected-MSE metric stays
/// distribution-exact; only cross-cell count correlations are dropped).
/// The O(k) form is what buys the order-of-magnitude on large-k attributes
/// (ACS k = 92) over a sum-preserving O(k^2) lie-spreading chain.
void AddSampledSupportCounts(const std::vector<long long>& sub, long long m,
                             double p, double q, Rng& rng,
                             std::vector<long long>* counts) {
  for (std::size_t v = 0; v < sub.size(); ++v) {
    (*counts)[v] += rng.Binomial64(sub[v], p) + rng.Binomial64(m - sub[v], q);
  }
}

/// Fake-data counts for one attribute: `fakes` users draw a fake value from
/// `weights` (uniform for RS+FD, the prior f~ for RS+RFD). GRR payloads emit
/// the value itself (one multinomial); UE payloads one-hot it and perturb
/// (multinomial over hot positions, then per-bit binomials). UE-z payloads
/// perturb the all-zero vector: Binomial(fakes, q) per bit.
void AddFakeCounts(long long fakes, bool ue_payload, bool zero_vector,
                   double p, double q, const std::vector<double>& weights,
                   Rng& rng, std::vector<long long>* counts) {
  if (fakes <= 0) return;
  const int k = static_cast<int>(counts->size());
  if (!ue_payload) {
    const std::vector<long long> draw = SampleMultinomial(fakes, weights, rng);
    for (int v = 0; v < k; ++v) (*counts)[v] += draw[v];
    return;
  }
  if (zero_vector) {
    for (int v = 0; v < k; ++v) (*counts)[v] += rng.Binomial64(fakes, q);
    return;
  }
  const std::vector<long long> hot = SampleMultinomial(fakes, weights, rng);
  AddSampledSupportCounts(hot, fakes, p, q, rng, counts);
}

std::vector<double> UniformWeights(int k) {
  return std::vector<double>(k, 1.0);
}

}  // namespace

std::vector<std::vector<long long>> SampleSupportCounts(
    const RsFd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  CheckHistograms(hists, protocol.domain_sizes(), n);
  const int d = protocol.d();
  const bool ue = IsUeVariant(protocol.variant());
  const bool zero = IsZeroFakeVariant(protocol.variant());
  std::vector<std::vector<long long>> counts(d);
  std::vector<long long> sub;
  for (int j = 0; j < d; ++j) {
    const int kj = protocol.domain_sizes()[j];
    counts[j].assign(kj, 0);
    const long long m = ThinByAttributeSampling(hists[j], d, rng, &sub);
    const double pj = protocol.p(j);
    const double qj = protocol.q(j);
    AddSampledSupportCounts(sub, m, pj, qj, rng, &counts[j]);
    AddFakeCounts(n - m, ue, zero, pj, qj, UniformWeights(kj), rng,
                  &counts[j]);
  }
  return counts;
}

std::vector<std::vector<long long>> SampleSupportCounts(
    const RsRfd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  CheckHistograms(hists, protocol.domain_sizes(), n);
  const int d = protocol.d();
  const bool ue = protocol.variant() != RsRfdVariant::kGrr;
  std::vector<std::vector<long long>> counts(d);
  std::vector<long long> sub;
  for (int j = 0; j < d; ++j) {
    counts[j].assign(protocol.domain_sizes()[j], 0);
    const long long m = ThinByAttributeSampling(hists[j], d, rng, &sub);
    const double pj = protocol.p(j);
    const double qj = protocol.q(j);
    AddSampledSupportCounts(sub, m, pj, qj, rng, &counts[j]);
    // Realistic fakes: one draw from the attribute's prior f~ per fake user.
    AddFakeCounts(n - m, ue, /*zero_vector=*/false, pj, qj,
                  protocol.priors()[j], rng, &counts[j]);
  }
  return counts;
}

std::vector<std::vector<long long>> SampleSupportCounts(
    const RsFdAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng) {
  CheckHistograms(hists, protocol.domain_sizes(), n);
  const int d = protocol.d();
  std::vector<std::vector<long long>> counts(d);
  std::vector<long long> sub;
  for (int j = 0; j < d; ++j) {
    const int kj = protocol.domain_sizes()[j];
    counts[j].assign(kj, 0);
    const long long m = ThinByAttributeSampling(hists[j], d, rng, &sub);
    const double pj = protocol.p(j);
    const double qj = protocol.q(j);
    const bool ue = protocol.choice(j) != RsFdVariant::kGrr;  // kOueZ
    AddSampledSupportCounts(sub, m, pj, qj, rng, &counts[j]);
    AddFakeCounts(n - m, ue, /*zero_vector=*/true, pj, qj,
                  UniformWeights(kj), rng, &counts[j]);
  }
  return counts;
}

std::vector<std::vector<double>> EstimateClosedForm(
    const RsFd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  return protocol.EstimateFromSupportCounts(
      SampleSupportCounts(protocol, hists, n, rng), n);
}

std::vector<std::vector<double>> EstimateClosedForm(
    const RsRfd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  return protocol.EstimateFromSupportCounts(
      SampleSupportCounts(protocol, hists, n, rng), n);
}

std::vector<std::vector<double>> EstimateClosedForm(
    const RsFdAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng) {
  return protocol.EstimateFromSupportCounts(
      SampleSupportCounts(protocol, hists, n, rng), n);
}

std::vector<std::vector<double>> EstimateClosedForm(
    const Spl& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  CheckHistograms(hists, protocol.domain_sizes(), n);
  std::vector<std::vector<double>> est(protocol.d());
  for (int j = 0; j < protocol.d(); ++j) {
    auto agg = protocol.oracle(j).MakeAggregator();
    agg->AccumulateHistogram(hists[j], rng);
    est[j] = agg->Estimate();
  }
  return est;
}

namespace {

/// Shared SMP closed form: works for any solution exposing d() and
/// oracle(j) (Smp, SmpAdaptive).
template <typename Solution>
std::vector<std::vector<double>> SmpClosedForm(
    const Solution& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  CheckHistograms(hists, protocol.domain_sizes(), n);
  const int d = protocol.d();
  const double rate = 1.0 / static_cast<double>(d);
  std::vector<std::vector<double>> est(d);
  for (int j = 0; j < d; ++j) {
    auto agg = protocol.oracle(j).MakeAggregator();
    const long long nj = agg->AccumulateSubsampledHistogram(hists[j], rate,
                                                            rng);
    if (nj == 0) {
      // No user sampled this attribute; the best unbiased guess is uniform
      // (mirrors Smp::Estimate).
      const int kj = protocol.domain_sizes()[j];
      est[j].assign(kj, 1.0 / kj);
    } else {
      est[j] = agg->Estimate();
    }
  }
  return est;
}

}  // namespace

std::vector<std::vector<double>> EstimateClosedForm(
    const Smp& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng) {
  return SmpClosedForm(protocol, hists, n, rng);
}

std::vector<std::vector<double>> EstimateClosedForm(
    const SmpAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng) {
  return SmpClosedForm(protocol, hists, n, rng);
}

}  // namespace ldpr::multidim
