#ifndef LDPR_MULTIDIM_CLOSED_FORM_H_
#define LDPR_MULTIDIM_CLOSED_FORM_H_

// Closed-form tally sampling for the multidimensional solutions.
//
// Every estimation-only experiment of the paper (fig05/fig16/abl06/abl07 and
// the Wang-style numeric scenarios) consumes only the aggregate support
// counts, never the per-user reports. For a population summarized by its
// per-attribute true-value histograms, those counts can be drawn directly:
//
//   * the users that sample attribute j thin each histogram cell as
//     Binomial(h_v, 1/d) — exact, since users sample independently;
//   * the sampled users' randomizer output is the protocol's closed-form
//     support tally: cell v draws Binomial(sub_v, p) + Binomial(m - sub_v,
//     q), the same construction as fo::Aggregator::AccumulateHistogram
//     (exact jointly across cells for UE payloads, per-cell-exact marginal
//     for GRR);
//   * the n - m_j fake-data users contribute one Multinomial(n - m_j, fake
//     distribution) per attribute (uniform for RS+FD, the prior f~ for
//     RS+RFD) for GRR payloads, or a fake-one-hot multinomial followed by
//     per-bit binomials for UE payloads.
//
// O(sum_j k_j) RNG draws replace O(n * d) per-user draws, so
// full-paper-scale estimation runs in microseconds. Per attribute and per
// value the sampled counts are distribution-exact; dropped are only the
// cross-cell GRR count correlations and the cross-attribute correlation
// induced by one user sampling a single attribute (the same caveat as the
// fo closed-form histogram paths), which leaves every per-value estimate,
// its variance, and any expected-MSE metric exact in distribution. The RNG
// streams differ from the per-user paths —
// experiment profiles gate this behind RunProfile::Fidelity::kFast and pin
// separate goldens.

#include <vector>

#include "core/rng.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"

namespace ldpr::multidim {

/// Per-attribute true-value histograms: hists[j][v] = #users whose attribute
/// j holds v. All closed-form entry points consume this summary; sim owns
/// the dataset-facing builder (sim::AttributeHistograms).
using AttributeHistograms = std::vector<std::vector<long long>>;

/// Draws the aggregate RS+FD support counts of n users summarized by
/// `hists` — the closed-form counterpart of accumulating n
/// RandomizeUser outputs (per attribute distribution-exact, see above).
std::vector<std::vector<long long>> SampleSupportCounts(
    const RsFd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);

/// RS+RFD counterpart: fake data follows the protocol's priors f~.
std::vector<std::vector<long long>> SampleSupportCounts(
    const RsRfd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);

/// RS+FD[ADP] counterpart: per-attribute GRR / OUE-z dispatch.
std::vector<std::vector<long long>> SampleSupportCounts(
    const RsFdAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng);

/// Closed-form per-attribute frequency estimates: SampleSupportCounts
/// composed with the solution's EstimateFromSupportCounts.
std::vector<std::vector<double>> EstimateClosedForm(
    const RsFd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);
std::vector<std::vector<double>> EstimateClosedForm(
    const RsRfd& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);
std::vector<std::vector<double>> EstimateClosedForm(
    const RsFdAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng);

/// SPL: every user reports every attribute at eps/d, so attribute j is one
/// full fo closed-form collection over hists[j].
std::vector<std::vector<double>> EstimateClosedForm(
    const Spl& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);

/// SMP: attribute j sees a Binomial(h_v, 1/d)-thinned sub-population
/// (fo::Aggregator::AccumulateSubsampledHistogram); attributes no user
/// sampled estimate uniform, mirroring Smp::Estimate.
std::vector<std::vector<double>> EstimateClosedForm(
    const Smp& protocol, const AttributeHistograms& hists, long long n,
    Rng& rng);
std::vector<std::vector<double>> EstimateClosedForm(
    const SmpAdaptive& protocol, const AttributeHistograms& hists,
    long long n, Rng& rng);

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_CLOSED_FORM_H_
