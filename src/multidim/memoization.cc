#include "multidim/memoization.h"

#include "core/check.h"

namespace ldpr::multidim {

MemoizedSmpClient::MemoizedSmpClient(const Smp& protocol)
    : protocol_(protocol), cache_(protocol.d()) {}

SmpReport MemoizedSmpClient::Report(const std::vector<int>& record,
                                    int attribute, Rng& rng) {
  LDPR_REQUIRE(attribute >= 0 && attribute < protocol_.d(),
               "attribute out of range");
  if (!cache_[attribute].has_value()) {
    SmpReport fresh = protocol_.RandomizeUserAttribute(record, attribute, rng);
    cache_[attribute] = fresh.report;
    ++fresh_reports_;
  }
  SmpReport out;
  out.attribute = attribute;
  out.report = *cache_[attribute];
  return out;
}

SmpReport MemoizedSmpClient::ReportRandomAttribute(
    const std::vector<int>& record, Rng& rng) {
  const int attribute = static_cast<int>(rng.UniformInt(protocol_.d()));
  return Report(record, attribute, rng);
}

bool MemoizedSmpClient::IsMemoized(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < protocol_.d(),
               "attribute out of range");
  return cache_[attribute].has_value();
}

void MemoizedSmpClient::Invalidate(int attribute) {
  LDPR_REQUIRE(attribute >= 0 && attribute < protocol_.d(),
               "attribute out of range");
  cache_[attribute].reset();
}

}  // namespace ldpr::multidim
