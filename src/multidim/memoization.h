#ifndef LDPR_MULTIDIM_MEMOIZATION_H_
#define LDPR_MULTIDIM_MEMOIZATION_H_

#include <optional>
#include <vector>

#include "multidim/smp.h"

namespace ldpr::multidim {

/// Longitudinal SMP client with memoization (Erlingsson et al. 2014, Ding et
/// al. 2017; the paper's recommended non-uniform-metric deployment,
/// Sections 3.2.3 and 6).
///
/// A user who samples the same attribute again re-sends the *cached* report
/// instead of re-randomizing, so repeated collections leak nothing beyond
/// the first. One instance models one user across surveys; the server-side
/// estimator is unchanged (Smp::Estimate), because each cached report is a
/// valid eps-LDP report of the same value.
///
/// Caveat (also the paper's): memoization assumes the underlying value is
/// static; if the value changes, call Invalidate() for that attribute.
class MemoizedSmpClient {
 public:
  /// `protocol` must outlive the client.
  explicit MemoizedSmpClient(const Smp& protocol);

  /// Reports attribute `attribute` of `record`, reusing the cached report
  /// when this attribute was reported before.
  SmpReport Report(const std::vector<int>& record, int attribute, Rng& rng);

  /// Samples an attribute uniformly at random (with replacement across
  /// calls, i.e. the non-uniform privacy metric) and reports it.
  SmpReport ReportRandomAttribute(const std::vector<int>& record, Rng& rng);

  /// True when the given attribute has a cached report.
  bool IsMemoized(int attribute) const;

  /// Number of *fresh* randomizations performed so far — the quantity that
  /// governs the user's cumulative privacy loss under sequential
  /// composition.
  int fresh_reports() const { return fresh_reports_; }

  /// Drops the cached report of one attribute (value changed).
  void Invalidate(int attribute);

 private:
  const Smp& protocol_;
  std::vector<std::optional<fo::Report>> cache_;
  int fresh_reports_ = 0;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_MEMOIZATION_H_
