#include "multidim/numeric.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace ldpr::multidim {

const char* NumericMechanismName(NumericMechanism mechanism) {
  switch (mechanism) {
    case NumericMechanism::kDuchi:
      return "Duchi";
    case NumericMechanism::kPiecewise:
      return "PM";
  }
  return "unknown";
}

NumericLdp::NumericLdp(NumericMechanism mechanism, double epsilon,
                       int grid_points)
    : mechanism_(mechanism), epsilon_(epsilon), grid_points_(grid_points) {
  LDPR_REQUIRE(epsilon > 0.0, "NumericLdp requires epsilon > 0");
  LDPR_REQUIRE(grid_points >= 2, "NumericLdp requires >= 2 grid points");
  const double e = std::exp(epsilon_);

  if (mechanism_ == NumericMechanism::kDuchi) {
    duchi_b_ = (e + 1.0) / (e - 1.0);
    duchi_pos_prob_.resize(grid_points_);
    for (int g = 0; g < grid_points_; ++g) {
      // P(+B | t) = ((e^eps - 1) t + e^eps + 1) / (2 e^eps + 2), the choice
      // that makes B(2P - 1) = t exactly.
      duchi_pos_prob_[g] =
          ((e - 1.0) * GridValue(g) + e + 1.0) / (2.0 * e + 2.0);
    }
    return;
  }

  // Piecewise Mechanism (Wang et al., Section III-B): piecewise-constant
  // density p_high on [l(t), r(t)] (width C - 1), p_high / e^eps elsewhere
  // on [-C, C].
  const double ehalf = std::exp(epsilon_ / 2.0);
  pm_c_ = (ehalf + 1.0) / (ehalf - 1.0);
  const double p_high = (e - ehalf) / (2.0 * ehalf + 2.0);
  const double p_low = p_high / e;

  const double bucket_width = 2.0 * pm_c_ / grid_points_;
  pm_bucket_value_.resize(grid_points_);
  for (int b = 0; b < grid_points_; ++b) {
    pm_bucket_value_[b] = -pm_c_ + (b + 0.5) * bucket_width;
  }

  pm_bucket_prob_.resize(grid_points_);
  pm_samplers_.reserve(grid_points_);
  for (int g = 0; g < grid_points_; ++g) {
    const double t = GridValue(g);
    const double l = (pm_c_ + 1.0) / 2.0 * t - (pm_c_ - 1.0) / 2.0;
    const double r = l + pm_c_ - 1.0;
    std::vector<double>& probs = pm_bucket_prob_[g];
    probs.resize(grid_points_);
    double sum = 0.0;
    for (int b = 0; b < grid_points_; ++b) {
      const double lo = -pm_c_ + b * bucket_width;
      const double hi = lo + bucket_width;
      const double overlap =
          std::max(0.0, std::min(hi, r) - std::max(lo, l));
      probs[b] = p_low * bucket_width + (p_high - p_low) * overlap;
      sum += probs[b];
    }
    // Exact integrals sum to 1 up to float drift; renormalize so the
    // categorical and multinomial draws share one distribution.
    for (double& p : probs) p /= sum;
    pm_samplers_.emplace_back(probs);
  }
}

int NumericLdp::GridIndex(double t) const {
  const double clamped = std::clamp(t, -1.0, 1.0);
  const double step = 2.0 / (grid_points_ - 1);
  const int g = static_cast<int>(std::lround((clamped + 1.0) / step));
  return std::clamp(g, 0, grid_points_ - 1);
}

double NumericLdp::GridValue(int g) const {
  LDPR_REQUIRE(g >= 0 && g < grid_points_, "grid index out of range");
  return -1.0 + 2.0 * g / (grid_points_ - 1);
}

double NumericLdp::output_bound() const {
  return mechanism_ == NumericMechanism::kDuchi ? duchi_b_ : pm_c_;
}

double NumericLdp::Randomize(double t, Rng& rng) const {
  const int g = GridIndex(t);
  if (mechanism_ == NumericMechanism::kDuchi) {
    return rng.Bernoulli(duchi_pos_prob_[g]) ? duchi_b_ : -duchi_b_;
  }
  return pm_bucket_value_[pm_samplers_[g].Sample(rng)];
}

double NumericLdp::SampleOutputSum(const std::vector<long long>& input_counts,
                                   Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(input_counts.size()) == grid_points_,
               "input histogram has " << input_counts.size()
                                      << " cells, expected " << grid_points_);
  double sum = 0.0;
  for (int g = 0; g < grid_points_; ++g) {
    const long long m = input_counts[g];
    LDPR_REQUIRE(m >= 0, "histogram cells must be non-negative");
    if (m == 0) continue;
    if (mechanism_ == NumericMechanism::kDuchi) {
      const long long pos = rng.Binomial64(m, duchi_pos_prob_[g]);
      sum += duchi_b_ * static_cast<double>(2 * pos - m);
    } else {
      const std::vector<long long> buckets =
          SampleMultinomial(m, pm_bucket_prob_[g], rng);
      for (int b = 0; b < grid_points_; ++b) {
        sum += static_cast<double>(buckets[b]) * pm_bucket_value_[b];
      }
    }
  }
  return sum;
}

double NumericLdp::ConditionalMean(int g) const {
  LDPR_REQUIRE(g >= 0 && g < grid_points_, "grid index out of range");
  if (mechanism_ == NumericMechanism::kDuchi) {
    return duchi_b_ * (2.0 * duchi_pos_prob_[g] - 1.0);
  }
  double mean = 0.0;
  for (int b = 0; b < grid_points_; ++b) {
    mean += pm_bucket_prob_[g][b] * pm_bucket_value_[b];
  }
  return mean;
}

double NumericLdp::ConditionalVariance(int g) const {
  const double mean = ConditionalMean(g);
  if (mechanism_ == NumericMechanism::kDuchi) {
    return duchi_b_ * duchi_b_ - mean * mean;
  }
  double second = 0.0;
  for (int b = 0; b < grid_points_; ++b) {
    second +=
        pm_bucket_prob_[g][b] * pm_bucket_value_[b] * pm_bucket_value_[b];
  }
  return second - mean * mean;
}

long long NumericMeanHalfCount(long long n) { return (n + 1) / 2; }

namespace {

/// t -> s = 2 t^2 - 1, the [-1, 1] recentering of t^2 (Wang et al.).
double SecondMomentInput(double t) { return 2.0 * t * t - 1.0; }

}  // namespace

std::vector<double> EstimateNumericMeans(
    const NumericLdp& mechanism,
    const std::vector<std::vector<double>>& columns, Rng& rng) {
  const int d = static_cast<int>(columns.size());
  LDPR_REQUIRE(d >= 1, "need at least one attribute column");
  const std::size_t n = columns[0].size();
  LDPR_REQUIRE(n >= 1, "need at least one user");
  for (const auto& column : columns) {
    LDPR_REQUIRE(column.size() == n,
                 "attribute columns must have equal length");
  }
  std::vector<double> sums(d, 0.0);
  std::vector<long long> counts(d, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const int j = static_cast<int>(rng.UniformInt(d));
    sums[j] += mechanism.Randomize(columns[j][i], rng);
    ++counts[j];
  }
  std::vector<double> means(d, 0.0);
  for (int j = 0; j < d; ++j) {
    if (counts[j] > 0) means[j] = sums[j] / counts[j];
  }
  return means;
}

std::vector<double> EstimateNumericMeansClosedForm(
    const NumericLdp& mechanism,
    const std::vector<std::vector<long long>>& hists, Rng& rng) {
  const int d = static_cast<int>(hists.size());
  LDPR_REQUIRE(d >= 1, "need at least one attribute histogram");
  const int grid = mechanism.grid_points();
  const double rate = 1.0 / static_cast<double>(d);
  std::vector<double> means(d, 0.0);
  std::vector<long long> sub(grid);
  for (int j = 0; j < d; ++j) {
    LDPR_REQUIRE(static_cast<int>(hists[j].size()) == grid,
                 "histogram for attribute " << j << " has wrong length");
    long long nj = 0;
    for (int g = 0; g < grid; ++g) {
      sub[g] = rng.Binomial64(hists[j][g], rate);
      nj += sub[g];
    }
    if (nj > 0) means[j] = mechanism.SampleOutputSum(sub, rng) / nj;
  }
  return means;
}

NumericMoments EstimateNumericMoments(
    const NumericLdp& mechanism,
    const std::vector<std::vector<double>>& columns, Rng& rng) {
  const int d = static_cast<int>(columns.size());
  LDPR_REQUIRE(d >= 1, "need at least one attribute column");
  const long long n = static_cast<long long>(columns[0].size());
  LDPR_REQUIRE(n >= 1, "need at least one user");
  for (const auto& column : columns) {
    LDPR_REQUIRE(static_cast<long long>(column.size()) == n,
                 "attribute columns must have equal length");
  }

  const long long mean_half = NumericMeanHalfCount(n);
  std::vector<double> sums(d, 0.0), moment_sums(d, 0.0);
  std::vector<long long> counts(d, 0), moment_counts(d, 0);
  for (long long i = 0; i < n; ++i) {
    const int j = static_cast<int>(rng.UniformInt(d));
    const double t = columns[j][static_cast<std::size_t>(i)];
    if (i < mean_half) {
      sums[j] += mechanism.Randomize(t, rng);
      ++counts[j];
    } else {
      moment_sums[j] += mechanism.Randomize(SecondMomentInput(t), rng);
      ++moment_counts[j];
    }
  }

  NumericMoments out;
  out.mean.resize(d);
  out.second_moment.resize(d);
  for (int j = 0; j < d; ++j) {
    out.mean[j] = counts[j] > 0 ? sums[j] / counts[j] : 0.0;
    // E[t^2] = (E[s] + 1) / 2; with no reports fall back to the uniform
    // prior's 1/3.
    out.second_moment[j] =
        moment_counts[j] > 0
            ? (moment_sums[j] / moment_counts[j] + 1.0) / 2.0
            : 1.0 / 3.0;
  }
  return out;
}

NumericMoments EstimateNumericMomentsClosedForm(
    const NumericLdp& mechanism,
    const std::vector<std::vector<long long>>& mean_hists,
    const std::vector<std::vector<long long>>& moment_hists, Rng& rng) {
  const int d = static_cast<int>(mean_hists.size());
  LDPR_REQUIRE(d >= 1, "need at least one attribute histogram");
  LDPR_REQUIRE(moment_hists.size() == mean_hists.size(),
               "mean/moment histogram widths differ");
  const int grid = mechanism.grid_points();
  const double rate = 1.0 / static_cast<double>(d);

  NumericMoments out;
  out.mean.resize(d);
  out.second_moment.resize(d);
  std::vector<long long> folded(grid), sub(grid);
  for (int j = 0; j < d; ++j) {
    LDPR_REQUIRE(static_cast<int>(mean_hists[j].size()) == grid &&
                     static_cast<int>(moment_hists[j].size()) == grid,
                 "histogram for attribute " << j << " has wrong length");
    // Mean half: thin by the 1/d attribute sampling, then draw the summed
    // outputs in closed form.
    long long nj = 0;
    for (int g = 0; g < grid; ++g) {
      sub[g] = rng.Binomial64(mean_hists[j][g], rate);
      nj += sub[g];
    }
    out.mean[j] = nj > 0 ? mechanism.SampleOutputSum(sub, rng) / nj : 0.0;

    // Moment half: fold t -> s = 2 t^2 - 1 on the grid (identical to the
    // snap Randomize applies), then thin and sum the same way.
    std::fill(folded.begin(), folded.end(), 0);
    for (int g = 0; g < grid; ++g) {
      folded[mechanism.GridIndex(SecondMomentInput(mechanism.GridValue(g)))] +=
          moment_hists[j][g];
    }
    long long mj = 0;
    for (int g = 0; g < grid; ++g) {
      sub[g] = rng.Binomial64(folded[g], rate);
      mj += sub[g];
    }
    out.second_moment[j] =
        mj > 0 ? (mechanism.SampleOutputSum(sub, rng) / mj + 1.0) / 2.0
               : 1.0 / 3.0;
  }
  return out;
}

}  // namespace ldpr::multidim
