#ifndef LDPR_MULTIDIM_NUMERIC_H_
#define LDPR_MULTIDIM_NUMERIC_H_

// Numeric (mean / variance) estimation under LDP, after Wang et al.,
// "Collecting and Analyzing Multidimensional Data with Local Differential
// Privacy" (ICDE '19, arXiv:1907.00782).
//
// Two one-dimensional eps-LDP mechanisms over [-1, 1] are provided, both
// defined on a finite G-point value grid so that estimation-only
// simulations admit closed-form tallies (the same trick the categorical
// closed-form paths use):
//
//   kDuchi     — Duchi et al.'s binary mechanism: output +/- B with
//                B = (e^eps + 1)/(e^eps - 1); E[y | t] = t exactly. The
//                aggregate is one Binomial per input grid value.
//   kPiecewise — Wang et al.'s Piecewise Mechanism with its output
//                discretized to G equal-width buckets over [-C, C]
//                (deterministic post-processing of the exact PM, so eps-LDP
//                is preserved). Bucket probabilities are exact integrals of
//                the piecewise-constant PM density; decoding a bucket to its
//                midpoint adds O((C/G)^2) bias, negligible against the LDP
//                noise at the G = 64 default. The aggregate is one
//                Multinomial over buckets per input grid value.
//
// Randomize() snaps its input to the grid first, so the per-user and
// closed-form paths target byte-for-byte the same output distribution —
// which is what lets sim_fast_profile_test assert exact statistical
// equivalence between the two fidelities.

#include <vector>

#include "core/rng.h"
#include "core/sampling.h"

namespace ldpr::multidim {

enum class NumericMechanism {
  kDuchi,      ///< Duchi et al. binary mechanism.
  kPiecewise,  ///< Wang et al. Piecewise Mechanism on an output grid.
};

const char* NumericMechanismName(NumericMechanism mechanism);

class NumericLdp {
 public:
  /// `grid_points` (G >= 2) fixes both the input value grid over [-1, 1]
  /// and, for kPiecewise, the output bucket grid over [-C, C].
  NumericLdp(NumericMechanism mechanism, double epsilon, int grid_points = 64);

  /// Index of the input grid point nearest to t (t clamped to [-1, 1]).
  int GridIndex(double t) const;
  /// Value of input grid point g.
  double GridValue(int g) const;
  int grid_points() const { return grid_points_; }

  /// Client side: one sanitized numeric output for true value t (snapped to
  /// the grid).
  double Randomize(double t, Rng& rng) const;

  /// Closed-form server side: the summed outputs of input_counts[g]-many
  /// users holding grid value g, drawn from exactly the per-input output
  /// distribution of Randomize — O(G) (kDuchi) / O(G^2) (kPiecewise) RNG
  /// draws regardless of the user count.
  double SampleOutputSum(const std::vector<long long>& input_counts,
                         Rng& rng) const;

  /// E[output | input grid g]: GridValue(g) for kDuchi; GridValue(g) plus
  /// the O((C/G)^2) bucketing bias for kPiecewise.
  double ConditionalMean(int g) const;
  /// Var[output | input grid g] — drives the equivalence-test tolerances.
  double ConditionalVariance(int g) const;

  NumericMechanism mechanism() const { return mechanism_; }
  double epsilon() const { return epsilon_; }
  /// Output magnitude bound (B for kDuchi, C for kPiecewise).
  double output_bound() const;

 private:
  NumericMechanism mechanism_;
  double epsilon_;
  int grid_points_;

  // kDuchi
  double duchi_b_ = 0.0;
  std::vector<double> duchi_pos_prob_;  ///< P(+B | input grid g)

  // kPiecewise
  double pm_c_ = 0.0;
  std::vector<double> pm_bucket_value_;           ///< output bucket midpoints
  std::vector<std::vector<double>> pm_bucket_prob_;  ///< [g][bucket]
  std::vector<CategoricalSampler> pm_samplers_;      ///< one per input grid g
};

/// Per-attribute mean estimates for d numeric attributes: every user
/// samples one attribute uniformly and reports its value through
/// `mechanism`; attribute j averages the outputs of the users that sampled
/// it (0 if none did). columns[j] holds attribute j's value for every user.
std::vector<double> EstimateNumericMeans(
    const NumericLdp& mechanism,
    const std::vector<std::vector<double>>& columns, Rng& rng);

/// Closed-form counterpart over per-attribute input grid histograms
/// (hists[j][g] = #users with GridIndex(t) == g): Binomial(h, 1/d) thinning
/// followed by SampleOutputSum — O(d G^2) draws regardless of n.
std::vector<double> EstimateNumericMeansClosedForm(
    const NumericLdp& mechanism,
    const std::vector<std::vector<long long>>& hists, Rng& rng);

/// Per-attribute mean and (raw) second-moment estimates for d numeric
/// attributes. Every user samples one attribute uniformly; the first half
/// of the population reports the value t itself, the second half reports
/// s = 2 t^2 - 1 (both through `mechanism`), following Wang et al.'s
/// mean/variance split. Attributes nobody sampled estimate 0 mean / 1/3
/// second moment (the uniform-prior guess).
struct NumericMoments {
  std::vector<double> mean;           ///< E[t_j] estimates
  std::vector<double> second_moment;  ///< E[t_j^2] estimates
};

/// Size of the mean-reporting half of an n-user population (the first
/// NumericMeanHalfCount(n) users; the rest report the second moment).
/// Callers building the closed-form histograms split at the same boundary.
long long NumericMeanHalfCount(long long n);

/// Per-user reference path: columns[j] holds attribute j's value for every
/// user (columns equal length). Draw-for-draw the simulation the paper's
/// evaluation would run.
NumericMoments EstimateNumericMoments(
    const NumericLdp& mechanism,
    const std::vector<std::vector<double>>& columns, Rng& rng);

/// Closed-form path: mean_hists[j][g] / moment_hists[j][g] are the input
/// grid histograms (GridIndex of t) of the mean-half and moment-half users.
/// The t -> s = 2 t^2 - 1 folding for the moment half happens internally on
/// the grid, exactly as Randomize would snap it.
NumericMoments EstimateNumericMomentsClosedForm(
    const NumericLdp& mechanism,
    const std::vector<std::vector<long long>>& mean_hists,
    const std::vector<std::vector<long long>>& moment_hists, Rng& rng);

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_NUMERIC_H_
