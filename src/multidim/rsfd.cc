#include "multidim/rsfd.h"

#include <cmath>

#include "core/check.h"
#include "fo/grr.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"

namespace ldpr::multidim {

const char* RsFdVariantName(RsFdVariant variant) {
  switch (variant) {
    case RsFdVariant::kGrr:
      return "RS+FD[GRR]";
    case RsFdVariant::kSueZ:
      return "RS+FD[SUE-z]";
    case RsFdVariant::kSueR:
      return "RS+FD[SUE-r]";
    case RsFdVariant::kOueZ:
      return "RS+FD[OUE-z]";
    case RsFdVariant::kOueR:
      return "RS+FD[OUE-r]";
  }
  return "unknown";
}

bool IsUeVariant(RsFdVariant variant) { return variant != RsFdVariant::kGrr; }

bool IsZeroFakeVariant(RsFdVariant variant) {
  return variant == RsFdVariant::kSueZ || variant == RsFdVariant::kOueZ;
}

RsFd::RsFd(RsFdVariant variant, std::vector<int> domain_sizes, double epsilon)
    : variant_(variant),
      domain_sizes_(std::move(domain_sizes)),
      epsilon_(epsilon) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "RS+FD targets multidimensional data (d >= 2), got d="
                   << domain_sizes_.size());
  for (int k : domain_sizes_) {
    LDPR_REQUIRE(k >= 2, "every attribute needs domain size >= 2");
  }
  LDPR_REQUIRE(epsilon > 0.0, "RS+FD requires epsilon > 0");
  amplified_epsilon_ = AmplifiedEpsilon(epsilon_, d());
  switch (variant_) {
    case RsFdVariant::kGrr:
      break;
    case RsFdVariant::kSueZ:
    case RsFdVariant::kSueR:
      ue_p_ = fo::Sue::PForEpsilon(amplified_epsilon_);
      ue_q_ = fo::Sue::QForEpsilon(amplified_epsilon_);
      break;
    case RsFdVariant::kOueZ:
    case RsFdVariant::kOueR:
      ue_p_ = fo::Oue::PForEpsilon(amplified_epsilon_);
      ue_q_ = fo::Oue::QForEpsilon(amplified_epsilon_);
      break;
  }
}

double RsFd::p(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (IsUeVariant(variant_)) return ue_p_;
  const double e = std::exp(amplified_epsilon_);
  return e / (e + domain_sizes_[attribute] - 1);
}

double RsFd::q(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (IsUeVariant(variant_)) return ue_q_;
  return (1.0 - p(attribute)) / (domain_sizes_[attribute] - 1);
}

MultidimReport RsFd::RandomizeUser(const std::vector<int>& record,
                                   Rng& rng) const {
  return RandomizeUserWithAttribute(
      record, static_cast<int>(rng.UniformInt(d())), rng);
}

MultidimReport RsFd::RandomizeUserWithAttribute(const std::vector<int>& record,
                                                int sampled_attribute,
                                                Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  LDPR_REQUIRE(sampled_attribute >= 0 && sampled_attribute < d(),
               "sampled attribute out of range");
  MultidimReport out;
  out.sampled_attribute = sampled_attribute;

  if (!IsUeVariant(variant_)) {
    out.values.resize(d());
    for (int j = 0; j < d(); ++j) {
      if (j == out.sampled_attribute) {
        out.values[j] = fo::Grr::Perturb(record[j], domain_sizes_[j],
                                         amplified_epsilon_, rng);
      } else {
        // Uniform fake value (not perturbed; Section 2.3.2).
        out.values[j] = static_cast<int>(rng.UniformInt(domain_sizes_[j]));
      }
    }
    return out;
  }

  out.bits.resize(d());
  for (int j = 0; j < d(); ++j) {
    const int kj = domain_sizes_[j];
    std::vector<std::uint8_t> input;
    if (j == out.sampled_attribute) {
      input = fo::UnaryEncoding::OneHot(record[j], kj);
    } else if (IsZeroFakeVariant(variant_)) {
      input.assign(kj, 0);  // UE-z: perturb the all-zero vector
    } else {
      // UE-r: perturb a uniformly random one-hot vector.
      input = fo::UnaryEncoding::OneHot(static_cast<int>(rng.UniformInt(kj)),
                                        kj);
    }
    out.bits[j] = fo::UnaryEncoding::PerturbBits(input, ue_p_, ue_q_, rng);
  }
  return out;
}

std::vector<std::vector<long long>> RsFd::SupportCounts(
    const std::vector<MultidimReport>& reports) const {
  std::vector<std::vector<long long>> counts(d());
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const MultidimReport& r : reports) {
    if (!IsUeVariant(variant_)) {
      LDPR_REQUIRE(static_cast<int>(r.values.size()) == d(),
                   "report width mismatch");
      for (int j = 0; j < d(); ++j) {
        LDPR_REQUIRE(r.values[j] >= 0 && r.values[j] < domain_sizes_[j],
                     "report value out of range");
        ++counts[j][r.values[j]];
      }
    } else {
      LDPR_REQUIRE(static_cast<int>(r.bits.size()) == d(),
                   "report width mismatch");
      for (int j = 0; j < d(); ++j) {
        LDPR_REQUIRE(static_cast<int>(r.bits[j].size()) == domain_sizes_[j],
                     "report bit-vector length mismatch");
        for (int v = 0; v < domain_sizes_[j]; ++v) {
          if (r.bits[j][v]) ++counts[j][v];
        }
      }
    }
  }
  return counts;
}

std::vector<std::vector<double>> RsFd::Estimate(
    const std::vector<MultidimReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  return EstimateFromSupportCounts(SupportCounts(reports),
                                   static_cast<long long>(reports.size()));
}

std::vector<std::vector<double>> RsFd::EstimateFromSupportCounts(
    const std::vector<std::vector<long long>>& counts, long long n_ll) const {
  LDPR_REQUIRE(static_cast<int>(counts.size()) == d(),
               "counts width mismatch");
  LDPR_REQUIRE(n_ll >= 1, "EstimateFromSupportCounts requires n >= 1");
  const double n = static_cast<double>(n_ll);
  const double dd = static_cast<double>(d());

  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    LDPR_REQUIRE(static_cast<int>(counts[j].size()) == domain_sizes_[j],
                 "counts for attribute " << j << " have wrong length");
    const double kj = domain_sizes_[j];
    const double pj = p(j);
    const double qj = q(j);
    est[j].resize(domain_sizes_[j]);
    for (int v = 0; v < domain_sizes_[j]; ++v) {
      const double c = static_cast<double>(counts[j][v]);
      double fhat = 0.0;
      switch (variant_) {
        case RsFdVariant::kGrr:
          // fhat = (C d k - n(d - 1 + q k)) / (n k (p - q))
          fhat = (c * dd * kj - n * (dd - 1.0 + qj * kj)) /
                 (n * kj * (pj - qj));
          break;
        case RsFdVariant::kSueZ:
        case RsFdVariant::kOueZ:
          // fhat = d (C - n q) / (n (p - q))
          fhat = dd * (c - n * qj) / (n * (pj - qj));
          break;
        case RsFdVariant::kSueR:
        case RsFdVariant::kOueR:
          // fhat = (C d k - n[q k + (p - q)(d-1) + q k (d-1)])
          //        / (n k (p - q))
          fhat = (c * dd * kj -
                  n * (qj * kj + (pj - qj) * (dd - 1.0) +
                       qj * kj * (dd - 1.0))) /
                 (n * kj * (pj - qj));
          break;
      }
      est[j][v] = fhat;
    }
  }
  return est;
}

RsFd::StreamAggregator::StreamAggregator(const RsFd& rsfd) : rsfd_(rsfd) {
  counts_.resize(rsfd.d());
  for (int j = 0; j < rsfd.d(); ++j) {
    counts_[j].assign(rsfd.domain_sizes_[j], 0);
  }
}

void RsFd::StreamAggregator::AccumulateRecord(const std::vector<int>& record,
                                              Rng& rng) {
  const RsFd& fd = rsfd_;
  const int d = fd.d();
  LDPR_REQUIRE(static_cast<int>(record.size()) == d,
               "record has " << record.size() << " values, expected " << d);
  // Mirrors RandomizeUserWithAttribute draw for draw (bit-identical stream),
  // folding each payload column straight into the counts.
  const int sampled = static_cast<int>(rng.UniformInt(d));

  if (!IsUeVariant(fd.variant_)) {
    for (int j = 0; j < d; ++j) {
      if (j == sampled) {
        ++counts_[j][fo::Grr::Perturb(record[j], fd.domain_sizes_[j],
                                      fd.amplified_epsilon_, rng)];
      } else {
        ++counts_[j][rng.UniformInt(fd.domain_sizes_[j])];
      }
    }
    ++n_;
    return;
  }

  for (int j = 0; j < d; ++j) {
    const int kj = fd.domain_sizes_[j];
    // Index of the single set input bit; -1 for the UE-z all-zero vector.
    int hot;
    if (j == sampled) {
      LDPR_REQUIRE(record[j] >= 0 && record[j] < kj,
                   "record value out of range");
      hot = record[j];
    } else if (IsZeroFakeVariant(fd.variant_)) {
      hot = -1;
    } else {
      hot = static_cast<int>(rng.UniformInt(kj));
    }
    for (int v = 0; v < kj; ++v) {
      if (rng.Bernoulli(v == hot ? fd.ue_p_ : fd.ue_q_)) ++counts_[j][v];
    }
  }
  ++n_;
}

void RsFd::StreamAggregator::Merge(const StreamAggregator& other) {
  LDPR_REQUIRE(counts_.size() == other.counts_.size(),
               "cannot merge RS+FD aggregators of different widths");
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    LDPR_REQUIRE(counts_[j].size() == other.counts_[j].size(),
                 "cannot merge RS+FD aggregators of different domains");
    for (std::size_t v = 0; v < counts_[j].size(); ++v) {
      counts_[j][v] += other.counts_[j][v];
    }
  }
  n_ += other.n_;
}

std::vector<std::vector<double>> RsFd::StreamAggregator::Estimate() const {
  return rsfd_.EstimateFromSupportCounts(counts_, n_);
}

}  // namespace ldpr::multidim
