#ifndef LDPR_MULTIDIM_RSFD_H_
#define LDPR_MULTIDIM_RSFD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace ldpr::multidim {

/// The five RS+FD protocol variants evaluated by the paper (Section 2.3.2):
/// the local randomizer M applied to the sampled attribute, combined with
/// the fake-data generation procedure for the non-sampled attributes.
enum class RsFdVariant {
  kGrr,   ///< GRR on the sampled value; uniform fake values elsewhere.
  kSueZ,  ///< SUE on the sampled value; SUE applied to zero vectors.
  kSueR,  ///< SUE on the sampled value; SUE applied to random one-hots.
  kOueZ,  ///< OUE on the sampled value; OUE applied to zero vectors.
  kOueR,  ///< OUE on the sampled value; OUE applied to random one-hots.
};

const char* RsFdVariantName(RsFdVariant variant);

/// True when the variant's payload is unary-encoded bit vectors.
bool IsUeVariant(RsFdVariant variant);

/// True for the zero-vector fake-data variants (UE-z).
bool IsZeroFakeVariant(RsFdVariant variant);

/// One user's sanitized output tuple y = [y_1, ..., y_d]. Exactly one
/// attribute holds an eps'-LDP report of the true value; all others hold
/// fake data indistinguishable (by design) from it.
///
/// `sampled_attribute` records the ground truth for attack evaluation only;
/// an honest aggregator never sees it.
struct MultidimReport {
  int sampled_attribute = -1;
  /// GRR-based variants: one categorical value per attribute.
  std::vector<int> values;
  /// UE-based variants: one sanitized bit vector per attribute.
  std::vector<std::vector<std::uint8_t>> bits;
};

/// Random Sampling Plus Fake Data (Arcolezi et al., CIKM 2021; Section 2.3.2).
///
/// Client: sample one attribute j uniformly, sanitize v_j with the local
/// randomizer at the amplified budget eps' = ln(d(e^eps - 1) + 1), and emit
/// uniform fake data for every other attribute. Server: the variant-specific
/// unbiased estimators of Section 2.3.2 remove both the randomizer's and the
/// fake data's bias.
class RsFd {
 public:
  RsFd(RsFdVariant variant, std::vector<int> domain_sizes, double epsilon);

  /// Client side (one user): `record` holds one value per attribute.
  MultidimReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;

  /// Client side with a caller-chosen sampled attribute. Used by the
  /// multi-survey profiling attack, which controls the without-replacement
  /// sampling across surveys (Section 4.4).
  MultidimReport RandomizeUserWithAttribute(const std::vector<int>& record,
                                            int sampled_attribute,
                                            Rng& rng) const;

  /// Server side: unbiased per-attribute frequency estimates from n reports.
  std::vector<std::vector<double>> Estimate(
      const std::vector<MultidimReport>& reports) const;

  /// The Section 2.3.2 estimators applied to pre-accumulated support counts
  /// over n reports — the streaming half of Estimate.
  std::vector<std::vector<double>> EstimateFromSupportCounts(
      const std::vector<std::vector<long long>>& counts, long long n) const;

  /// Raw support counts per attribute (exposed for estimator tests).
  std::vector<std::vector<long long>> SupportCounts(
      const std::vector<MultidimReport>& reports) const;

  /// Streaming shard state: per-attribute support counts accumulated
  /// directly from fused client draws. AccumulateRecord draws from `rng`
  /// exactly like RandomizeUser (bit-identical stream) without materializing
  /// MultidimReports. Used by sim::RunMultidim.
  class StreamAggregator {
   public:
    explicit StreamAggregator(const RsFd& rsfd);

    /// Fused client + server for one user (uniform attribute sampling).
    void AccumulateRecord(const std::vector<int>& record, Rng& rng);
    void Merge(const StreamAggregator& other);
    std::vector<std::vector<double>> Estimate() const;
    long long n() const { return n_; }
    const std::vector<std::vector<long long>>& counts() const {
      return counts_;
    }

   private:
    const RsFd& rsfd_;
    std::vector<std::vector<long long>> counts_;
    long long n_ = 0;
  };

  RsFdVariant variant() const { return variant_; }
  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }
  double amplified_epsilon() const { return amplified_epsilon_; }

  /// Randomizer probabilities at the amplified budget for attribute j
  /// (GRR's depend on k_j; UE's do not).
  double p(int attribute) const;
  double q(int attribute) const;

 private:
  RsFdVariant variant_;
  std::vector<int> domain_sizes_;
  double epsilon_;
  double amplified_epsilon_;
  double ue_p_ = 0.0;  // UE variants only
  double ue_q_ = 0.0;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_RSFD_H_
