#include "multidim/rsrfd.h"

#include <cmath>

#include "core/check.h"
#include "fo/grr.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"

namespace ldpr::multidim {

const char* RsRfdVariantName(RsRfdVariant variant) {
  switch (variant) {
    case RsRfdVariant::kGrr:
      return "RS+RFD[GRR]";
    case RsRfdVariant::kSueR:
      return "RS+RFD[SUE-r]";
    case RsRfdVariant::kOueR:
      return "RS+RFD[OUE-r]";
  }
  return "unknown";
}

RsRfd::RsRfd(RsRfdVariant variant, std::vector<int> domain_sizes,
             double epsilon, std::vector<std::vector<double>> priors)
    : variant_(variant),
      domain_sizes_(std::move(domain_sizes)),
      epsilon_(epsilon) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "RS+RFD targets multidimensional data (d >= 2)");
  LDPR_REQUIRE(epsilon > 0.0, "RS+RFD requires epsilon > 0");
  LDPR_REQUIRE(priors.size() == domain_sizes_.size(),
               "need one prior distribution per attribute");
  amplified_epsilon_ = AmplifiedEpsilon(epsilon_, d());

  priors_.reserve(priors.size());
  prior_samplers_.reserve(priors.size());
  for (std::size_t j = 0; j < priors.size(); ++j) {
    LDPR_REQUIRE(static_cast<int>(priors[j].size()) == domain_sizes_[j],
                 "prior for attribute " << j << " has wrong length");
    priors_.push_back(Normalize(priors[j]));
    prior_samplers_.emplace_back(priors_.back());
  }

  switch (variant_) {
    case RsRfdVariant::kGrr:
      break;
    case RsRfdVariant::kSueR:
      ue_p_ = fo::Sue::PForEpsilon(amplified_epsilon_);
      ue_q_ = fo::Sue::QForEpsilon(amplified_epsilon_);
      break;
    case RsRfdVariant::kOueR:
      ue_p_ = fo::Oue::PForEpsilon(amplified_epsilon_);
      ue_q_ = fo::Oue::QForEpsilon(amplified_epsilon_);
      break;
  }
}

double RsRfd::p(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (variant_ != RsRfdVariant::kGrr) return ue_p_;
  const double e = std::exp(amplified_epsilon_);
  return e / (e + domain_sizes_[attribute] - 1);
}

double RsRfd::q(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (variant_ != RsRfdVariant::kGrr) return ue_q_;
  return (1.0 - p(attribute)) / (domain_sizes_[attribute] - 1);
}

MultidimReport RsRfd::RandomizeUser(const std::vector<int>& record,
                                    Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  MultidimReport out;
  out.sampled_attribute = static_cast<int>(rng.UniformInt(d()));

  if (variant_ == RsRfdVariant::kGrr) {
    out.values.resize(d());
    for (int j = 0; j < d(); ++j) {
      if (j == out.sampled_attribute) {
        out.values[j] = fo::Grr::Perturb(record[j], domain_sizes_[j],
                                         amplified_epsilon_, rng);
      } else {
        // Realistic fake value: one draw from the attribute's prior
        // (Algorithm 1, line 6). Not perturbed, like RS+FD's uniform fakes.
        out.values[j] = prior_samplers_[j].Sample(rng);
      }
    }
    return out;
  }

  out.bits.resize(d());
  for (int j = 0; j < d(); ++j) {
    const int kj = domain_sizes_[j];
    std::vector<std::uint8_t> input;
    if (j == out.sampled_attribute) {
      input = fo::UnaryEncoding::OneHot(record[j], kj);
    } else {
      // UE-r with realistic fakes: one-hot of a prior-distributed draw.
      input = fo::UnaryEncoding::OneHot(prior_samplers_[j].Sample(rng), kj);
    }
    out.bits[j] = fo::UnaryEncoding::PerturbBits(input, ue_p_, ue_q_, rng);
  }
  return out;
}

std::vector<std::vector<double>> RsRfd::Estimate(
    const std::vector<MultidimReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");

  // Support counting is identical to RS+FD's for the matching payload shape.
  std::vector<std::vector<long long>> counts(d());
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const MultidimReport& r : reports) {
    if (variant_ == RsRfdVariant::kGrr) {
      LDPR_REQUIRE(static_cast<int>(r.values.size()) == d(),
                   "report width mismatch");
      for (int j = 0; j < d(); ++j) ++counts[j][r.values[j]];
    } else {
      LDPR_REQUIRE(static_cast<int>(r.bits.size()) == d(),
                   "report width mismatch");
      for (int j = 0; j < d(); ++j) {
        for (int v = 0; v < domain_sizes_[j]; ++v) {
          if (r.bits[j][v]) ++counts[j][v];
        }
      }
    }
  }
  return EstimateFromSupportCounts(counts,
                                   static_cast<long long>(reports.size()));
}

std::vector<std::vector<double>> RsRfd::EstimateFromSupportCounts(
    const std::vector<std::vector<long long>>& counts, long long n_ll) const {
  LDPR_REQUIRE(static_cast<int>(counts.size()) == d(),
               "counts width mismatch");
  LDPR_REQUIRE(n_ll >= 1, "EstimateFromSupportCounts requires n >= 1");
  const double n = static_cast<double>(n_ll);
  const double dd = static_cast<double>(d());

  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    LDPR_REQUIRE(static_cast<int>(counts[j].size()) == domain_sizes_[j],
                 "counts for attribute " << j << " have wrong length");
    const double pj = p(j);
    const double qj = q(j);
    est[j].resize(domain_sizes_[j]);
    for (int v = 0; v < domain_sizes_[j]; ++v) {
      const double c = static_cast<double>(counts[j][v]);
      const double prior = priors_[j][v];
      if (variant_ == RsRfdVariant::kGrr) {
        // Eq. (6): fhat = (d C - n(q + (d-1) f~)) / (n (p - q)).
        est[j][v] =
            (dd * c - n * (qj + (dd - 1.0) * prior)) / (n * (pj - qj));
      } else {
        // Eq. (7): fhat = (d C - n(q + (p-q)(d-1) f~ + q(d-1)))
        //                 / (n (p - q)).
        est[j][v] = (dd * c - n * (qj + (pj - qj) * (dd - 1.0) * prior +
                                   qj * (dd - 1.0))) /
                    (n * (pj - qj));
      }
    }
  }
  return est;
}

RsRfd::StreamAggregator::StreamAggregator(const RsRfd& rsrfd)
    : rsrfd_(rsrfd) {
  counts_.resize(rsrfd.d());
  for (int j = 0; j < rsrfd.d(); ++j) {
    counts_[j].assign(rsrfd.domain_sizes_[j], 0);
  }
}

void RsRfd::StreamAggregator::AccumulateRecord(const std::vector<int>& record,
                                               Rng& rng) {
  const RsRfd& rfd = rsrfd_;
  const int d = rfd.d();
  LDPR_REQUIRE(static_cast<int>(record.size()) == d,
               "record has " << record.size() << " values, expected " << d);
  // Mirrors RandomizeUser (Algorithm 1) draw for draw — bit-identical
  // stream — folding each payload column straight into the counts.
  const int sampled = static_cast<int>(rng.UniformInt(d));

  if (rfd.variant_ == RsRfdVariant::kGrr) {
    for (int j = 0; j < d; ++j) {
      if (j == sampled) {
        ++counts_[j][fo::Grr::Perturb(record[j], rfd.domain_sizes_[j],
                                      rfd.amplified_epsilon_, rng)];
      } else {
        ++counts_[j][rfd.prior_samplers_[j].Sample(rng)];
      }
    }
    ++n_;
    return;
  }

  for (int j = 0; j < d; ++j) {
    const int kj = rfd.domain_sizes_[j];
    int hot;
    if (j == sampled) {
      LDPR_REQUIRE(record[j] >= 0 && record[j] < kj,
                   "record value out of range");
      hot = record[j];
    } else {
      hot = rfd.prior_samplers_[j].Sample(rng);
    }
    for (int v = 0; v < kj; ++v) {
      if (rng.Bernoulli(v == hot ? rfd.ue_p_ : rfd.ue_q_)) ++counts_[j][v];
    }
  }
  ++n_;
}

void RsRfd::StreamAggregator::Merge(const StreamAggregator& other) {
  LDPR_REQUIRE(counts_.size() == other.counts_.size(),
               "cannot merge RS+RFD aggregators of different widths");
  for (std::size_t j = 0; j < counts_.size(); ++j) {
    LDPR_REQUIRE(counts_[j].size() == other.counts_[j].size(),
                 "cannot merge RS+RFD aggregators of different domains");
    for (std::size_t v = 0; v < counts_[j].size(); ++v) {
      counts_[j][v] += other.counts_[j][v];
    }
  }
  n_ += other.n_;
}

std::vector<std::vector<double>> RsRfd::StreamAggregator::Estimate() const {
  return rsrfd_.EstimateFromSupportCounts(counts_, n_);
}

double RsRfd::Gamma(int attribute, int value, double f) const {
  const double dd = static_cast<double>(d());
  const double pj = p(attribute);
  const double qj = q(attribute);
  const double prior = priors_[attribute][value];
  if (variant_ == RsRfdVariant::kGrr) {
    // Theorem 2: gamma = (1/d)(q + f(p - q) + (d-1) f~).
    return (qj + f * (pj - qj) + (dd - 1.0) * prior) / dd;
  }
  // Theorem 4: gamma = (1/d)(f(p-q) + q + (d-1)(f~(p-q) + q)).
  return (f * (pj - qj) + qj + (dd - 1.0) * (prior * (pj - qj) + qj)) / dd;
}

double RsRfd::EstimatorVariance(int attribute, int value, long long n,
                                double f) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  LDPR_REQUIRE(value >= 0 && value < domain_sizes_[attribute],
               "value out of range");
  LDPR_REQUIRE(n >= 1, "EstimatorVariance requires n >= 1");
  const double dd = static_cast<double>(d());
  const double pj = p(attribute);
  const double qj = q(attribute);
  const double gamma = Gamma(attribute, value, f);
  // Theorems 2 / 4: Var = d^2 gamma (1 - gamma) / (n (p - q)^2).
  return dd * dd * gamma * (1.0 - gamma) /
         (static_cast<double>(n) * (pj - qj) * (pj - qj));
}

}  // namespace ldpr::multidim
