#ifndef LDPR_MULTIDIM_RSRFD_H_
#define LDPR_MULTIDIM_RSRFD_H_

#include <vector>

#include "core/sampling.h"
#include "multidim/rsfd.h"

namespace ldpr::multidim {

/// The three RS+RFD countermeasure protocols (Section 5.1).
enum class RsRfdVariant {
  kGrr,   ///< GRR randomizer; fake values drawn from the prior.
  kSueR,  ///< SUE randomizer; SUE applied to prior-distributed one-hots.
  kOueR,  ///< OUE randomizer; OUE applied to prior-distributed one-hots.
};

const char* RsRfdVariantName(RsRfdVariant variant);

/// Random Sampling Plus *Realistic* Fake Data — this paper's countermeasure
/// (Algorithm 1).
///
/// Identical to RS+FD except that fake data for the non-sampled attributes
/// follows server-provided prior distributions f~ instead of the uniform
/// distribution, which (a) lets fake data contribute signal to the estimate
/// and (b) removes the uniform-vs-skewed discrepancy the AIF classifier
/// exploits. Estimators are Eq. (6) for GRR and Eq. (7) for UE-r; with
/// uniform priors both reduce exactly to the RS+FD estimators.
///
/// Privacy caveat (characterized in multidim_ldp_bound_test and
/// EXPERIMENTS.md): the paper's eps-LDP analysis is exact for *uniform*
/// fake data; non-uniform priors break the branch cancellation behind the
/// e^eps tuple bound, and the realized worst-case guarantee for
/// single-attribute neighbours degrades from eps toward the amplified
/// eps' as prior masses approach zero. Deployments with extreme priors
/// should budget accordingly (e.g. floor the prior masses).
class RsRfd {
 public:
  /// `priors[j]` is the prior distribution f~_j over [0, k_j); it is
  /// normalized internally.
  RsRfd(RsRfdVariant variant, std::vector<int> domain_sizes, double epsilon,
        std::vector<std::vector<double>> priors);

  /// Client side (Algorithm 1).
  MultidimReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;

  /// Server side: unbiased estimators Eq. (6) / Eq. (7).
  std::vector<std::vector<double>> Estimate(
      const std::vector<MultidimReport>& reports) const;

  /// Eq. (6) / Eq. (7) applied to pre-accumulated support counts over n
  /// reports — the streaming half of Estimate.
  std::vector<std::vector<double>> EstimateFromSupportCounts(
      const std::vector<std::vector<long long>>& counts, long long n) const;

  /// Streaming shard state: per-attribute support counts accumulated
  /// directly from fused client draws (Algorithm 1 run in place).
  /// AccumulateRecord draws from `rng` exactly like RandomizeUser
  /// (bit-identical stream) without materializing MultidimReports. Used by
  /// sim::RunMultidim.
  class StreamAggregator {
   public:
    explicit StreamAggregator(const RsRfd& rsrfd);

    /// Fused client + server for one user (uniform attribute sampling).
    void AccumulateRecord(const std::vector<int>& record, Rng& rng);
    void Merge(const StreamAggregator& other);
    std::vector<std::vector<double>> Estimate() const;
    long long n() const { return n_; }
    const std::vector<std::vector<long long>>& counts() const {
      return counts_;
    }

   private:
    const RsRfd& rsrfd_;
    std::vector<std::vector<long long>> counts_;
    long long n_ = 0;
  };

  /// Closed-form estimator variance (Theorems 2 and 4) at true frequency f
  /// for value v of attribute j, over n users.
  double EstimatorVariance(int attribute, int value, long long n,
                           double f) const;

  RsRfdVariant variant() const { return variant_; }
  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }
  double amplified_epsilon() const { return amplified_epsilon_; }
  const std::vector<std::vector<double>>& priors() const { return priors_; }

  double p(int attribute) const;
  double q(int attribute) const;

 private:
  /// Probability that value v of attribute j is supported by one report
  /// (the gamma of Theorems 2 / 4).
  double Gamma(int attribute, int value, double f) const;

  RsRfdVariant variant_;
  std::vector<int> domain_sizes_;
  double epsilon_;
  double amplified_epsilon_;
  std::vector<std::vector<double>> priors_;
  std::vector<CategoricalSampler> prior_samplers_;
  double ue_p_ = 0.0;
  double ue_q_ = 0.0;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_RSRFD_H_
