#include "multidim/rsrfd_adaptive.h"

#include <cmath>
#include <utility>

#include "core/check.h"
#include "fo/grr.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"

namespace ldpr::multidim {

RsRfdAdaptive::RsRfdAdaptive(std::vector<int> domain_sizes, double epsilon,
                             std::vector<std::vector<double>> priors)
    : domain_sizes_(std::move(domain_sizes)),
      epsilon_(epsilon),
      priors_(std::move(priors)) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "RS+RFD targets multidimensional data (d >= 2), got d="
                   << domain_sizes_.size());
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  LDPR_REQUIRE(priors_.size() == domain_sizes_.size(),
               "need one prior distribution per attribute");
  for (std::size_t j = 0; j < priors_.size(); ++j) {
    LDPR_REQUIRE(domain_sizes_[j] >= 2,
                 "every attribute needs domain size >= 2");
    LDPR_REQUIRE(static_cast<int>(priors_[j].size()) == domain_sizes_[j],
                 "prior " << j << " width mismatch");
    double sum = 0.0;
    for (double f : priors_[j]) {
      LDPR_REQUIRE(f >= 0, "priors must be non-negative");
      sum += f;
    }
    LDPR_REQUIRE(sum > 0, "prior " << j << " must have positive mass");
    for (double& f : priors_[j]) f /= sum;
  }
  amplified_epsilon_ = AmplifiedEpsilon(epsilon_, d());
  oue_p_ = fo::Oue::PForEpsilon(amplified_epsilon_);
  oue_q_ = fo::Oue::QForEpsilon(amplified_epsilon_);

  prior_samplers_.reserve(priors_.size());
  for (const auto& prior : priors_) {
    prior_samplers_.emplace_back(prior);
  }

  // Choice rule: per attribute, the smaller prior-weighted mean approximate
  // variance (f = 0) between the two RS+RFD candidates. Delegated to the
  // fixed protocols' tested closed forms.
  RsRfd grr(RsRfdVariant::kGrr, domain_sizes_, epsilon_, priors_);
  RsRfd ouer(RsRfdVariant::kOueR, domain_sizes_, epsilon_, priors_);
  choices_.reserve(domain_sizes_.size());
  for (int j = 0; j < d(); ++j) {
    double grr_var = 0.0, ouer_var = 0.0;
    for (int v = 0; v < domain_sizes_[j]; ++v) {
      grr_var += grr.EstimatorVariance(j, v, /*n=*/1, /*f=*/0.0);
      ouer_var += ouer.EstimatorVariance(j, v, /*n=*/1, /*f=*/0.0);
    }
    choices_.push_back(grr_var <= ouer_var ? RsRfdVariant::kGrr
                                           : RsRfdVariant::kOueR);
  }
}

RsRfdVariant RsRfdAdaptive::choice(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return choices_[attribute];
}

double RsRfdAdaptive::p(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (choices_[attribute] == RsRfdVariant::kOueR) return oue_p_;
  const double e = std::exp(amplified_epsilon_);
  return e / (e + domain_sizes_[attribute] - 1);
}

double RsRfdAdaptive::q(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  if (choices_[attribute] == RsRfdVariant::kOueR) return oue_q_;
  return (1.0 - p(attribute)) / (domain_sizes_[attribute] - 1);
}

MultidimReport RsRfdAdaptive::RandomizeUser(const std::vector<int>& record,
                                            Rng& rng) const {
  return RandomizeUserWithAttribute(
      record, static_cast<int>(rng.UniformInt(d())), rng);
}

MultidimReport RsRfdAdaptive::RandomizeUserWithAttribute(
    const std::vector<int>& record, int sampled_attribute, Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  LDPR_REQUIRE(sampled_attribute >= 0 && sampled_attribute < d(),
               "sampled attribute out of range");
  MultidimReport out;
  out.sampled_attribute = sampled_attribute;
  out.values.assign(d(), -1);
  out.bits.resize(d());
  for (int j = 0; j < d(); ++j) {
    const int kj = domain_sizes_[j];
    if (choices_[j] == RsRfdVariant::kGrr) {
      if (j == sampled_attribute) {
        out.values[j] =
            fo::Grr::Perturb(record[j], kj, amplified_epsilon_, rng);
      } else {
        // Realistic fake value drawn from the prior (Alg. 1, line 6).
        out.values[j] = prior_samplers_[j].Sample(rng);
      }
    } else {
      std::vector<std::uint8_t> input;
      if (j == sampled_attribute) {
        input = fo::UnaryEncoding::OneHot(record[j], kj);
      } else {
        input =
            fo::UnaryEncoding::OneHot(prior_samplers_[j].Sample(rng), kj);
      }
      out.bits[j] = fo::UnaryEncoding::PerturbBits(input, oue_p_, oue_q_, rng);
    }
  }
  return out;
}

std::vector<std::vector<double>> RsRfdAdaptive::Estimate(
    const std::vector<MultidimReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  const double n = static_cast<double>(reports.size());
  const double dd = static_cast<double>(d());

  std::vector<std::vector<long long>> counts(d());
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const MultidimReport& r : reports) {
    LDPR_REQUIRE(static_cast<int>(r.values.size()) == d() &&
                     static_cast<int>(r.bits.size()) == d(),
                 "adaptive report width mismatch");
    for (int j = 0; j < d(); ++j) {
      if (choices_[j] == RsRfdVariant::kGrr) {
        LDPR_REQUIRE(r.values[j] >= 0 && r.values[j] < domain_sizes_[j],
                     "report value out of range");
        ++counts[j][r.values[j]];
      } else {
        LDPR_REQUIRE(static_cast<int>(r.bits[j].size()) == domain_sizes_[j],
                     "report bit-vector length mismatch");
        for (int v = 0; v < domain_sizes_[j]; ++v) {
          if (r.bits[j][v]) ++counts[j][v];
        }
      }
    }
  }

  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    const double pj = p(j);
    const double qj = q(j);
    est[j].resize(domain_sizes_[j]);
    for (int v = 0; v < domain_sizes_[j]; ++v) {
      const double c = static_cast<double>(counts[j][v]);
      const double prior = priors_[j][v];
      if (choices_[j] == RsRfdVariant::kGrr) {
        // Eq. (6): fhat = (dC - n(q + (d-1) f~)) / (n (p - q)).
        est[j][v] =
            (dd * c - n * (qj + (dd - 1.0) * prior)) / (n * (pj - qj));
      } else {
        // Eq. (7): fhat = (dC - n(q + (p-q)(d-1) f~ + q(d-1))) / (n (p-q)).
        est[j][v] = (dd * c - n * (qj + (pj - qj) * (dd - 1.0) * prior +
                                   qj * (dd - 1.0))) /
                    (n * (pj - qj));
      }
    }
  }
  return est;
}

}  // namespace ldpr::multidim
