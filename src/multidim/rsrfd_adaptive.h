#ifndef LDPR_MULTIDIM_RSRFD_ADAPTIVE_H_
#define LDPR_MULTIDIM_RSRFD_ADAPTIVE_H_

#include <vector>

#include "core/sampling.h"
#include "multidim/rsrfd.h"

namespace ldpr::multidim {

/// RS+RFD with per-attribute adaptive randomizer selection (RS+RFD[ADP]):
/// the countermeasure of Section 5 combined with the ADP rule, completing
/// the design matrix {uniform, realistic fake data} x {fixed, adaptive
/// randomizer}.
///
/// Attribute j uses whichever of RS+RFD[GRR] and RS+RFD[OUE-r] has the
/// smaller prior-weighted approximate variance (mean over v of the
/// Theorem-2/4 variance at f = 0, which depends on the prior f~_j — unlike
/// RS+FD[ADP]'s rule, skewed priors can flip the choice per attribute).
/// Unlike RS+FD[ADP], both candidate randomizers keep fake data realistic,
/// so the adaptive configuration does not inherit the UE-z attack surface
/// (bench abl08).
class RsRfdAdaptive {
 public:
  /// `priors[j]` is the prior distribution f~_j over [0, k_j), normalized
  /// internally.
  RsRfdAdaptive(std::vector<int> domain_sizes, double epsilon,
                std::vector<std::vector<double>> priors);

  MultidimReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;
  MultidimReport RandomizeUserWithAttribute(const std::vector<int>& record,
                                            int sampled_attribute,
                                            Rng& rng) const;

  /// Per-attribute unbiased estimates (Eq. 6 for GRR attributes, Eq. 7 for
  /// OUE-r attributes).
  std::vector<std::vector<double>> Estimate(
      const std::vector<MultidimReport>& reports) const;

  /// The RS+RFD variant chosen for attribute j (kGrr or kOueR).
  RsRfdVariant choice(int attribute) const;

  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }
  double amplified_epsilon() const { return amplified_epsilon_; }
  const std::vector<std::vector<double>>& priors() const { return priors_; }

  /// Randomizer probabilities at the amplified budget for attribute j.
  double p(int attribute) const;
  double q(int attribute) const;

 private:
  std::vector<int> domain_sizes_;
  double epsilon_;
  double amplified_epsilon_;
  std::vector<std::vector<double>> priors_;
  std::vector<CategoricalSampler> prior_samplers_;
  std::vector<RsRfdVariant> choices_;
  double oue_p_ = 0.0;
  double oue_q_ = 0.0;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_RSRFD_ADAPTIVE_H_
