#include "multidim/smp.h"

#include "core/check.h"

namespace ldpr::multidim {

Smp::Smp(fo::Protocol protocol, std::vector<int> domain_sizes, double epsilon)
    : protocol_(protocol),
      domain_sizes_(std::move(domain_sizes)),
      epsilon_(epsilon) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "SMP targets multidimensional data (d >= 2)");
  oracles_.reserve(domain_sizes_.size());
  for (int k : domain_sizes_) {
    oracles_.push_back(fo::MakeOracle(protocol, k, epsilon));
  }
}

SmpReport Smp::RandomizeUser(const std::vector<int>& record, Rng& rng) const {
  int attribute = static_cast<int>(rng.UniformInt(d()));
  return RandomizeUserAttribute(record, attribute, rng);
}

SmpReport Smp::RandomizeUserAttribute(const std::vector<int>& record,
                                      int attribute, Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  SmpReport out;
  out.attribute = attribute;
  out.report = oracles_[attribute]->Randomize(record[attribute], rng);
  return out;
}

std::vector<std::vector<double>> Smp::Estimate(
    const std::vector<SmpReport>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  std::vector<std::vector<long long>> counts(d());
  std::vector<long long> per_attribute_n(d(), 0);
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const SmpReport& r : reports) {
    LDPR_REQUIRE(r.attribute >= 0 && r.attribute < d(),
                 "report attribute out of range");
    oracles_[r.attribute]->AccumulateSupport(r.report, &counts[r.attribute]);
    ++per_attribute_n[r.attribute];
  }
  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    if (per_attribute_n[j] == 0) {
      // No user sampled this attribute; the best unbiased guess is uniform.
      est[j].assign(domain_sizes_[j], 1.0 / domain_sizes_[j]);
      continue;
    }
    est[j] = oracles_[j]->EstimateFromCounts(counts[j], per_attribute_n[j]);
  }
  return est;
}

const fo::FrequencyOracle& Smp::oracle(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return *oracles_[attribute];
}

Smp::StreamAggregator::StreamAggregator(const Smp& smp) : smp_(smp) {
  per_attribute_.reserve(smp.d());
  for (const auto& oracle : smp.oracles_) {
    per_attribute_.push_back(oracle->MakeAggregator());
  }
}

void Smp::StreamAggregator::AccumulateRecord(const std::vector<int>& record,
                                             Rng& rng) {
  LDPR_REQUIRE(static_cast<int>(record.size()) == smp_.d(),
               "record has " << record.size() << " values, expected "
                             << smp_.d());
  const int attribute = static_cast<int>(rng.UniformInt(smp_.d()));
  per_attribute_[attribute]->AccumulateValue(record[attribute], rng);
  ++n_;
}

void Smp::StreamAggregator::Merge(const StreamAggregator& other) {
  LDPR_REQUIRE(per_attribute_.size() == other.per_attribute_.size(),
               "cannot merge SMP aggregators of different widths");
  for (std::size_t j = 0; j < per_attribute_.size(); ++j) {
    per_attribute_[j]->Merge(*other.per_attribute_[j]);
  }
  n_ += other.n_;
}

std::vector<std::vector<double>> Smp::StreamAggregator::Estimate() const {
  LDPR_REQUIRE(n_ >= 1, "Estimate requires at least one accumulated record");
  std::vector<std::vector<double>> est(smp_.d());
  for (int j = 0; j < smp_.d(); ++j) {
    if (per_attribute_[j]->n() == 0) {
      // No user sampled this attribute; the best unbiased guess is uniform.
      est[j].assign(smp_.domain_sizes_[j], 1.0 / smp_.domain_sizes_[j]);
      continue;
    }
    est[j] = per_attribute_[j]->Estimate();
  }
  return est;
}

}  // namespace ldpr::multidim
