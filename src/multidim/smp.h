#ifndef LDPR_MULTIDIM_SMP_H_
#define LDPR_MULTIDIM_SMP_H_

#include <memory>
#include <vector>

#include "fo/factory.h"
#include "fo/frequency_oracle.h"

namespace ldpr::multidim {

/// One SMP report: the user discloses which attribute was sampled along
/// with the eps-LDP report for it.
struct SmpReport {
  int attribute = -1;
  fo::Report report;
};

/// The Sampling (SMP) solution (Section 2.3.1): each user samples one of the
/// d attributes uniformly at random and spends the *whole* privacy budget
/// eps on it. The sampled attribute is sent in the clear — the root cause of
/// the re-identification risk studied in Section 3.2.
class Smp {
 public:
  Smp(fo::Protocol protocol, std::vector<int> domain_sizes, double epsilon);

  /// Client side, uniform attribute sampling.
  SmpReport RandomizeUser(const std::vector<int>& record, Rng& rng) const;

  /// Client side with a caller-chosen attribute. The multi-survey profiling
  /// attack drives attribute selection itself (without replacement for the
  /// uniform privacy metric, with replacement for the non-uniform one).
  SmpReport RandomizeUserAttribute(const std::vector<int>& record,
                                   int attribute, Rng& rng) const;

  /// Server side: per-attribute estimates; each attribute uses only the
  /// reports that sampled it.
  std::vector<std::vector<double>> Estimate(
      const std::vector<SmpReport>& reports) const;

  /// Streaming shard state: one fused fo::Aggregator per attribute, fed only
  /// by the users that sampled it. AccumulateRecord draws from `rng` exactly
  /// like RandomizeUser (bit-identical stream) without materializing
  /// SmpReports. Used by sim::RunMultidim.
  class StreamAggregator {
   public:
    explicit StreamAggregator(const Smp& smp);

    /// Fused client + server for one user (uniform attribute sampling).
    void AccumulateRecord(const std::vector<int>& record, Rng& rng);
    void Merge(const StreamAggregator& other);
    std::vector<std::vector<double>> Estimate() const;
    long long n() const { return n_; }

   private:
    const Smp& smp_;
    std::vector<std::unique_ptr<fo::Aggregator>> per_attribute_;
    long long n_ = 0;
  };

  const fo::FrequencyOracle& oracle(int attribute) const;
  int d() const { return static_cast<int>(oracles_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double epsilon() const { return epsilon_; }
  fo::Protocol protocol() const { return protocol_; }

 private:
  fo::Protocol protocol_;
  std::vector<int> domain_sizes_;
  double epsilon_;
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_SMP_H_
