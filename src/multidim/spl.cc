#include "multidim/spl.h"

#include "core/check.h"

namespace ldpr::multidim {

Spl::Spl(fo::Protocol protocol, std::vector<int> domain_sizes, double epsilon)
    : domain_sizes_(std::move(domain_sizes)) {
  LDPR_REQUIRE(domain_sizes_.size() >= 2,
               "SPL targets multidimensional data (d >= 2)");
  LDPR_REQUIRE(epsilon > 0.0, "SPL requires epsilon > 0");
  per_attribute_epsilon_ = epsilon / static_cast<double>(domain_sizes_.size());
  oracles_.reserve(domain_sizes_.size());
  for (int k : domain_sizes_) {
    oracles_.push_back(fo::MakeOracle(protocol, k, per_attribute_epsilon_));
  }
}

std::vector<fo::Report> Spl::RandomizeUser(const std::vector<int>& record,
                                           Rng& rng) const {
  LDPR_REQUIRE(static_cast<int>(record.size()) == d(),
               "record has " << record.size() << " values, expected " << d());
  std::vector<fo::Report> out(d());
  for (int j = 0; j < d(); ++j) {
    out[j] = oracles_[j]->Randomize(record[j], rng);
  }
  return out;
}

std::vector<std::vector<double>> Spl::Estimate(
    const std::vector<std::vector<fo::Report>>& reports) const {
  LDPR_REQUIRE(!reports.empty(), "Estimate requires at least one report");
  std::vector<std::vector<long long>> counts(d());
  for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
  for (const auto& user : reports) {
    LDPR_REQUIRE(static_cast<int>(user.size()) == d(),
                 "user report width mismatch");
    for (int j = 0; j < d(); ++j) {
      oracles_[j]->AccumulateSupport(user[j], &counts[j]);
    }
  }
  std::vector<std::vector<double>> est(d());
  for (int j = 0; j < d(); ++j) {
    est[j] = oracles_[j]->EstimateFromCounts(
        counts[j], static_cast<long long>(reports.size()));
  }
  return est;
}

const fo::FrequencyOracle& Spl::oracle(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(), "attribute out of range");
  return *oracles_[attribute];
}

Spl::StreamAggregator::StreamAggregator(const Spl& spl) : spl_(spl) {
  per_attribute_.reserve(spl.d());
  for (const auto& oracle : spl.oracles_) {
    per_attribute_.push_back(oracle->MakeAggregator());
  }
}

void Spl::StreamAggregator::AccumulateRecord(const std::vector<int>& record,
                                             Rng& rng) {
  LDPR_REQUIRE(static_cast<int>(record.size()) == spl_.d(),
               "record has " << record.size() << " values, expected "
                             << spl_.d());
  for (int j = 0; j < spl_.d(); ++j) {
    per_attribute_[j]->AccumulateValue(record[j], rng);
  }
  ++n_;
}

void Spl::StreamAggregator::Merge(const StreamAggregator& other) {
  LDPR_REQUIRE(per_attribute_.size() == other.per_attribute_.size(),
               "cannot merge SPL aggregators of different widths");
  for (std::size_t j = 0; j < per_attribute_.size(); ++j) {
    per_attribute_[j]->Merge(*other.per_attribute_[j]);
  }
  n_ += other.n_;
}

std::vector<std::vector<double>> Spl::StreamAggregator::Estimate() const {
  LDPR_REQUIRE(n_ >= 1, "Estimate requires at least one accumulated record");
  std::vector<std::vector<double>> est(spl_.d());
  for (int j = 0; j < spl_.d(); ++j) {
    est[j] = per_attribute_[j]->Estimate();
  }
  return est;
}

}  // namespace ldpr::multidim
