#ifndef LDPR_MULTIDIM_SPL_H_
#define LDPR_MULTIDIM_SPL_H_

#include <memory>
#include <vector>

#include "fo/factory.h"
#include "fo/frequency_oracle.h"

namespace ldpr::multidim {

/// The naive Splitting (SPL) solution (Section 2.3.1): by sequential
/// composition, each user reports *all* d attributes, each sanitized with
/// budget eps/d. High estimation error; included as the baseline the paper
/// dismisses (and as a utility comparator in the examples).
class Spl {
 public:
  Spl(fo::Protocol protocol, std::vector<int> domain_sizes, double epsilon);

  /// Client side: one report per attribute, each at eps/d.
  std::vector<fo::Report> RandomizeUser(const std::vector<int>& record,
                                        Rng& rng) const;

  /// Server side: per-attribute estimates over all n users.
  std::vector<std::vector<double>> Estimate(
      const std::vector<std::vector<fo::Report>>& reports) const;

  /// Streaming shard state: one fused fo::Aggregator per attribute.
  /// AccumulateRecord draws from `rng` exactly like RandomizeUser
  /// (bit-identical stream) but materializes no reports; shard aggregators
  /// Merge before Estimate. Used by sim::RunMultidim.
  class StreamAggregator {
   public:
    explicit StreamAggregator(const Spl& spl);

    /// Fused client + server for one user.
    void AccumulateRecord(const std::vector<int>& record, Rng& rng);
    void Merge(const StreamAggregator& other);
    std::vector<std::vector<double>> Estimate() const;
    long long n() const { return n_; }

   private:
    const Spl& spl_;
    std::vector<std::unique_ptr<fo::Aggregator>> per_attribute_;
    long long n_ = 0;
  };

  const fo::FrequencyOracle& oracle(int attribute) const;
  int d() const { return static_cast<int>(oracles_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }
  double per_attribute_epsilon() const { return per_attribute_epsilon_; }

 private:
  std::vector<int> domain_sizes_;
  double per_attribute_epsilon_;
  std::vector<std::unique_ptr<fo::FrequencyOracle>> oracles_;
};

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_SPL_H_
