#include "multidim/variance.h"

#include <cmath>

#include "core/check.h"
#include "fo/unary_encoding.h"
#include "multidim/amplification.h"

namespace ldpr::multidim {

double RsFdVariance(RsFdVariant variant, int k, int d, double epsilon,
                    long long n, double f) {
  LDPR_REQUIRE(k >= 2 && d >= 2 && epsilon > 0.0 && n >= 1,
               "RsFdVariance requires k >= 2, d >= 2, epsilon > 0, n >= 1");
  const double eps_prime = AmplifiedEpsilon(epsilon, d);
  double p = 0.0;
  double q = 0.0;
  switch (variant) {
    case RsFdVariant::kGrr: {
      const double e = std::exp(eps_prime);
      p = e / (e + k - 1);
      q = (1.0 - p) / (k - 1);
      break;
    }
    case RsFdVariant::kSueZ:
    case RsFdVariant::kSueR:
      p = fo::Sue::PForEpsilon(eps_prime);
      q = fo::Sue::QForEpsilon(eps_prime);
      break;
    case RsFdVariant::kOueZ:
    case RsFdVariant::kOueR:
      p = fo::Oue::PForEpsilon(eps_prime);
      q = fo::Oue::QForEpsilon(eps_prime);
      break;
  }

  const double dd = static_cast<double>(d);
  double fake_support = 0.0;  // per-report support probability of fake data
  switch (variant) {
    case RsFdVariant::kGrr:
      fake_support = 1.0 / k;
      break;
    case RsFdVariant::kSueZ:
    case RsFdVariant::kOueZ:
      fake_support = q;
      break;
    case RsFdVariant::kSueR:
    case RsFdVariant::kOueR:
      fake_support = (p - q) / k + q;
      break;
  }
  const double gamma =
      (f * (p - q) + q + (dd - 1.0) * fake_support) / dd;
  return dd * dd * gamma * (1.0 - gamma) /
         (static_cast<double>(n) * (p - q) * (p - q));
}

double RsFdApproxMseAvg(RsFdVariant variant, const std::vector<int>& k,
                        double epsilon, long long n) {
  LDPR_REQUIRE(!k.empty(), "RsFdApproxMseAvg requires >= 1 attribute");
  const int d = static_cast<int>(k.size());
  double acc = 0.0;
  for (int kj : k) {
    // Variance is value-independent under uniform fakes, so the inner
    // average over the k_j values is just the single-value variance.
    acc += RsFdVariance(variant, kj, d, epsilon, n, /*f=*/0.0);
  }
  return acc / d;
}

double RsRfdApproxMseAvg(const RsRfd& protocol, long long n) {
  LDPR_REQUIRE(n >= 1, "RsRfdApproxMseAvg requires n >= 1");
  double acc = 0.0;
  for (int j = 0; j < protocol.d(); ++j) {
    const int kj = protocol.domain_sizes()[j];
    double attr_acc = 0.0;
    for (int v = 0; v < kj; ++v) {
      attr_acc += protocol.EstimatorVariance(j, v, n, /*f=*/0.0);
    }
    acc += attr_acc / kj;
  }
  return acc / protocol.d();
}

}  // namespace ldpr::multidim
