#ifndef LDPR_MULTIDIM_VARIANCE_H_
#define LDPR_MULTIDIM_VARIANCE_H_

#include <vector>

#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"

namespace ldpr::multidim {

/// Closed-form estimator variance for an RS+FD variant at true frequency f,
/// attribute domain size k, dimensionality d, over n users. Derived exactly
/// like Theorems 2 / 4 with the uniform fake-data support probabilities:
///   GRR : gamma = (1/d)(q + f(p-q) + (d-1)/k)
///   UE-z: gamma = (1/d)(f(p-q) + q + (d-1) q)
///   UE-r: gamma = (1/d)(f(p-q) + q + (d-1)((p-q)/k + q))
///   Var  = d^2 gamma (1 - gamma) / (n (p - q)^2).
double RsFdVariance(RsFdVariant variant, int k, int d, double epsilon,
                    long long n, double f);

/// The paper's "analytical" curve for Fig. 16: the approximate variance
/// obtained by setting f(v) = 0, averaged the same way as MSE_avg —
/// (1/d) sum_j (1/k_j) sum_v Var_j(v).
double RsFdApproxMseAvg(RsFdVariant variant, const std::vector<int>& k,
                        double epsilon, long long n);

/// Same for RS+RFD, where the per-value variance depends on the prior f~.
double RsRfdApproxMseAvg(const RsRfd& protocol, long long n);

}  // namespace ldpr::multidim

#endif  // LDPR_MULTIDIM_VARIANCE_H_
