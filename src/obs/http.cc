#include "obs/http.h"

#include <cstdio>

namespace ldpr::obs {

bool HttpHeaderComplete(const std::string& buffer) {
  return buffer.find("\r\n\r\n") != std::string::npos ||
         buffer.find("\n\n") != std::string::npos;
}

HttpRequestLine ParseHttpRequestLine(const std::string& buffer) {
  HttpRequestLine line;
  const std::size_t eol = buffer.find_first_of("\r\n");
  const std::string first = buffer.substr(0, eol);
  const std::size_t sp1 = first.find(' ');
  if (sp1 == std::string::npos) return line;
  const std::size_t sp2 = first.find(' ', sp1 + 1);
  line.method = first.substr(0, sp1);
  line.target = sp2 == std::string::npos ? first.substr(sp1 + 1)
                                         : first.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = line.target.find('?');
  if (query != std::string::npos) line.target.resize(query);
  line.valid = !line.method.empty() && !line.target.empty() &&
               line.target.front() == '/';
  return line;
}

std::string BuildHttpResponse(int status, const std::string& content_type,
                              const std::string& body) {
  const char* reason = "OK";
  if (status == 404) reason = "Not Found";
  if (status == 405) reason = "Method Not Allowed";
  if (status == 400) reason = "Bad Request";
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, reason, content_type.c_str(), body.size());
  return head + body;
}

std::string HandleAdminRequest(const std::string& buffer,
                               MetricsRegistry& registry) {
  const HttpRequestLine line = ParseHttpRequestLine(buffer);
  if (!line.valid)
    return BuildHttpResponse(400, "text/plain", "bad request\n");
  if (line.method != "GET")
    return BuildHttpResponse(405, "text/plain", "read-only endpoint\n");
  if (line.target == "/metrics")
    return BuildHttpResponse(200, "text/plain; version=0.0.4",
                             registry.RenderPrometheus());
  if (line.target == "/metrics.json")
    return BuildHttpResponse(200, "application/json",
                             registry.RenderJson() + "\n");
  return BuildHttpResponse(404, "text/plain", "not found\n");
}

}  // namespace ldpr::obs
