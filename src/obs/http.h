// Minimal HTTP/1.0 plumbing for the read-only admin scrape endpoint. The
// socket machinery lives in serve::IngestServer (the endpoint rides the
// ingest event loop); this header only knows how to recognize a complete
// request head, route it, and build a close-delimited response.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace ldpr::obs {

// Hard cap on the request head an admin client may send before the
// connection is dropped as garbage.
inline constexpr std::size_t kMaxAdminRequestBytes = 8192;

// True once `buffer` contains the header terminator (CRLFCRLF or LFLF —
// netcat users get to be sloppy).
bool HttpHeaderComplete(const std::string& buffer);

struct HttpRequestLine {
  std::string method;
  std::string target;  // path only; query string stripped
  bool valid = false;
};
HttpRequestLine ParseHttpRequestLine(const std::string& buffer);

// Full response bytes: status line, Content-Type/Length, Connection: close.
std::string BuildHttpResponse(int status, const std::string& content_type,
                              const std::string& body);

// Routes a buffered request head against the registry:
//   GET /metrics       -> Prometheus text 0.0.4
//   GET /metrics.json  -> RenderJson snapshot
// Anything else is 404 (or 405 for non-GET). Read-only by construction.
std::string HandleAdminRequest(const std::string& buffer,
                               MetricsRegistry& registry);

}  // namespace ldpr::obs
