#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ldpr::obs {
namespace {

// Counters and integer-valued gauges render without a decimal point so that
// exact-match checks (`ingest_reports_total 40000`) stay trivial.
std::string FormatValue(double v) {
  char buf[64];
  const auto ll = static_cast<long long>(v);
  if (static_cast<double>(ll) == v) {
    std::snprintf(buf, sizeof(buf), "%lld", ll);
  } else {
    std::snprintf(buf, sizeof(buf), "%.12g", v);
  }
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Bucket edge in exposition units (seconds for kSeconds, raw otherwise).
std::string FormatEdge(long long edge_raw, HistogramUnit unit) {
  char buf[64];
  if (unit == HistogramUnit::kSeconds) {
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(edge_raw) / 1e9);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", edge_raw);
  }
  return buf;
}

}  // namespace

Counter::Counter(int shards)
    : cells_(std::make_unique<Cell[]>(shards < 1 ? 1u : shards)),
      nshards_(shards < 1 ? 1u : static_cast<unsigned>(shards)) {}

long long Counter::Value() const {
  long long total = 0;
  for (unsigned i = 0; i < nshards_; ++i)
    total += cells_[i].v.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(int shards)
    : shards_(std::make_unique<Shard[]>(shards < 1 ? 1u : shards)),
      nshards_(shards < 1 ? 1u : static_cast<unsigned>(shards)) {}

HistogramSnapshot Histogram::Merge() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kBucketCount, 0);
  for (unsigned i = 0; i < nshards_; ++i) {
    const Shard& s = shards_[i];
    for (int b = 0; b < kBucketCount; ++b)
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

long long HistogramSnapshot::ValueAtPercentile(double p) const {
  if (count <= 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  const double target = p / 100.0 * static_cast<double>(count);
  long long cumulative = 0;
  for (int b = 0; b < static_cast<int>(buckets.size()); ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0)
      return Histogram::BucketLowerBound(b + 1);
  }
  return Histogram::BucketLowerBound(static_cast<int>(buckets.size()));
}

long long HistogramSnapshot::Max() const {
  for (int b = static_cast<int>(buckets.size()) - 1; b >= 0; --b)
    if (buckets[b] > 0) return Histogram::BucketLowerBound(b + 1);
  return 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::shared_ptr<Counter> MetricsRegistry::GetCounter(const std::string& name,
                                                     const std::string& labels,
                                                     const std::string& help,
                                                     int shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.counter) {
    inst.kind = MetricKind::kCounter;
    inst.help = help;
    inst.counter = std::make_shared<Counter>(shards);
  }
  return inst.counter;
}

std::shared_ptr<Gauge> MetricsRegistry::GetGauge(const std::string& name,
                                                 const std::string& labels,
                                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.gauge) {
    inst.kind = MetricKind::kGauge;
    inst.help = help;
    inst.gauge = std::make_shared<Gauge>();
  }
  return inst.gauge;
}

std::shared_ptr<Histogram> MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& labels, const std::string& help,
    int shards, HistogramUnit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  Instrument& inst = instruments_[{name, labels}];
  if (!inst.histogram) {
    inst.kind = MetricKind::kHistogram;
    inst.help = help;
    inst.unit = unit;
    inst.histogram = std::make_shared<Histogram>(shards);
  }
  return inst.histogram;
}

long long MetricsRegistry::RegisterCallback(ScrapeCallback fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const long long id = next_callback_id_++;
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void MetricsRegistry::UnregisterCallback(long long id) {
  std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.erase(id);
}

std::map<MetricsRegistry::Key, MetricsRegistry::Series>
MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<Key, Series> out;
  for (const auto& [key, inst] : instruments_) {
    Series& s = out[key];
    s.kind = inst.kind;
    s.help = inst.help;
    s.unit = inst.unit;
    switch (inst.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(inst.counter->Value());
        break;
      case MetricKind::kGauge:
        s.value = inst.gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.histogram = inst.histogram->Merge();
        break;
    }
  }
  std::vector<Sample> samples;
  for (const auto& [id, fn] : callbacks_) {
    (void)id;
    fn(samples);
  }
  for (const Sample& sample : samples) {
    auto it = out.find({sample.name, sample.labels});
    if (it == out.end()) {
      Series& s = out[{sample.name, sample.labels}];
      s.kind = sample.kind;
      s.help = sample.help;
      s.value = sample.value;
    } else if (sample.kind == MetricKind::kCounter &&
               it->second.kind == MetricKind::kCounter) {
      it->second.value += sample.value;  // multiple exporters: sum
    } else {
      it->second.value = sample.value;  // gauges: last write wins
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const auto series = Collect();
  std::ostringstream out;
  std::string last_name;
  for (const auto& [key, s] : series) {
    const auto& [name, labels] = key;
    if (name != last_name) {
      if (!s.help.empty()) out << "# HELP " << name << ' ' << s.help << '\n';
      out << "# TYPE " << name << ' ' << KindName(s.kind) << '\n';
      last_name = name;
    }
    const std::string brace = labels.empty() ? "" : "{" + labels + "}";
    if (s.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      const std::string sep = labels.empty() ? "" : ",";
      long long cumulative = 0;
      for (int b = 0; b < static_cast<int>(h.buckets.size()); ++b) {
        if (h.buckets[b] == 0) continue;  // elide empty deltas; still cumulative
        cumulative += h.buckets[b];
        out << name << "_bucket{" << labels << sep << "le=\""
            << FormatEdge(Histogram::BucketLowerBound(b + 1), s.unit) << "\"} "
            << cumulative << '\n';
      }
      out << name << "_bucket{" << labels << sep << "le=\"+Inf\"} " << h.count
          << '\n';
      const double sum = s.unit == HistogramUnit::kSeconds
                             ? static_cast<double>(h.sum) / 1e9
                             : static_cast<double>(h.sum);
      out << name << "_sum" << brace << ' ' << FormatValue(sum) << '\n';
      out << name << "_count" << brace << ' ' << h.count << '\n';
    } else {
      out << name << brace << ' ' << FormatValue(s.value) << '\n';
    }
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  const auto series = Collect();
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, s] : series) {
    const auto& [name, labels] = key;
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << JsonEscape(name) << "\",\"labels\":\""
        << JsonEscape(labels) << "\",\"type\":\"" << KindName(s.kind) << "\",";
    if (s.kind == MetricKind::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      const double scale = s.unit == HistogramUnit::kSeconds ? 1e-9 : 1.0;
      out << "\"count\":" << h.count << ",\"sum\":"
          << FormatValue(static_cast<double>(h.sum) * scale) << ",\"p50\":"
          << FormatValue(static_cast<double>(h.ValueAtPercentile(50)) * scale)
          << ",\"p90\":"
          << FormatValue(static_cast<double>(h.ValueAtPercentile(90)) * scale)
          << ",\"p99\":"
          << FormatValue(static_cast<double>(h.ValueAtPercentile(99)) * scale)
          << ",\"max\":"
          << FormatValue(static_cast<double>(h.Max()) * scale) << '}';
    } else {
      out << "\"value\":" << FormatValue(s.value) << '}';
    }
  }
  out << "]}";
  return out.str();
}

double MetricsRegistry::SampleValue(const std::string& name,
                                    const std::string& labels) const {
  const auto series = Collect();
  auto it = series.find({name, labels});
  if (it == series.end() || it->second.kind == MetricKind::kHistogram)
    return 0.0;
  return it->second.value;
}

}  // namespace ldpr::obs
