// Telemetry subsystem: a process-wide registry of named counters, gauges,
// and log-linear latency/size histograms, designed so that instrumented hot
// paths never contend. Two acquisition styles coexist:
//
//  * Owned instruments (Counter / Gauge / Histogram) hold cache-line-aligned
//    per-shard cells updated with relaxed atomics. Writers pick a shard (the
//    collector uses its lane index, the server its single loop thread) so
//    cells are effectively single-writer; shards are merged only at scrape
//    time, exactly like `fo::Aggregator` shards are merged at Drain().
//  * Scrape callbacks export state a component already tracks — the
//    collector's per-lane IngestCounters tallies, the server's session
//    totals. The per-report ingest fast path therefore carries zero added
//    atomics: the tallies it was already writing ARE the sharded cells, and
//    the registry sums them only when someone scrapes.
//
// Exposition: RenderPrometheus() emits Prometheus text format 0.0.4 (served
// by the IngestServer admin listener), RenderJson() a snapshot for
// `ldpr_cli metrics` and `serve-demo --metrics-every N`.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ldpr::obs {

enum class MetricKind { kCounter, kGauge, kHistogram };

// Unit of histogram samples; controls how bucket edges are rendered.
// kSeconds histograms record integer nanoseconds internally and expose
// bucket edges / sums in seconds (the Prometheus convention).
enum class HistogramUnit { kNone, kSeconds };

// A monotonically increasing count, sharded to keep concurrent writers on
// separate cache lines. Merged (summed) only when read.
class Counter {
 public:
  explicit Counter(int shards);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(long long delta, int shard = 0) {
    cells_[static_cast<unsigned>(shard) % nshards_].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment(int shard = 0) { Add(1, shard); }

  long long Value() const;
  int shards() const { return static_cast<int>(nshards_); }

 private:
  struct alignas(64) Cell {
    std::atomic<long long> v{0};
  };
  std::unique_ptr<Cell[]> cells_;
  unsigned nshards_;
};

// A point-in-time value (epoch id, cumulative epsilon, live connections).
// Single logical writer; readers see the latest store.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Merged view of a histogram at one instant.
struct HistogramSnapshot {
  std::vector<long long> buckets;  // per-bucket counts (not cumulative)
  long long count = 0;
  long long sum = 0;  // sum of recorded values (ns for kSeconds histograms)

  // Upper edge of the bucket containing the p-th percentile sample
  // (p in [0, 100]). Returns 0 for an empty histogram.
  long long ValueAtPercentile(double p) const;
  long long Max() const;  // upper edge of the highest occupied bucket
};

// HdrHistogram-style log-linear histogram over non-negative integer values.
// Layout: values [0, 16) get unit-width buckets; above that each power-of-two
// octave is split into 8 sub-buckets, bounding relative error at 12.5%.
// Values are clamped to [0, 2^62); negative samples land in bucket 0.
// Recording is one relaxed fetch_add per field on the caller's shard —
// callers on distinct shards never share a cache line.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;  // 16
  static constexpr int kSubBucketHalf = kSubBucketCount / 2;   // 8
  static constexpr int kOctaves = 58;
  static constexpr int kBucketCount =
      kSubBucketCount + kOctaves * kSubBucketHalf;  // 480

  static int BucketIndex(long long value) {
    if (value < kSubBucketCount)
      return value < 0 ? 0 : static_cast<int>(value);
    const auto v = static_cast<unsigned long long>(value);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits + 1;
    if (shift > kOctaves) return kBucketCount - 1;
    const int top = static_cast<int>(v >> shift);  // in [8, 16)
    return kSubBucketCount + (shift - 1) * kSubBucketHalf +
           (top - kSubBucketHalf);
  }

  // Smallest value that lands in bucket `index`; the bucket covers
  // [BucketLowerBound(i), BucketLowerBound(i + 1)) except the last, which
  // absorbs everything upward.
  static long long BucketLowerBound(int index) {
    if (index <= 0) return 0;
    if (index >= kBucketCount) index = kBucketCount - 1;
    if (index < kSubBucketCount) return index;
    const int shift = (index - kSubBucketCount) / kSubBucketHalf + 1;
    const int rem = (index - kSubBucketCount) % kSubBucketHalf;
    return static_cast<long long>(kSubBucketHalf + rem) << shift;
  }

  explicit Histogram(int shards);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(long long value, int shard = 0) {
    Shard& s = shards_[static_cast<unsigned>(shard) % nshards_];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }
  // Records a duration as integer nanoseconds.
  void RecordSeconds(double seconds, int shard = 0) {
    Record(static_cast<long long>(seconds * 1e9 + 0.5), shard);
  }

  HistogramSnapshot Merge() const;
  int shards() const { return static_cast<int>(nshards_); }

 private:
  struct Shard {
    std::atomic<long long> buckets[kBucketCount];
    alignas(64) std::atomic<long long> count;
    std::atomic<long long> sum;
  };
  std::unique_ptr<Shard[]> shards_;
  unsigned nshards_;
};

// One exported value. `labels` is the inner label text without braces, e.g.
// `reason="duplicate"`, or empty for an unlabeled series.
struct Sample {
  std::string name;
  std::string labels;
  double value = 0.0;
  MetricKind kind = MetricKind::kCounter;
  std::string help;
};

// Called at scrape time to export component-owned state (e.g. the
// collector's lane tallies). Appends samples to `out`; must be safe to call
// from any thread (the registry serializes scrapes).
using ScrapeCallback = std::function<void(std::vector<Sample>& out)>;

// Process-wide (or test-local) registry. GetX() is idempotent: asking for an
// existing (name, labels) pair returns the same instrument, so components
// can be constructed in any order. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  std::shared_ptr<Counter> GetCounter(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help, int shards = 1);
  std::shared_ptr<Gauge> GetGauge(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help);
  std::shared_ptr<Histogram> GetHistogram(
      const std::string& name, const std::string& labels,
      const std::string& help, int shards = 1,
      HistogramUnit unit = HistogramUnit::kNone);

  // Registers a scrape-time exporter; returns a handle for Unregister.
  // Counter samples with the same (name, labels) from different callbacks
  // are summed; gauge samples overwrite.
  long long RegisterCallback(ScrapeCallback fn);
  void UnregisterCallback(long long id);

  // Prometheus text exposition format 0.0.4.
  std::string RenderPrometheus() const;
  // Compact JSON snapshot (histograms as count/sum/percentiles).
  std::string RenderJson() const;

  // Merged value of one counter/gauge series (owned or callback-exported).
  // Returns 0 if the series does not exist.
  double SampleValue(const std::string& name, const std::string& labels) const;

 private:
  struct Instrument {
    MetricKind kind;
    std::string help;
    HistogramUnit unit = HistogramUnit::kNone;
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  // Flattened scrape state shared by the renderers.
  struct Series {
    MetricKind kind;
    std::string help;
    HistogramUnit unit = HistogramUnit::kNone;
    double value = 0.0;               // counter / gauge
    HistogramSnapshot histogram;      // histogram only
  };
  std::map<Key, Series> Collect() const;

  mutable std::mutex mutex_;
  std::map<Key, Instrument> instruments_;
  std::map<long long, ScrapeCallback> callbacks_;
  long long next_callback_id_ = 1;
};

}  // namespace ldpr::obs
