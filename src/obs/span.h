// Scoped timer: measures the lifetime of a block and records it into a
// latency histogram on destruction. Null-safe, so instrumentation can stay
// in place when telemetry is disabled:
//
//   obs::Span span(obs_ ? obs_->seal_seconds.get() : nullptr);
//   ... work ...
//   // ~Span records the elapsed wall time (steady clock) in nanoseconds.
#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace ldpr::obs {

class Span {
 public:
  explicit Span(Histogram* histogram, int shard = 0)
      : histogram_(histogram),
        shard_(shard),
        start_(histogram ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{}) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { Stop(); }

  // Records now instead of at scope exit; returns elapsed seconds (0 when
  // disarmed). Subsequent Stop() calls are no-ops.
  double Stop() {
    if (!histogram_) return 0.0;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const long long ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    histogram_->Record(ns, shard_);
    histogram_ = nullptr;
    return static_cast<double>(ns) / 1e9;
  }

 private:
  Histogram* histogram_;
  int shard_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ldpr::obs
