#include "privacy/accountant.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "multidim/amplification.h"

namespace ldpr::privacy {

Accountant::Accountant(int d) {
  LDPR_REQUIRE(d >= 1, "Accountant requires d >= 1, got " << d);
  per_attribute_.assign(d, 0.0);
}

void Accountant::RecordSpl(const std::vector<int>& attributes,
                           double epsilon) {
  LDPR_REQUIRE(!attributes.empty(), "SPL survey needs at least one attribute");
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  const double share = epsilon / static_cast<double>(attributes.size());
  for (int attribute : attributes) {
    LDPR_REQUIRE(attribute >= 0 && attribute < d(),
                 "attribute " << attribute << " out of range");
    per_attribute_[attribute] += share;
    ++num_randomizations_;
  }
  total_ += epsilon;
  amplified_ = std::max(amplified_, share);
}

void Accountant::RecordSmp(int attribute, double epsilon, bool memoized) {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(),
               "attribute " << attribute << " out of range");
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  if (memoized) {
    ++num_memoized_;
    return;  // replaying a cached report reveals nothing new
  }
  per_attribute_[attribute] += epsilon;
  total_ += epsilon;
  ++num_randomizations_;
  amplified_ = std::max(amplified_, epsilon);
}

void Accountant::RecordRsFd(int attribute, int survey_d, double epsilon,
                            bool memoized) {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(),
               "attribute " << attribute << " out of range");
  LDPR_REQUIRE(survey_d >= 2, "RS+FD survey needs d >= 2, got " << survey_d);
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  if (memoized) {
    ++num_memoized_;
    return;
  }
  // The tuple is eps-LDP by the amplification argument; the sampled
  // attribute's randomizer ran at the amplified budget
  // eps' = ln(survey_d (e^eps - 1) + 1) (multidim::AmplifiedEpsilon).
  const double amplified = multidim::AmplifiedEpsilon(epsilon, survey_d);
  per_attribute_[attribute] += amplified;
  total_ += epsilon;
  ++num_randomizations_;
  amplified_ = std::max(amplified_, amplified);
}

void Accountant::RecordSmpBulk(int attribute, double epsilon,
                               long long count) {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(),
               "attribute " << attribute << " out of range");
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  LDPR_REQUIRE(count >= 0, "count must be >= 0, got " << count);
  if (count == 0) return;
  per_attribute_[attribute] += static_cast<double>(count) * epsilon;
  total_ += static_cast<double>(count) * epsilon;
  num_randomizations_ += count;
  amplified_ = std::max(amplified_, epsilon);
}

void Accountant::RecordSplBulk(double epsilon, long long count) {
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  LDPR_REQUIRE(count >= 0, "count must be >= 0, got " << count);
  if (count == 0) return;
  // Each survey randomizes all d attributes at eps/d.
  const double share = epsilon / static_cast<double>(d());
  for (double& attribute : per_attribute_) {
    attribute += static_cast<double>(count) * share;
  }
  total_ += static_cast<double>(count) * epsilon;
  num_randomizations_ += count * d();
  amplified_ = std::max(amplified_, share);
}

void Accountant::RecordRsFdBulk(int attribute, int survey_d, double epsilon,
                                long long count) {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(),
               "attribute " << attribute << " out of range");
  LDPR_REQUIRE(survey_d >= 2, "RS+FD survey needs d >= 2, got " << survey_d);
  LDPR_REQUIRE(epsilon > 0, "epsilon must be positive, got " << epsilon);
  LDPR_REQUIRE(count >= 0, "count must be >= 0, got " << count);
  if (count == 0) return;
  const double amplified = multidim::AmplifiedEpsilon(epsilon, survey_d);
  per_attribute_[attribute] += static_cast<double>(count) * amplified;
  total_ += static_cast<double>(count) * epsilon;
  num_randomizations_ += count;
  amplified_ = std::max(amplified_, amplified);
}

LedgerReport Accountant::MakeReport() const {
  LedgerReport report;
  report.total_epsilon = total_;
  report.per_attribute = per_attribute_;
  report.worst_attribute_epsilon = WorstAttributeEpsilon();
  report.amplified_epsilon = amplified_;
  report.fresh = num_randomizations_;
  report.memoized = num_memoized_;
  return report;
}

double Accountant::AttributeEpsilon(int attribute) const {
  LDPR_REQUIRE(attribute >= 0 && attribute < d(),
               "attribute " << attribute << " out of range");
  return per_attribute_[attribute];
}

double Accountant::WorstAttributeEpsilon() const {
  return *std::max_element(per_attribute_.begin(), per_attribute_.end());
}

double ExpectedSmpTotalEpsilonUniform(int d, int num_surveys, double epsilon) {
  LDPR_REQUIRE(d >= 1 && num_surveys >= 0 && epsilon > 0,
               "invalid accountant parameters");
  LDPR_REQUIRE(num_surveys <= d,
               "uniform metric samples without replacement: num_surveys ("
                   << num_surveys << ") must be <= d (" << d << ")");
  return static_cast<double>(num_surveys) * epsilon;
}

double ExpectedSmpTotalEpsilonNonUniform(int d, int num_surveys,
                                         double epsilon) {
  LDPR_REQUIRE(d >= 1 && num_surveys >= 0 && epsilon > 0,
               "invalid accountant parameters");
  // Expected number of distinct attributes among num_surveys uniform draws.
  const double distinct =
      d * (1.0 - std::pow(1.0 - 1.0 / static_cast<double>(d), num_surveys));
  return distinct * epsilon;
}

LedgerSummary SimulateSmpLedgers(int d, int num_surveys, double epsilon,
                                 bool with_replacement, int num_users,
                                 Rng& rng) {
  LDPR_REQUIRE(num_users >= 1, "num_users must be >= 1, got " << num_users);
  LDPR_REQUIRE(d >= 1 && epsilon > 0, "invalid accountant parameters");
  LDPR_REQUIRE(with_replacement || num_surveys <= d,
               "uniform metric requires num_surveys <= d");
  LedgerSummary summary;
  for (int u = 0; u < num_users; ++u) {
    Accountant ledger(d);
    if (with_replacement) {
      std::vector<bool> seen(d, false);
      for (int s = 0; s < num_surveys; ++s) {
        const int attribute = static_cast<int>(rng.UniformInt(d));
        ledger.RecordSmp(attribute, epsilon, /*memoized=*/seen[attribute]);
        seen[attribute] = true;
      }
    } else {
      std::vector<int> attributes =
          rng.SampleWithoutReplacement(d, num_surveys);
      for (int attribute : attributes) {
        ledger.RecordSmp(attribute, epsilon);
      }
    }
    summary.mean_total += ledger.TotalEpsilon();
    summary.max_total = std::max(summary.max_total, ledger.TotalEpsilon());
    summary.mean_worst_attribute += ledger.WorstAttributeEpsilon();
    summary.mean_randomizations += ledger.num_randomizations();
  }
  summary.mean_total /= num_users;
  summary.mean_worst_attribute /= num_users;
  summary.mean_randomizations /= num_users;
  return summary;
}

}  // namespace ldpr::privacy
