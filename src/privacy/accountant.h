#ifndef LDPR_PRIVACY_ACCOUNTANT_H_
#define LDPR_PRIVACY_ACCOUNTANT_H_

#include <vector>

#include "core/rng.h"

namespace ldpr::privacy {

/// Frozen view of a ledger at seal time. The accountant fills the epsilon
/// fields; the serving layer extends the report with its replay
/// classification tallies (fresh/memoized/users) before exposing it in an
/// EstimateSnapshot.
struct LedgerReport {
  double total_epsilon = 0.0;  ///< sequential composition over fresh surveys
  std::vector<double> per_attribute;       ///< realized budget per attribute
  double worst_attribute_epsilon = 0.0;    ///< max over per_attribute
  /// Per-survey amplified budget eps' = ln(d_sv (e^eps - 1) + 1) for the
  /// fractional-domain kinds (RS+FD / RS+RFD); equals the per-report eps
  /// everywhere else. 0 until a survey is recorded.
  double amplified_epsilon = 0.0;
  long long fresh = 0;     ///< randomizations charged (memoized excluded)
  long long memoized = 0;  ///< replays recognized and charged eps = 0
  long long users = 0;     ///< distinct tracked users (0 if untracked)
  double mean_user_epsilon = 0.0;  ///< mean per-user sequential total
  double max_user_epsilon = 0.0;   ///< worst user's sequential total

  /// memoized / (fresh + memoized); 0 when no reports were classified.
  double MemoizationHitRate() const {
    const double classified = static_cast<double>(fresh + memoized);
    return classified > 0.0 ? static_cast<double>(memoized) / classified : 0.0;
  }
};

/// Per-user privacy-loss ledger across repeated collections.
///
/// Section 6 observes that "under standard sequential composition, the
/// overall privacy loss is excessive when using high values for eps" and
/// recommends the non-uniform metric with memoization to bound it. This
/// module makes the realized loss measurable: every fresh randomization is
/// charged to the attribute it touched and to the user's sequential total;
/// memoized replays of an earlier report are free (replaying a fixed value
/// reveals nothing new under LDP's post-processing immunity).
class Accountant {
 public:
  /// `d` is the number of attributes tracked.
  explicit Accountant(int d);

  /// One SPL survey: the budget splits evenly over `attributes` (all
  /// collected at eps/|attributes| each); the sequential total grows by eps.
  void RecordSpl(const std::vector<int>& attributes, double epsilon);

  /// One SMP survey: the whole budget lands on `attribute`. A memoized
  /// replay (same attribute, cached report) costs nothing.
  void RecordSmp(int attribute, double epsilon, bool memoized = false);

  /// One RS+FD / RS+RFD survey: the *tuple* satisfies eps-LDP, so the
  /// sequential total grows by eps; the sampled attribute's randomizer ran
  /// at the amplified budget eps' = ln(d_sv (e^eps - 1) + 1), which is what
  /// an attacker who uncovers the sampled attribute (Section 3.3) can
  /// exploit — the ledger tracks it per attribute. `survey_d` is the number
  /// of attributes in this survey's tuple.
  void RecordRsFd(int attribute, int survey_d, double epsilon,
                  bool memoized = false);

  /// Bulk variants for the serving layer's aggregate ledgers: charge `count`
  /// identical fresh surveys in one multiply instead of `count` float
  /// additions, so the charged totals are exact and independent of the
  /// order lanes merged in (LDPR_THREADS-independence of sealed ledgers).
  void RecordSmpBulk(int attribute, double epsilon, long long count);
  void RecordSplBulk(double epsilon, long long count);
  void RecordRsFdBulk(int attribute, int survey_d, double epsilon,
                      long long count);

  /// Notes `count` memoized replays (charged nothing, tallied in the
  /// report's hit-rate denominator).
  void RecordMemoized(long long count) { num_memoized_ += count; }

  /// Freezes the epsilon side of the ledger into a report. fresh/memoized
  /// come from the recorded surveys; the caller fills the user fields.
  LedgerReport MakeReport() const;

  /// Total realized budget under sequential composition.
  double TotalEpsilon() const { return total_; }

  /// Budget charged against attribute j (sequentially composed over the
  /// surveys that randomized it).
  double AttributeEpsilon(int attribute) const;

  /// max_j AttributeEpsilon(j): the most-exposed attribute.
  double WorstAttributeEpsilon() const;

  /// Number of fresh (non-memoized) randomizations recorded. long long:
  /// the serving layer's bulk ledgers count epochs x millions of users.
  long long num_randomizations() const { return num_randomizations_; }

  int d() const { return static_cast<int>(per_attribute_.size()); }

 private:
  std::vector<double> per_attribute_;
  double total_ = 0.0;
  /// Highest per-survey amplified budget seen (RS+FD kinds), else the
  /// highest per-survey eps.
  double amplified_ = 0.0;
  long long num_randomizations_ = 0;
  long long num_memoized_ = 0;
};

/// Closed form: expected sequential total after `num_surveys` SMP surveys at
/// budget `epsilon` over `d` attributes.
///
///   uniform metric     : num_surveys * epsilon  (every survey is fresh)
///   non-uniform metric : epsilon * d (1 - (1 - 1/d)^num_surveys)
///                        (with replacement + memoization, only the first
///                        draw of each attribute is charged).
///
/// Requires num_surveys <= d in the uniform case (sampling without
/// replacement exhausts the attributes).
double ExpectedSmpTotalEpsilonUniform(int d, int num_surveys, double epsilon);
double ExpectedSmpTotalEpsilonNonUniform(int d, int num_surveys,
                                         double epsilon);

/// Population summary of simulated per-user ledgers.
struct LedgerSummary {
  double mean_total = 0.0;            ///< mean per-user sequential total
  double max_total = 0.0;             ///< worst user
  double mean_worst_attribute = 0.0;  ///< mean of per-user worst attribute
  double mean_randomizations = 0.0;   ///< fresh randomizations per user
};

/// Simulates `num_users` independent users running `num_surveys` SMP surveys
/// over d attributes and returns their ledger summary. `with_replacement`
/// selects the non-uniform metric (repeat draws memoized); the uniform
/// metric samples without replacement and requires num_surveys <= d.
LedgerSummary SimulateSmpLedgers(int d, int num_surveys, double epsilon,
                                 bool with_replacement, int num_users,
                                 Rng& rng);

}  // namespace ldpr::privacy

#endif  // LDPR_PRIVACY_ACCOUNTANT_H_
