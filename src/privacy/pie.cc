#include "privacy/pie.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace ldpr::privacy {

namespace {
const double kLog2E = std::log2(std::exp(1.0));
}  // namespace

double AlphaFromEpsilon(double epsilon, long long n, int k) {
  LDPR_REQUIRE(epsilon > 0.0 && n >= 2 && k >= 2,
               "AlphaFromEpsilon requires epsilon > 0, n >= 2, k >= 2");
  return std::min({epsilon * kLog2E, epsilon * epsilon * kLog2E,
                   std::log2(static_cast<double>(n)),
                   std::log2(static_cast<double>(k))});
}

double AlphaFromBayesError(double beta, long long n) {
  LDPR_REQUIRE(beta >= 0.0 && beta <= 1.0,
               "AlphaFromBayesError requires beta in [0, 1]");
  LDPR_REQUIRE(n >= 2, "AlphaFromBayesError requires n >= 2");
  return std::max(0.0, (1.0 - beta) * std::log2(static_cast<double>(n)) - 1.0);
}

PieCalibration CalibrateForBayesError(double beta, long long n, int k) {
  LDPR_REQUIRE(k >= 2, "CalibrateForBayesError requires k >= 2");
  PieCalibration out;
  out.alpha = AlphaFromBayesError(beta, n);
  if (std::log2(static_cast<double>(k)) <= out.alpha) {
    // Small-domain attribute: [35, Prop. 9] — no randomizer needed, the
    // attribute itself cannot convey more than alpha bits about the user.
    out.use_randomizer = false;
    out.epsilon = 0.0;
    return out;
  }
  out.use_randomizer = true;
  double eps = out.alpha / kLog2E;
  if (eps < 1.0) {
    // For eps < 1 the binding term of Prop. 1 is eps^2 log2 e.
    eps = std::sqrt(std::max(0.0, out.alpha / kLog2E));
  }
  // Guard against a degenerate zero budget (beta so high that alpha == 0):
  // fall back to a tiny positive budget so a randomizer is still usable.
  out.epsilon = std::max(eps, 1e-3);
  return out;
}

}  // namespace ldpr::privacy
