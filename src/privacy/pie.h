#ifndef LDPR_PRIVACY_PIE_H_
#define LDPR_PRIVACY_PIE_H_

namespace ldpr::privacy {

/// (U, alpha)-PIE privacy (Murakami & Takahashi 2021), the relaxed local
/// privacy model used in Appendix C. PIE bounds the mutual information
/// I(U; Y) between user identity and perturbed data by alpha bits.

/// Proposition 1: an eps-LDP mechanism over n users and domain size k
/// provides (U, alpha)-PIE privacy with
///   alpha = min(eps log2 e, eps^2 log2 e, log2 n, log2 k).
double AlphaFromEpsilon(double epsilon, long long n, int k);

/// Corollary 1: Bayes error beta >= 1 - (alpha + 1) / log2 n for uniform U.
/// Inverting at equality, the alpha budget needed to *guarantee* Bayes error
/// at least beta over n users is
///   alpha = (1 - beta) log2 n - 1   (floored at 0).
double AlphaFromBayesError(double beta, long long n);

/// PIE-calibrated attribute release, following Appendix C's experimental
/// recipe ([35, Proposition 9]): for a target alpha and domain size k,
///
///  * if log2 k <= alpha, the attribute may be released in the clear
///    (`use_randomizer == false`);
///  * otherwise run an LDP protocol with the largest eps satisfying
///    min(eps, eps^2) log2 e <= alpha, i.e.
///    eps = alpha / log2 e when that is >= 1, else sqrt(alpha / log2 e).
struct PieCalibration {
  bool use_randomizer = true;
  double epsilon = 0.0;  ///< meaningful only when use_randomizer is true
  double alpha = 0.0;    ///< the alpha budget this calibration targets
};

PieCalibration CalibrateForBayesError(double beta, long long n, int k);

}  // namespace ldpr::privacy

#endif  // LDPR_PRIVACY_PIE_H_
