#include "serve/admission.h"

#include "core/check.h"
#include "core/stats.h"

namespace ldpr::serve {

UserAdmissionTable::UserAdmissionTable(const AdmissionOptions& options)
    : options_(options) {
  LDPR_REQUIRE(options.shards >= 1,
               "admission table needs at least one shard, got "
                   << options.shards);
  shards_.reserve(options.shards);
  for (int i = 0; i < options.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool UserAdmissionTable::Admit(long long user, double now) {
  if (!enabled()) return true;
  Shard& shard = ShardFor(user);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.buckets
                .try_emplace(user, options_.per_user_rate,
                             options_.per_user_burst, now)
                .first;
  return it->second.TryAcquire(now);
}

long long UserAdmissionTable::users() const {
  long long total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->mutex);
    total += static_cast<long long>(shard->buckets.size());
  }
  return total;
}

}  // namespace ldpr::serve
