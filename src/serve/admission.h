#ifndef LDPR_SERVE_ADMISSION_H_
#define LDPR_SERVE_ADMISSION_H_

// Admission control for the network front door: deterministic token buckets
// (per connection and per user) behind the socket server's accept decision.
//
// Buckets take the current time as an explicit parameter instead of reading
// a clock, so refill arithmetic is exactly testable (serve_server_test
// drives epoch boundaries with a synthetic clock) and the server pays one
// MonotonicSeconds() read per read-chunk, not per record.

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ldpr::serve {

/// Classic token bucket: capacity `burst` tokens, refilled continuously at
/// `rate` tokens/second. rate <= 0 means unlimited (every TryAcquire
/// succeeds, nothing is tracked). Starts full.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double burst, double now = 0.0)
      : rate_(rate), burst_(burst), tokens_(burst), last_(now) {}

  /// Takes `tokens` if available at time `now`; false leaves the bucket
  /// untouched (no debt accumulates).
  bool TryAcquire(double now, double tokens = 1.0) {
    if (rate_ <= 0.0) return true;
    Refill(now);
    if (tokens_ < tokens) return false;
    tokens_ -= tokens;
    return true;
  }

  /// Unconditionally takes `tokens` at `now`, letting the balance go
  /// negative (debt). Connection pacing charges every record it already
  /// read — honest backpressure never drops read data — then pauses reads
  /// until the debt refills, so the sustained rate converges to `rate`
  /// exactly whatever the read-chunk granularity.
  void Charge(double now, double tokens = 1.0) {
    if (rate_ <= 0.0) return;
    Refill(now);
    tokens_ -= tokens;
  }

  /// Tokens available at `now` (after refill; does not consume).
  double Available(double now) const {
    if (rate_ <= 0.0) return burst_;
    const double elapsed = now > last_ ? now - last_ : 0.0;
    const double refilled = tokens_ + elapsed * rate_;
    return refilled < burst_ ? refilled : burst_;
  }

  /// Seconds past `now` until `tokens` will be available (0 when they
  /// already are). Unlimited buckets are always ready.
  double DelayUntil(double now, double tokens = 1.0) const {
    if (rate_ <= 0.0) return 0.0;
    const double available = Available(now);
    if (available >= tokens) return 0.0;
    return (tokens - available) / rate_;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now) {
    if (now <= last_) return;  // clock went backwards / same instant: no-op
    tokens_ = Available(now);
    last_ = now;
  }

  double rate_ = 0.0;  ///< tokens per second; <= 0 = unlimited
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

struct AdmissionOptions {
  /// Per-user sustained report rate (reports/second); <= 0 disables the
  /// per-user check entirely (no table is consulted).
  double per_user_rate = 0.0;
  /// Per-user burst allowance (bucket capacity).
  double per_user_burst = 8.0;
  /// Shard count of the per-user bucket table.
  int shards = 64;
};

/// Sharded user -> TokenBucket table: the per-user half of admission
/// control. Thread-safe; shard assignment depends only on the user id.
class UserAdmissionTable {
 public:
  explicit UserAdmissionTable(const AdmissionOptions& options);

  /// True when `user` may submit one report at time `now` (consumes one
  /// token). Always true when the per-user rate is disabled.
  bool Admit(long long user, double now);

  /// Distinct users ever seen by the table (0 when disabled).
  long long users() const;

  bool enabled() const { return options_.per_user_rate > 0.0; }
  const AdmissionOptions& options() const { return options_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<long long, TokenBucket> buckets;
  };

  Shard& ShardFor(long long user) {
    const long long n = static_cast<long long>(shards_.size());
    return *shards_[static_cast<std::size_t>((user % n + n) % n)];
  }

  AdmissionOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_ADMISSION_H_
