#include "serve/collector.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"
#include "core/parallel.h"
#include "fo/bitslice.h"

namespace ldpr::serve {

Collector::Collector(const fo::FrequencyOracle& oracle,
                     const CollectorOptions& options)
    : oracle_(oracle), options_(options) {
  int lanes = options.lanes > 0 ? options.lanes : DefaultThreadCount();
  LDPR_CHECK(lanes >= 1, "collector needs at least one lane");
  report_bytes_ = fo::WireDecoder(oracle).report_bytes();
  stage_stride_ = fo::bitslice::RowStride(report_bytes_);
  const std::size_t staging_bytes =
      static_cast<std::size_t>(fo::bitslice::kBlockRows) * stage_stride_ +
      fo::bitslice::kRowTailSlack;
  lanes_.reserve(lanes);
  for (int i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(oracle, staging_bytes, i));
  }
  if (options.metrics) {
    obs_ = std::make_unique<Obs>();
    obs_->registry = options.metrics;
    obs_->decode_block_seconds = options.metrics->GetHistogram(
        "ldpr_decode_block_seconds", "",
        "Latency of one AccumulateWireBlock flush (up to kBlockRows rows)",
        lanes, obs::HistogramUnit::kSeconds);
    obs_->decode_block_rows = options.metrics->GetHistogram(
        "ldpr_decode_block_rows", "", "Rows decoded per block flush", lanes);
    // The ingest counters are exported at scrape time from the tallies the
    // lanes maintain anyway — the per-report path carries no extra work.
    obs_->callback_id = options.metrics->RegisterCallback(
        [this](std::vector<obs::Sample>& out) {
          const IngestCounters totals = TotalsNow();
          out.push_back({"ldpr_ingest_reports_total", "",
                         static_cast<double>(totals.reports),
                         obs::MetricKind::kCounter,
                         "Reports decoded and accumulated"});
          out.push_back({"ldpr_ingest_bytes_total", "",
                         static_cast<double>(totals.bytes),
                         obs::MetricKind::kCounter,
                         "Wire bytes consumed by accepted reports"});
          ForEachRejectField(totals, [&out](const char* name,
                                            long long value) {
            out.push_back({"ldpr_ingest_rejects_total",
                           std::string("reason=\"") + name + "\"",
                           static_cast<double>(value),
                           obs::MetricKind::kCounter,
                           "Reports refused, by reject reason"});
          });
        });
  }
}

Collector::~Collector() {
  if (obs_) obs_->registry->UnregisterCallback(obs_->callback_id);
}

IngestResult Collector::Ingest(const IngestRequest& request) {
  return IngestGated(request,
                     [](const IngestRequest&) { return RejectReason::kNone; });
}

void Collector::FlushLocked(Lane& lane) {
  if (lane.staged == 0) return;
  const double start = obs_ ? MonotonicSeconds() : 0.0;
  lane.aggregator->AccumulateWireBlock(lane.staging.data(), stage_stride_,
                                       lane.staged);
  if (obs_) {
    obs_->decode_block_seconds->RecordSeconds(MonotonicSeconds() - start,
                                              lane.index);
    obs_->decode_block_rows->Record(lane.staged, lane.index);
  }
  lane.staged = 0;
}

IngestCounters Collector::TotalsNow() const {
  IngestCounters totals;
  {
    std::lock_guard<std::mutex> lock(drained_mutex_);
    totals = drained_totals_;
  }
  for (const auto& lane_ptr : lanes_) {
    const Lane& lane = *lane_ptr;
    std::lock_guard<std::mutex> guard(lane.mutex);
    totals.Merge(lane.tallies);
  }
  return totals;
}

int Collector::staged(int lane_hint) const {
  const Lane& lane =
      *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  return lane.staged;
}

void Collector::IngestHistogram(int lane_hint,
                                const std::vector<long long>& histogram,
                                Rng& rng) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  const long long before = lane.aggregator->n();
  lane.aggregator->AccumulateHistogram(histogram, rng);
  const long long added = lane.aggregator->n() - before;
  lane.tallies.reports += added;
  lane.tallies.bytes += added * static_cast<long long>(report_bytes_);
}

Collector::Drained Collector::Drain() {
  const int lane_count = lanes();
  const int k = oracle_.k();
  Drained out;
  out.counts.assign(k, 0);
  // The O(lanes * k) merge (plus each lane's final partial-block decode)
  // fans over worker threads once it dwarfs a thread spawn; small seals
  // stay single-threaded microsecond work. Each shard drains a disjoint
  // lane range into its own partials, and both the per-shard lane loop and
  // the shard-ordered reduction below are integer sums — bit-identical for
  // any shard count, and therefore any LDPR_THREADS.
  const int max_shards = std::min(lane_count, DefaultThreadCount());
  const bool heavy =
      static_cast<long long>(lane_count) * k >= (1LL << 15);
  const int shards = (heavy && max_shards > 1) ? max_shards : 1;
  std::vector<Drained> partial(shards);
  ParallelForShards(
      lane_count, shards,
      [&](int shard, long long lo, long long hi) {
        Drained& p = partial[shard];
        p.counts.assign(k, 0);
        for (long long li = lo; li < hi; ++li) {
          Lane& lane = *lanes_[static_cast<std::size_t>(li)];
          std::lock_guard<std::mutex> guard(lane.mutex);
          FlushLocked(lane);  // partial blocks are decoded at seal time
          const std::vector<long long>& counts = lane.aggregator->counts();
          for (int v = 0; v < k; ++v) p.counts[v] += counts[v];
          p.n += lane.aggregator->n();
          p.tallies.Merge(lane.tallies);
          lane.aggregator = oracle_.MakeAggregator();
          lane.tallies = IngestCounters{};
        }
      },
      shards);
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < k; ++v) out.counts[v] += partial[s].counts[v];
    out.n += partial[s].n;
    out.tallies.Merge(partial[s].tallies);
  }
  {
    // Draining resets the lanes, so fold the epoch's tallies into the
    // lifetime totals mid-run scrapes read (TotalsNow).
    std::lock_guard<std::mutex> lock(drained_mutex_);
    drained_totals_.Merge(out.tallies);
  }
  return out;
}

}  // namespace ldpr::serve
