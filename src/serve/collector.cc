#include "serve/collector.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"
#include "core/parallel.h"
#include "fo/bitslice.h"

namespace ldpr::serve {

Collector::Collector(const fo::FrequencyOracle& oracle,
                     const CollectorOptions& options)
    : oracle_(oracle), options_(options) {
  int lanes = options.lanes > 0 ? options.lanes : DefaultThreadCount();
  LDPR_CHECK(lanes >= 1, "collector needs at least one lane");
  report_bytes_ = fo::WireDecoder(oracle).report_bytes();
  stage_stride_ = fo::bitslice::RowStride(report_bytes_);
  const std::size_t staging_bytes =
      static_cast<std::size_t>(fo::bitslice::kBlockRows) * stage_stride_ +
      fo::bitslice::kRowTailSlack;
  lanes_.reserve(lanes);
  for (int i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(oracle, staging_bytes));
  }
}

IngestResult Collector::Ingest(const IngestRequest& request) {
  return IngestGated(request,
                     [](const IngestRequest&) { return RejectReason::kNone; });
}

void Collector::FlushLocked(Lane& lane) {
  if (lane.staged == 0) return;
  lane.aggregator->AccumulateWireBlock(lane.staging.data(), stage_stride_,
                                       lane.staged);
  lane.staged = 0;
}

int Collector::staged(int lane_hint) const {
  const Lane& lane =
      *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  return lane.staged;
}

void Collector::IngestHistogram(int lane_hint,
                                const std::vector<long long>& histogram,
                                Rng& rng) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  const long long before = lane.aggregator->n();
  lane.aggregator->AccumulateHistogram(histogram, rng);
  const long long added = lane.aggregator->n() - before;
  lane.tallies.reports += added;
  lane.tallies.bytes += added * static_cast<long long>(report_bytes_);
}

Collector::Drained Collector::Drain() {
  const int lane_count = lanes();
  const int k = oracle_.k();
  Drained out;
  out.counts.assign(k, 0);
  // The O(lanes * k) merge (plus each lane's final partial-block decode)
  // fans over worker threads once it dwarfs a thread spawn; small seals
  // stay single-threaded microsecond work. Each shard drains a disjoint
  // lane range into its own partials, and both the per-shard lane loop and
  // the shard-ordered reduction below are integer sums — bit-identical for
  // any shard count, and therefore any LDPR_THREADS.
  const int max_shards = std::min(lane_count, DefaultThreadCount());
  const bool heavy =
      static_cast<long long>(lane_count) * k >= (1LL << 15);
  const int shards = (heavy && max_shards > 1) ? max_shards : 1;
  std::vector<Drained> partial(shards);
  ParallelForShards(
      lane_count, shards,
      [&](int shard, long long lo, long long hi) {
        Drained& p = partial[shard];
        p.counts.assign(k, 0);
        for (long long li = lo; li < hi; ++li) {
          Lane& lane = *lanes_[static_cast<std::size_t>(li)];
          std::lock_guard<std::mutex> guard(lane.mutex);
          FlushLocked(lane);  // partial blocks are decoded at seal time
          const std::vector<long long>& counts = lane.aggregator->counts();
          for (int v = 0; v < k; ++v) p.counts[v] += counts[v];
          p.n += lane.aggregator->n();
          p.tallies.Merge(lane.tallies);
          lane.aggregator = oracle_.MakeAggregator();
          lane.tallies = IngestCounters{};
        }
      },
      shards);
  for (int s = 0; s < shards; ++s) {
    for (int v = 0; v < k; ++v) out.counts[v] += partial[s].counts[v];
    out.n += partial[s].n;
    out.tallies.Merge(partial[s].tallies);
  }
  return out;
}

}  // namespace ldpr::serve
