#include "serve/collector.h"

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::serve {

Collector::Collector(const fo::FrequencyOracle& oracle,
                     const CollectorOptions& options)
    : oracle_(oracle), options_(options) {
  int lanes = options.lanes > 0 ? options.lanes : DefaultThreadCount();
  LDPR_CHECK(lanes >= 1, "collector needs at least one lane");
  lanes_.reserve(lanes);
  for (int i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(oracle));
  }
  report_bytes_ = lanes_[0]->decoder.report_bytes();
}

bool Collector::Ingest(int lane_hint, const std::uint8_t* data,
                       std::size_t size) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  if (lane.decoder.DecodeInto(data, size, *lane.aggregator)) {
    ++lane.tallies.reports;
    lane.tallies.bytes += static_cast<long long>(size);
    return true;
  }
  ++lane.tallies.rejected;
  return false;
}

void Collector::IngestHistogram(int lane_hint,
                                const std::vector<long long>& histogram,
                                Rng& rng) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  const long long before = lane.aggregator->n();
  lane.aggregator->AccumulateHistogram(histogram, rng);
  const long long added = lane.aggregator->n() - before;
  lane.tallies.reports += added;
  lane.tallies.bytes += added * static_cast<long long>(report_bytes_);
}

Collector::Drained Collector::Drain() {
  Drained out;
  out.counts.assign(oracle_.k(), 0);
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    std::lock_guard<std::mutex> guard(lane.mutex);
    const std::vector<long long>& counts = lane.aggregator->counts();
    for (std::size_t v = 0; v < out.counts.size(); ++v) {
      out.counts[v] += counts[v];
    }
    out.n += lane.aggregator->n();
    out.tallies.Merge(lane.tallies);
    lane.aggregator = oracle_.MakeAggregator();
    lane.tallies = IngestCounters{};
  }
  return out;
}

EpochManager::EpochManager(const fo::FrequencyOracle& oracle,
                           const CollectorOptions& options)
    : collector_(oracle, options) {}

long long EpochManager::OpenEpoch() {
  LDPR_REQUIRE(!open_, "cannot open an epoch while epoch "
                           << next_epoch_ - 1 << " is still ingesting");
  open_ = true;
  opened_at_ = MonotonicSeconds();
  return next_epoch_++;
}

Collector& EpochManager::collector() {
  LDPR_REQUIRE(open_, "ingest requires an open epoch (OpenEpoch first)");
  return collector_;
}

const EstimateSnapshot& EpochManager::Seal() {
  LDPR_REQUIRE(open_, "no open epoch to seal");
  const double seconds = MonotonicSeconds() - opened_at_;
  Collector::Drained drained = collector_.Drain();

  EstimateSnapshot snapshot;
  snapshot.epoch = next_epoch_ - 1;
  snapshot.n = drained.n;
  snapshot.counts = std::move(drained.counts);
  if (drained.n > 0) {
    const fo::FrequencyOracle& oracle = collector_.oracle();
    snapshot.frequencies =
        oracle.EstimateFromCounts(snapshot.counts, drained.n);
    snapshot.consistent = fo::MakeConsistent(
        snapshot.frequencies, collector_.options().consistency,
        collector_.options().consistency_threshold);
  }
  snapshot.stats.reports = drained.tallies.reports;
  snapshot.stats.bytes = drained.tallies.bytes;
  snapshot.stats.rejected = drained.tallies.rejected;
  snapshot.stats.seconds = seconds;
  snapshot.stats.reports_per_second =
      seconds > 0.0 ? static_cast<double>(drained.tallies.reports) / seconds
                    : 0.0;

  open_ = false;
  history_.push_back(std::move(snapshot));
  return history_.back();
}

}  // namespace ldpr::serve
