#include "serve/collector.h"

#include "core/check.h"
#include "core/parallel.h"

namespace ldpr::serve {

Collector::Collector(const fo::FrequencyOracle& oracle,
                     const CollectorOptions& options)
    : oracle_(oracle), options_(options) {
  int lanes = options.lanes > 0 ? options.lanes : DefaultThreadCount();
  LDPR_CHECK(lanes >= 1, "collector needs at least one lane");
  lanes_.reserve(lanes);
  for (int i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(oracle));
  }
  report_bytes_ = lanes_[0]->decoder.report_bytes();
}

bool Collector::Ingest(int lane_hint, const std::uint8_t* data,
                       std::size_t size) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  if (lane.decoder.DecodeInto(data, size, *lane.aggregator)) {
    ++lane.tallies.reports;
    lane.tallies.bytes += static_cast<long long>(size);
    return true;
  }
  ++lane.tallies.rejected;
  return false;
}

void Collector::IngestHistogram(int lane_hint,
                                const std::vector<long long>& histogram,
                                Rng& rng) {
  Lane& lane = *lanes_[static_cast<std::size_t>(lane_hint) % lanes_.size()];
  std::lock_guard<std::mutex> guard(lane.mutex);
  const long long before = lane.aggregator->n();
  lane.aggregator->AccumulateHistogram(histogram, rng);
  const long long added = lane.aggregator->n() - before;
  lane.tallies.reports += added;
  lane.tallies.bytes += added * static_cast<long long>(report_bytes_);
}

Collector::Drained Collector::Drain() {
  Drained out;
  out.counts.assign(oracle_.k(), 0);
  for (auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    std::lock_guard<std::mutex> guard(lane.mutex);
    const std::vector<long long>& counts = lane.aggregator->counts();
    for (std::size_t v = 0; v < out.counts.size(); ++v) {
      out.counts[v] += counts[v];
    }
    out.n += lane.aggregator->n();
    out.tallies.Merge(lane.tallies);
    lane.aggregator = oracle_.MakeAggregator();
    lane.tallies = IngestCounters{};
  }
  return out;
}

}  // namespace ldpr::serve
