#ifndef LDPR_SERVE_COLLECTOR_H_
#define LDPR_SERVE_COLLECTOR_H_

// The streaming collection service's ingest core.
//
// The paper's deployment surface is a server continuously receiving
// wire-encoded sanitized reports from millions of users. A Collector models
// exactly that for one attribute: producers push raw report buffers into
// lock-striped lanes, each lane owning its own fo::Aggregator,
// fo::WireDecoder scratch and IngestCounters, so concurrent producers that
// shard themselves over lanes never contend. Sealing an epoch merges the
// lane aggregators (O(lanes * k), constant in the number of reports) into an
// immutable EstimateSnapshot.
//
// Ingest is staged, not scalar: each lane validates an incoming buffer
// (fo::WireDecoder::Validate — same accept set as the scalar decoder),
// copies it into a fixed staging block of bitslice::kBlockRows padded rows,
// and defers all decode work to fo::Aggregator::AccumulateWireBlock, which
// the lane flushes when the block fills and again at Drain() (flush-on-seal)
// — so a sealed epoch always covers every accepted report, wherever the
// block boundary fell.
//
// Determinism: block kernels are pinned bit-identical to the scalar decode
// path (fo_bitslice_exact_test) and merged support counts are integer sums,
// so the sealed snapshot depends only on the multiset of accepted reports —
// never on lane assignment, producer interleaving, LDPR_THREADS, or where
// the flush boundaries fell (serve_collector_test pins this, and pins
// snapshot estimates bit-identical to a batch fo::Aggregator fed the same
// report stream).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/stats.h"
#include "fo/consistency.h"
#include "fo/frequency_oracle.h"
#include "fo/wire.h"
#include "obs/metrics.h"
#include "privacy/accountant.h"
#include "serve/ingest.h"

namespace ldpr::serve {

struct CollectorOptions {
  /// Number of lock-striped ingest lanes; 0 = one per worker thread
  /// (core DefaultThreadCount). Lane count never affects sealed results.
  int lanes = 0;
  /// Post-processing applied to the snapshot's `consistent` estimate.
  fo::ConsistencyMethod consistency = fo::ConsistencyMethod::kNormSub;
  double consistency_threshold = 0.0;
  /// Telemetry sink; nullptr disables instrumentation entirely (the
  /// default, so benchmarks and tests that don't scrape pay nothing).
  /// When set, the collector exports its lane tallies as
  /// `ldpr_ingest_*` counters via a scrape callback — the per-report fast
  /// path is untouched; the tallies it already maintains ARE the sharded
  /// cells — and records per-flush decode-block latency/occupancy
  /// histograms (one sample per kBlockRows flush, never per report).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-epoch ingest statistics, frozen into the snapshot at seal time.
struct IngestStats {
  long long reports = 0;   ///< accepted (decoded + accumulated) reports
  long long bytes = 0;     ///< wire bytes of the accepted reports
  long long rejected = 0;  ///< malformed buffers cleanly rejected
  /// Admission-control rejects by reason (zero on surfaces without that
  /// admission stage; see serve::RejectReason).
  long long duplicates = 0;    ///< (user, epoch) already delivered a report
  long long rate_limited = 0;  ///< per-user token bucket empty
  long long shed = 0;          ///< dropped by overload shedding
  long long closed_epoch = 0;  ///< arrived with no epoch open
  double seconds = 0.0;    ///< epoch open -> seal wall time
  double reports_per_second = 0.0;  ///< reports / seconds (0 if degenerate)
};

/// Immutable estimate of one sealed epoch.
struct EstimateSnapshot {
  long long epoch = -1;
  long long n = 0;                  ///< accepted reports in the epoch
  std::vector<long long> counts;    ///< merged support counts, size k
  std::vector<double> frequencies;  ///< raw Eq. (2) estimate
  std::vector<double> consistent;   ///< consistency post-processed estimate
  IngestStats stats;
  /// Realized budget of this epoch alone: fresh randomizations charged eps,
  /// recognized replays charged 0 (filled at seal by the longitudinal
  /// pipeline's replay classification).
  privacy::LedgerReport ledger;
  /// Sequential composition over every epoch sealed so far, this one
  /// included.
  privacy::LedgerReport cumulative_ledger;
};

/// Lock-striped ingest state for one frequency oracle. The oracle must
/// outlive the collector.
class Collector final : public IngestSink {
 public:
  explicit Collector(const fo::FrequencyOracle& oracle,
                     const CollectorOptions& options = {});
  ~Collector() override;

  /// Validates one wire-encoded report into lane `request.lane % lanes()`
  /// and stages it for that lane's aggregator. Thread-safe; producers that
  /// use distinct lanes never contend. A malformed frame comes back
  /// kMalformed (counted, nothing accumulated); the bare Collector imposes
  /// no other admission rule, so request.user is accepted unclassified.
  IngestResult Ingest(const IngestRequest& request) override;

  /// Ingest with an admission gate: `gate(request)` runs under the lane
  /// mutex after frame validation and before staging, returning the
  /// RejectReason to refuse with (kNone admits). Validation first means a
  /// malformed frame is always kMalformed, whatever the gate would say; the
  /// gate running pre-staging means a refused frame never reaches an
  /// aggregator. This is the extension point the longitudinal pipeline's
  /// duplicate classification plugs into; gates must not touch this lane
  /// (the mutex is held) and must order any locks of their own after it.
  template <typename Gate>
  IngestResult IngestGated(const IngestRequest& request, Gate&& gate) {
    Lane& lane =
        *lanes_[static_cast<std::size_t>(request.lane) % lanes_.size()];
    std::lock_guard<std::mutex> guard(lane.mutex);
    if (!lane.decoder.Validate(request.frame)) {
      ++lane.tallies.rejected;
      return IngestResult::Rejected(RejectReason::kMalformed);
    }
    const RejectReason verdict = gate(request);
    if (verdict != RejectReason::kNone) {
      CountReject(lane.tallies, verdict);
      return IngestResult::Rejected(verdict);
    }
    // Stage the admitted frame; all decode work happens at flush
    // (AccumulateWireBlock) when the block fills or the epoch seals.
    std::memcpy(lane.staging.data() +
                    static_cast<std::size_t>(lane.staged) * stage_stride_,
                request.frame.data(), request.frame.size());
    if (++lane.staged == fo::bitslice::kBlockRows) FlushLocked(lane);
    ++lane.tallies.reports;
    lane.tallies.bytes += static_cast<long long>(request.frame.size());
    return IngestResult::Accepted();
  }

  /// Closed-form lane feed for the fast simulation profile: draws the
  /// aggregate support counts of `histogram` directly into lane
  /// `lane % lanes()` (fo::Aggregator::AccumulateHistogram), bypassing the
  /// wire. Counted as histogram-total reports of report_bytes() each.
  void IngestHistogram(int lane, const std::vector<long long>& histogram,
                       Rng& rng);

  /// Sums every lane's counts/tallies and resets the lanes for the next
  /// epoch. O(lanes * k). Used by EpochManager::Seal; exposed for tests.
  struct Drained {
    std::vector<long long> counts;
    long long n = 0;
    IngestCounters tallies;
  };
  Drained Drain();

  /// Lifetime ingest totals: everything drained in past epochs plus the
  /// live lane tallies right now. This is what the telemetry callback
  /// exports, so a scrape mid-epoch is exact (briefly takes each lane
  /// mutex) and a scrape after the last seal equals the sum of all sealed
  /// snapshots' IngestCounters.
  IngestCounters TotalsNow() const;

  int lanes() const { return static_cast<int>(lanes_.size()); }
  /// The exact buffer size Ingest accepts (WireDecoder::report_bytes).
  std::size_t report_bytes() const { return report_bytes_; }
  const fo::FrequencyOracle& oracle() const { return oracle_; }
  const CollectorOptions& options() const { return options_; }

  /// Rows currently staged (validated, not yet decoded) in lane
  /// `lane % lanes()`. Exposed for flush-boundary tests.
  int staged(int lane) const;

 private:
  /// Cache-line isolated (alignas pads sizeof to a 64-byte multiple too):
  /// producers pinned to disjoint lanes touch disjoint lines, so the lane
  /// mutexes and hot tallies/staged counters never false-share — without
  /// this, adjacent heap-allocated lanes can land on one line and ingest
  /// throughput stops scaling with producer threads.
  struct alignas(64) Lane {
    Lane(const fo::FrequencyOracle& oracle, std::size_t staging_bytes,
         int index)
        : aggregator(oracle.MakeAggregator()),
          decoder(oracle),
          staging(staging_bytes, 0),
          index(index) {}

    mutable std::mutex mutex;
    std::unique_ptr<fo::Aggregator> aggregator;
    fo::WireDecoder decoder;
    IngestCounters tallies;
    /// kBlockRows rows of stage_stride_ bytes plus kRowTailSlack; row
    /// padding bytes stay zero for the life of the lane (accepted frames
    /// all have the same exact size).
    std::vector<std::uint8_t> staging;
    int staged = 0;
    /// Telemetry shard hint: flush histograms record on the lane's own
    /// shard, so lanes never share a histogram cache line either.
    const int index;
  };
  static_assert(alignof(Lane) >= 64,
                "lanes must start on their own cache line");
  static_assert(sizeof(Lane) % 64 == 0,
                "lane padding must cover whole cache lines");

  /// Decodes the lane's staged rows into its aggregator. Caller holds the
  /// lane mutex.
  void FlushLocked(Lane& lane);

  const fo::FrequencyOracle& oracle_;
  CollectorOptions options_;
  std::size_t report_bytes_;
  std::size_t stage_stride_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Tallies of every past Drain() (Drain resets the lanes, so lifetime
  /// totals have to accumulate somewhere for mid-run scrapes).
  mutable std::mutex drained_mutex_;
  IngestCounters drained_totals_;

  /// Set iff options.metrics != nullptr.
  struct Obs {
    obs::MetricsRegistry* registry = nullptr;
    std::shared_ptr<obs::Histogram> decode_block_seconds;
    std::shared_ptr<obs::Histogram> decode_block_rows;
    long long callback_id = 0;
  };
  std::unique_ptr<Obs> obs_;
};

// The epoch lifecycle (EpochManager) lives in serve/longitudinal.h: it is a
// LongitudinalCollector on the fixed one-epoch schedule.

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_COLLECTOR_H_
