#include "serve/epoch_schedule.h"

#include <cstdlib>

#include "core/check.h"

namespace ldpr::serve {

const char* WindowKindName(WindowKind kind) {
  switch (kind) {
    case WindowKind::kFixed:
      return "fixed";
    case WindowKind::kSliding:
      return "sliding";
    case WindowKind::kOverlapping:
      return "overlapping";
  }
  return "?";
}

EpochSchedule::EpochSchedule(int length, int stride)
    : length_(length), stride_(stride) {
  LDPR_REQUIRE(length >= 1, "window length must be >= 1, got " << length);
  LDPR_REQUIRE(stride >= 1 && stride <= length,
               "window stride must be in [1, length], got stride="
                   << stride << " length=" << length);
}

EpochSchedule EpochSchedule::Fixed(int length) {
  return EpochSchedule(length, length);
}

EpochSchedule EpochSchedule::Sliding(int length) {
  return EpochSchedule(length, 1);
}

EpochSchedule EpochSchedule::Overlapping(int length, int stride) {
  return EpochSchedule(length, stride);
}

WindowKind EpochSchedule::kind() const {
  if (stride_ == length_) return WindowKind::kFixed;
  if (stride_ == 1) return WindowKind::kSliding;
  return WindowKind::kOverlapping;
}

long long EpochSchedule::CompletedWindow(long long epoch) const {
  const long long since_first_full = epoch - (length_ - 1);
  if (since_first_full < 0) return -1;
  if (since_first_full % stride_ != 0) return -1;
  return since_first_full / stride_;
}

namespace {

int ParsePositiveInt(const std::string& spec, const std::string& token) {
  char* end = nullptr;
  const long value = std::strtol(token.c_str(), &end, 10);
  LDPR_REQUIRE(end != token.c_str() && *end == '\0' && value >= 1,
               "bad window spec '" << spec << "': '" << token
                                  << "' is not a positive integer");
  return static_cast<int>(value);
}

}  // namespace

EpochSchedule ParseEpochSchedule(const std::string& spec) {
  std::string name = spec;
  std::string rest;
  if (const auto colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    rest = spec.substr(colon + 1);
  }
  if (name == "fixed") {
    return EpochSchedule::Fixed(rest.empty() ? 1
                                             : ParsePositiveInt(spec, rest));
  }
  if (name == "sliding") {
    LDPR_REQUIRE(!rest.empty(),
                 "bad window spec '" << spec << "': sliding needs a length"
                                     << " (sliding:L)");
    return EpochSchedule::Sliding(ParsePositiveInt(spec, rest));
  }
  if (name == "overlap" || name == "overlapping") {
    const auto colon = rest.find(':');
    LDPR_REQUIRE(colon != std::string::npos,
                 "bad window spec '" << spec
                                     << "': overlap needs length and stride"
                                     << " (overlap:L:S)");
    const int length = ParsePositiveInt(spec, rest.substr(0, colon));
    const int stride = ParsePositiveInt(spec, rest.substr(colon + 1));
    return EpochSchedule::Overlapping(length, stride);
  }
  LDPR_REQUIRE(false, "bad window spec '"
                          << spec
                          << "': expected fixed[:L] | sliding:L | "
                             "overlap:L:S");
  return EpochSchedule::Fixed(1);  // unreachable
}

}  // namespace ldpr::serve
