#ifndef LDPR_SERVE_EPOCH_SCHEDULE_H_
#define LDPR_SERVE_EPOCH_SCHEDULE_H_

// Window arithmetic for the longitudinal collection pipeline.
//
// An EpochSchedule maps the linear epoch sequence 0, 1, 2, ... onto
// estimation windows of `length` consecutive epochs advancing by `stride`:
//
//   fixed (tumbling)   : length == stride      [0..L), [L..2L), ...
//   sliding            : stride == 1           [0..L), [1..L+1), ...
//   overlapping        : 1 < stride < length   [0..L), [S..S+L), ...
//
// Window w covers epochs [w*stride, w*stride + length). At most one window
// completes per sealed epoch (stride >= 1), which is what lets the
// LongitudinalCollector maintain window estimates as a running count delta
// (add the newest epoch, subtract the one that slid out) instead of
// recomputing each window from scratch.

#include <string>

namespace ldpr::serve {

enum class WindowKind { kFixed, kSliding, kOverlapping };

const char* WindowKindName(WindowKind kind);

class EpochSchedule {
 public:
  /// Tumbling windows of `length` epochs (default: every epoch is its own
  /// window, the legacy seal-and-forget lifecycle).
  static EpochSchedule Fixed(int length = 1);
  /// Windows of `length` epochs advancing one epoch at a time.
  static EpochSchedule Sliding(int length);
  /// Windows of `length` epochs advancing by `stride` (1 <= stride <=
  /// length).
  static EpochSchedule Overlapping(int length, int stride);

  int length() const { return length_; }
  int stride() const { return stride_; }
  WindowKind kind() const;

  /// First / last epoch of window w (w = 0, 1, ...).
  long long FirstEpoch(long long window) const { return window * stride_; }
  long long LastEpoch(long long window) const {
    return window * stride_ + length_ - 1;
  }

  /// The window that completes when `epoch` seals, or -1 when none does.
  /// Exactly the w with LastEpoch(w) == epoch.
  long long CompletedWindow(long long epoch) const;

 private:
  EpochSchedule(int length, int stride);

  int length_ = 1;
  int stride_ = 1;
};

/// Parses the serve-demo `--windows` spec: "fixed" | "fixed:L" |
/// "sliding:L" | "overlap:L:S". Throws InvalidArgumentError on malformed
/// specs.
EpochSchedule ParseEpochSchedule(const std::string& spec);

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_EPOCH_SCHEDULE_H_
