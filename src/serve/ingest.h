#ifndef LDPR_SERVE_INGEST_H_
#define LDPR_SERVE_INGEST_H_

// The collection service's single ingest entry point.
//
// Every surface that accepts sanitized wire reports — the per-epoch
// Collector, the longitudinal pipeline, the multidimensional front-end and
// the socket server feeding any of them — implements one API:
//
//   IngestResult IngestSink::Ingest(const IngestRequest&)
//
// A request carries the wire frame, an optional user attribution (the
// longitudinal pipeline's replay/duplicate classification has no meaning
// without one) and a lane hint; the result is accept/reject plus an
// enumerable reject reason. Rejects are *counted*, never thrown: admission
// control (rate limiting, load shedding, the one-report-per-user-per-epoch
// invariant) and codec strictness (WireDecoder's exact-serializer-image
// acceptance) both surface through the same RejectReason so a deployment
// can alert on each class independently.
//
// The older Ingest(lane, ptr, size) / Ingest(lane, vector) /
// IngestUser(user, lane, ...) overload families survive one release as
// [[deprecated]] inline shims on the concrete collectors.

#include <cstdint>
#include <optional>
#include <span>

#include "core/stats.h"

namespace ldpr::serve {

/// Why an ingest surface refused a frame. Every reject is counted under its
/// reason (IngestCounters / ServerCounters); kNone never appears on a
/// reject.
enum class RejectReason : std::uint8_t {
  kNone = 0,     ///< accepted
  kMalformed,    ///< not an exact serializer image (WireDecoder::Validate)
  kDuplicate,    ///< user already delivered a report this epoch
  kRateLimited,  ///< per-user token bucket empty
  kShed,         ///< dropped by overload shedding
  kClosedEpoch,  ///< no epoch open to ingest into
};

inline const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kMalformed:
      return "malformed";
    case RejectReason::kDuplicate:
      return "duplicate";
    case RejectReason::kRateLimited:
      return "rate-limited";
    case RejectReason::kShed:
      return "shed";
    case RejectReason::kClosedEpoch:
      return "closed-epoch";
  }
  return "unknown";
}

/// Counts one reject into the matching IngestCounters field.
inline void CountReject(IngestCounters& counters, RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      break;
    case RejectReason::kMalformed:
      ++counters.rejected;
      break;
    case RejectReason::kDuplicate:
      ++counters.duplicates;
      break;
    case RejectReason::kRateLimited:
      ++counters.rate_limited;
      break;
    case RejectReason::kShed:
      ++counters.shed;
      break;
    case RejectReason::kClosedEpoch:
      ++counters.closed_epoch;
      break;
  }
}

/// One wire report on its way into a sink.
struct IngestRequest {
  /// The report's exact wire image (WireDecoder acceptance rules).
  std::span<const std::uint8_t> frame{};
  /// Reporting user, when the transport attributes one. Anonymous frames
  /// are charged as fresh randomizations and never replay/duplicate
  /// classified.
  std::optional<long long> user{};
  /// Lane hint; sinks take it modulo their lane count. Producers that pin
  /// themselves to distinct lanes never contend.
  int lane = 0;
};

struct IngestResult {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;

  explicit operator bool() const { return accepted; }

  static constexpr IngestResult Accepted() {
    return IngestResult{true, RejectReason::kNone};
  }
  static constexpr IngestResult Rejected(RejectReason why) {
    return IngestResult{false, why};
  }
};

/// The one ingest interface. Implementations are thread-safe per their own
/// documentation (the collectors stripe over lanes); Ingest never throws on
/// malformed or inadmissible frames — those come back as counted rejects.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  virtual IngestResult Ingest(const IngestRequest& request) = 0;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_INGEST_H_
