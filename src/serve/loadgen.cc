#include "serve/loadgen.h"

#include <algorithm>
#include <functional>

#include "core/check.h"
#include "core/parallel.h"
#include "fo/wire.h"

namespace ldpr::serve {

namespace {

/// Shared shape of the multidim encoders: one frame per dataset record,
/// shard-local buffers concatenated in shard order so the stream is
/// identical to a serial encode of users 0..n-1.
EncodedFrames EncodeRecordFrames(
    const data::Dataset& dataset, Rng& root, const sim::Options& options,
    const std::function<std::vector<std::uint8_t>(const std::vector<int>&,
                                                  Rng&)>& encode) {
  const long long n = dataset.n();
  LDPR_REQUIRE(n >= 1, "load generation requires a non-empty dataset");
  const int shards = sim::ResolveShardCount(n, options);
  std::vector<std::vector<std::uint8_t>> shard_bytes(shards);
  std::vector<std::vector<std::size_t>> shard_sizes(shards);
  sim::ShardedRun(n, root, options,
                  [&](int shard, long long lo, long long hi, Rng& rng) {
                    std::vector<int> record(dataset.d());
                    for (long long user = lo; user < hi; ++user) {
                      for (int j = 0; j < dataset.d(); ++j) {
                        record[j] = dataset.value(static_cast<int>(user), j);
                      }
                      const std::vector<std::uint8_t> frame =
                          encode(record, rng);
                      shard_bytes[shard].insert(shard_bytes[shard].end(),
                                                frame.begin(), frame.end());
                      shard_sizes[shard].push_back(frame.size());
                    }
                  });
  EncodedFrames out;
  for (int s = 0; s < shards; ++s) {
    out.bytes.insert(out.bytes.end(), shard_bytes[s].begin(),
                     shard_bytes[s].end());
    for (std::size_t size : shard_sizes[s]) {
      out.offsets.push_back(out.offsets.back() + size);
    }
  }
  return out;
}

}  // namespace

EncodedStream EncodeScalarLoad(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const sim::Options& options) {
  const long long n = static_cast<long long>(values.size());
  LDPR_REQUIRE(n >= 1, "load generation requires at least one value");
  EncodedStream out;
  out.count = n;
  out.frame_bytes =
      static_cast<std::size_t>((fo::SerializedReportBits(oracle) + 7) / 8);
  out.bytes.assign(static_cast<std::size_t>(n) * out.frame_bytes, 0);
  sim::ShardedRun(
      n, root, options,
      [&](int /*shard*/, long long lo, long long hi, Rng& rng) {
        std::size_t offset = static_cast<std::size_t>(lo) * out.frame_bytes;
        oracle.BatchRandomize(
            values.data() + lo, static_cast<std::size_t>(hi - lo), rng,
            [&](const fo::Report& report) {
              const std::vector<std::uint8_t> frame =
                  fo::SerializeReport(oracle, report);
              std::copy(frame.begin(), frame.end(),
                        out.bytes.begin() + offset);
              offset += out.frame_bytes;
            });
      });
  return out;
}

EncodedFrames EncodeSplLoad(const multidim::Spl& spl,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSplReports(spl, spl.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeSmpLoad(const multidim::Smp& smp,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSmpReport(smp, smp.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsFdLoad(const multidim::RsFd& rsfd,
                             const data::Dataset& dataset, Rng& root,
                             const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsFdReport(rsfd, rsfd.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsRfdLoad(const multidim::RsRfd& rsrfd,
                              const data::Dataset& dataset, Rng& root,
                              const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsRfdReport(rsrfd, rsrfd.RandomizeUser(record, rng));
      });
}

long long IngestStream(Collector& collector, const EncodedStream& stream,
                       int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      stream.count, shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector.Ingest(shard, stream.frame(i), stream.frame_bytes)
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

long long IngestFrames(MultidimCollector& collector,
                       const EncodedFrames& frames, int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      frames.count(), shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector.Ingest(shard, frames.frame(i), frames.frame_size(i))
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

}  // namespace ldpr::serve
