#include "serve/loadgen.h"

#include <algorithm>
#include <functional>

#include "core/check.h"
#include "core/parallel.h"
#include "fo/wire.h"

namespace ldpr::serve {

namespace {

/// Shared shape of the multidim encoders: one frame per dataset record,
/// shard-local buffers concatenated in shard order so the stream is
/// identical to a serial encode of users 0..n-1.
EncodedFrames EncodeRecordFrames(
    const data::Dataset& dataset, Rng& root, const sim::Options& options,
    const std::function<std::vector<std::uint8_t>(const std::vector<int>&,
                                                  Rng&)>& encode) {
  const long long n = dataset.n();
  LDPR_REQUIRE(n >= 1, "load generation requires a non-empty dataset");
  const int shards = sim::ResolveShardCount(n, options);
  std::vector<std::vector<std::uint8_t>> shard_bytes(shards);
  std::vector<std::vector<std::size_t>> shard_sizes(shards);
  sim::ShardedRun(n, root, options,
                  [&](int shard, long long lo, long long hi, Rng& rng) {
                    std::vector<int> record(dataset.d());
                    for (long long user = lo; user < hi; ++user) {
                      for (int j = 0; j < dataset.d(); ++j) {
                        record[j] = dataset.value(static_cast<int>(user), j);
                      }
                      const std::vector<std::uint8_t> frame =
                          encode(record, rng);
                      shard_bytes[shard].insert(shard_bytes[shard].end(),
                                                frame.begin(), frame.end());
                      shard_sizes[shard].push_back(frame.size());
                    }
                  });
  EncodedFrames out;
  for (int s = 0; s < shards; ++s) {
    out.bytes.insert(out.bytes.end(), shard_bytes[s].begin(),
                     shard_bytes[s].end());
    for (std::size_t size : shard_sizes[s]) {
      out.offsets.push_back(out.offsets.back() + size);
    }
  }
  return out;
}

}  // namespace

EncodedStream EncodeScalarLoad(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const sim::Options& options) {
  const long long n = static_cast<long long>(values.size());
  LDPR_REQUIRE(n >= 1, "load generation requires at least one value");
  EncodedStream out;
  out.count = n;
  out.frame_bytes =
      static_cast<std::size_t>((fo::SerializedReportBits(oracle) + 7) / 8);
  out.bytes.assign(static_cast<std::size_t>(n) * out.frame_bytes, 0);
  sim::ShardedRun(
      n, root, options,
      [&](int /*shard*/, long long lo, long long hi, Rng& rng) {
        std::size_t offset = static_cast<std::size_t>(lo) * out.frame_bytes;
        oracle.BatchRandomize(
            values.data() + lo, static_cast<std::size_t>(hi - lo), rng,
            [&](const fo::Report& report) {
              const std::vector<std::uint8_t> frame =
                  fo::SerializeReport(oracle, report);
              std::copy(frame.begin(), frame.end(),
                        out.bytes.begin() + offset);
              offset += out.frame_bytes;
            });
      });
  return out;
}

EncodedFrames EncodeSplLoad(const multidim::Spl& spl,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSplReports(spl, spl.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeSmpLoad(const multidim::Smp& smp,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSmpReport(smp, smp.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsFdLoad(const multidim::RsFd& rsfd,
                             const data::Dataset& dataset, Rng& root,
                             const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsFdReport(rsfd, rsfd.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsRfdLoad(const multidim::RsRfd& rsrfd,
                              const data::Dataset& dataset, Rng& root,
                              const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsRfdReport(rsrfd, rsrfd.RandomizeUser(record, rng));
      });
}

LongitudinalClients::LongitudinalClients(const fo::FrequencyOracle& oracle,
                                         long long num_users, bool memoize)
    : oracle_(oracle),
      frame_bytes_(
          static_cast<std::size_t>((fo::SerializedReportBits(oracle) + 7) / 8)),
      memoize_(memoize) {
  LDPR_REQUIRE(num_users >= 1,
               "longitudinal clients need at least one user, got "
                   << num_users);
  clients_.resize(static_cast<std::size_t>(num_users));
}

EncodedStream LongitudinalClients::EncodeRound(const std::vector<int>& values,
                                               Rng& root,
                                               const sim::Options& options) {
  const long long n = num_users();
  LDPR_REQUIRE(static_cast<long long>(values.size()) == n,
               "round needs one value per user: got " << values.size()
                                                      << " for " << n);
  EncodedStream out;
  out.count = n;
  out.frame_bytes = frame_bytes_;
  out.bytes.assign(static_cast<std::size_t>(n) * frame_bytes_, 0);
  const int shards = sim::ResolveShardCount(n, options);
  std::vector<long long> shard_fresh(shards, 0);
  std::vector<long long> shard_memoized(shards, 0);
  sim::ShardedRun(
      n, root, options,
      [&](int shard, long long lo, long long hi, Rng& rng) {
        for (long long user = lo; user < hi; ++user) {
          std::uint8_t* slot =
              out.bytes.data() + static_cast<std::size_t>(user) * frame_bytes_;
          Client& client = clients_[static_cast<std::size_t>(user)];
          const int value = values[static_cast<std::size_t>(user)];
          if (memoize_) {
            bool replayed = false;
            for (const auto& [cached_value, frame] : client.permanent) {
              if (cached_value == value) {
                std::copy(frame.begin(), frame.end(), slot);
                ++shard_memoized[shard];
                replayed = true;
                break;
              }
            }
            if (replayed) continue;
          }
          const std::vector<std::uint8_t> frame =
              fo::SerializeReport(oracle_, oracle_.Randomize(value, rng));
          std::copy(frame.begin(), frame.end(), slot);
          ++shard_fresh[shard];
          if (memoize_) client.permanent.emplace_back(value, frame);
        }
      });
  for (int s = 0; s < shards; ++s) {
    fresh_ += shard_fresh[s];
    memoized_ += shard_memoized[s];
  }
  return out;
}

long long IngestStreamUsers(LongitudinalCollector& collector,
                            const EncodedStream& stream, long long first_user,
                            int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      stream.count, shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector.IngestUser(first_user + i, shard, stream.frame(i),
                                     stream.frame_bytes)
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

long long IngestStream(Collector& collector, const EncodedStream& stream,
                       int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      stream.count, shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector.Ingest(shard, stream.frame(i), stream.frame_bytes)
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

MtIngestResult IngestStreamMt(Collector& collector,
                              const EncodedStream& stream, int producers) {
  LDPR_REQUIRE(producers >= 1, "multi-producer ingest needs >= 1 producer");
  MtIngestResult out;
  const double start = MonotonicSeconds();
  out.accepted = IngestStream(collector, stream, producers);
  out.seconds = MonotonicSeconds() - start;
  out.reports_per_second =
      out.seconds > 0.0 ? static_cast<double>(out.accepted) / out.seconds : 0.0;
  return out;
}

long long IngestFrames(MultidimCollector& collector,
                       const EncodedFrames& frames, int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      frames.count(), shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector.Ingest(shard, frames.frame(i), frames.frame_size(i))
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

}  // namespace ldpr::serve
