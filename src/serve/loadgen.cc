#include "serve/loadgen.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <netinet/in.h>
#include <netinet/tcp.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <functional>

#include "core/check.h"
#include "core/parallel.h"
#include "fo/wire.h"
#include "serve/wire_session.h"

namespace ldpr::serve {

namespace {

/// Shared shape of the multidim encoders: one frame per dataset record,
/// shard-local buffers concatenated in shard order so the stream is
/// identical to a serial encode of users 0..n-1.
EncodedFrames EncodeRecordFrames(
    const data::Dataset& dataset, Rng& root, const sim::Options& options,
    const std::function<std::vector<std::uint8_t>(const std::vector<int>&,
                                                  Rng&)>& encode) {
  const long long n = dataset.n();
  LDPR_REQUIRE(n >= 1, "load generation requires a non-empty dataset");
  const int shards = sim::ResolveShardCount(n, options);
  std::vector<std::vector<std::uint8_t>> shard_bytes(shards);
  std::vector<std::vector<std::size_t>> shard_sizes(shards);
  sim::ShardedRun(n, root, options,
                  [&](int shard, long long lo, long long hi, Rng& rng) {
                    std::vector<int> record(dataset.d());
                    for (long long user = lo; user < hi; ++user) {
                      for (int j = 0; j < dataset.d(); ++j) {
                        record[j] = dataset.value(static_cast<int>(user), j);
                      }
                      const std::vector<std::uint8_t> frame =
                          encode(record, rng);
                      shard_bytes[shard].insert(shard_bytes[shard].end(),
                                                frame.begin(), frame.end());
                      shard_sizes[shard].push_back(frame.size());
                    }
                  });
  EncodedFrames out;
  for (int s = 0; s < shards; ++s) {
    out.bytes.insert(out.bytes.end(), shard_bytes[s].begin(),
                     shard_bytes[s].end());
    for (std::size_t size : shard_sizes[s]) {
      out.offsets.push_back(out.offsets.back() + size);
    }
  }
  return out;
}

}  // namespace

EncodedStream EncodeScalarLoad(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const sim::Options& options) {
  const long long n = static_cast<long long>(values.size());
  LDPR_REQUIRE(n >= 1, "load generation requires at least one value");
  EncodedStream out;
  out.count = n;
  out.frame_bytes =
      static_cast<std::size_t>((fo::SerializedReportBits(oracle) + 7) / 8);
  out.bytes.assign(static_cast<std::size_t>(n) * out.frame_bytes, 0);
  sim::ShardedRun(
      n, root, options,
      [&](int /*shard*/, long long lo, long long hi, Rng& rng) {
        std::size_t offset = static_cast<std::size_t>(lo) * out.frame_bytes;
        oracle.BatchRandomize(
            values.data() + lo, static_cast<std::size_t>(hi - lo), rng,
            [&](const fo::Report& report) {
              const std::vector<std::uint8_t> frame =
                  fo::SerializeReport(oracle, report);
              std::copy(frame.begin(), frame.end(),
                        out.bytes.begin() + offset);
              offset += out.frame_bytes;
            });
      });
  return out;
}

EncodedFrames EncodeSplLoad(const multidim::Spl& spl,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSplReports(spl, spl.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeSmpLoad(const multidim::Smp& smp,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeSmpReport(smp, smp.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsFdLoad(const multidim::RsFd& rsfd,
                             const data::Dataset& dataset, Rng& root,
                             const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsFdReport(rsfd, rsfd.RandomizeUser(record, rng));
      });
}

EncodedFrames EncodeRsRfdLoad(const multidim::RsRfd& rsrfd,
                              const data::Dataset& dataset, Rng& root,
                              const sim::Options& options) {
  return EncodeRecordFrames(
      dataset, root, options, [&](const std::vector<int>& record, Rng& rng) {
        return SerializeRsRfdReport(rsrfd, rsrfd.RandomizeUser(record, rng));
      });
}

LongitudinalClients::LongitudinalClients(const fo::FrequencyOracle& oracle,
                                         long long num_users, bool memoize)
    : oracle_(oracle),
      frame_bytes_(
          static_cast<std::size_t>((fo::SerializedReportBits(oracle) + 7) / 8)),
      memoize_(memoize) {
  LDPR_REQUIRE(num_users >= 1,
               "longitudinal clients need at least one user, got "
                   << num_users);
  clients_.resize(static_cast<std::size_t>(num_users));
}

EncodedStream LongitudinalClients::EncodeRound(const std::vector<int>& values,
                                               Rng& root,
                                               const sim::Options& options) {
  const long long n = num_users();
  LDPR_REQUIRE(static_cast<long long>(values.size()) == n,
               "round needs one value per user: got " << values.size()
                                                      << " for " << n);
  EncodedStream out;
  out.count = n;
  out.frame_bytes = frame_bytes_;
  out.bytes.assign(static_cast<std::size_t>(n) * frame_bytes_, 0);
  const int shards = sim::ResolveShardCount(n, options);
  std::vector<long long> shard_fresh(shards, 0);
  std::vector<long long> shard_memoized(shards, 0);
  sim::ShardedRun(
      n, root, options,
      [&](int shard, long long lo, long long hi, Rng& rng) {
        for (long long user = lo; user < hi; ++user) {
          std::uint8_t* slot =
              out.bytes.data() + static_cast<std::size_t>(user) * frame_bytes_;
          Client& client = clients_[static_cast<std::size_t>(user)];
          const int value = values[static_cast<std::size_t>(user)];
          if (memoize_) {
            bool replayed = false;
            for (const auto& [cached_value, frame] : client.permanent) {
              if (cached_value == value) {
                std::copy(frame.begin(), frame.end(), slot);
                ++shard_memoized[shard];
                replayed = true;
                break;
              }
            }
            if (replayed) continue;
          }
          const std::vector<std::uint8_t> frame =
              fo::SerializeReport(oracle_, oracle_.Randomize(value, rng));
          std::copy(frame.begin(), frame.end(), slot);
          ++shard_fresh[shard];
          if (memoize_) client.permanent.emplace_back(value, frame);
        }
      });
  for (int s = 0; s < shards; ++s) {
    fresh_ += shard_fresh[s];
    memoized_ += shard_memoized[s];
  }
  return out;
}

long long IngestStreamUsers(LongitudinalCollector& collector,
                            const EncodedStream& stream, long long first_user,
                            int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      stream.count, shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector
                        .Ingest({{stream.frame(i), stream.frame_bytes},
                                 first_user + i,
                                 shard})
                        .accepted
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

long long IngestStream(Collector& collector, const EncodedStream& stream,
                       int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      stream.count, shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector
                        .Ingest({{stream.frame(i), stream.frame_bytes},
                                 std::nullopt,
                                 shard})
                        .accepted
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

MtIngestResult IngestStreamMt(Collector& collector,
                              const EncodedStream& stream, int producers) {
  LDPR_REQUIRE(producers >= 1, "multi-producer ingest needs >= 1 producer");
  MtIngestResult out;
  const double start = MonotonicSeconds();
  out.accepted = IngestStream(collector, stream, producers);
  out.seconds = MonotonicSeconds() - start;
  out.reports_per_second =
      out.seconds > 0.0 ? static_cast<double>(out.accepted) / out.seconds : 0.0;
  return out;
}

long long IngestFrames(MultidimCollector& collector,
                       const EncodedFrames& frames, int threads) {
  const int shards = collector.lanes();
  std::vector<long long> accepted(shards, 0);
  ParallelForShards(
      frames.count(), shards,
      [&](int shard, long long lo, long long hi) {
        long long ok = 0;
        for (long long i = lo; i < hi; ++i) {
          ok += collector
                        .Ingest({{frames.frame(i), frames.frame_size(i)},
                                 std::nullopt,
                                 shard})
                        .accepted
                    ? 1
                    : 0;
        }
        accepted[shard] = ok;
      },
      threads);
  long long total = 0;
  for (long long a : accepted) total += a;
  return total;
}

std::vector<std::uint8_t> FrameStreamRecords(
    const EncodedStream& stream, long long lo, long long hi,
    std::optional<long long> first_user, long long duplicate_every) {
  LDPR_REQUIRE(lo >= 0 && hi <= stream.count && lo <= hi,
               "record range [" << lo << ", " << hi
                                << ") outside the stream's " << stream.count
                                << " frames");
  std::vector<std::uint8_t> out;
  const std::size_t record_bytes =
      kRecordHeaderBytes + kRecordUserBytes + stream.frame_bytes;
  out.reserve(static_cast<std::size_t>(hi - lo) * record_bytes +
              (duplicate_every > 0
                   ? static_cast<std::size_t>((hi - lo) / duplicate_every + 1) *
                         record_bytes
                   : 0));
  for (long long i = lo; i < hi; ++i) {
    const std::uint64_t user =
        first_user.has_value()
            ? static_cast<std::uint64_t>(*first_user + i)
            : kAnonymousUser;
    const std::span<const std::uint8_t> frame{stream.frame(i),
                                              stream.frame_bytes};
    AppendWireRecord(user, frame, out);
    if (duplicate_every > 0 && (i - lo) % duplicate_every == 0) {
      AppendWireRecord(user, frame, out);
    }
  }
  return out;
}

namespace {

SocketSendResult SendAll(int fd, std::span<const std::uint8_t> bytes,
                         const char* what) {
  const double start = MonotonicSeconds();
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      LDPR_CHECK(false, what << " send failed after " << sent
                             << " bytes: " << std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }
  ::close(fd);
  SocketSendResult out;
  out.bytes = static_cast<long long>(sent);
  out.seconds = MonotonicSeconds() - start;
  return out;
}

}  // namespace

SocketSendResult SendOverUds(const std::string& uds_path,
                             std::span<const std::uint8_t> bytes) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LDPR_REQUIRE(uds_path.size() < sizeof(addr.sun_path),
               "UDS path too long: " << uds_path);
  std::strncpy(addr.sun_path, uds_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  LDPR_CHECK(fd >= 0, "socket(AF_UNIX) failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    LDPR_CHECK(false, "connect(" << uds_path
                                 << ") failed: " << std::strerror(err));
  }
  return SendAll(fd, bytes, "UDS");
}

SocketSendResult SendOverTcp(int port, std::span<const std::uint8_t> bytes) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LDPR_CHECK(fd >= 0, "socket(AF_INET) failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    LDPR_CHECK(false, "connect(127.0.0.1:" << port
                                           << ") failed: "
                                           << std::strerror(err));
  }
  return SendAll(fd, bytes, "TCP");
}

std::string HttpGetOverUds(const std::string& uds_path,
                           const std::string& target) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LDPR_REQUIRE(uds_path.size() < sizeof(addr.sun_path),
               "UDS path too long: " << uds_path);
  std::strncpy(addr.sun_path, uds_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  LDPR_CHECK(fd >= 0, "socket(AF_UNIX) failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    LDPR_CHECK(false, "connect(" << uds_path
                                 << ") failed: " << std::strerror(err));
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      LDPR_CHECK(false, "admin request write failed: "
                            << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // close-delimited response
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace ldpr::serve
