#ifndef LDPR_SERVE_LOADGEN_H_
#define LDPR_SERVE_LOADGEN_H_

// Load generator for the collection service: synthesizes the wire traffic
// of millions of users so the Collector is exercised end to end (randomize
// -> serialize -> ingest -> seal) rather than via in-process Report objects.
//
// Producers are sharded with the simulation engine's rules (sim::ShardedRun:
// shard boundaries and Fork streams depend only on n), so a fixed root seed
// yields byte-identical traffic under any LDPR_THREADS — which is what lets
// serve_collector_test pin sealed snapshots across thread counts.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <utility>

#include "core/rng.h"
#include "data/dataset.h"
#include "serve/collector.h"
#include "serve/longitudinal.h"
#include "serve/multidim_collector.h"
#include "sim/engine.h"

namespace ldpr::serve {

/// Fixed-stride wire stream: every scalar report of one oracle occupies the
/// same number of whole bytes, so a flat buffer needs no offset table.
struct EncodedStream {
  std::vector<std::uint8_t> bytes;
  std::size_t frame_bytes = 0;
  long long count = 0;

  const std::uint8_t* frame(long long i) const {
    return bytes.data() + static_cast<std::size_t>(i) * frame_bytes;
  }
};

/// Variable-width frame stream for multidimensional tuples (SMP tuples vary
/// with the sampled attribute). offsets.size() == count + 1.
struct EncodedFrames {
  std::vector<std::uint8_t> bytes;
  std::vector<std::size_t> offsets{0};

  long long count() const {
    return static_cast<long long>(offsets.size()) - 1;
  }
  const std::uint8_t* frame(long long i) const {
    return bytes.data() + offsets[static_cast<std::size_t>(i)];
  }
  std::size_t frame_size(long long i) const {
    return offsets[static_cast<std::size_t>(i) + 1] -
           offsets[static_cast<std::size_t>(i)];
  }
};

/// Randomizes values[i] through `oracle` (BatchRandomize draw order) and
/// serializes each report into its slot of one flat buffer, fanned over
/// `options.threads` producers.
EncodedStream EncodeScalarLoad(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const sim::Options& options = {});

/// Multidimensional loads: one wire tuple per dataset record.
EncodedFrames EncodeSplLoad(const multidim::Spl& spl,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options = {});
EncodedFrames EncodeSmpLoad(const multidim::Smp& smp,
                            const data::Dataset& dataset, Rng& root,
                            const sim::Options& options = {});
EncodedFrames EncodeRsFdLoad(const multidim::RsFd& rsfd,
                             const data::Dataset& dataset, Rng& root,
                             const sim::Options& options = {});
EncodedFrames EncodeRsRfdLoad(const multidim::RsRfd& rsrfd,
                              const data::Dataset& dataset, Rng& root,
                              const sim::Options& options = {});

/// Feeds every frame into the collector, producers sharded over lanes
/// (shard s ingests into lane s: zero lock contention). Returns the number
/// of accepted reports.
long long IngestStream(Collector& collector, const EncodedStream& stream,
                       int threads = 0);

/// One timed run of the multi-producer ingest harness.
struct MtIngestResult {
  long long accepted = 0;
  double seconds = 0.0;
  double reports_per_second = 0.0;  ///< aggregate across all producers
};

/// Multi-producer ingest harness: `producers` real threads, each pinned to
/// a disjoint set of the collector's lanes (IngestStream's shard -> lane
/// mapping, one contiguous shard range per worker), with the wall-clock of
/// the whole fan-out measured — the aggregate decoded-reports/s number the
/// MT benchmarks and serve-demo report. Give the collector at least
/// `producers` lanes or producers will share lanes (still correct, just
/// contended).
MtIngestResult IngestStreamMt(Collector& collector,
                              const EncodedStream& stream, int producers);
long long IngestFrames(MultidimCollector& collector,
                       const EncodedFrames& frames, int threads = 0);

/// A fixed population of longitudinal clients holding RAPPOR-style
/// permanent answers: with memoization on, a client that reports a value it
/// has reported before replays the cached wire frame verbatim instead of
/// randomizing again — so repeated rounds leak nothing new and the server's
/// replay classification charges them eps = 0. With memoization off, every
/// round is a fresh randomization (the uniform-metric baseline whose
/// realized budget grows linearly in the number of rounds).
///
/// Rounds are sharded like EncodeScalarLoad (sim::ShardedRun), so a fixed
/// root seed yields byte-identical traffic under any LDPR_THREADS.
class LongitudinalClients {
 public:
  LongitudinalClients(const fo::FrequencyOracle& oracle, long long num_users,
                      bool memoize = true);

  /// One collection round: values[u] is user u's current true value.
  /// Frame i of the returned stream is user u = i's report.
  EncodedStream EncodeRound(const std::vector<int>& values, Rng& root,
                            const sim::Options& options = {});

  long long num_users() const {
    return static_cast<long long>(clients_.size());
  }
  bool memoize() const { return memoize_; }
  /// Client-side tallies across all rounds so far; with memoization on,
  /// they match the server's replay classification exactly (no hash
  /// collisions at these scales).
  long long fresh_randomizations() const { return fresh_; }
  long long memoized_replays() const { return memoized_; }
  const fo::FrequencyOracle& oracle() const { return oracle_; }

 private:
  struct Client {
    /// Permanent answers: (value, wire frame) pairs, first-report order.
    std::vector<std::pair<int, std::vector<std::uint8_t>>> permanent;
  };

  const fo::FrequencyOracle& oracle_;
  std::size_t frame_bytes_;
  bool memoize_;
  std::vector<Client> clients_;
  long long fresh_ = 0;
  long long memoized_ = 0;
};

/// Feeds frame i of the stream into the collector as user `first_user + i`
/// (accepted frames run through the replay classification), producers
/// sharded over lanes. Returns the number of accepted reports.
long long IngestStreamUsers(LongitudinalCollector& collector,
                            const EncodedStream& stream,
                            long long first_user = 0, int threads = 0);

// ---- Socket client mode: the load generator's network half, speaking the
// serve/wire_session.h record format at serve::IngestServer. ----

/// Frames stream indices [lo, hi) as wire records: frame i is attributed
/// to user `*first_user + i`, or anonymous when first_user is unset. With
/// `duplicate_every` > 0 every duplicate_every-th record is emitted twice
/// back to back (same user, same frame) — traffic that exercises the
/// server's duplicate (user, epoch) rejection.
std::vector<std::uint8_t> FrameStreamRecords(
    const EncodedStream& stream, long long lo, long long hi,
    std::optional<long long> first_user = 0,
    long long duplicate_every = 0);

struct SocketSendResult {
  long long bytes = 0;   ///< bytes written (the whole buffer on success)
  double seconds = 0.0;  ///< connect -> close wall time
};

/// Connects to the server's Unix-domain socket and streams `bytes` over a
/// blocking connection (the server's read pauses propagate here as write
/// backpressure). Throws on connect/write failure.
SocketSendResult SendOverUds(const std::string& uds_path,
                             std::span<const std::uint8_t> bytes);

/// Same over TCP to 127.0.0.1:port.
SocketSendResult SendOverTcp(int port, std::span<const std::uint8_t> bytes);

/// Blocking HTTP/1.0 GET against the server's admin scrape endpoint over
/// its Unix-domain socket: sends `GET <target> HTTP/1.0` and returns the
/// full close-delimited response (status line + headers + body). The
/// scrape client for `ldpr_cli metrics` and the admin-endpoint tests.
std::string HttpGetOverUds(const std::string& uds_path,
                           const std::string& target);

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_LOADGEN_H_
