#include "serve/longitudinal.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/check.h"
#include "core/hash.h"
#include "obs/span.h"

namespace ldpr::serve {

namespace {

// Fixed seed: frame hashes only need to agree with themselves within one
// replay table.
constexpr std::uint64_t kFrameHashSeed = 0x1d9ULL;

}  // namespace

SnapshotDelta DiffSnapshots(const EstimateSnapshot& older,
                            const EstimateSnapshot& newer) {
  LDPR_REQUIRE(older.counts.size() == newer.counts.size(),
               "snapshot deltas need matching domains, got "
                   << older.counts.size() << " vs " << newer.counts.size());
  SnapshotDelta delta;
  delta.from_epoch = older.epoch;
  delta.to_epoch = newer.epoch;
  delta.count_delta.resize(newer.counts.size());
  for (std::size_t v = 0; v < newer.counts.size(); ++v) {
    delta.count_delta[v] = newer.counts[v] - older.counts[v];
  }
  if (!older.frequencies.empty() && !newer.frequencies.empty()) {
    delta.frequency_delta.resize(newer.frequencies.size());
    for (std::size_t v = 0; v < newer.frequencies.size(); ++v) {
      delta.frequency_delta[v] = newer.frequencies[v] - older.frequencies[v];
      delta.l1_drift += std::abs(delta.frequency_delta[v]);
    }
  }
  return delta;
}

UserReplayTable::UserReplayTable(int shards) {
  LDPR_CHECK(shards >= 1, "replay table needs at least one shard");
  shards_.reserve(shards);
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

UserReplayTable::FrameClass UserReplayTable::Classify(
    long long user, std::span<const std::uint8_t> frame, long long epoch,
    bool trust_replays, bool one_per_epoch) {
  Shard& shard = *shards_[static_cast<std::size_t>(
      (user % static_cast<long long>(shards_.size()) +
       static_cast<long long>(shards_.size())) %
      static_cast<long long>(shards_.size()))];
  std::lock_guard<std::mutex> guard(shard.mutex);
  User& entry = shard.users[user];
  // Admission before classification: an epoch's second report is refused
  // with the user's state untouched — it neither records a hash nor moves
  // last_epoch, so the user's NEXT epoch classifies exactly as if the
  // duplicate had never arrived.
  if (one_per_epoch && entry.last_epoch == epoch) {
    return FrameClass::kDuplicate;
  }
  entry.last_epoch = epoch;
  if (trust_replays) {
    const std::uint64_t hash =
        XxHash64(frame.data(), frame.size(), kFrameHashSeed);
    if (std::find(entry.hashes.begin(), entry.hashes.end(), hash) !=
        entry.hashes.end()) {
      ++shard.epoch_memoized;
      return FrameClass::kMemoized;
    }
    entry.hashes.push_back(hash);
  }
  ++entry.fresh;
  ++shard.epoch_fresh;
  return FrameClass::kFresh;
}

UserReplayTable::EpochTallies UserReplayTable::SealEpoch() {
  EpochTallies tallies;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> guard(shard.mutex);
    tallies.fresh += shard.epoch_fresh;
    tallies.memoized += shard.epoch_memoized;
    shard.epoch_fresh = 0;
    shard.epoch_memoized = 0;
  }
  return tallies;
}

UserReplayTable::UserStats UserReplayTable::Scan() const {
  UserStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> guard(shard.mutex);
    stats.users += static_cast<long long>(shard.users.size());
    for (const auto& [user, entry] : shard.users) {
      stats.total_fresh += entry.fresh;
      stats.max_fresh = std::max(stats.max_fresh, entry.fresh);
    }
  }
  return stats;
}

LongitudinalCollector::LongitudinalCollector(
    const fo::FrequencyOracle& oracle, const LongitudinalOptions& options)
    : options_(options),
      collector_(oracle, options.collector),
      users_(options.user_shards) {
  window_counts_.assign(oracle.k(), 0);
  if (obs::MetricsRegistry* reg = options.collector.metrics) {
    obs_ = std::make_unique<Obs>();
    obs_->seal_seconds = reg->GetHistogram(
        "ldpr_seal_seconds", "", "Wall time of one epoch Seal()", 1,
        obs::HistogramUnit::kSeconds);
    obs_->window_update_seconds = reg->GetHistogram(
        "ldpr_window_update_seconds", "",
        "Wall time of the window count-delta slide inside Seal()", 1,
        obs::HistogramUnit::kSeconds);
    obs_->epoch_open =
        reg->GetGauge("ldpr_epoch_open", "", "1 while an epoch is ingesting");
    obs_->epoch_last_sealed = reg->GetGauge(
        "ldpr_epoch_last_sealed", "", "Id of the most recently sealed epoch");
    obs_->epoch_reports = reg->GetGauge(
        "ldpr_epoch_reports", "", "Accepted reports in the last sealed epoch");
    obs_->epsilon_epoch = reg->GetGauge(
        "ldpr_privacy_epsilon_epoch", "",
        "Realized epsilon of the last sealed epoch alone");
    obs_->epsilon_cumulative = reg->GetGauge(
        "ldpr_privacy_epsilon_cumulative", "",
        "Sequential-composition epsilon over every sealed epoch");
    obs_->epsilon_worst_user = reg->GetGauge(
        "ldpr_privacy_epsilon_worst_user", "",
        "Cumulative epsilon of the worst tracked user");
    obs_->epsilon_mean_user = reg->GetGauge(
        "ldpr_privacy_epsilon_mean_user", "",
        "Mean cumulative epsilon across tracked users");
    obs_->memoization_hit_rate = reg->GetGauge(
        "ldpr_privacy_memoization_hit_rate", "",
        "Fraction of accepted reports recognized as memoized replays");
    obs_->users = reg->GetGauge("ldpr_privacy_users", "",
                                "Distinct users ever classified");
    obs_->window_occupancy = reg->GetGauge(
        "ldpr_window_occupancy", "",
        "Epochs currently inside the sliding estimation window");
  }
}

long long LongitudinalCollector::OpenEpoch() {
  LDPR_REQUIRE(!open_, "cannot open an epoch while epoch "
                           << next_epoch_ - 1 << " is still ingesting");
  open_ = true;
  opened_at_ = MonotonicSeconds();
  if (obs_) obs_->epoch_open->Set(1);
  return next_epoch_++;
}

Collector& LongitudinalCollector::collector() {
  LDPR_REQUIRE(open_, "ingest requires an open epoch (OpenEpoch first)");
  return collector_;
}

IngestResult LongitudinalCollector::Ingest(const IngestRequest& request) {
  if (!open_) {
    closed_epoch_rejects_.fetch_add(1, std::memory_order_relaxed);
    return IngestResult::Rejected(RejectReason::kClosedEpoch);
  }
  if (!request.user.has_value() || !options_.track_users) {
    return collector_.Ingest(request);
  }
  // Classification doubles as the admission gate: it runs under the lane
  // mutex after frame validation (so a malformed frame is kMalformed, never
  // kDuplicate, and a refused duplicate reaches no aggregator) and takes
  // the replay-table shard mutex strictly inside the lane mutex.
  const long long epoch = next_epoch_ - 1;
  return collector_.IngestGated(request, [&](const IngestRequest& r) {
    const UserReplayTable::FrameClass verdict =
        users_.Classify(*r.user, r.frame, epoch,
                        options_.memoized_replays_free,
                        options_.one_report_per_epoch);
    return verdict == UserReplayTable::FrameClass::kDuplicate
               ? RejectReason::kDuplicate
               : RejectReason::kNone;
  });
}

const EstimateSnapshot& LongitudinalCollector::Seal() {
  LDPR_REQUIRE(open_, "no open epoch to seal");
  obs::Span seal_span(obs_ ? obs_->seal_seconds.get() : nullptr);
  const double seconds = MonotonicSeconds() - opened_at_;
  const fo::FrequencyOracle& oracle = collector_.oracle();
  Collector::Drained drained = collector_.Drain();

  EstimateSnapshot snapshot;
  snapshot.epoch = next_epoch_ - 1;
  snapshot.n = drained.n;
  snapshot.counts = std::move(drained.counts);
  if (drained.n > 0) {
    snapshot.frequencies =
        oracle.EstimateFromCounts(snapshot.counts, drained.n);
    snapshot.consistent = fo::MakeConsistent(
        snapshot.frequencies, collector_.options().consistency,
        collector_.options().consistency_threshold);
  }
  snapshot.stats.reports = drained.tallies.reports;
  snapshot.stats.bytes = drained.tallies.bytes;
  snapshot.stats.rejected = drained.tallies.rejected;
  snapshot.stats.duplicates = drained.tallies.duplicates;
  snapshot.stats.rate_limited = drained.tallies.rate_limited;
  snapshot.stats.shed = drained.tallies.shed;
  snapshot.stats.closed_epoch =
      drained.tallies.closed_epoch +
      closed_epoch_rejects_.exchange(0, std::memory_order_relaxed);
  snapshot.stats.seconds = seconds;
  snapshot.stats.reports_per_second =
      seconds > 0.0 ? static_cast<double>(drained.tallies.reports) / seconds
                    : 0.0;

  // Ledger: replays recognized by the table are charged 0; everything else
  // accepted this epoch (classified fresh or ingested without a user id) is
  // a fresh eps-LDP randomization of the one served attribute.
  const UserReplayTable::EpochTallies tallies = users_.SealEpoch();
  const long long anonymous =
      drained.tallies.reports - tallies.fresh - tallies.memoized;
  LDPR_CHECK(anonymous >= 0, "replay table classified more reports ("
                                 << tallies.fresh + tallies.memoized
                                 << ") than were accepted ("
                                 << drained.tallies.reports << ")");
  const long long epoch_fresh = tallies.fresh + anonymous;
  const double epsilon = oracle.epsilon();
  {
    privacy::Accountant epoch_ledger(/*d=*/1);
    epoch_ledger.RecordSmpBulk(0, epsilon, epoch_fresh);
    epoch_ledger.RecordMemoized(tallies.memoized);
    snapshot.ledger = epoch_ledger.MakeReport();
  }
  cumulative_fresh_ += epoch_fresh;
  cumulative_memoized_ += tallies.memoized;
  {
    // Rebuilt from integer totals every seal: one multiply, no accumulated
    // float-addition order dependence.
    privacy::Accountant cumulative(/*d=*/1);
    cumulative.RecordSmpBulk(0, epsilon, cumulative_fresh_);
    cumulative.RecordMemoized(cumulative_memoized_);
    cumulative_report_ = cumulative.MakeReport();
    const UserReplayTable::UserStats stats = users_.Scan();
    cumulative_report_.users = stats.users;
    if (stats.users > 0) {
      // Per-user sequential totals over *tracked* users (anonymous ingest
      // has no user to attribute to).
      cumulative_report_.mean_user_epsilon =
          static_cast<double>(stats.total_fresh) /
          static_cast<double>(stats.users) * epsilon;
      cumulative_report_.max_user_epsilon =
          static_cast<double>(stats.max_fresh) * epsilon;
    }
  }
  snapshot.cumulative_ledger = cumulative_report_;

  // Window delta state: slide the tail, then emit the completed window (if
  // any) straight from the running sums.
  obs::Span window_span(obs_ ? obs_->window_update_seconds.get() : nullptr);
  tail_counts_.push_back(snapshot.counts);
  tail_n_.push_back(snapshot.n);
  for (std::size_t v = 0; v < window_counts_.size(); ++v) {
    window_counts_[v] += snapshot.counts[v];
  }
  window_n_ += snapshot.n;
  if (tail_counts_.size() > static_cast<std::size_t>(schedule().length())) {
    const std::vector<long long>& gone = tail_counts_.front();
    for (std::size_t v = 0; v < window_counts_.size(); ++v) {
      window_counts_[v] -= gone[v];
    }
    window_n_ -= tail_n_.front();
    tail_counts_.pop_front();
    tail_n_.pop_front();
  }
  const long long completed = schedule().CompletedWindow(snapshot.epoch);
  if (completed >= 0) {
    WindowSnapshot window;
    window.window = completed;
    window.first_epoch = schedule().FirstEpoch(completed);
    window.last_epoch = schedule().LastEpoch(completed);
    window.n = window_n_;
    window.counts = window_counts_;
    if (window_n_ > 0) {
      window.frequencies =
          oracle.EstimateFromCounts(window.counts, window_n_);
      window.consistent = fo::MakeConsistent(
          window.frequencies, collector_.options().consistency,
          collector_.options().consistency_threshold);
    }
    windows_.push_back(std::move(window));
    if (options_.history_cap > 0 && windows_.size() > options_.history_cap) {
      windows_.pop_front();
    }
  }

  window_span.Stop();

  open_ = false;
  history_.push_back(std::move(snapshot));
  if (options_.history_cap > 0 && history_.size() > options_.history_cap) {
    history_.pop_front();
  }
  const EstimateSnapshot& sealed = history_.back();
  if (obs_) {
    obs_->epoch_open->Set(0);
    obs_->epoch_last_sealed->Set(static_cast<double>(sealed.epoch));
    obs_->epoch_reports->Set(static_cast<double>(sealed.stats.reports));
    obs_->epsilon_epoch->Set(sealed.ledger.total_epsilon);
    obs_->epsilon_cumulative->Set(cumulative_report_.total_epsilon);
    obs_->epsilon_worst_user->Set(cumulative_report_.max_user_epsilon);
    obs_->epsilon_mean_user->Set(cumulative_report_.mean_user_epsilon);
    obs_->memoization_hit_rate->Set(cumulative_report_.MemoizationHitRate());
    obs_->users->Set(static_cast<double>(cumulative_report_.users));
    obs_->window_occupancy->Set(static_cast<double>(tail_counts_.size()));
  }
  return sealed;
}

}  // namespace ldpr::serve
