#ifndef LDPR_SERVE_LONGITUDINAL_H_
#define LDPR_SERVE_LONGITUDINAL_H_

// Longitudinal collection pipeline: the cross-epoch state the paper's
// Section 6 is about, layered over the per-epoch Collector.
//
// A LongitudinalCollector owns one Collector (the lock-striped per-epoch
// lanes) plus everything that survives a seal:
//
//   * an EpochSchedule mapping epochs onto fixed/sliding/overlapping
//     estimation windows, maintained as a running count delta — the newest
//     epoch's counts are added, the epoch sliding out is subtracted — so a
//     window seal costs O(k), never a recompute over the window's reports.
//     Counts are integers, so the delta path is bit-identical to
//     recomputing each window from scratch (serve_longitudinal_test pins
//     this);
//   * a sharded per-user replay table: every accepted frame ingested via
//     IngestUser is hashed and checked against the user's earlier frames.
//     A frame already seen from that user is a memoized replay of a
//     RAPPOR-style permanent answer — it still counts toward the estimate
//     (the server cannot tell a replay apart statistically, only
//     ledger-wise) but is charged eps = 0;
//   * per-shard privacy ledgers, merged at seal through privacy::Accountant
//     into the per-epoch and cumulative LedgerReport exposed on every
//     EstimateSnapshot. Ledgers are kept as integer fresh/memoized tallies
//     and converted to eps by one bulk multiply at seal, so the reported
//     budgets are exact and LDPR_THREADS/lane-count independent.
//
// EpochManager — the legacy seal-and-forget lifecycle — is a
// LongitudinalCollector on the fixed one-epoch schedule and lives at the
// bottom of this header.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/check.h"
#include "serve/collector.h"
#include "serve/epoch_schedule.h"

namespace ldpr::serve {

struct LongitudinalOptions {
  EpochSchedule schedule = EpochSchedule::Fixed(1);
  CollectorOptions collector;
  /// Maximum sealed epochs (and completed windows) retained; older entries
  /// are evicted oldest-first. 0 = unbounded (the legacy behavior; sealed
  /// snapshot references then stay valid for the collector's lifetime).
  std::size_t history_cap = 0;
  /// Classify IngestUser frames against the replay table. Off, every
  /// accepted report is charged as a fresh randomization.
  bool track_users = true;
  /// Charge recognized replays eps = 0. Sound only when clients follow the
  /// memoization contract: an identical frame then is a replayed permanent
  /// answer, not an accidental collision of a fresh randomization (for
  /// low-entropy frames like GRR's the server cannot tell the two apart).
  /// Off — a deployment whose clients do not memoize — every accepted
  /// report is charged fresh while per-user totals are still tracked, so
  /// the cumulative budget grows exactly linearly in the rounds.
  bool memoized_replays_free = true;
  /// Shard count of the replay table. Fixed (not tied to lane or thread
  /// count) so ledger tallies merge identically under any LDPR_THREADS.
  int user_shards = 64;
  /// Enforce the paper's collection contract server-side: a user's second
  /// report within one epoch is rejected kDuplicate (counted, never
  /// aggregated). The same frame in a LATER epoch is still a memoized
  /// replay, and anonymous frames are never subject to the check. Off, the
  /// legacy behavior: every accepted frame aggregates, replays only affect
  /// the ledger.
  bool one_report_per_epoch = true;

  /// The one place CollectorOptions embeds into LongitudinalOptions
  /// (EpochManager and the CLI both construct through here). Copies the
  /// whole struct, so a new CollectorOptions field can never silently
  /// default — the sizeof tripwire below forces a look at this function
  /// whenever the struct grows.
  static LongitudinalOptions FromCollector(const CollectorOptions& collector) {
    static_assert(sizeof(CollectorOptions) ==
                      sizeof(int) + sizeof(fo::ConsistencyMethod) +
                          sizeof(double) + sizeof(obs::MetricsRegistry*),
                  "CollectorOptions changed shape: confirm "
                  "LongitudinalOptions::FromCollector (whole-struct copy) "
                  "still covers every field, then update this tripwire");
    LongitudinalOptions out;
    out.collector = collector;
    return out;
  }
};

/// One completed estimation window: the union of `length` consecutive
/// epochs' accepted reports, estimated with the same Eq. (2) + consistency
/// arithmetic as a single epoch.
struct WindowSnapshot {
  long long window = -1;
  long long first_epoch = 0;
  long long last_epoch = 0;
  long long n = 0;                  ///< accepted reports across the window
  std::vector<long long> counts;    ///< summed support counts, size k
  std::vector<double> frequencies;  ///< raw Eq. (2) estimate
  std::vector<double> consistent;   ///< consistency post-processed estimate
};

/// Count/frequency difference between two sealed epochs (newer - older).
struct SnapshotDelta {
  long long from_epoch = -1;
  long long to_epoch = -1;
  std::vector<long long> count_delta;
  /// Element-wise frequency difference; empty when either epoch was empty.
  std::vector<double> frequency_delta;
  /// L1 norm of frequency_delta: the drift magnitude between the epochs.
  double l1_drift = 0.0;
};

SnapshotDelta DiffSnapshots(const EstimateSnapshot& older,
                            const EstimateSnapshot& newer);

/// Sharded user -> {frame hashes, fresh count, last epoch} map backing the
/// server-side replay classification and the one-report-per-user-per-epoch
/// admission check. Thread-safe; shard assignment depends only on the user
/// id, so tallies are identical under any producer configuration.
class UserReplayTable {
 public:
  explicit UserReplayTable(int shards);

  /// What one frame from one user turned out to be.
  enum class FrameClass : std::uint8_t {
    kFresh,     ///< new randomization: charged eps, hash recorded
    kMemoized,  ///< replays a frame this user already sent: charged eps = 0
    kDuplicate  ///< second report within `epoch`: inadmissible, not recorded
  };

  /// Classifies one frame from `user` arriving in `epoch`. With
  /// `one_per_epoch`, a user already recorded in this epoch classifies
  /// kDuplicate and nothing is recorded — the caller must not aggregate it.
  /// With `trust_replays` false the replay (hash) check is skipped and every
  /// admitted frame counts fresh (no hashes stored); the per-epoch check is
  /// independent of it. Epochs must be presented non-decreasing per user.
  FrameClass Classify(long long user, std::span<const std::uint8_t> frame,
                      long long epoch, bool trust_replays = true,
                      bool one_per_epoch = true);

  struct EpochTallies {
    long long fresh = 0;
    long long memoized = 0;
  };
  /// Merges and resets the per-shard epoch tallies (called at seal).
  EpochTallies SealEpoch();

  struct UserStats {
    long long users = 0;        ///< distinct users ever classified
    long long total_fresh = 0;  ///< fresh randomizations across all users
    long long max_fresh = 0;    ///< worst user's fresh count
  };
  /// Cumulative per-user statistics; O(users).
  UserStats Scan() const;

 private:
  struct User {
    std::vector<std::uint64_t> hashes;  ///< distinct frames sent, in order
    long long fresh = 0;
    long long last_epoch = -1;  ///< newest epoch with an admitted report
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<long long, User> users;
    long long epoch_fresh = 0;
    long long epoch_memoized = 0;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Epoch/round lifecycle plus cross-epoch state over one Collector:
/// open -> ingest -> seal -> {epoch snapshot, completed window, ledgers}.
class LongitudinalCollector final : public IngestSink {
 public:
  explicit LongitudinalCollector(const fo::FrequencyOracle& oracle,
                                 const LongitudinalOptions& options = {});

  /// Opens the next epoch; requires the previous one to be sealed.
  /// Returns the new epoch id (0, 1, ...).
  long long OpenEpoch();

  bool open() const { return open_; }

  /// The live collector producers ingest into; requires an open epoch.
  /// Reports ingested directly (without a user id) are charged as fresh.
  Collector& collector();

  /// Ingests one wire frame. Attributed requests (request.user set, with
  /// track_users on) are classified against the user's history under the
  /// lane mutex: a second report from that user within the open epoch is
  /// rejected kDuplicate before it reaches any aggregator (when
  /// one_report_per_epoch is on), an identical frame from an earlier epoch
  /// is a memoized replay (accepted, charged eps = 0), anything else is a
  /// fresh randomization. Anonymous requests skip classification. With no
  /// epoch open every request is rejected kClosedEpoch (counted into the
  /// NEXT sealed epoch's stats) — never thrown, so a socket transport can
  /// keep draining between epochs.
  IngestResult Ingest(const IngestRequest& request) override;

  /// Seals the open epoch: merges the lanes, estimates (raw + consistency
  /// post-processing), merges the replay-table shard ledgers into the
  /// epoch's and the cumulative LedgerReport, advances the window delta
  /// state, and archives the snapshot. O(lanes * k + user_shards)
  /// regardless of how many reports were ingested. The returned reference
  /// stays valid until history_cap evictions (forever when the cap is 0).
  const EstimateSnapshot& Seal();

  /// Sealed epochs, oldest first (bounded by history_cap).
  const std::deque<EstimateSnapshot>& snapshots() const { return history_; }
  /// Completed estimation windows, oldest first (bounded by history_cap).
  const std::deque<WindowSnapshot>& windows() const { return windows_; }
  /// The cumulative ledger of the last sealed epoch (empty before one).
  const privacy::LedgerReport& cumulative_ledger() const {
    return cumulative_report_;
  }

  const EpochSchedule& schedule() const { return options_.schedule; }
  const LongitudinalOptions& options() const { return options_; }
  const fo::FrequencyOracle& oracle() const { return collector_.oracle(); }
  /// Static wire config — readable with or without an open epoch.
  std::size_t report_bytes() const { return collector_.report_bytes(); }
  int lanes() const { return collector_.lanes(); }

 private:
  LongitudinalOptions options_;
  Collector collector_;
  UserReplayTable users_;
  std::deque<EstimateSnapshot> history_;
  std::deque<WindowSnapshot> windows_;

  // Window delta state: support counts of the last <= length epochs and
  // their running sum (integer-exact, so no drift accumulates).
  std::deque<std::vector<long long>> tail_counts_;
  std::deque<long long> tail_n_;
  std::vector<long long> window_counts_;
  long long window_n_ = 0;

  // Cumulative ledger state, kept as integers until report time.
  long long cumulative_fresh_ = 0;
  long long cumulative_memoized_ = 0;
  privacy::LedgerReport cumulative_report_;

  /// Set iff options.collector.metrics != nullptr: seal / window-delta
  /// latency histograms plus the per-epoch ledger gauges (cumulative and
  /// worst-user epsilon, memoization hit rate) refreshed at every Seal().
  struct Obs {
    std::shared_ptr<obs::Histogram> seal_seconds;
    std::shared_ptr<obs::Histogram> window_update_seconds;
    std::shared_ptr<obs::Gauge> epoch_open;
    std::shared_ptr<obs::Gauge> epoch_last_sealed;
    std::shared_ptr<obs::Gauge> epoch_reports;
    std::shared_ptr<obs::Gauge> epsilon_epoch;
    std::shared_ptr<obs::Gauge> epsilon_cumulative;
    std::shared_ptr<obs::Gauge> epsilon_worst_user;
    std::shared_ptr<obs::Gauge> epsilon_mean_user;
    std::shared_ptr<obs::Gauge> memoization_hit_rate;
    std::shared_ptr<obs::Gauge> users;
    std::shared_ptr<obs::Gauge> window_occupancy;
  };
  std::unique_ptr<Obs> obs_;

  bool open_ = false;
  long long next_epoch_ = 0;
  double opened_at_ = 0.0;
  /// kClosedEpoch rejects since the last seal (they arrive outside any
  /// epoch, so they fold into the next sealed snapshot's stats).
  std::atomic<long long> closed_epoch_rejects_{0};
};

/// Legacy epoch lifecycle: open -> ingest -> seal -> snapshot with every
/// epoch its own window. Kept as the ergonomic front door for callers that
/// seal independent rounds; the longitudinal state (ledgers, windows,
/// replay table) is reachable through longitudinal().
class EpochManager {
 public:
  explicit EpochManager(const fo::FrequencyOracle& oracle,
                        const CollectorOptions& options = {})
      : longitudinal_(oracle, LongitudinalOptions::FromCollector(options)) {}
  EpochManager(const fo::FrequencyOracle& oracle,
               const LongitudinalOptions& options)
      : longitudinal_(oracle, options) {}

  long long OpenEpoch() { return longitudinal_.OpenEpoch(); }
  bool open() const { return longitudinal_.open(); }
  Collector& collector() { return longitudinal_.collector(); }
  const EstimateSnapshot& Seal() { return longitudinal_.Seal(); }
  const std::deque<EstimateSnapshot>& snapshots() const {
    return longitudinal_.snapshots();
  }
  const fo::FrequencyOracle& oracle() const { return longitudinal_.oracle(); }
  std::size_t report_bytes() const { return longitudinal_.report_bytes(); }
  int lanes() const { return longitudinal_.lanes(); }

  LongitudinalCollector& longitudinal() { return longitudinal_; }
  const LongitudinalCollector& longitudinal() const { return longitudinal_; }

 private:
  LongitudinalCollector longitudinal_;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_LONGITUDINAL_H_
