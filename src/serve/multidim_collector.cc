#include "serve/multidim_collector.h"

#include "core/check.h"
#include "core/parallel.h"
#include "fo/wire.h"

namespace ldpr::serve {

struct MultidimCollector::Lane {
  std::mutex mutex;
  /// SPL/SMP: one aggregator + wire decoder per attribute.
  std::vector<std::unique_ptr<fo::Aggregator>> per_attribute;
  std::vector<fo::WireDecoder> decoders;
  /// RS+FD / RS+RFD: the support-count matrix of the StreamAggregators.
  std::vector<std::vector<long long>> counts;
  std::vector<int> values_scratch;
  long long n = 0;
  IngestCounters tallies;
};

MultidimCollector::~MultidimCollector() = default;

MultidimCollector::MultidimCollector(Kind kind, std::vector<int> domain_sizes,
                                     const CollectorOptions& options)
    : kind_(kind), domain_sizes_(std::move(domain_sizes)) {
  (void)options;
  opened_at_ = MonotonicSeconds();
  cumulative_attr_n_.assign(domain_sizes_.size(), 0);
}

MultidimCollector::MultidimCollector(const multidim::Spl& spl,
                                     const CollectorOptions& options)
    : MultidimCollector(Kind::kSpl, spl.domain_sizes(), options) {
  spl_ = &spl;
  fixed_tuple_bits_ = SplTupleWireBits(spl);
  InitLanes(options.lanes);
}

MultidimCollector::MultidimCollector(const multidim::Smp& smp,
                                     const CollectorOptions& options)
    : MultidimCollector(Kind::kSmp, smp.domain_sizes(), options) {
  smp_ = &smp;
  attr_width_ = fo::CeilLog2(smp.d());
  value_widths_.resize(smp.d());
  for (int j = 0; j < smp.d(); ++j) {
    value_widths_[j] = SmpTupleWireBits(smp, j);
  }
  InitLanes(options.lanes);
}

MultidimCollector::MultidimCollector(const multidim::RsFd& rsfd,
                                     const CollectorOptions& options)
    : MultidimCollector(Kind::kRsFd, rsfd.domain_sizes(), options) {
  rsfd_ = &rsfd;
  ue_variant_ = multidim::IsUeVariant(rsfd.variant());
  fixed_tuple_bits_ = FdTupleWireBits(ue_variant_, domain_sizes_);
  for (int k : domain_sizes_) value_widths_.push_back(fo::CeilLog2(k));
  InitLanes(options.lanes);
}

MultidimCollector::MultidimCollector(const multidim::RsRfd& rsrfd,
                                     const CollectorOptions& options)
    : MultidimCollector(Kind::kRsRfd, rsrfd.domain_sizes(), options) {
  rsrfd_ = &rsrfd;
  ue_variant_ = rsrfd.variant() != multidim::RsRfdVariant::kGrr;
  fixed_tuple_bits_ = FdTupleWireBits(ue_variant_, domain_sizes_);
  for (int k : domain_sizes_) value_widths_.push_back(fo::CeilLog2(k));
  InitLanes(options.lanes);
}

void MultidimCollector::InitLanes(int lanes) {
  if (lanes <= 0) lanes = DefaultThreadCount();
  LDPR_CHECK(lanes >= 1, "collector needs at least one lane");
  lanes_.reserve(lanes);
  for (int i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    if (kind_ == Kind::kSpl || kind_ == Kind::kSmp) {
      lane->per_attribute.reserve(d());
      lane->decoders.reserve(d());
      for (int j = 0; j < d(); ++j) {
        const fo::FrequencyOracle& oracle =
            kind_ == Kind::kSpl ? spl_->oracle(j) : smp_->oracle(j);
        lane->per_attribute.push_back(oracle.MakeAggregator());
        lane->decoders.emplace_back(oracle);
      }
    } else {
      lane->counts.resize(d());
      for (int j = 0; j < d(); ++j) lane->counts[j].assign(domain_sizes_[j], 0);
      lane->values_scratch.resize(d());
    }
    lanes_.push_back(std::move(lane));
  }
}

IngestResult MultidimCollector::Ingest(const IngestRequest& request) {
  Lane& lane =
      *lanes_[static_cast<std::size_t>(request.lane) % lanes_.size()];
  const std::uint8_t* data = request.frame.data();
  const std::size_t size = request.frame.size();
  std::lock_guard<std::mutex> guard(lane.mutex);
  const bool accepted = (kind_ == Kind::kSpl || kind_ == Kind::kSmp)
                            ? IngestSplSmp(lane, data, size)
                            : IngestFd(lane, data, size);
  if (accepted) {
    ++lane.tallies.reports;
    lane.tallies.bytes += static_cast<long long>(size);
    return IngestResult::Accepted();
  }
  ++lane.tallies.rejected;
  return IngestResult::Rejected(RejectReason::kMalformed);
}

bool MultidimCollector::IngestSplSmp(Lane& lane, const std::uint8_t* data,
                                     std::size_t size) {
  if (kind_ == Kind::kSpl) {
    if (!fo::ExactWireSize({data, size}, fixed_tuple_bits_)) return false;
    int offset = 0;
    // Validate every attribute's field before touching any aggregator.
    for (int j = 0; j < d(); ++j) {
      if (!lane.decoders[j].DecodeField(data, &offset)) return false;
    }
    for (int j = 0; j < d(); ++j) {
      lane.decoders[j].AccumulateScratch(*lane.per_attribute[j]);
    }
    ++lane.n;
    return true;
  }
  // SMP: the attribute index determines the tuple's width. Widths compare
  // in 64-bit so absurdly large buffers reject cleanly instead of
  // overflowing the bit count.
  if (data == nullptr ||
      size * 8ull < static_cast<unsigned long long>(attr_width_)) {
    return false;
  }
  fo::BitCursor cursor{data};
  const int attribute = static_cast<int>(cursor.Read(attr_width_));
  if (attribute >= d() ||
      !fo::ExactWireSize({data, size}, value_widths_[attribute])) {
    return false;
  }
  int offset = cursor.position;
  if (!lane.decoders[attribute].DecodeField(data, &offset)) return false;
  lane.decoders[attribute].AccumulateScratch(*lane.per_attribute[attribute]);
  ++lane.n;
  return true;
}

bool MultidimCollector::IngestFd(Lane& lane, const std::uint8_t* data,
                                 std::size_t size) {
  if (!fo::ExactWireSize({data, size}, fixed_tuple_bits_)) return false;
  fo::BitCursor cursor{data};
  if (!ue_variant_) {
    for (int j = 0; j < d(); ++j) {
      const int value = static_cast<int>(cursor.Read(value_widths_[j]));
      if (value >= domain_sizes_[j]) return false;
      lane.values_scratch[j] = value;
    }
    for (int j = 0; j < d(); ++j) ++lane.counts[j][lane.values_scratch[j]];
  } else {
    // Every bit pattern is a valid UE tuple; fold the set bits directly
    // into the support-count matrix.
    for (int j = 0; j < d(); ++j) {
      std::vector<long long>& column = lane.counts[j];
      for (int v = 0; v < domain_sizes_[j]; ++v) {
        column[v] += static_cast<long long>(cursor.Read(1));
      }
    }
  }
  ++lane.n;
  return true;
}

MultidimSnapshot MultidimCollector::Seal() {
  const double now = MonotonicSeconds();
  MultidimSnapshot snapshot;
  snapshot.epoch = next_epoch_++;
  snapshot.stats.seconds = now - opened_at_;
  opened_at_ = now;

  IngestCounters tallies;
  std::vector<long long> attr_n(d(), 0);
  if (kind_ == Kind::kSpl || kind_ == Kind::kSmp) {
    std::vector<std::unique_ptr<fo::Aggregator>> merged;
    merged.reserve(d());
    for (int j = 0; j < d(); ++j) {
      const fo::FrequencyOracle& oracle =
          kind_ == Kind::kSpl ? spl_->oracle(j) : smp_->oracle(j);
      merged.push_back(oracle.MakeAggregator());
    }
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      std::lock_guard<std::mutex> guard(lane.mutex);
      for (int j = 0; j < d(); ++j) {
        merged[j]->Merge(*lane.per_attribute[j]);
        const fo::FrequencyOracle& oracle =
            kind_ == Kind::kSpl ? spl_->oracle(j) : smp_->oracle(j);
        lane.per_attribute[j] = oracle.MakeAggregator();
      }
      snapshot.n += lane.n;
      lane.n = 0;
      tallies.Merge(lane.tallies);
      lane.tallies = IngestCounters{};
    }
    for (int j = 0; j < d(); ++j) {
      // SPL randomizes every attribute per tuple; SMP only the sampled one.
      attr_n[j] = kind_ == Kind::kSpl ? snapshot.n : merged[j]->n();
    }
    if (snapshot.n > 0) {
      snapshot.estimates.resize(d());
      for (int j = 0; j < d(); ++j) {
        if (merged[j]->n() == 0) {
          // No user sampled this attribute (SMP); best unbiased guess is
          // uniform — mirrors Smp::StreamAggregator::Estimate.
          snapshot.estimates[j].assign(domain_sizes_[j],
                                       1.0 / domain_sizes_[j]);
        } else {
          snapshot.estimates[j] = merged[j]->Estimate();
        }
      }
    }
  } else {
    std::vector<std::vector<long long>> counts(d());
    for (int j = 0; j < d(); ++j) counts[j].assign(domain_sizes_[j], 0);
    for (auto& lane_ptr : lanes_) {
      Lane& lane = *lane_ptr;
      std::lock_guard<std::mutex> guard(lane.mutex);
      for (int j = 0; j < d(); ++j) {
        for (int v = 0; v < domain_sizes_[j]; ++v) {
          counts[j][v] += lane.counts[j][v];
        }
        lane.counts[j].assign(domain_sizes_[j], 0);
      }
      snapshot.n += lane.n;
      lane.n = 0;
      tallies.Merge(lane.tallies);
      lane.tallies = IngestCounters{};
    }
    if (snapshot.n > 0) {
      snapshot.estimates =
          kind_ == Kind::kRsFd
              ? rsfd_->EstimateFromSupportCounts(counts, snapshot.n)
              : rsrfd_->EstimateFromSupportCounts(counts, snapshot.n);
    }
  }

  snapshot.stats.reports = tallies.reports;
  snapshot.stats.bytes = tallies.bytes;
  snapshot.stats.rejected = tallies.rejected;
  snapshot.stats.reports_per_second =
      snapshot.stats.seconds > 0.0
          ? static_cast<double>(tallies.reports) / snapshot.stats.seconds
          : 0.0;

  cumulative_n_ += snapshot.n;
  for (int j = 0; j < d(); ++j) cumulative_attr_n_[j] += attr_n[j];
  snapshot.ledger = MakeLedger(snapshot.n, attr_n);
  snapshot.cumulative_ledger = MakeLedger(cumulative_n_, cumulative_attr_n_);
  return snapshot;
}

privacy::LedgerReport MultidimCollector::MakeLedger(
    long long n, const std::vector<long long>& attr_n) const {
  privacy::LedgerReport report;
  switch (kind_) {
    case Kind::kSpl: {
      privacy::Accountant ledger(d());
      ledger.RecordSplBulk(spl_->per_attribute_epsilon() * d(), n);
      report = ledger.MakeReport();
      report.fresh = n;  // surveys, not per-attribute randomizations
      break;
    }
    case Kind::kSmp: {
      privacy::Accountant ledger(d());
      for (int j = 0; j < d(); ++j) {
        ledger.RecordSmpBulk(j, smp_->epsilon(), attr_n[j]);
      }
      report = ledger.MakeReport();
      break;
    }
    case Kind::kRsFd:
    case Kind::kRsRfd: {
      // The sampled attribute is hidden on the wire, so per-attribute
      // exposure is the expectation: n/d surveys sampled attribute j, each
      // randomized at the amplified budget.
      const double epsilon =
          kind_ == Kind::kRsFd ? rsfd_->epsilon() : rsrfd_->epsilon();
      const double amplified = kind_ == Kind::kRsFd
                                   ? rsfd_->amplified_epsilon()
                                   : rsrfd_->amplified_epsilon();
      report.total_epsilon = static_cast<double>(n) * epsilon;
      const double expected =
          static_cast<double>(n) / static_cast<double>(d()) * amplified;
      report.per_attribute.assign(d(), expected);
      report.worst_attribute_epsilon = expected;
      if (n > 0) report.amplified_epsilon = amplified;
      report.fresh = n;
      break;
    }
  }
  return report;
}

}  // namespace ldpr::serve
