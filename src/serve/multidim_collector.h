#ifndef LDPR_SERVE_MULTIDIM_COLLECTOR_H_
#define LDPR_SERVE_MULTIDIM_COLLECTOR_H_

// Multidimensional front-end of the collection service: routes wire-encoded
// SPL / SMP / RS+FD / RS+RFD tuples (serve/multidim_wire formats) into
// lock-striped per-attribute lanes.
//
// Per lane, SPL and SMP decode through one fo::WireDecoder per attribute
// into per-attribute fo::Aggregators (SMP feeds only the sampled
// attribute's); the fake-data solutions accumulate straight into a
// support-count matrix — the same counts their StreamAggregators keep — so
// sealing estimates via RsFd/RsRfd::EstimateFromSupportCounts. Ingest is
// all-or-nothing: every attribute field of a tuple is validated before any
// aggregator is touched, and a malformed tuple is rejected without side
// effects. As with the scalar Collector, sealed results depend only on the
// multiset of accepted tuples, never on lane assignment or thread count.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/collector.h"
#include "serve/multidim_wire.h"

namespace ldpr::serve {

/// Immutable per-epoch estimate of a multidimensional collection round.
struct MultidimSnapshot {
  long long epoch = -1;
  long long n = 0;  ///< accepted tuples
  std::vector<std::vector<double>> estimates;  ///< per-attribute frequencies
  IngestStats stats;
  /// Realized budget of this epoch's accepted tuples (every tuple charged
  /// fresh — the multidim front-end has no replay classification yet). SPL
  /// splits the budget over all d attributes, SMP charges the sampled one,
  /// and the fake-data kinds charge each attribute its *expected* exposure
  /// n/d at the amplified budget eps' = ln(d (e^eps - 1) + 1) — what an
  /// attacker who uncovers sampled attributes (Section 3.3) can exploit.
  privacy::LedgerReport ledger;
  /// Sequential composition over every epoch sealed so far, this included.
  privacy::LedgerReport cumulative_ledger;
};

class MultidimCollector final : public IngestSink {
 public:
  /// The solution object must outlive the collector. `options.consistency`
  /// is unused here (the multidim estimators are already unbiased per
  /// attribute; post-processing stays a caller concern).
  MultidimCollector(const multidim::Spl& spl,
                    const CollectorOptions& options = {});
  MultidimCollector(const multidim::Smp& smp,
                    const CollectorOptions& options = {});
  MultidimCollector(const multidim::RsFd& rsfd,
                    const CollectorOptions& options = {});
  MultidimCollector(const multidim::RsRfd& rsrfd,
                    const CollectorOptions& options = {});

  ~MultidimCollector() override;  // Lane is incomplete here

  /// Decodes one wire-encoded tuple into lane `request.lane % lanes()`.
  /// Thread-safe; a malformed tuple is rejected kMalformed (counted, no
  /// accumulation). The multidim front-end has no replay classification
  /// yet, so request.user is accepted unclassified.
  IngestResult Ingest(const IngestRequest& request) override;

  /// Merges every lane, estimates per-attribute frequencies, freezes the
  /// ingest stats and resets the lanes for the next epoch. O(lanes * sum k_j)
  /// regardless of the number of tuples ingested.
  MultidimSnapshot Seal();

  int lanes() const { return static_cast<int>(lanes_.size()); }
  int d() const { return static_cast<int>(domain_sizes_.size()); }
  const std::vector<int>& domain_sizes() const { return domain_sizes_; }

 private:
  enum class Kind { kSpl, kSmp, kRsFd, kRsRfd };

  struct Lane;

  MultidimCollector(Kind kind, std::vector<int> domain_sizes,
                    const CollectorOptions& options);
  void InitLanes(int lanes);
  bool IngestSplSmp(Lane& lane, const std::uint8_t* data, std::size_t size);
  bool IngestFd(Lane& lane, const std::uint8_t* data, std::size_t size);
  /// Builds the eps report for `n` tuples with `attr_n[j]` surveys charged
  /// to attribute j (SPL/SMP; FD kinds use the expected-exposure closed
  /// form and ignore attr_n).
  privacy::LedgerReport MakeLedger(long long n,
                                   const std::vector<long long>& attr_n) const;

  Kind kind_;
  const multidim::Spl* spl_ = nullptr;
  const multidim::Smp* smp_ = nullptr;
  const multidim::RsFd* rsfd_ = nullptr;
  const multidim::RsRfd* rsrfd_ = nullptr;

  std::vector<int> domain_sizes_;
  bool ue_variant_ = false;         ///< FD kinds: unary-encoded payloads
  int attr_width_ = 0;              ///< SMP attribute-index width
  int fixed_tuple_bits_ = 0;        ///< SPL / FD: the whole tuple's width
  /// FD: per-attribute value widths (GRR payloads); SMP: per-attribute
  /// whole-tuple widths (index + report).
  std::vector<int> value_widths_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  long long next_epoch_ = 0;
  double opened_at_ = 0.0;
  /// Cumulative ledger tallies, integer until report time.
  long long cumulative_n_ = 0;
  std::vector<long long> cumulative_attr_n_;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_MULTIDIM_COLLECTOR_H_
