#include "serve/multidim_wire.h"

#include "core/check.h"
#include "fo/wire.h"

namespace ldpr::serve {

namespace {

/// Shared RS+FD / RS+RFD tuple payload: one field per attribute.
std::vector<std::uint8_t> SerializeFdTuple(
    bool ue_variant, const std::vector<int>& domain_sizes,
    const multidim::MultidimReport& report) {
  const int d = static_cast<int>(domain_sizes.size());
  fo::BitWriter writer;
  if (!ue_variant) {
    LDPR_REQUIRE(static_cast<int>(report.values.size()) == d,
                 "FD report has " << report.values.size()
                                  << " values, expected " << d);
    for (int j = 0; j < d; ++j) {
      LDPR_REQUIRE(report.values[j] >= 0 && report.values[j] < domain_sizes[j],
                   "FD report value out of range for attribute " << j);
      writer.Write(static_cast<std::uint64_t>(report.values[j]),
                   fo::CeilLog2(domain_sizes[j]));
    }
  } else {
    LDPR_REQUIRE(static_cast<int>(report.bits.size()) == d,
                 "FD report has " << report.bits.size()
                                  << " bit vectors, expected " << d);
    for (int j = 0; j < d; ++j) {
      LDPR_REQUIRE(static_cast<int>(report.bits[j].size()) == domain_sizes[j],
                   "FD report bit vector " << j << " has wrong length");
      for (std::uint8_t bit : report.bits[j]) {
        LDPR_REQUIRE(bit <= 1, "UE bits must be 0/1");
        writer.Write(bit, 1);
      }
    }
  }
  return writer.bytes();
}

}  // namespace

int SplTupleWireBits(const multidim::Spl& spl) {
  int bits = 0;
  for (int j = 0; j < spl.d(); ++j) {
    bits += fo::SerializedReportBits(spl.oracle(j));
  }
  return bits;
}

int SmpTupleWireBits(const multidim::Smp& smp, int attribute) {
  return fo::CeilLog2(smp.d()) +
         fo::SerializedReportBits(smp.oracle(attribute));
}

int FdTupleWireBits(bool ue_variant, const std::vector<int>& domain_sizes) {
  int bits = 0;
  for (int k : domain_sizes) {
    bits += ue_variant ? k : fo::CeilLog2(k);
  }
  return bits;
}

std::vector<std::uint8_t> SerializeSplReports(
    const multidim::Spl& spl, const std::vector<fo::Report>& reports) {
  LDPR_REQUIRE(static_cast<int>(reports.size()) == spl.d(),
               "SPL tuple has " << reports.size() << " reports, expected "
                                << spl.d());
  fo::BitWriter writer;
  for (int j = 0; j < spl.d(); ++j) {
    fo::AppendReport(spl.oracle(j), reports[j], &writer);
  }
  return writer.bytes();
}

std::vector<std::uint8_t> SerializeSmpReport(
    const multidim::Smp& smp, const multidim::SmpReport& report) {
  LDPR_REQUIRE(report.attribute >= 0 && report.attribute < smp.d(),
               "SMP report attribute out of range");
  fo::BitWriter writer;
  writer.Write(static_cast<std::uint64_t>(report.attribute),
               fo::CeilLog2(smp.d()));
  fo::AppendReport(smp.oracle(report.attribute), report.report, &writer);
  return writer.bytes();
}

std::vector<std::uint8_t> SerializeRsFdReport(
    const multidim::RsFd& rsfd, const multidim::MultidimReport& report) {
  return SerializeFdTuple(multidim::IsUeVariant(rsfd.variant()),
                          rsfd.domain_sizes(), report);
}

std::vector<std::uint8_t> SerializeRsRfdReport(
    const multidim::RsRfd& rsrfd, const multidim::MultidimReport& report) {
  return SerializeFdTuple(rsrfd.variant() != multidim::RsRfdVariant::kGrr,
                          rsrfd.domain_sizes(), report);
}

}  // namespace ldpr::serve
