#ifndef LDPR_SERVE_MULTIDIM_WIRE_H_
#define LDPR_SERVE_MULTIDIM_WIRE_H_

// Wire formats for multidimensional tuples — the client upload of each
// Section 2.3 solution, packed at exactly the width the communication-cost
// model prices (fo/comm_cost: SplTupleBits / SmpTupleBits / RsFdTupleBits),
// rounded up to whole bytes only at the buffer boundary. All fields are
// MSB-first (fo/wire bit order):
//
//   SPL     concat_j report_j          report_j at budget eps/d (fo widths)
//   SMP     attr | report_attr         attr in ceil(log2 d) bits, report at
//                                      full eps (width varies with attr)
//   RS+FD   GRR variant:  concat_j value_j   value_j in ceil(log2 k_j) bits
//           UE variants:  concat_j bits_j    k_j bits per attribute
//   RS+RFD  identical payload to RS+FD (realistic fake data changes the
//           distribution, not the encoding)
//
// The ground-truth `sampled_attribute` of an RS+FD/RS+RFD report is never
// transmitted — indistinguishability of the sampled attribute is the whole
// point of the fake-data design.

#include <cstdint>
#include <vector>

#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"

namespace ldpr::serve {

/// Exact payload widths in bits (byte buffers round up once).
int SplTupleWireBits(const multidim::Spl& spl);
int SmpTupleWireBits(const multidim::Smp& smp, int attribute);
int FdTupleWireBits(bool ue_variant, const std::vector<int>& domain_sizes);

std::vector<std::uint8_t> SerializeSplReports(
    const multidim::Spl& spl, const std::vector<fo::Report>& reports);

std::vector<std::uint8_t> SerializeSmpReport(const multidim::Smp& smp,
                                             const multidim::SmpReport& report);

std::vector<std::uint8_t> SerializeRsFdReport(
    const multidim::RsFd& rsfd, const multidim::MultidimReport& report);

std::vector<std::uint8_t> SerializeRsRfdReport(
    const multidim::RsRfd& rsrfd, const multidim::MultidimReport& report);

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_MULTIDIM_WIRE_H_
