#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <netinet/in.h>
#include <netinet/tcp.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "core/check.h"

namespace ldpr::serve {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LDPR_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

}  // namespace

struct IngestServer::Connection {
  Connection(int fd_in, IngestSink& sink, UserAdmissionTable* users,
             const WireSessionOptions& options, int lane, double now)
      : fd(fd_in), session(sink, users, options, lane, now) {}

  int fd;
  WireSession session;
  bool paused = false;
};

/// Readiness notification behind one interface: epoll(7) on Linux, poll(2)
/// elsewhere. Only read interest is tracked — the server never buffers
/// writes (it writes nothing). A registered fd with read interest off still
/// reports hangups/errors, so a paused connection's death is noticed.
class IngestServer::Poller {
 public:
#ifdef __linux__
  Poller() : epoll_fd_(::epoll_create1(0)) {
    LDPR_CHECK(epoll_fd_ >= 0,
               "epoll_create1 failed: " << std::strerror(errno));
  }
  ~Poller() { ::close(epoll_fd_); }

  void Add(int fd) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    LDPR_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == 0,
               "epoll_ctl(ADD) failed: " << std::strerror(errno));
  }

  void SetWantRead(int fd, bool want) {
    epoll_event event{};
    event.events = want ? static_cast<std::uint32_t>(EPOLLIN)
                        : 0u;  // 0 still delivers EPOLLHUP/ERR
    event.data.fd = fd;
    LDPR_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0,
               "epoll_ctl(MOD) failed: " << std::strerror(errno));
  }

  void Remove(int fd) { ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr); }

  void Wait(int timeout_ms, std::vector<int>& ready) {
    ready.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) ready.push_back(events[i].data.fd);
  }

 private:
  int epoll_fd_;
#else
  void Add(int fd) { want_read_[fd] = true; }
  void SetWantRead(int fd, bool want) { want_read_[fd] = want; }
  void Remove(int fd) { want_read_.erase(fd); }

  void Wait(int timeout_ms, std::vector<int>& ready) {
    ready.clear();
    std::vector<pollfd> fds;
    fds.reserve(want_read_.size());
    for (const auto& [fd, want] : want_read_) {
      fds.push_back(pollfd{fd, static_cast<short>(want ? POLLIN : 0), 0});
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds) {
      if (p.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
        ready.push_back(p.fd);
      }
    }
  }

 private:
  std::map<int, bool> want_read_;
#endif
};

IngestServer::IngestServer(IngestSink& sink, const ServerOptions& options)
    : sink_(sink), options_(options) {
  if (options_.admission.per_user_rate > 0.0) {
    users_ = std::make_unique<UserAdmissionTable>(options_.admission);
  }
  read_buffer_.resize(options_.read_chunk);
}

IngestServer::~IngestServer() { Stop(); }

void IngestServer::Start() {
  LDPR_REQUIRE(!loop_.joinable(), "server already started");
  LDPR_REQUIRE(!options_.uds_path.empty() || options_.tcp_port >= 0,
               "server needs a UDS path or a TCP port to listen on");
  poller_ = std::make_unique<Poller>();

  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    LDPR_REQUIRE(options_.uds_path.size() < sizeof(addr.sun_path),
                 "UDS path too long: " << options_.uds_path);
    std::strncpy(addr.sun_path, options_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.uds_path.c_str());
    uds_listen_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    LDPR_CHECK(uds_listen_ >= 0,
               "socket(AF_UNIX) failed: " << std::strerror(errno));
    LDPR_CHECK(::bind(uds_listen_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(" << options_.uds_path
                       << ") failed: " << std::strerror(errno));
    LDPR_CHECK(::listen(uds_listen_, 128) == 0,
               "listen failed: " << std::strerror(errno));
    SetNonBlocking(uds_listen_);
    poller_->Add(uds_listen_);
  }

  if (options_.tcp_port >= 0) {
    tcp_listen_ = ::socket(AF_INET, SOCK_STREAM, 0);
    LDPR_CHECK(tcp_listen_ >= 0,
               "socket(AF_INET) failed: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(tcp_listen_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    LDPR_CHECK(::bind(tcp_listen_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind(127.0.0.1:" << options_.tcp_port
                                 << ") failed: " << std::strerror(errno));
    LDPR_CHECK(::listen(tcp_listen_, 128) == 0,
               "listen failed: " << std::strerror(errno));
    SetNonBlocking(tcp_listen_);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    LDPR_CHECK(::getsockname(tcp_listen_, reinterpret_cast<sockaddr*>(&bound),
                             &len) == 0,
               "getsockname failed: " << std::strerror(errno));
    tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    poller_->Add(tcp_listen_);
  }

  int pipe_fds[2];
  LDPR_CHECK(::pipe(pipe_fds) == 0,
             "pipe failed: " << std::strerror(errno));
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  SetNonBlocking(wake_read_);
  SetNonBlocking(wake_write_);
  poller_->Add(wake_read_);

  stop_.store(false, std::memory_order_relaxed);
  started_at_ = MonotonicSeconds();
  loop_ = std::thread([this] { Loop(); });
}

void IngestServer::Stop() {
  if (!loop_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_write_, &byte, 1);
  loop_.join();

  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [fd, conn] : conns_) {
    totals_.sessions.Merge(conn->session.counters());
    ++totals_.closed;
    poller_->Remove(fd);
    ::close(fd);
  }
  conns_.clear();
  for (int* listener : {&uds_listen_, &tcp_listen_, &wake_read_,
                        &wake_write_}) {
    if (*listener >= 0) ::close(*listener);
    *listener = -1;
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  totals_.seconds = MonotonicSeconds() - started_at_;
  poller_.reset();
}

ServerCounters IngestServer::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  ServerCounters out = totals_;
  for (const auto& [fd, conn] : conns_) {
    out.sessions.Merge(conn->session.counters());
  }
  if (loop_.joinable()) out.seconds = MonotonicSeconds() - started_at_;
  return out;
}

void IngestServer::Loop() {
  std::vector<int> ready;
  while (!stop_.load(std::memory_order_relaxed)) {
    int timeout_ms = 200;
    {
      const double now = MonotonicSeconds();
      std::lock_guard<std::mutex> guard(mutex_);
      // Resume connections whose pacing debt refilled; wake for the next
      // one due.
      for (auto& [fd, conn] : conns_) {
        if (!conn->paused) continue;
        const double delay = conn->session.resume_at() - now;
        if (delay <= 0.0) {
          conn->paused = false;
          poller_->SetWantRead(fd, true);
        } else {
          const int ms = static_cast<int>(delay * 1000.0) + 1;
          if (ms < timeout_ms) timeout_ms = ms;
        }
      }
      // Sustained-overload monitor: too many connections rate-paused for
      // longer than the grace period sheds the lowest-priority one.
      if (options_.shed_paused_watermark >= 0) {
        int paused = 0;
        for (const auto& [fd, conn] : conns_) {
          if (conn->paused) ++paused;
        }
        if (paused > options_.shed_paused_watermark) {
          if (overload_since_ < 0.0) overload_since_ = now;
          if (now - overload_since_ >= options_.shed_grace_seconds) {
            ShedLowestPriority();
            overload_since_ = now;
          }
        } else {
          overload_since_ = -1.0;
        }
      }
    }
    poller_->Wait(timeout_ms, ready);
    const double now = MonotonicSeconds();
    for (int fd : ready) {
      if (fd == wake_read_) {
        char drain[64];
        while (::read(wake_read_, drain, sizeof(drain)) > 0) {
        }
      } else if (fd == uds_listen_ || fd == tcp_listen_) {
        AcceptReady(fd, now);
      } else {
        ReadReady(fd, now);
      }
    }
  }
}

void IngestServer::AcceptReady(int listener_fd, double now) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    SetNonBlocking(fd);
    std::lock_guard<std::mutex> guard(mutex_);
    if (static_cast<int>(conns_.size()) >= options_.max_connections &&
        !ShedLowestPriority()) {
      ::close(fd);  // capacity and nothing sheddable: refuse
      continue;
    }
    const int lane = static_cast<int>(next_lane_++ %
                                      static_cast<long long>(1 << 20));
    conns_.emplace(fd, std::make_unique<Connection>(
                           fd, sink_, users_.get(), options_.session, lane,
                           now));
    ++totals_.connections;
    poller_->Add(fd);
  }
}

bool IngestServer::ReadReady(int fd, double now) {
  // One chunk per readiness event keeps connections fair under load; the
  // level-triggered poller re-reports the fd while bytes remain.
  const ssize_t n = ::read(fd, read_buffer_.data(), read_buffer_.size());
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return true;
    }
    CloseConnection(fd, /*shed=*/false);
    return false;
  }
  if (n == 0) {  // peer closed
    CloseConnection(fd, /*shed=*/false);
    return false;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection& conn = *it->second;
  if (!conn.session.Feed({read_buffer_.data(), static_cast<std::size_t>(n)},
                         now)) {
    // Protocol error: fold the session's counters in and drop the peer.
    totals_.sessions.Merge(conn.session.counters());
    ++totals_.closed;
    poller_->Remove(fd);
    ::close(fd);
    conns_.erase(it);
    return false;
  }
  if (conn.session.paused(now) && !conn.paused) {
    conn.paused = true;
    poller_->SetWantRead(fd, false);
  }
  return true;
}

void IngestServer::CloseConnection(int fd, bool shed) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  totals_.sessions.Merge(it->second->session.counters());
  ++totals_.closed;
  if (shed) ++totals_.shed_connections;
  poller_->Remove(fd);
  ::close(fd);
  conns_.erase(it);
}

bool IngestServer::ShedLowestPriority() {
  // Caller holds mutex_.
  int victim = -1;
  double lowest = 0.0;
  for (const auto& [fd, conn] : conns_) {
    const double priority = conn->session.Priority();
    if (victim < 0 || priority < lowest) {
      victim = fd;
      lowest = priority;
    }
  }
  if (victim < 0) return false;
  auto it = conns_.find(victim);
  totals_.sessions.Merge(it->second->session.counters());
  ++totals_.closed;
  ++totals_.shed_connections;
  poller_->Remove(victim);
  ::close(victim);
  conns_.erase(it);
  return true;
}

int IngestServer::PausedCount(double now) const {
  std::lock_guard<std::mutex> guard(mutex_);
  int paused = 0;
  for (const auto& [fd, conn] : conns_) {
    if (conn->session.paused(now)) ++paused;
  }
  return paused;
}

}  // namespace ldpr::serve
